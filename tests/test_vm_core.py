"""Simulator core: memory, ALU semantics, condition codes, delay slots."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm import (
    DivisionByZero,
    IllegalInstruction,
    Memory,
    MemoryFault,
    WatchdogTimeout,
)
from tests.helpers import run_asm, run_exit_code

u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)
M32 = 0xFFFFFFFF


def _s32(x):
    x &= M32
    return x - 0x100000000 if x & 0x80000000 else x


class TestMemory:
    def test_roundtrips(self):
        mem = Memory(size=4096, base=0x40000000)
        mem.write_u32(0x40000010, 0xDEADBEEF)
        assert mem.read_u32(0x40000010) == 0xDEADBEEF
        mem.write_u16(0x40000020, 0xBEEF)
        assert mem.read_u16(0x40000020) == 0xBEEF
        mem.write_u8(0x40000001, 0xAB)
        assert mem.read_u8(0x40000001) == 0xAB
        mem.write_u64(0x40000028, 0x0123456789ABCDEF)
        assert mem.read_u64(0x40000028) == 0x0123456789ABCDEF

    def test_big_endian_layout(self):
        mem = Memory(size=64, base=0x40000000)
        mem.write_u32(0x40000000, 0x11223344)
        assert mem.read_u8(0x40000000) == 0x11
        assert mem.read_u8(0x40000003) == 0x44

    @pytest.mark.parametrize("addr,size", [
        (0x40000002, 4),  # misaligned word
        (0x40000001, 2),  # misaligned half
        (0x40000004, 8),  # misaligned double
    ])
    def test_alignment_faults(self, addr, size):
        mem = Memory(size=64, base=0x40000000)
        with pytest.raises(MemoryFault):
            {4: mem.read_u32, 2: mem.read_u16, 8: mem.read_u64}[size](addr)

    def test_out_of_range(self):
        mem = Memory(size=64, base=0x40000000)
        with pytest.raises(MemoryFault):
            mem.read_u32(0x40000040)
        with pytest.raises(MemoryFault):
            mem.read_u32(0x3FFFFFFC)

    def test_f64_roundtrip(self):
        mem = Memory(size=64, base=0x40000000)
        mem.write_f64(0x40000008, 3.141592653589793)
        assert mem.read_f64(0x40000008) == 3.141592653589793

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Memory(size=0)
        with pytest.raises(ValueError):
            Memory(size=64, base=0x40000001)


def _alu_program(op: str, a: int, b: int) -> str:
    return f"""
    set {a}, %o1
    set {b}, %o2
    {op} %o1, %o2, %o0
"""


_ALU_REFERENCE = {
    "add": lambda a, b, y: (a + b) & M32,
    "sub": lambda a, b, y: (a - b) & M32,
    "and": lambda a, b, y: a & b,
    "or": lambda a, b, y: a | b,
    "xor": lambda a, b, y: a ^ b,
    "andn": lambda a, b, y: a & ~b & M32,
    "orn": lambda a, b, y: (a | ~b) & M32,
    "xnor": lambda a, b, y: ~(a ^ b) & M32,
    "umul": lambda a, b, y: (a * b) & M32,
    "smul": lambda a, b, y: (_s32(a) * _s32(b)) & M32,
}


class TestAlu:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(sorted(_ALU_REFERENCE)), u32s, u32s)
    def test_against_reference(self, op, a, b):
        code = run_exit_code(_alu_program(op, a, b))
        assert code == _ALU_REFERENCE[op](a, b, 0)

    @settings(max_examples=15, deadline=None)
    @given(u32s, st.integers(min_value=0, max_value=31))
    def test_shifts(self, a, count):
        assert run_exit_code(_alu_program("sll", a, count)) == (a << count) & M32
        assert run_exit_code(_alu_program("srl", a, count)) == a >> count
        assert run_exit_code(
            _alu_program("sra", a, count)) == (_s32(a) >> count) & M32

    @settings(max_examples=15, deadline=None)
    @given(u32s, st.integers(min_value=1, max_value=0xFFFFFFFF))
    def test_udiv_with_zero_y(self, a, b):
        body = f"""
    wr %g0, 0, %y
    set {a}, %o1
    set {b}, %o2
    udiv %o1, %o2, %o0
"""
        assert run_exit_code(body) == a // b

    def test_udiv_uses_y_as_high_word(self):
        # dividend = (1 << 32 | 0) / 2 overflows 32 bits -> clamps
        body = """
    mov 1, %o3
    wr %o3, 0, %y
    mov 0, %o1
    mov 2, %o2
    udiv %o1, %o2, %o0
"""
        assert run_exit_code(body) == 0x80000000

    def test_udiv_overflow_clamps(self):
        body = """
    mov 1, %o3
    wr %o3, 0, %y
    mov 0, %o1
    mov 1, %o2
    udiv %o1, %o2, %o0
"""
        assert run_exit_code(body) == 0xFFFFFFFF

    def test_division_by_zero_traps(self):
        with pytest.raises(DivisionByZero):
            run_exit_code("""
    wr %g0, 0, %y
    mov 5, %o1
    udiv %o1, %g0, %o0
""")

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
           st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_sdiv(self, a, b):
        if b == 0:
            return
        body = f"""
    set {a & M32}, %o1
    sra %o1, 31, %o3
    wr %o3, 0, %y
    set {b & M32}, %o2
    sdiv %o1, %o2, %o0
"""
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        expected = max(-(2**31), min(2**31 - 1, expected))
        assert run_exit_code(body) == expected & M32

    def test_umul_sets_y(self):
        body = """
    set 0x10000, %o1
    set 0x10000, %o2
    umul %o1, %o2, %g3
    rd %y, %o0
"""
        assert run_exit_code(body) == 1  # 2^32 -> high word 1

    def test_g0_is_hardwired_zero(self):
        assert run_exit_code("""
    set 1234, %g0
    mov %g0, %o0
""") == 0


class TestConditionCodes:
    @pytest.mark.parametrize("a,b,branch,taken", [
        (5, 5, "be", True),
        (5, 6, "bne", True),
        (6, 5, "bg", True),
        (5, 6, "bl", True),
        (5, 5, "bge", True),
        (5, 5, "ble", True),
        (0x80000000, 1, "bl", True),     # signed: negative < 1
        (0x80000000, 1, "bgu", True),    # unsigned: huge > 1
        (1, 2, "bleu", True),
        (2, 1, "bcc", True),             # no borrow
        (1, 2, "bcs", True),             # borrow
        (5, 6, "bg", False),
        (5, 5, "bne", False),
    ])
    def test_branch_conditions(self, a, b, branch, taken):
        body = f"""
    set {a}, %o1
    set {b}, %o2
    cmp %o1, %o2
    {branch} yes
    nop
    mov 0, %o0
    ba out
    nop
yes:
    mov 1, %o0
out:
"""
        assert run_exit_code(body) == (1 if taken else 0)

    def test_overflow_flag(self):
        # 0x7fffffff + 1 overflows signed -> bvs taken
        body = """
    set 0x7FFFFFFF, %o1
    addcc %o1, 1, %g3
    bvs yes
    nop
    mov 0, %o0
    ba out
    nop
yes:
    mov 1, %o0
out:
"""
        assert run_exit_code(body) == 1

    def test_addx_carry_chain(self):
        # 64-bit add: 0xFFFFFFFF + 1 = carry into the high word
        body = """
    set 0xFFFFFFFF, %o1
    addcc %o1, 1, %o2      ! low word = 0, carry set
    addx %g0, %g0, %o0     ! high word = carry
"""
        assert run_exit_code(body) == 1


class TestControlFlow:
    def test_delay_slot_executes(self):
        assert run_exit_code("""
    mov 0, %o0
    ba over
    add %o0, 5, %o0        ! delay slot executes
    add %o0, 100, %o0      ! skipped
over:
""") == 5

    def test_annulled_delay_slot_on_untaken(self):
        assert run_exit_code("""
    mov 0, %o0
    cmp %o0, 1
    be,a over              ! not taken, annul: skip the delay slot
    add %o0, 5, %o0
    add %o0, 1, %o0
over:
""") == 1

    def test_ba_annul_skips_delay_slot(self):
        assert run_exit_code("""
    mov 0, %o0
    ba,a over
    add %o0, 5, %o0        ! annulled
over:
    add %o0, 2, %o0
""") == 2

    def test_taken_conditional_with_annul_executes_slot(self):
        assert run_exit_code("""
    mov 0, %o0
    cmp %o0, 0
    be,a over
    add %o0, 5, %o0        ! taken: delay slot executes
    add %o0, 100, %o0
over:
""") == 5

    def test_call_sets_o7_and_retl_returns(self):
        assert run_exit_code("""
    call func
    nop
    ba out
    nop
func:
    retl
    mov 42, %o0
out:
""") == 42

    def test_jmpl_indirect(self):
        assert run_exit_code("""
    set target, %o1
    jmpl %o1, %g0
    nop
    mov 0, %o0
target:
    mov 7, %o0
""", ) == 7

    def test_misaligned_jump_faults(self):
        with pytest.raises(MemoryFault):
            run_exit_code("""
    set target + 2, %o1
    jmpl %o1, %g0
    nop
target:
    nop
""")

    def test_illegal_instruction(self):
        with pytest.raises(IllegalInstruction):
            run_asm("""
    .text
_start:
    .word 0
""")

    def test_watchdog(self):
        with pytest.raises(WatchdogTimeout):
            run_asm("""
    .text
_start:
    ba _start
    nop
""", max_instructions=1000)
