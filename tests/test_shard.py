"""Sharded streamed sweeps: exact Pareto-front merging across processes.

Three layers of guarantees:

* :func:`repro.dse.shard.merge_front_entries` -- merging per-shard
  fronts through one accumulator equals the single-pass front for
  *any* contiguous split of the offer sequence, including empty
  shards, one-point shards and exact objective ties (property-tested:
  Pareto reduction is associative);
* :func:`repro.dse.engine.sweep_streamed` with ``shards > 1`` -- the
  summary and every rendered report are byte-identical to the serial
  ``shards=1`` path, on the numpy fast path and the pure-python
  generic path, through real pool workers, and under deterministic
  chaos (kills and raises retry to convergence);
* the O(n log n) :func:`repro.dse.pareto.classify` staircase rewrite
  equals the quadratic pairwise definition, and the accumulator's
  cached front invalidates exactly on accepted adds.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    DesignSpace,
    ParetoAccumulator,
    WorkloadPair,
    pareto_front,
    sweep_streamed,
)
from repro.dse.pareto import _classify_quadratic, classify
from repro.dse.report import StreamReport
from repro.dse.shard import (
    MIN_SHARD_CONFIGS,
    ShardContext,
    _load_context,
    _merge_front_columns,
    _shm_export,
    merge_front_entries,
    publish_context,
    resolve_shards,
    unpublish_context,
)
from repro.fse.kernel import build_fse_kernel
from repro.fse.params import FseParams
from repro.hw.config import HwConfig
from repro.kir import compile_module
from repro.runner import ExperimentRunner
from repro.runner.resilience import ChaosPolicy, UsageError
from repro.vm.config import CoreConfig

BUDGET = 50_000_000

SPACE = DesignSpace((
    ("clock_mhz", (25.0, 50.0, 66.0)),
    ("fpu", (False, True)),
    ("nwindows", (2, 8)),
    ("wait_states", (0, 2)),
))


# -- the merge primitive (property-based) ------------------------------------

# small coordinate grids force duplicates and exact objective ties
vectors = st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 3))


def shard_fronts(points, bounds):
    """Per-shard front entries with global seqs, one accumulator each."""
    fronts = []
    for lo, hi in zip(bounds, bounds[1:]):
        acc = ParetoAccumulator()
        for point in points[lo:hi]:
            acc.add(point)
        fronts.append([(lo + seq, item)
                       for seq, item in acc.front_entries()])
    return fronts


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_merged_shard_fronts_equal_single_pass(data):
    points = data.draw(st.lists(vectors, min_size=1, max_size=48))
    n = len(points)
    # arbitrary contiguous split: sorted cut points allow empty shards
    # at either end and in the middle, and 1-point shards throughout
    cuts = data.draw(st.lists(st.integers(0, n), max_size=6))
    bounds = [0] + sorted(cuts) + [n]
    merged = merge_front_entries(shard_fronts(points, bounds))
    serial = ParetoAccumulator()
    for point in points:
        serial.add(point)
    assert [item for _, item in merged] == serial.front() \
        == pareto_front(points)
    # global seqs survive the merge (arrival order is the tie contract)
    assert [seq for seq, _ in merged] == [
        seq for seq, _ in serial.front_entries()]


def test_merge_handles_all_empty_shards():
    assert merge_front_entries([]) == []
    assert merge_front_entries([[], []]) == []
    merged = _merge_front_columns([])
    assert sorted(merged) == ["area", "e", "seq", "t"]
    assert all(len(col) == 0 for col in merged.values())


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_vectorized_column_merge_equals_reference(data):
    """The numpy staircase merge == the accumulator merge, any split."""
    from repro.nfp.linear import numpy_or_none
    if numpy_or_none() is None:
        pytest.skip("numpy unavailable")
    points = data.draw(st.lists(vectors, min_size=1, max_size=48))
    n = len(points)
    cuts = data.draw(st.lists(st.integers(0, n), max_size=6))
    bounds = [0] + sorted(cuts) + [n]
    fronts = shard_fronts(points, bounds)
    merged = _merge_front_columns([
        {"t": [obj[0] for _, obj in front],
         "e": [obj[1] for _, obj in front],
         "area": [obj[2] for _, obj in front],
         "seq": [seq for seq, _ in front]} for front in fronts])
    reference = merge_front_entries(fronts)
    # the fast path returns numpy columns; normalize before comparing
    assert list(merged["seq"]) == [seq for seq, _ in reference]
    assert list(merged["t"]) == [obj[0] for _, obj in reference]
    assert list(merged["e"]) == [obj[1] for _, obj in reference]
    assert list(merged["area"]) == [obj[2] for _, obj in reference]


# -- classify: staircase rewrite vs the quadratic definition -----------------

@settings(max_examples=200, deadline=None)
@given(st.lists(vectors, min_size=1, max_size=48))
def test_classify_equals_quadratic_3d(points):
    assert classify(points) == _classify_quadratic(points)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                min_size=1, max_size=48))
def test_classify_equals_quadratic_2d(points):
    assert classify(points) == _classify_quadratic(points)


def test_classify_falls_back_on_other_arities():
    points = [(1, 2, 3, 4), (0, 0, 0, 0), (1, 2, 3, 4)]
    assert classify(points) == _classify_quadratic(points) \
        == [False, True, False]


# -- the accumulator's cached front ------------------------------------------

def test_front_cache_invalidated_only_by_accepted_adds():
    acc = ParetoAccumulator()
    acc.add((1, 1, 1))
    first = acc.front_entries()
    assert first == [(0, (1, 1, 1))]
    # a dominated offer is rejected and must not disturb the cache
    assert not acc.add((2, 2, 1))
    assert acc.front_entries() == first
    assert acc.knee() == (1, 1, 1)
    # an accepted add recomputes: new point joins the front
    assert acc.add((0, 2, 1))
    assert acc.front_entries() == [(0, (1, 1, 1)), (2, (0, 2, 1))]
    # mutating the returned list never corrupts the cache
    acc.front_entries().clear()
    assert len(acc.front_entries()) == 2


# -- shard-count resolution and context transport ----------------------------

def test_resolve_shards_explicit_and_auto(monkeypatch):
    assert resolve_shards(4, 1000) == 4
    assert resolve_shards(8, 3) == 3          # never an empty shard
    assert resolve_shards(1, 10) == 1
    with pytest.raises(ValueError):
        resolve_shards(0, 10)
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_shards(None, 100) == 1     # tiny grids stay serial
    assert resolve_shards(None, 2 * MIN_SHARD_CONFIGS) == 2
    assert resolve_shards(None, 100 * MIN_SHARD_CONFIGS) == 4


def test_context_transport_round_trips():
    ctx = ShardContext(space=SPACE, base=HwConfig(), pair_names=("w",),
                       vectors={}, chunk=7)
    digest, blob = publish_context(ctx)
    try:
        assert _load_context(("pickle", blob)) == ctx
        exported = _shm_export(blob)
        if exported is not None:
            segment, transport = exported
            try:
                assert transport[0] == "shm"
                assert _load_context(transport) == ctx
            finally:
                segment.close()
                segment.unlink()
    finally:
        unpublish_context(digest)
    with pytest.raises(RuntimeError):
        _load_context(None)


# -- end to end: sharded == serial, byte for byte ----------------------------

@pytest.fixture(scope="module")
def sweep_setup(tmp_path_factory):
    params = FseParams(block=8, iterations=2)
    module = build_fse_kernel(0, params, size=8)
    pair = WorkloadPair(
        name="fse:00",
        float_program=compile_module(module, "hard"),
        fixed_program=compile_module(module, "soft"))
    cache_dir = tmp_path_factory.mktemp("shard-cache")
    runner = ExperimentRunner(cache_dir=cache_dir, workers=2)
    base = HwConfig(name="leon3", core=CoreConfig())
    return pair, runner, base


def streamed(setup, **kwargs):
    pair, runner, base = setup
    return sweep_streamed(SPACE, [pair], budget=BUDGET, runner=runner,
                          base=base, **kwargs)


@pytest.mark.parametrize("shards", [2, 3, 24])
def test_sharded_summary_equals_serial(sweep_setup, shards):
    serial = streamed(sweep_setup, shards=1)
    sharded = streamed(sweep_setup, shards=shards)
    assert sharded == serial


def test_sharded_reports_byte_identical(sweep_setup):
    serial = streamed(sweep_setup, shards=1, front_cap=4)
    sharded = streamed(sweep_setup, shards=3, front_cap=4)
    for fmt in ("text", "csv", "json"):
        assert (StreamReport(sharded, title="t").render(fmt)
                == StreamReport(serial, title="t").render(fmt))


def test_sharded_refinement_equals_serial(sweep_setup):
    serial = streamed(sweep_setup, shards=1, refine=2)
    sharded = streamed(sweep_setup, shards=4, refine=2)
    assert sharded == serial
    assert sharded.refined == serial.refined


def test_sharded_pure_python_equals_serial(sweep_setup):
    held = os.environ.get("REPRO_NUMPY")
    os.environ["REPRO_NUMPY"] = "0"
    try:
        serial = streamed(sweep_setup, shards=1)
        sharded = streamed(sweep_setup, shards=4)
    finally:
        if held is None:
            os.environ.pop("REPRO_NUMPY", None)
        else:
            os.environ["REPRO_NUMPY"] = held
    assert sharded == serial
    # and the generic path agrees with the numpy fast path bit for bit
    assert sharded == streamed(sweep_setup, shards=4)


def test_sharded_chaos_converges_byte_identically(sweep_setup, tmp_path):
    """Worker kills and raises retry until the exact same summary."""
    pair, _, base = sweep_setup
    clean = streamed(sweep_setup, shards=3)
    for spec in ("7:raise=0.5,depth=1", "11:kill=0.5,depth=1"):
        chaotic = ExperimentRunner(
            cache_dir=tmp_path / spec.replace(",", "_").replace(":", "_"),
            workers=2, chaos=ChaosPolicy.parse(spec))
        summary = sweep_streamed(SPACE, [pair], budget=BUDGET,
                                 runner=chaotic, base=base, shards=3)
        assert summary == clean


# -- driver and CLI wiring ---------------------------------------------------

def test_cli_parser_accepts_shards():
    from repro.cli import build_parser
    parser = build_parser()
    args = parser.parse_args(["dse", "--stream", "--shards", "4"])
    assert args.shards == 4
    assert parser.parse_args(["dse"]).shards is None


def test_shards_require_streamed_sweep():
    from repro.experiments import dse as dse_driver
    with pytest.raises(UsageError, match="--stream"):
        dse_driver.run("smoke", shards=2)
    with pytest.raises(UsageError, match="positive"):
        dse_driver.run("smoke", stream=True, shards=0)


def test_server_schema_validates_shards():
    from repro.server.schemas import ApiError, sweep_request
    spec = sweep_request({"mode": "stream", "shards": 4})
    assert spec.shards == 4
    assert sweep_request({"mode": "stream"}).shards is None
    for bad in ({"mode": "stream", "shards": 0},
                {"mode": "stream", "shards": True},
                {"mode": "profile", "shards": 2}):
        with pytest.raises(ApiError, match="shards") as err:
            sweep_request(bad)
        assert err.value.code == "bad-shards"
