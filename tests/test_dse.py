"""The design-space exploration engine: axes, Pareto laws, sweeps, CLI."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    DesignSpace,
    SweepConfig,
    SweepReport,
    WorkloadPair,
    classify,
    dominates,
    get_axis,
    knee_point,
    pareto_front,
    sweep,
    sweep_estimated,
)
from repro.dse.presets import FPU_CONFIG, NOFPU_CONFIG
from repro.hw.area import MEMCTRL_LES, memctrl_les, synthesize
from repro.hw.config import HwConfig, leon3_fpu, leon3_nofpu
from repro.hw.timing import cycle_table_with_wait_states
from repro.nfp import Calibrator, NFPEstimator
from repro.nfp.dse import explore_fpu
from repro.runner import ExperimentRunner
from repro.fse.kernel import build_fse_kernel
from repro.fse.params import FseParams
from repro.hw import Board, PerfectInstruments
from repro.kir import compile_module

BUDGET = 50_000_000


@pytest.fixture(scope="module")
def tiny_pair():
    params = FseParams(block=8, iterations=2)
    module = build_fse_kernel(0, params, size=8)
    return WorkloadPair(
        name="fse:00",
        float_program=compile_module(module, "hard"),
        fixed_program=compile_module(module, "soft"))


# -- Pareto laws (property-based) -------------------------------------------

vectors = st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6))


@given(vectors, vectors)
def test_dominance_antisymmetric_and_irreflexive(a, b):
    assert not dominates(a, a)
    assert not (dominates(a, b) and dominates(b, a))


@settings(max_examples=200, deadline=None)
@given(st.lists(vectors, min_size=1, max_size=24))
def test_front_subset_and_dominated_strictly_worse(points):
    front = pareto_front(points)
    # the front is a subset of the grid and never empty
    assert front
    assert all(p in points for p in front)
    # no front point dominates another front point
    assert not any(dominates(p, q) for p in front for q in front)
    # every dominated point is strictly worse than some front point on
    # at least one objective (and no better on any)
    flags = classify(points)
    for point, on_front in zip(points, flags):
        if on_front:
            continue
        dominators = [q for q in points if dominates(q, point)]
        assert dominators
        for q in dominators:
            assert all(x <= y for x, y in zip(q, point))
            assert any(x < y for x, y in zip(q, point))


@settings(max_examples=100, deadline=None)
@given(st.lists(vectors, min_size=1, max_size=24))
def test_knee_point_is_on_the_front(points):
    front = pareto_front(points)
    assert knee_point(front) in front


def test_exact_ties_all_stay_on_front():
    points = [(1, 1, 1), (1, 1, 1), (2, 2, 2)]
    assert pareto_front(points) == [(1, 1, 1), (1, 1, 1)]


def test_dominates_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        dominates((1, 2), (1, 2, 3))


# -- axes and design spaces --------------------------------------------------

def test_axis_applications():
    base = HwConfig()
    fpu_off = get_axis("fpu").apply(base, False)
    assert not fpu_off.core.has_fpu
    windows = get_axis("nwindows").apply(base, 4)
    assert windows.core.nwindows == 4
    blocks = get_axis("block_size").apply(base, 8)
    assert blocks.core.block_size == 8
    slow_mem = get_axis("wait_states").apply(base, 3)
    assert slow_mem.cycle_table["ld"] == base.cycle_table["ld"] + 3
    assert slow_mem.cycle_table["ldd"] == base.cycle_table["ldd"] + 6
    assert slow_mem.cycle_table["add"] == base.cycle_table["add"]


def test_clock_axis_voltage_scaling_is_identity_at_base():
    base = HwConfig()
    at_base = get_axis("clock_mhz").apply(base, 50)
    assert at_base.clock_hz == base.clock_hz
    assert at_base.static_power_w == base.static_power_w
    assert dict(at_base.dyn_energy_nj) == dict(base.dyn_energy_nj)
    fast = get_axis("clock_mhz").apply(base, 80)
    assert fast.clock_hz == 80e6
    assert fast.static_power_w > base.static_power_w
    assert fast.dyn_energy_nj["add"] > base.dyn_energy_nj["add"]
    slow = get_axis("clock_mhz").apply(base, 25)
    assert slow.dyn_energy_nj["add"] < base.dyn_energy_nj["add"]


def test_wait_state_table_and_area_tradeoff():
    base = HwConfig().cycle_table
    assert cycle_table_with_wait_states(base, 0) == dict(base)
    with pytest.raises(ValueError):
        cycle_table_with_wait_states(base, -1)
    assert memctrl_les(0) == MEMCTRL_LES
    assert memctrl_les(2) < memctrl_les(0)
    with pytest.raises(ValueError):
        memctrl_les(-1)


def test_design_space_spec_roundtrip():
    space = DesignSpace.from_spec("clock_mhz=25:50,fpu,nwindows=4:8")
    assert space.axis_names == ("clock_mhz", "fpu", "nwindows")
    assert space.size == 8
    configs = space.configs()
    assert len(configs) == 8
    assert len({c.name for c in configs}) == 8
    first = configs[0]
    assert isinstance(first, SweepConfig)
    assert first.hw.name == first.name
    # product order: last axis varies fastest
    assert configs[0].value("nwindows") == 4
    assert configs[1].value("nwindows") == 8


def test_design_space_default_has_at_least_24_points():
    space = DesignSpace.default()
    assert len(space.axis_names) >= 3
    assert space.size >= 24


def test_design_space_rejects_bad_specs():
    with pytest.raises(ValueError):
        DesignSpace.from_spec("bogus_axis=1:2")
    with pytest.raises(ValueError):
        DesignSpace.from_spec("")
    with pytest.raises(ValueError):
        DesignSpace(axes=(("fpu", ()),))
    with pytest.raises(ValueError):
        DesignSpace(axes=(("fpu", (True,)), ("fpu", (False,))))


# -- the metered sweep through the runner ------------------------------------

@pytest.fixture(scope="module")
def small_grid_setup(tiny_pair, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("dse-cache")
    space = DesignSpace.from_spec("fpu,wait_states=0:2")
    runner = ExperimentRunner(cache_dir=cache_dir, workers=1)
    grid = sweep(space, [tiny_pair], budget=BUDGET, runner=runner)
    return space, runner, grid, cache_dir


def test_sweep_grid_shape_and_builds(small_grid_setup, tiny_pair):
    _, _, grid, _ = small_grid_setup
    assert len(grid.points) == 4
    assert grid.workloads() == (tiny_pair.name,)
    assert len(grid.configs()) == 4
    for point in grid.points:
        expected = "float" if point.value("fpu") else "fixed"
        assert point.build == expected
        assert point.time_s > 0 and point.energy_j > 0
        assert point.cycles is not None and point.cycles > point.retired


def test_sweep_area_tracks_axes(small_grid_setup):
    _, _, grid, _ = small_grid_setup
    for point in grid.points:
        core_les = synthesize(
            leon3_fpu().core if point.value("fpu")
            else leon3_nofpu().core).total_les
        assert point.area_les == core_les + memctrl_les(
            point.value("wait_states"))


def test_wait_states_cost_time_but_save_area(small_grid_setup, tiny_pair):
    _, _, grid, _ = small_grid_setup
    fast = grid.point("fpu-ws0", tiny_pair.name)
    slow = grid.point("fpu-ws2", tiny_pair.name)
    assert slow.cycles > fast.cycles
    assert slow.time_s > fast.time_s
    assert slow.area_les < fast.area_les
    # same functional execution either way
    assert slow.retired == fast.retired


def test_sweep_warm_rerun_is_bit_identical(small_grid_setup, tiny_pair):
    space, runner, grid, cache_dir = small_grid_setup
    # second run through the same runner: memory/disk cache hits only
    warm = sweep(space, [tiny_pair], budget=BUDGET, runner=runner)
    assert warm == grid
    # a fresh runner over the same cache directory (fresh process-level
    # state, disk hits): still bit-identical
    fresh = sweep(space, [tiny_pair], budget=BUDGET,
                  runner=ExperimentRunner(cache_dir=cache_dir, workers=1))
    assert fresh == grid
    # and the rendered reports are byte-identical
    assert SweepReport(fresh).render("json") == \
        SweepReport(grid).render("json")


def test_front_and_knee_views(small_grid_setup):
    _, _, grid, _ = small_grid_setup
    front = grid.front()
    assert front
    assert set(front) <= set(grid.aggregate())
    knee = grid.knee()
    assert knee in front
    flags = dict((p.config, on_front)
                 for p, on_front in grid.dominated_flags())
    assert all(flags[p.config] for p in front)


def test_report_formats(small_grid_setup, tiny_pair):
    _, _, grid, _ = small_grid_setup
    report = SweepReport(grid)
    text = report.render("text")
    assert "Pareto front" in text and "knee" in text
    csv_text = report.render("csv")
    header = csv_text.splitlines()[0].split(",")
    assert {"config", "workload", "time_s", "energy_j",
            "area_les"} <= set(header)
    # every grid point plus one aggregate row per config
    assert len(csv_text.splitlines()) == 1 + len(grid.points) + 4
    blob = json.loads(report.render("json"))
    assert blob["workloads"] == [tiny_pair.name]
    assert blob["pareto"]["knee"] == grid.knee().config
    assert len(blob["points"]) == len(grid.points)
    with pytest.raises(ValueError):
        report.render("yaml")


# -- the Table IV preset ------------------------------------------------------

@pytest.fixture(scope="module")
def calibrated():
    board = Board(leon3_fpu(), PerfectInstruments())
    model = Calibrator(board, iterations=400,
                       unroll=16).calibrate().to_model()
    return model


def test_explore_fpu_matches_direct_estimation(calibrated, tiny_pair):
    """The preset reproduces the pre-engine computation bit-for-bit."""
    model = calibrated
    est_fpu = NFPEstimator(model, leon3_fpu().core)
    est_nofpu = NFPEstimator(model, leon3_nofpu().core)
    report = explore_fpu(est_fpu, est_nofpu, [tiny_pair],
                         max_instructions=BUDGET)
    row = report.row(tiny_pair.name)
    # the historical implementation, inlined
    with_fpu = est_fpu.estimate_program(
        tiny_pair.float_program, max_instructions=BUDGET)
    without_fpu = est_nofpu.estimate_program(
        tiny_pair.fixed_program, max_instructions=BUDGET)
    assert row.float_energy_j == with_fpu.energy_j
    assert row.fixed_energy_j == without_fpu.energy_j
    assert row.float_time_s == with_fpu.time_s
    assert row.fixed_time_s == without_fpu.time_s
    assert row.energy_change == (
        (with_fpu.energy_j - without_fpu.energy_j) / without_fpu.energy_j)
    assert row.time_change == (
        (with_fpu.time_s - without_fpu.time_s) / without_fpu.time_s)


def test_estimated_sweep_grid(calibrated, tiny_pair):
    model = calibrated
    est_fpu = NFPEstimator(model, leon3_fpu().core)
    est_nofpu = NFPEstimator(model, leon3_nofpu().core)
    space = DesignSpace.single("fpu", (True, False))
    grid = sweep_estimated(
        space, [tiny_pair], budget=BUDGET,
        estimator_for=lambda cfg: est_fpu if cfg.hw.core.has_fpu
        else est_nofpu)
    assert {p.config for p in grid.points} == {FPU_CONFIG, NOFPU_CONFIG}
    for point in grid.points:
        assert point.cycles is None
    fpu_point = grid.point(FPU_CONFIG, tiny_pair.name)
    nofpu_point = grid.point(NOFPU_CONFIG, tiny_pair.name)
    assert fpu_point.time_s < nofpu_point.time_s
    with pytest.raises(KeyError):
        grid.point("nope", tiny_pair.name)


# -- CLI ----------------------------------------------------------------------

def test_cli_parser_dse():
    from repro.cli import build_parser
    parser = build_parser()
    args = parser.parse_args(
        ["dse", "--scale", "smoke", "--axes", "fpu,wait_states=0:1",
         "--format", "json", "--workers", "2",
         "--workloads", "table3,img:*"])
    assert args.command == "dse"
    assert args.scale == "smoke"
    assert args.axes == "fpu,wait_states=0:1"
    assert args.fmt == "json"
    assert args.workers == 2
    assert args.workloads == "table3,img:*"
    defaults = parser.parse_args(["dse"])
    assert defaults.axes is None and defaults.fmt == "text"
    assert defaults.workloads is None
    with pytest.raises(SystemExit):
        parser.parse_args(["dse", "--format", "xml"])
