"""The experiment runner: content-addressed caching and process fan-out.

Cold compute, warm cache reads and pool workers must all return
bit-identical payloads; the bench memoisation must key on program content
so name collisions can never alias results.
"""

from __future__ import annotations

import json

import pytest

from repro.asm import assemble
from repro.hw.board import Board
from repro.hw.config import leon3_fpu
from repro.hw.powermeter import PerfectInstruments
from repro.nfp.calibration import Calibrator
from repro.runner import (
    ExperimentRunner,
    ResultCache,
    SimTask,
    program_digest,
    run_task,
    sim_from_dict,
    sim_to_dict,
    task_key,
)
from repro.vm import CoreConfig, Simulator

KERNEL_A = """
    .text
_start:
    set 400, %o1
loop:
    add %o0, 3, %o0
    subcc %o1, 1, %o1
    bne loop
    nop
    mov 0, %o0
    mov 0, %g1
    ta 5
"""

KERNEL_B = KERNEL_A.replace("add %o0, 3, %o0", "add %o0, 7, %o0")


def _task(source=KERNEL_A, mode="metered", budget=5_000_000) -> SimTask:
    program = assemble(source)
    if mode == "metered":
        return SimTask(mode="metered", program=program, budget=budget,
                       hw=leon3_fpu())
    return SimTask(mode="fast", program=program, budget=budget,
                   core=CoreConfig())


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("k" * 64) is None
        cache.put("k" * 64, {"a": 1, "f": 0.1})
        assert cache.get("k" * 64) == {"a": 1, "f": 0.1}
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / ("x" * 64 + ".json")).write_text("{not json")
        assert cache.get("x" * 64) is None


class TestKeys:
    def test_program_digest_tracks_content(self):
        a1 = assemble(KERNEL_A)
        a2 = assemble(KERNEL_A)
        b = assemble(KERNEL_B)
        assert program_digest(a1) == program_digest(a2)
        assert program_digest(a1) != program_digest(b)

    def test_task_key_sensitivity(self):
        base = _task()
        assert task_key(base) == task_key(_task())
        assert task_key(base) != task_key(_task(source=KERNEL_B))
        assert task_key(base) != task_key(_task(mode="fast"))
        assert task_key(base) != task_key(_task(budget=1_000_000))

    def test_task_validation(self):
        program = assemble(KERNEL_A)
        with pytest.raises(ValueError):
            SimTask(mode="fast", program=program, budget=1)
        with pytest.raises(ValueError):
            SimTask(mode="bogus", program=program, budget=1,
                    core=CoreConfig())


class TestSerialization:
    def test_sim_result_roundtrip(self):
        sim = Simulator(assemble(KERNEL_A)).run()
        data = json.loads(json.dumps(sim_to_dict(sim)))
        restored = sim_from_dict(data)
        assert restored == sim  # dataclass equality covers every field

    def test_payload_floats_roundtrip_exactly(self):
        payload = run_task(_task())
        again = json.loads(json.dumps(payload))
        assert again == payload
        assert again["dyn_energy_nj"] == payload["dyn_energy_nj"]


class TestRunner:
    def test_warm_equals_cold(self, tmp_path):
        task = _task()
        cold_runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        cold = cold_runner.metered_raw(task.program, task.hw, task.budget)
        assert cold_runner.cache.misses == 1
        warm_runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        warm = warm_runner.metered_raw(task.program, task.hw, task.budget)
        assert warm_runner.cache.hits == 1 and warm_runner.cache.misses == 0
        assert warm.cycles == cold.cycles
        assert warm.dyn_energy_nj == cold.dyn_energy_nj
        assert warm.true_energy_j == cold.true_energy_j
        assert warm.sim == cold.sim

    def test_batch_dedupes_identical_tasks(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        payloads = runner.run_tasks([_task(), _task()])
        assert payloads[0] == payloads[1]
        assert len(runner.cache) == 1

    def test_memory_tier_without_disk(self):
        runner = ExperimentRunner(cache_dir=None, workers=1)
        first = runner.run_tasks([_task()])[0]
        # a second batch must not recompute: the payload is served from
        # the in-process tier (observable as identity)
        assert runner.run_tasks([_task()])[0] is first

    def test_pool_matches_inline(self, tmp_path):
        def strip_wall(payload):
            data = json.loads(json.dumps(payload))
            sim = data["sim"] if "sim" in data else data
            sim.pop("wall_seconds", None)
            return data

        tasks = [_task(), _task(source=KERNEL_B),
                 _task(mode="fast")]
        inline = ExperimentRunner(cache_dir=None, workers=1).run_tasks(tasks)
        pooled = ExperimentRunner(cache_dir=None, workers=2).run_tasks(tasks)
        # wall_seconds is a host-side timing, the only nondeterminism
        assert [strip_wall(p) for p in pooled] == \
            [strip_wall(p) for p in inline]

    def test_fast_sim_payload(self):
        runner = ExperimentRunner(cache_dir=None, workers=1)
        program = assemble(KERNEL_A)
        sim = runner.fast_sim(program, CoreConfig(), 5_000_000)
        direct = Simulator(program).run(max_instructions=5_000_000)
        assert sim.category_counts == direct.category_counts
        assert sim.exit_code == direct.exit_code


class TestBenchIntegration:
    def test_measure_keyed_by_program_digest(self):
        """The name-collision satellite: same name, different program."""
        from repro.experiments import get_bench, get_scale
        bench = get_bench(get_scale("smoke"))
        m_a = bench.measure("collide", assemble(KERNEL_A), True)
        m_b = bench.measure("collide", assemble(KERNEL_B), True)
        # the kernels differ only in operand data, so the data-dependent
        # energy is what tells their (distinct) results apart
        assert m_a.true_energy_j != m_b.true_energy_j
        # and re-measuring identical content under the same name memoises
        assert bench.measure("collide", assemble(KERNEL_A), True) is m_a

    def test_estimate_reuses_measured_counts(self):
        from repro.experiments import get_bench, get_scale
        bench = get_bench(get_scale("smoke"))
        program = assemble(KERNEL_A)
        meas = bench.measure("reuse-me", program, True)
        report = bench.estimate("reuse-me", program, True)
        assert report.sim is meas.sim  # no second simulation happened

    def test_calibration_identical_with_and_without_runner(self, tmp_path):
        def calibrate(runner):
            board = Board(leon3_fpu(), PerfectInstruments())
            return Calibrator(board, iterations=100, unroll=8,
                              runner=runner).calibrate(
                                  ["int_arith", "mem_load"])

        plain = calibrate(None)
        cached = calibrate(ExperimentRunner(cache_dir=tmp_path, workers=1))
        for cid in ("int_arith", "mem_load"):
            assert plain.records[cid].time_ns == cached.records[cid].time_ns
            assert plain.records[cid].energy_nj == \
                cached.records[cid].energy_nj
