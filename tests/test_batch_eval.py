"""Batch NFP evaluation: bit-compatibility with the per-point engine.

The contract under test (see :class:`repro.nfp.linear.BatchNfpEngine`):
for *any* configuration batch and *any* execution profile, batch pricing
returns bit-identical integer cycles and times versus one
:class:`~repro.nfp.linear.LinearNfpEngine` per configuration, and
energies within 1e-12 relative.  The same holds between the numpy and
pure-python combines (``REPRO_NUMPY=0``) and independently of how a
batch is composed.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import DesignSpace
from repro.hw.config import HwConfig, ScaledDynTable
from repro.nfp.linear import (
    BatchNfpEngine,
    ExecutionProfile,
    LinearNfpEngine,
    canonical_basis,
    lower_profile,
)
from repro.vm.blocks import FLAG_BRANCH, cost_flags
from repro.vm.config import CoreConfig

BASIS = canonical_basis()
FLAGS = cost_flags()


@st.composite
def profiles(draw) -> ExecutionProfile:
    """A structurally valid ExecutionProfile over the canonical basis."""
    mnemonics = {}
    chosen = draw(st.lists(st.sampled_from(BASIS), min_size=1, max_size=12,
                           unique=True))
    retired = 0
    for m in chosen:
        count = draw(st.integers(min_value=1, max_value=10**6))
        jsum = draw(st.integers(min_value=0, max_value=count * 65535))
        if FLAGS.get(m) == FLAG_BRANCH:
            uc = draw(st.integers(min_value=0, max_value=count))
            uj = draw(st.integers(min_value=0, max_value=uc * 65535))
        else:
            uc = uj = 0
        mnemonics[m] = (count, jsum, uc, uj)
        retired += count

    def depth_table():
        return {depth: (draw(st.integers(1, 10**4)),
                        draw(st.integers(0, 10**4 * 65535)))
                for depth in draw(st.lists(st.integers(0, 24),
                                           max_size=4, unique=True))}

    div_sites = {pc * 4: (draw(st.integers(1, 1000)),
                          draw(st.integers(0, 32 * 1000)))
                 for pc in draw(st.lists(st.integers(0, 100),
                                         max_size=3, unique=True))}
    return ExecutionProfile(
        retired=retired, clean=True, mnemonics=mnemonics,
        branch_sites={}, div_sites=div_sites,
        save_depths=depth_table(), restore_depths=depth_table())


@st.composite
def spaces(draw) -> DesignSpace:
    """A small design space over the stock axes (random value sets)."""
    clocks = draw(st.lists(
        st.floats(min_value=1.0, max_value=500.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=3, unique=True))
    nwindows = draw(st.lists(st.sampled_from((2, 3, 4, 6, 8, 16, 24)),
                             min_size=1, max_size=3, unique=True))
    wait_states = draw(st.lists(st.integers(0, 6),
                                min_size=1, max_size=3, unique=True))
    return DesignSpace((
        ("clock_mhz", tuple(round(c, 4) for c in clocks)),
        ("fpu", (False, True)),
        ("nwindows", tuple(nwindows)),
        ("wait_states", tuple(wait_states)),
    ))


def batch_hws(space: DesignSpace) -> list[HwConfig]:
    base = HwConfig(name="leon3", core=CoreConfig())
    return [config.hw for config in space.iter_configs(base)]


def assert_batch_matches_per_point(hws, profile):
    vectors = lower_profile(profile)
    batch = BatchNfpEngine(hws).evaluate(vectors)
    assert len(batch) == len(hws)
    for hw, got in zip(hws, batch):
        want = LinearNfpEngine(hw).evaluate(profile)
        assert got.cycles == want.cycles
        assert got.true_time_s == want.true_time_s
        assert got.spills == want.spills
        assert got.fills == want.fills
        assert got.retired == want.retired
        assert got.true_energy_j == pytest.approx(
            want.true_energy_j, rel=1e-12)
        assert got.dyn_energy_nj == pytest.approx(
            want.dyn_energy_nj, rel=1e-12)


@settings(max_examples=25, deadline=None)
@given(spaces(), profiles())
def test_batch_bit_compatible_with_per_point_engine(space, profile):
    """Cycles/times bit-identical, energy <= 1e-12 rel, any axis combo."""
    assert_batch_matches_per_point(batch_hws(space), profile)


@contextmanager
def forced_vector_combine():
    """Vector combine on any batch size (numpy-vs-scalar, not scalar^2)."""
    held = BatchNfpEngine._VECTOR_MIN
    BatchNfpEngine._VECTOR_MIN = 1
    try:
        yield
    finally:
        BatchNfpEngine._VECTOR_MIN = held


@contextmanager
def pure_python_combine():
    held = os.environ.get("REPRO_NUMPY")
    os.environ["REPRO_NUMPY"] = "0"
    try:
        yield
    finally:
        if held is None:
            os.environ.pop("REPRO_NUMPY", None)
        else:
            os.environ["REPRO_NUMPY"] = held


@settings(max_examples=25, deadline=None)
@given(spaces(), profiles())
def test_batch_pure_python_matches_numpy(space, profile):
    """REPRO_NUMPY=0 flips the combine implementation, never the bits."""
    hws = batch_hws(space)
    vectors = lower_profile(profile)
    with forced_vector_combine():
        fast = BatchNfpEngine(hws).evaluate(vectors)
        with pure_python_combine():
            pure = BatchNfpEngine(hws).evaluate(vectors)
    assert fast == pure


@settings(max_examples=15, deadline=None)
@given(spaces(), profiles(), st.integers(min_value=1, max_value=7))
def test_batch_composition_independent(space, profile, cut):
    """Splitting a batch anywhere yields the same per-config results."""
    hws = batch_hws(space)
    vectors = lower_profile(profile)
    with forced_vector_combine():
        whole = BatchNfpEngine(hws).evaluate(vectors)
        cut = cut % len(hws)
        split = (BatchNfpEngine(hws[:cut]).evaluate(vectors) if cut
                 else []) + BatchNfpEngine(hws[cut:]).evaluate(vectors)
    assert whole == split


def test_scaled_dyn_table_is_entrywise_exact():
    base = HwConfig().dyn_energy_nj
    scale = 0.7542
    table = ScaledDynTable(base, scale)
    assert dict(table) == {m: nj * scale for m, nj in base.items()}
    assert table.base is base
    assert table.scale == scale


def test_scaled_dyn_table_survives_worker_pickling():
    """HwConfig pickling flattens the table to a plain mapping.

    Workers only lose the fast dedup (they reprice from the entries),
    never correctness -- the entries are the same floats.
    """
    from repro.dse.axes import get_axis

    base = HwConfig(name="leon3", core=CoreConfig())
    hw = get_axis("clock_mhz").apply(base, 25.0)
    assert isinstance(hw.dyn_energy_nj, ScaledDynTable)
    clone = pickle.loads(pickle.dumps(hw))
    assert not isinstance(clone.dyn_energy_nj, ScaledDynTable)
    assert dict(clone.dyn_energy_nj) == dict(hw.dyn_energy_nj)
    assert clone.cycle_table == hw.cycle_table


@settings(max_examples=10, deadline=None)
@given(profiles())
def test_scaled_table_prices_like_its_plain_copy(profile):
    """Factored pricing == pricing the materialized derived table."""
    base = HwConfig(name="leon3", core=CoreConfig())
    from repro.dse.axes import get_axis
    hw = get_axis("clock_mhz").apply(base, 30.0)
    plain = dataclasses.replace(hw, dyn_energy_nj=dict(hw.dyn_energy_nj))
    vectors = lower_profile(profile)
    factored = BatchNfpEngine([hw]).evaluate(vectors)[0]
    exact = BatchNfpEngine([plain]).evaluate(vectors)[0]
    assert factored.cycles == exact.cycles
    assert factored.true_time_s == exact.true_time_s
    assert factored.true_energy_j == pytest.approx(
        exact.true_energy_j, rel=1e-12)
