"""The estimation method: model (Eq. 1), calibration (Eq. 2), errors (Eq. 3),
estimator and design-space exploration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.hw import Board, PerfectInstruments, leon3_fpu, leon3_nofpu
from repro.isa.categories import CATEGORY_IDS, NUM_CATEGORIES
from repro.nfp import (
    Calibrator,
    KernelError,
    MechanisticModel,
    NFPEstimator,
    PAPER_TABLE1,
    SpecificCosts,
    blend_with_mix,
    make_kernel_pair,
    relative_error,
    summarize_errors,
    table3,
)

counts_strategy = st.lists(
    st.integers(min_value=0, max_value=10**7),
    min_size=NUM_CATEGORIES, max_size=NUM_CATEGORIES)


class TestModel:
    def test_paper_table1_values(self):
        costs = PAPER_TABLE1.costs
        rows = dict(zip(CATEGORY_IDS, zip(costs.time_ns, costs.energy_nj)))
        assert rows["int_arith"] == (45, 15)
        assert rows["mem_load"] == (700, 229)
        assert rows["fpu_div"] == (431, 431)

    @given(counts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_eq1_is_exact_dot_product(self, counts):
        estimate = PAPER_TABLE1.estimate(counts)
        costs = PAPER_TABLE1.costs
        expected_t = sum(t * n for t, n in zip(costs.time_ns, counts)) * 1e-9
        expected_e = sum(e * n for e, n in zip(costs.energy_nj, counts)) * 1e-9
        assert estimate.time_s == pytest.approx(expected_t, rel=1e-12)
        assert estimate.energy_j == pytest.approx(expected_e, rel=1e-12)

    @given(counts_strategy, counts_strategy)
    @settings(max_examples=25, deadline=None)
    def test_eq1_additivity(self, a, b):
        """The mechanistic model is linear in the instruction counts."""
        combined = PAPER_TABLE1.estimate([x + y for x, y in zip(a, b)])
        separate_t = (PAPER_TABLE1.estimate(a).time_s
                      + PAPER_TABLE1.estimate(b).time_s)
        assert combined.time_s == pytest.approx(separate_t, rel=1e-9)

    def test_estimate_from_mapping(self):
        estimate = PAPER_TABLE1.estimate_from_mapping({"mem_load": 1000})
        assert estimate.time_s == pytest.approx(700e-9 * 1000)
        assert estimate.energy_j == pytest.approx(229e-9 * 1000)

    def test_breakdown_sums_to_total(self):
        estimate = PAPER_TABLE1.estimate([10] * NUM_CATEGORIES)
        assert sum(estimate.time_breakdown_s) == pytest.approx(estimate.time_s)
        assert len(estimate.breakdown_by_category()) == NUM_CATEGORIES

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            PAPER_TABLE1.estimate([1, 2, 3])
        with pytest.raises(ValueError):
            SpecificCosts(time_ns=(1.0,) * 3, energy_nj=(1.0,) * 9)


class TestMetrics:
    def test_eq3_signed(self):
        assert relative_error(103.0, 100.0) == pytest.approx(0.03)
        assert relative_error(97.0, 100.0) == pytest.approx(-0.03)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    @given(st.lists(st.floats(min_value=-0.5, max_value=0.5,
                              allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_summary_laws(self, errors):
        summary = summarize_errors(errors)
        assert 0 <= summary.mean_abs <= summary.max_abs
        assert summary.count == len(errors)
        assert summary.mean_abs_percent == pytest.approx(
            100 * summary.mean_abs)

    def test_table3_aggregation(self):
        records = [
            KernelError("k1", 1.02, 1.0, 2.06, 2.0),
            KernelError("k2", 0.95, 1.0, 1.9, 2.0),
        ]
        result = table3(records)
        assert result["time"].mean_abs == pytest.approx((0.02 + 0.05) / 2)
        assert result["energy"].max_abs == pytest.approx(0.05)


class TestCalibration:
    def test_kernel_pair_structure(self):
        pair = make_kernel_pair("int_arith", iterations=100, unroll=8)
        assert pair.n_test == 800
        # test kernel contains the unrolled instructions, reference does not
        assert pair.test_source.count("add %g") >= 8
        assert "add %g" not in pair.reference_source
        # both assemble
        assert assemble(pair.reference_source).word_count() > 0
        assert assemble(pair.test_source).word_count() > 0

    def test_all_categories_have_pairs(self):
        for cid in CATEGORY_IDS:
            pair = make_kernel_pair(cid, iterations=10, unroll=4)
            assemble(pair.test_source)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            make_kernel_pair("int_arith", iterations=0)
        with pytest.raises(ValueError):
            make_kernel_pair("fpu_div", fpu=False)
        with pytest.raises(ValueError):
            make_kernel_pair("nonsense")

    def test_calibration_recovers_testbed_costs(self):
        board = Board(leon3_fpu(), PerfectInstruments())
        calibrator = Calibrator(board, iterations=400, unroll=16)
        record = calibrator.calibrate_category("mem_load")
        # table: ld = 35 cycles at 50 MHz = 700 ns
        assert record.time_ns == pytest.approx(700, rel=0.05)
        assert record.energy_nj == pytest.approx(229, rel=0.1)

    def test_nofpu_board_skips_fpu_categories(self):
        board = Board(leon3_nofpu(), PerfectInstruments())
        calibrator = Calibrator(board, iterations=50, unroll=4)
        result = calibrator.calibrate(["int_arith", "fpu_div"])
        assert "int_arith" in result.records
        assert "fpu_div" not in result.records
        assert any("fpu_div" in w for w in result.warnings)

    def test_to_model_roundtrip(self):
        board = Board(leon3_fpu(), PerfectInstruments())
        result = Calibrator(board, iterations=50, unroll=4).calibrate(
            ["int_arith", "nop"])
        model = result.to_model()
        estimate = model.estimate_from_mapping({"int_arith": 1000})
        assert estimate.time_s > 0

    def test_blend_with_mix(self):
        base = PAPER_TABLE1.costs
        blended = blend_with_mix(
            base, "int_arith",
            member_costs={"add": (40.0, 13.0), "udiv": (700.0, 120.0)},
            mix={"add": 0.9, "udiv": 0.1})
        idx = CATEGORY_IDS.index("int_arith")
        assert blended.time_ns[idx] == pytest.approx(0.9 * 40 + 0.1 * 700)
        # other categories untouched
        assert blended.time_ns[idx + 1] == base.time_ns[idx + 1]
        with pytest.raises(ValueError):
            blend_with_mix(base, "int_arith", {"add": (1, 1)}, {"add": 0.0})


class TestEstimatorAndDse:
    _KERNEL = """
    .text
_start:
    set 2000, %o1
loop:
    ld [%sp], %g2
    add %g2, 1, %g3
    subcc %o1, 1, %o1
    bne loop
    nop
    mov 0, %g1
    ta 5
"""

    def test_estimate_matches_measurement_closely(self):
        board = Board(leon3_fpu(), PerfectInstruments())
        model = Calibrator(board, iterations=400, unroll=16).calibrate(
        ).to_model()
        estimator = NFPEstimator(model, board.config.core)
        report = estimator.estimate_program(assemble(self._KERNEL))
        measurement = board.measure(assemble(self._KERNEL))
        assert report.time_s == pytest.approx(measurement.time_s, rel=0.05)
        assert report.energy_j == pytest.approx(measurement.energy_j,
                                                rel=0.05)
        assert report.counts["mem_load"] >= 2000

    def test_estimate_counts_passthrough(self):
        estimator = NFPEstimator(PAPER_TABLE1)
        estimate = estimator.estimate_counts({"jump": 100})
        assert estimate.time_s == pytest.approx(238e-9 * 100)
