"""Metered superblocks == per-instruction metering, bit for bit.

The cost-fused block compiler (:func:`repro.vm.blocks.compile_metered_block`)
must accumulate exactly the cycles and (float) energy the per-instruction
observer accumulates, in the same order -- across the whole hardware cost
model: base cycle/energy tables, untaken-branch discounts, divide
bit-length shortening, window-trap spill/fill charges and the
per-instruction energy-jitter hash.  These tests compare Board
measurements between ``metered_blocks_enabled`` on and off (the off mode
is the seed's observer loop, the accuracy reference).
"""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.hw.board import Board, CostMeter, Measurement
from repro.hw.config import HwConfig, leon3_fpu, leon3_nofpu
from repro.hw.energy import jitter_factor
from repro.hw.powermeter import PerfectInstruments
from repro.vm import CoreConfig, MemoryFault, Simulator, WatchdogTimeout
from repro.vm.blocks import jitter_table, scaled_jitter_table

from test_vm_blocks import CALL_KERNEL, FP_KERNEL, MIXED_KERNEL

#: SimulationResult fields that must match bit-for-bit across modes.
SIM_FIELDS = (
    "exit_code", "retired", "category_counts", "mnemonic_counts",
    "console", "max_window_depth", "spill_count", "fill_count",
)


def measure_both(source_or_program, factory=leon3_fpu,
                 max_instructions=50_000_000,
                 **core_overrides) -> tuple[Measurement, Measurement]:
    """Measure in metered-block mode and per-instruction mode."""
    program = (assemble(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    results = []
    for metered_blocks in (True, False):
        board = Board(factory(metered_blocks_enabled=metered_blocks,
                              **core_overrides), PerfectInstruments())
        results.append(board.measure(program,
                                     max_instructions=max_instructions))
    return results[0], results[1]


def assert_meter_identical(blocked: Measurement,
                           stepped: Measurement) -> None:
    assert blocked.cycles == stepped.cycles
    assert blocked.true_time_s == stepped.true_time_s
    # exact float equality: the energy sums must be the same additions
    # in the same order, not merely close
    assert blocked.true_energy_j == stepped.true_energy_j
    assert blocked.time_s == stepped.time_s
    assert blocked.energy_j == stepped.energy_j
    for field in SIM_FIELDS:
        assert getattr(blocked.sim, field) == getattr(stepped.sim, field), \
            field


class TestModeEquivalence:
    @pytest.mark.parametrize("kernel",
                             [MIXED_KERNEL, FP_KERNEL, CALL_KERNEL],
                             ids=["mixed", "fp", "call"])
    def test_hand_kernels(self, kernel):
        blocked, stepped = measure_both(kernel)
        assert_meter_identical(blocked, stepped)
        assert blocked.sim.exit_code == 0
        assert blocked.sim.extras["metered_blocks"] > 0
        assert stepped.sim.extras["metered_blocks"] == 0.0

    @pytest.mark.parametrize("block_size", [1, 2, 3, 8])
    def test_small_block_sizes(self, block_size):
        blocked, stepped = measure_both(MIXED_KERNEL, block_size=block_size)
        assert_meter_identical(blocked, stepped)

    def test_branch_discount_both_directions(self):
        src = """
    .text
_start:
    set 2000, %o1
loop:
    cmp %o1, 1000
    bgu over           ! taken for the first 1000 trips, then untaken
    nop
over:
    subcc %o1, 1, %o1
    bne loop
    nop
    mov 0, %g1
    ta 5
"""
        blocked, stepped = measure_both(src)
        assert_meter_identical(blocked, stepped)

    def test_divide_shortening_operand_dependent(self):
        src = """
    .text
_start:
    wr %g0, 0, %y
    set 0xF0000000, %o1
    mov 3, %o2
    set 500, %o3
dloop:
    udiv %o1, %o2, %o0
    udiv %o2, %o2, %g2    ! tiny quotient: large shortening
    subcc %o3, 1, %o3
    bne dloop
    nop
    mov 0, %o0
    mov 0, %g1
    ta 5
"""
        blocked, stepped = measure_both(src)
        assert_meter_identical(blocked, stepped)

    def test_window_trap_charges(self):
        deep = """
    .text
_start:
    set 300, %o2
outer:
    mov 10, %o0
    call rec
    nop
    subcc %o2, 1, %o2
    bne outer
    nop
    mov 0, %g1
    ta 5
rec:
    save %sp, -96, %sp
    cmp %i0, 0
    ble done
    nop
    sub %i0, 1, %o0
    call rec
    nop
done:
    ret
    restore
"""
        blocked, stepped = measure_both(deep, nwindows=3)
        assert_meter_identical(blocked, stepped)
        assert blocked.sim.spill_count > 0

    def test_hevclite_decoder(self):
        from repro.experiments.scale import get_scale
        from repro.experiments.workloads import hevc_program
        scale = get_scale("smoke")
        blocked, stepped = measure_both(
            hevc_program(0, "hard", scale),
            max_instructions=scale.max_instructions)
        assert_meter_identical(blocked, stepped)
        assert blocked.sim.exit_code == 0

    def test_fse_softfloat(self):
        from repro.experiments.scale import get_scale
        from repro.experiments.workloads import fse_program
        scale = get_scale("smoke")
        blocked, stepped = measure_both(
            fse_program(0, "soft", scale), factory=leon3_nofpu,
            max_instructions=scale.max_instructions)
        assert_meter_identical(blocked, stepped)
        assert blocked.sim.exit_code == 0

    def test_delay_slot_block_entry(self):
        """A taken branch whose delay slot is itself a block entry.

        The unsafe (faultable) delay slot keeps the branch on its
        per-instruction closure, so the delay instruction is dispatched
        with ``npc`` pointing at the branch target -- the metered block's
        delayed-control entry path.
        """
        src = """
    .text
_start:
    set buf, %o2
    set 200, %o1
loop:
    subcc %o1, 1, %o1
    bne loop
    ld [%o2], %g2
    mov 0, %g1
    ta 5

    .data
    .align 4
buf:
    .word 1234
"""
        blocked, stepped = measure_both(src)
        assert_meter_identical(blocked, stepped)


class TestJitterTables:
    def test_table_matches_reference_formula(self):
        table = jitter_table(0.05)
        for i in (0, 1, 0x7FFF, 0x8000, 0xFFFF, 12345):
            assert table[i] == 1.0 + 0.05 * (i / 32768.0 - 1.0)

    def test_table_lookup_matches_jitter_factor(self):
        amp = 0.05
        table = jitter_table(amp)
        for pc, value in ((0x40000000, 0), (0x40000abc, 0xFFFFFFFF),
                          (0x40001234, 123456), (0x40fffffc, 2654435761)):
            h = ((value * 2654435761) ^ (pc * 0x9E3779B1)) & 0xFFFFFFFF
            h ^= h >> 15
            assert table[h & 0xFFFF] == jitter_factor(pc, value, amp)

    def test_scaled_table_is_premultiplied(self):
        base = jitter_table(0.05)
        scaled = scaled_jitter_table(0.05, 13.4)
        for i in (0, 777, 65535):
            assert scaled[i] == 13.4 * base[i]

    def test_zero_amplitude(self):
        assert set(jitter_table(0.0)) == {1.0}


class TestSelfModifyingCode:
    """The SMC kernels of test_vm_blocks, re-run under metering."""

    def _kernels(self):
        import test_vm_blocks as tvb
        holder = tvb.TestSelfModifyingCode()
        patch = holder._patch_word()
        from repro.isa import encoder
        nop_word = encoder.encode_nop()
        cross = f"""
    .text
_start:
    set new_insn, %o2
    ld [%o2], %g3
    call doit
    nop
    mov %o0, %l0
    set patch, %o1
    st %g3, [%o1]
    call doit
    nop
    smul %l0, 100, %l0
    add %l0, %o0, %o0
    mov 0, %g1
    ta 5
doit:
patch:
    mov 7, %o0
    retl
    nop

    .data
    .align 4
new_insn:
    .word {patch}
"""
        loop_patch = f"""
    .text
_start:
    set 50, %o1
    set branch_site, %o2
    set new_insn, %o3
    ld [%o3], %g4
loop:
    subcc %o1, 1, %o1
    cmp %o1, 5
    bne keep
    nop
    st %g4, [%o2]
keep:
    subcc %o1, 0, %g0
branch_site:
    bne loop
    nop
    mov %o1, %o0
    mov 0, %g1
    ta 5

    .data
    .align 4
new_insn:
    .word {nop_word}
"""
        return [("cross", cross, 742), ("loop", loop_patch, 5)]

    def test_smc_under_metering(self):
        for name, src, exit_code in self._kernels():
            blocked, stepped = measure_both(src)
            assert blocked.sim.exit_code == exit_code, name
            assert_meter_identical(blocked, stepped)


class TestEdges:
    INFINITE = """
    .text
_start:
    add %g1, 1, %g1
    ba _start
    nop
"""

    @pytest.mark.parametrize("budget", [1, 2, 3, 100, 1000, 1001])
    def test_watchdog_exactness(self, budget):
        config = HwConfig()
        meters = []
        for metered_blocks in (True, False):
            sim = Simulator(assemble(self.INFINITE),
                            config.core.with_metered_blocks(metered_blocks))
            meter = CostMeter(config)
            with pytest.raises(WatchdogTimeout):
                sim.run_metered(meter, max_instructions=budget)
            assert sim.state.retired == budget, metered_blocks
            meters.append(meter)
        assert meters[0].cycles == meters[1].cycles
        assert meters[0].dyn_energy_nj == meters[1].dyn_energy_nj

    def test_fault_mid_block_meter_state(self):
        src = """
    .text
_start:
    set 0x407fff00, %o2
loop:
    ld [%o2], %g2
    add %o2, 4, %o2
    subcc %g0, 0, %g0
    be loop
    nop
    ta 5
"""
        config = HwConfig()
        outcomes = []
        for metered_blocks in (True, False):
            sim = Simulator(assemble(src),
                            config.core.with_metered_blocks(metered_blocks))
            meter = CostMeter(config)
            with pytest.raises(MemoryFault):
                sim.run_metered(meter)
            st = sim.state
            outcomes.append((meter.cycles, meter.dyn_energy_nj,
                             st.retired, st.pc, st.npc, st.taken,
                             list(st.cat_counts), st.regs[10]))
        assert outcomes[0] == outcomes[1]

    def test_opaque_observer_uses_stepping_loop(self):
        class Recorder:
            def __init__(self):
                self.events = []

            def on_retire(self, pc, mnemonic, st):
                self.events.append((pc, mnemonic))

        observer = Recorder()
        sim = Simulator(assemble("""
    .text
_start:
    mov 3, %o0
    mov 0, %g1
    ta 5
"""))
        result = sim.run_metered(observer)
        assert len(observer.events) == result.retired
        assert result.extras["metered_blocks"] == 0.0

    def test_metered_blocks_knob(self):
        config = CoreConfig()
        assert config.metered_blocks_enabled
        assert not config.with_metered_blocks(False).metered_blocks_enabled
        assert config.with_metered_blocks(False) \
            .with_metered_blocks(True).metered_blocks_enabled

    def test_cost_table_cached_per_config(self):
        config = HwConfig()
        assert config.cost_table is config.cost_table
        assert config.cost_table["udiv"][2] != 0  # intdiv flag set
        other = leon3_nofpu()
        assert other.cost_table is not config.cost_table
