"""Frame pipelines: chains, goldens, structural variants, and the oracle.

The acceptance contract of the composed-profile path (see
:mod:`repro.workloads.pipeline`): for every registered pipeline and
every configuration across the fpu / nwindows / wait-state / clock
axes, pricing the composed profiles is **bit-identical** in cycles,
retired instructions and time to metering every stage invocation of
the stream (energy within 1e-12 relative) -- and a literal per-frame
simulation of a small stream sums to exactly the same numbers.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.cli import main
from repro.dse import DesignSpace, sweep, sweep_profiled
from repro.dse.engine import StreamSummary, stream_profiles, sweep_streamed
from repro.experiments.pipeline import registered_pipelines, structural_variants
from repro.experiments.scale import SMOKE
from repro.hw.board import Board
from repro.hw.config import HwConfig
from repro.nfp.linear import (
    ExecutionProfile,
    LinearNfpEngine,
    compose_profiles,
    evaluate_batch,
)
from repro.runner import ExperimentRunner
from repro.runner.tasks import run_task
from repro.vm.config import CoreConfig
from repro.workloads import get_spec, select
from repro.workloads.pipeline import (
    EDGES,
    PIPELINES,
    XFEL,
    FrameClass,
    PipelineSpec,
    PipelineWorkloadSpec,
    _invocation_program,
    pipeline_invocations,
    pipeline_pair,
    pipeline_variant,
)

SIZE = SMOKE.image_size
BUDGET = SMOKE.max_instructions


class TestRegistration:
    def test_pipelines_are_first_class_workloads(self):
        names = [spec.name for spec in select("pipe", SMOKE)]
        assert names == ["pipe:xfel", "pipe:edges"]
        spec = get_spec("pipe:xfel")
        assert isinstance(spec, PipelineWorkloadSpec)
        assert spec.family == "pipe"
        assert "pipeline" in spec.tags and "stream" in spec.tags
        assert spec.chain() == \
            "bgsub -> threshold -> gauss5x5 -> sobel3x3 -> histstats"
        assert registered_pipelines() == PIPELINES

    def test_pipeline_workload_has_no_single_program(self):
        with pytest.raises(ValueError, match="no single program"):
            get_spec("pipe:xfel").program("hard", SMOKE)

    def test_golden_concatenates_invocation_goldens(self):
        golden = get_spec("pipe:edges").golden(SMOKE)
        assert golden == "".join(
            inv.golden for inv in pipeline_invocations(EDGES, SIZE))

    def test_spec_validation(self):
        cls = (FrameClass("c", base=1, count=1),)
        with pytest.raises(ValueError, match="unknown stage"):
            PipelineSpec("pipe:bad", ("bgsub", "warp"), cls)
        with pytest.raises(ValueError, match="needs stages"):
            PipelineSpec("pipe:bad", (), cls)
        with pytest.raises(ValueError, match="needs stages"):
            PipelineSpec("pipe:bad", ("bgsub",), ())


class TestChains:
    def test_early_exit_truncates_the_dark_class(self):
        """Dark frames fail the threshold: their chain stops *after* it
        (the rejecting stage still cost cycles), so the class prices
        2 of the 5 stages."""
        per_class = {}
        for inv in pipeline_invocations(XFEL, SIZE):
            per_class.setdefault(inv.frame_class, []).append(inv.stage)
        assert per_class["signal"] == list(XFEL.stages)
        assert per_class["burst"] == list(XFEL.stages)
        assert per_class["dark"] == ["bgsub", "threshold"]

    def test_invocation_weights_cover_the_stream(self):
        invocations = pipeline_invocations(EDGES, SIZE)
        assert len(invocations) == 6   # 2 classes x 3 stages, no exit
        assert {inv.frames for inv in invocations} == {600, 400}
        assert EDGES.frames == 1000 and XFEL.frames == 1000

    def test_terminal_stage_cannot_feed_a_successor(self):
        bad = PipelineSpec("pipe:bad", ("histstats", "sobel3x3"),
                           (FrameClass("c", base=1, count=1),))
        with pytest.raises(ValueError, match="terminal stage"):
            pipeline_invocations(bad, SIZE)


class TestGoldenParity:
    @pytest.mark.parametrize("spec", PIPELINES,
                             ids=[s.name for s in PIPELINES])
    def test_every_invocation_matches_golden_in_both_abis(self, spec):
        """Each stage invocation program prints the host reference's
        digest, bit-exact, under both float ABIs."""
        from repro.vm import Simulator
        for inv in pipeline_invocations(spec, SIZE):
            for abi, fpu in (("hard", True), ("soft", False)):
                program = _invocation_program(inv.stage, inv.image,
                                              SIZE, abi)
                result = Simulator(program, CoreConfig(has_fpu=fpu)).run(
                    max_instructions=BUDGET)
                assert result.exit_code == 0, (spec.name, inv.stage, abi)
                assert result.console == inv.golden, \
                    (spec.name, inv.stage, inv.frame_class, abi)


class TestVariants:
    def test_variant_names_encode_their_deltas(self):
        assert pipeline_variant(XFEL, drop=("gauss5x5",)).name == \
            "pipe:xfel~no-gauss5x5"
        v = pipeline_variant(XFEL, drop=("bgsub",),
                             repeats={"sobel3x3": 3})
        assert v.name == "pipe:xfel~no-bgsub~sobel3x3x3"
        assert v.stages == ("threshold", "gauss5x5", "sobel3x3",
                            "sobel3x3", "sobel3x3", "histstats")

    def test_variant_validation(self):
        with pytest.raises(ValueError, match="has no stage"):
            pipeline_variant(EDGES, drop=("bgsub",))
        with pytest.raises(ValueError, match=">= 1"):
            pipeline_variant(EDGES, repeats={"sobel3x3": 0})
        with pytest.raises(ValueError, match="drops every stage"):
            pipeline_variant(EDGES, drop=EDGES.stages)

    def test_structural_neighbourhood(self):
        names = [v.name for v in structural_variants(EDGES)]
        assert names == [
            "pipe:edges~no-gauss5x5",
            "pipe:edges~no-sobel3x3",
            "pipe:edges~no-histstats",
            "pipe:edges~gauss5x5x2",
            "pipe:edges~sobel3x3x2",
        ]
        # terminal stages are never repeated
        assert not any("histstatsx" in name for name in names)

    def test_variants_share_invocation_programs(self):
        """A variant's unchanged prefix reuses the memoised builds."""
        base = pipeline_pair(EDGES, SMOKE)
        variant = pipeline_pair(pipeline_variant(
            EDGES, drop=("histstats",)), SMOKE)
        assert variant.float_invocations[0][0] is \
            base.float_invocations[0][0]


class TestComposedOracle:
    """The acceptance oracle: composed == metered across the axes."""

    SPACE = DesignSpace.from_spec(
        "fpu,nwindows=4:8,wait_states=0:2,clock_mhz=50:80")

    @pytest.fixture(scope="class")
    def grids(self, tmp_path_factory):
        runner = ExperimentRunner(
            cache_dir=tmp_path_factory.mktemp("pipe-cache"))
        pairs = [pipeline_pair(spec, SMOKE) for spec in PIPELINES]
        metered = sweep(self.SPACE, pairs, budget=BUDGET, runner=runner)
        profiled = sweep_profiled(self.SPACE, pairs, budget=BUDGET,
                                  runner=runner)
        streamed = sweep_streamed(self.SPACE, pairs, budget=BUDGET,
                                  runner=runner)
        return metered, profiled, streamed

    def test_composed_sweep_is_bit_identical_to_metered(self, grids):
        metered, profiled, _ = grids
        assert not metered.failures and not profiled.failures
        # 16 configs x 2 pipelines (one build each: float iff fpu)
        assert len(metered.points) == 32
        assert len(metered.points) == len(profiled.points)
        for a, b in zip(metered.points, profiled.points):
            assert (a.config, a.workload, a.build) == \
                (b.config, b.workload, b.build)
            assert b.cycles == a.cycles        # bit-identical integers
            assert b.retired == a.retired
            assert b.time_s == a.time_s        # cycles * cycle_seconds
            assert b.energy_j == pytest.approx(a.energy_j, rel=1e-12)

    def test_streamed_summary_matches_materialized_grid(self, grids):
        _, profiled, streamed = grids
        assert streamed == StreamSummary.from_grid(profiled)


class TestLiteralStreamOracle:
    """Composition vs literally simulating every frame of a stream."""

    TINY = PipelineSpec(
        name="pipe:tiny", stages=XFEL.stages,
        classes=(FrameClass("signal", base=2, count=3),
                 FrameClass("dark", base=8, count=2, shift=2)))

    def test_composed_equals_frame_by_frame_simulation(self):
        from repro.dse.evaluate import profile_task
        hw = HwConfig(name="leon3", core=CoreConfig(has_fpu=True))
        board = Board(hw)
        cycles = retired = 0
        dyn_nj = []
        parts = []
        for inv in pipeline_invocations(self.TINY, SIZE):
            program = _invocation_program(inv.stage, inv.image, SIZE,
                                          "hard")
            # the literal stream: one full metered run per frame
            for _ in range(inv.frames):
                raw = board.measure_raw(program, max_instructions=BUDGET)
                assert raw.sim.console == inv.golden
                cycles += raw.cycles
                retired += raw.sim.retired
                dyn_nj.append(raw.dyn_energy_nj)
            payload = run_task(profile_task(program, BUDGET, hw.core))
            parts.append((ExecutionProfile.from_payload(payload["profile"]),
                          inv.frames))
        nfp = LinearNfpEngine(hw).evaluate(compose_profiles(parts))
        assert nfp.cycles == cycles
        assert nfp.retired == retired
        assert nfp.true_time_s == cycles * hw.cycle_seconds
        energy = math.fsum(dyn_nj) * 1e-9 + \
            hw.static_power_w * nfp.true_time_s
        assert nfp.true_energy_j == pytest.approx(energy, rel=1e-12)


class TestCli:
    def test_pipeline_list(self, capsys):
        assert main(["pipeline", "list"]) == 0
        out = capsys.readouterr().out
        assert "pipe:xfel" in out and "pipe:edges" in out
        assert "bgsub -> threshold -> gauss5x5" in out
        assert "signal x650" in out and "1000" in out

    def test_pipeline_sweep_with_structural_variants(self, capsys):
        assert main(["pipeline", "sweep", "--scale", "smoke",
                     "--pipeline", "pipe:edges", "--axes", "clock_mhz=80",
                     "--variants", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        workloads = {p["workload"] for p in report["points"]}
        assert workloads == {
            "pipe:edges", "pipe:edges~no-gauss5x5",
            "pipe:edges~no-sobel3x3", "pipe:edges~no-histstats",
            "pipe:edges~gauss5x5x2", "pipe:edges~sobel3x3x2"}

    def test_pipeline_sweep_rejects_unknown_pipeline(self, capsys):
        assert main(["pipeline", "sweep", "--pipeline", "pipe:nope"]) == 2
        assert "unknown pipeline" in capsys.readouterr().err

    def test_profile_warm(self, capsys):
        assert main(["profile", "warm", "--workloads", "pipe:edges",
                     "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "warmed 2 profiles (1 workloads x 2 builds" in out

    def test_dse_prices_pipelines_through_the_registry(self, capsys):
        assert main(["dse", "--scale", "smoke", "--axes", "clock_mhz=80",
                     "--workloads", "pipe:xfel", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert {p["workload"] for p in report["points"]} == {"pipe:xfel"}


class TestServer:
    """Pipeline workloads resolve through ``/v1/price`` and ``/v1/sweep``
    with zero server-side special-casing."""

    def test_price_round_trip_matches_composed_evaluation(self):
        from repro.server import EvalServer, ServerSettings
        from repro.server.client import fetch_json
        from repro.server.schemas import price_request

        body = {"workload": "pipe:xfel",
                "axes": {"clock_mhz": 80.0, "fpu": True}}

        async def run():
            server = EvalServer(scale=SMOKE, settings=ServerSettings())
            port = await server.start("127.0.0.1", 0)
            try:
                status, payload = await fetch_json(
                    "127.0.0.1", port, "/v1/price", body)
                assert status == 200
                config, _, _ = price_request(dict(body), server.base)
                vectors = stream_profiles(
                    [pipeline_pair(XFEL, SMOKE)], [True], budget=BUDGET,
                    runner=server.runner, base=server.base)[
                        ("pipe:xfel", "float")]
                nfp = evaluate_batch([config.hw], vectors)[0]
                assert payload["cycles"] == nfp.cycles
                assert payload["retired"] == nfp.retired
                assert payload["time_s"] == nfp.true_time_s
                assert payload["energy_j"] == nfp.true_energy_j

                status, sweep_payload = await fetch_json(
                    "127.0.0.1", port, "/v1/sweep",
                    {"axes": "clock_mhz=50:80", "workloads": "pipe:*",
                     "format": "json"})
                assert status == 200
                assert {p["workload"]
                        for p in sweep_payload["points"]} == \
                    {"pipe:xfel", "pipe:edges"}
            finally:
                await server.aclose()

        asyncio.run(run())
