"""Hardware testbed model: cycle/energy accounting, instruments, area."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.hw import (
    Board,
    HwConfig,
    InstrumentModel,
    InstrumentSpec,
    PerfectInstruments,
    default_cycle_table,
    default_energy_table,
    fpu_area_increase,
    jitter_factor,
    leon3_fpu,
    leon3_nofpu,
    synthesize,
)
from repro.vm.config import CoreConfig

_SMALL = """
    .text
_start:
    set 500, %o1
loop:
    add %o0, 1, %o0
    subcc %o1, 1, %o1
    bne loop
    nop
    mov 0, %g1
    ta 5
"""


def _board(**kwargs) -> Board:
    return Board(leon3_fpu(), PerfectInstruments(), **kwargs)


class TestCostTables:
    def test_every_mnemonic_priced(self):
        cycles = default_cycle_table()
        energy = default_energy_table()
        from repro.isa.opcodes import INSTR_SPECS
        assert set(cycles) == set(INSTR_SPECS)
        assert set(energy) == set(INSTR_SPECS)
        assert all(c > 0 for c in cycles.values())
        assert all(e > 0 for e in energy.values())

    def test_memory_ops_cost_more_than_alu(self):
        cycles = default_cycle_table()
        assert cycles["ld"] > 10 * cycles["add"]
        assert cycles["st"] > 5 * cycles["add"]
        assert cycles["fdivd"] > cycles["faddd"]

    def test_jitter_factor_bounded_and_deterministic(self):
        for pc in (0x40000000, 0x40000abc):
            for value in (0, 1, 0xFFFFFFFF, 123456):
                factor = jitter_factor(pc, value, 0.05)
                assert 0.95 <= factor <= 1.05
                assert factor == jitter_factor(pc, value, 0.05)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HwConfig(clock_hz=0)
        with pytest.raises(ValueError):
            HwConfig(jitter_amplitude=0.9)


class TestBoardMeasurement:
    def test_deterministic_with_perfect_instruments(self):
        prog = assemble(_SMALL)
        m1 = _board().measure(prog)
        m2 = _board().measure(assemble(_SMALL))
        assert m1.time_s == m2.time_s
        assert m1.energy_j == m2.energy_j
        assert m1.cycles == m2.cycles

    def test_time_is_cycles_over_clock(self):
        measurement = _board().measure(assemble(_SMALL))
        config = leon3_fpu()
        assert measurement.true_time_s == pytest.approx(
            measurement.cycles / config.clock_hz)

    def test_energy_includes_static_power(self):
        measurement = _board().measure(assemble(_SMALL))
        config = leon3_fpu()
        static = config.static_power_w * measurement.true_time_s
        assert measurement.true_energy_j > static
        assert measurement.mean_power_w > config.static_power_w

    def test_branch_taken_costs_more(self):
        taken = _board().measure(assemble("""
    .text
_start:
    cmp %g0, 0
    be target
    nop
target:
    mov 0, %g1
    ta 5
"""))
        untaken = _board().measure(assemble("""
    .text
_start:
    cmp %g0, 1
    be target
    nop
target:
    mov 0, %g1
    ta 5
"""))
        assert taken.cycles > untaken.cycles

    def test_divide_latency_is_operand_dependent(self):
        def divide(value):
            return _board().measure(assemble(f"""
    .text
_start:
    wr %g0, 0, %y
    set {value}, %o1
    mov 3, %o2
    udiv %o1, %o2, %o0
    mov 0, %g1
    ta 5
"""))
        small = divide(9)        # quotient 3 -> early exit
        large = divide(0xF0000000)  # quotient ~2^30
        assert large.cycles > small.cycles

    def test_window_trap_costs_charged(self):
        deep = """
    .text
_start:
    mov 10, %o0
    call rec
    nop
    mov 0, %g1
    ta 5
rec:
    save %sp, -96, %sp
    cmp %i0, 0
    ble done
    nop
    sub %i0, 1, %o0
    call rec
    nop
done:
    ret
    restore
"""
        config_few = HwConfig(core=CoreConfig(nwindows=3))
        config_many = HwConfig(core=CoreConfig(nwindows=16))
        cycles_few = Board(config_few, PerfectInstruments()).measure(
            assemble(deep)).cycles
        cycles_many = Board(config_many, PerfectInstruments()).measure(
            assemble(deep)).cycles
        assert cycles_few > cycles_many

    def test_fixed_kernel_runs_on_nofpu_board(self):
        board = Board(leon3_nofpu(), PerfectInstruments())
        measurement = board.measure(assemble(_SMALL))
        assert measurement.sim.exit_code == 500  # the loop counter in %o0


class TestInstruments:
    def test_gain_is_systematic(self):
        instruments = InstrumentModel(seed=7)
        t1 = instruments.read_time(1.0)
        # same instrument keeps its calibration; separate reads vary only
        # by the small additive noise
        t2 = instruments.read_time(1.0)
        assert abs(t1 - t2) < 0.01

    def test_seed_reproducibility(self):
        a = InstrumentModel(seed=42)
        b = InstrumentModel(seed=42)
        assert a.read_energy(0.5) == b.read_energy(0.5)
        assert a.read_time(0.25) == b.read_time(0.25)

    def test_timer_quantisation(self):
        spec = InstrumentSpec(timer_resolution_s=1e-3,
                              timer_gain_sigma=0.0, timer_noise_sigma=0.0)
        instruments = InstrumentModel(spec, seed=1)
        reading = instruments.read_time(0.0123456)
        assert reading == pytest.approx(0.012, abs=1e-9)

    def test_perfect_instruments_are_identity(self):
        perfect = PerfectInstruments()
        assert perfect.read_time(0.123) == 0.123
        assert perfect.read_energy(0.456) == 0.456


class TestAreaModel:
    def test_fpu_roughly_doubles_les(self):
        increase = fpu_area_increase(CoreConfig())
        assert 1.0 < increase < 1.2  # paper: +109 %

    def test_synthesize_components(self):
        report = synthesize(CoreConfig(has_fpu=True), name="test")
        assert "fpu" in report.by_component
        assert report.total_les > synthesize(
            CoreConfig(has_fpu=False)).total_les
        assert "total" in report.formatted()

    def test_windows_cost_area(self):
        small = synthesize(CoreConfig(nwindows=2, has_fpu=False)).total_les
        large = synthesize(CoreConfig(nwindows=32, has_fpu=False)).total_les
        assert large > small
