"""Fault tolerance: retries, timeouts, chaos, quarantine, checkpoints.

Every guarantee of :mod:`repro.runner.resilience` is exercised against
*injected* faults (the deterministic ``REPRO_CHAOS`` harness or
hand-planted cache damage) and proven to converge to the fault-free
result bit-for-bit -- the same property the CI chaos-smoke job gates on
whole reports.
"""

from __future__ import annotations

import json
import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    DesignSpace,
    SweepInterrupted,
    SweepReport,
    WorkloadPair,
    sweep,
    sweep_checkpointed,
)
from repro.dse import engine as dse_engine
from repro.fse.kernel import build_fse_kernel
from repro.fse.params import FseParams
from repro.hw.config import leon3_fpu
from repro.kir import compile_module
from repro.runner import (
    ChaosError,
    ChaosPolicy,
    CheckpointStore,
    ExperimentRunner,
    ResilientExecutor,
    ResultCache,
    RetryPolicy,
    SimTask,
    SweepCheckpoint,
    TaskFailedError,
    UsageError,
    ensure_payload,
    is_failure,
    task_key,
)
from repro.runner.cache import corrupt_file
from repro.runner.resilience import (
    CORRUPTION_STYLES,
    TaskFailure,
    _roll,
    cache_base_dir,
    cache_enabled_from_env,
    env_float,
    env_int,
)

BUDGET = 2_000_000

#: Fast backoff for tests -- semantics identical, waiting is not the point.
FAST = RetryPolicy(max_attempts=3, base_delay_s=0.001)


def _program(kernel_id: int = 0):
    params = FseParams(block=8, iterations=2)
    return compile_module(build_fse_kernel(kernel_id, params, size=8),
                          "hard")


def _task(kernel_id: int = 0) -> SimTask:
    return SimTask(mode="metered", program=_program(kernel_id),
                   budget=BUDGET, hw=leon3_fpu())


@pytest.fixture(scope="module")
def tasks():
    return [_task(i) for i in range(3)]


@pytest.fixture(scope="module")
def baseline(tasks):
    """Fault-free payloads, the bit-identity reference for every test."""
    return ExperimentRunner(workers=1).run_tasks(tasks)


@pytest.fixture(scope="module")
def tiny_pair():
    params = FseParams(block=8, iterations=2)
    module = build_fse_kernel(0, params, size=8)
    return WorkloadPair(
        name="fse:00",
        float_program=compile_module(module, "hard"),
        fixed_program=compile_module(module, "soft"))


def _canon(payloads):
    """Canonical payload bytes, minus the one wall-clock metadata field
    (host timing is the only thing a simulation is *allowed* to vary in)."""
    def scrub(obj):
        if isinstance(obj, dict):
            return {k: scrub(v) for k, v in obj.items()
                    if k != "wall_seconds"}
        return obj
    return [json.dumps(scrub(p), sort_keys=True) for p in payloads]


# -- chaos spec grammar ------------------------------------------------------

def test_chaos_parse_full_spec():
    chaos = ChaosPolicy.parse(
        "41:kill=0.25,raise=0.5,slow=0.1,corrupt=1,slow_s=0.2,depth=3")
    assert chaos == ChaosPolicy(seed=41, kill=0.25, raise_=0.5, slow=0.1,
                                corrupt=1.0, slow_s=0.2, depth=3)


def test_chaos_spec_round_trips():
    chaos = ChaosPolicy(seed=7, kill=0.5, raise_=0.125, depth=2)
    assert ChaosPolicy.parse(chaos.spec()) == chaos


@pytest.mark.parametrize("spec", [
    "no-colon",                 # missing seed separator
    "x:kill=0.5",               # non-integer seed
    "1:explode=0.5",            # unknown fault name
    "1:kill",                   # entry without a value
    "1:kill=high",              # non-numeric rate
    "1:kill=1.5",               # rate out of [0, 1]
    "1:raise=-0.1",             # rate out of [0, 1]
    "1:depth=0",                # depth below 1
    "1:slow_s=0",               # non-positive stall
])
def test_chaos_parse_rejects(spec):
    with pytest.raises(UsageError):
        ChaosPolicy.parse(spec)


def test_chaos_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    assert ChaosPolicy.from_env() is None
    monkeypatch.setenv("REPRO_CHAOS", "9:raise=0.5")
    assert ChaosPolicy.from_env() == ChaosPolicy(seed=9, raise_=0.5)
    monkeypatch.setenv("REPRO_CHAOS", "9:bogus=1")
    with pytest.raises(UsageError):
        ChaosPolicy.from_env()


def test_chaos_rolls_are_deterministic_and_depth_gated():
    assert _roll(1, "kill", "k", 0) == _roll(1, "kill", "k", 0)
    assert _roll(1, "kill", "k", 0) != _roll(1, "kill", "k", 1)
    assert _roll(1, "kill", "k", 0) != _roll(2, "kill", "k", 0)
    always = ChaosPolicy(seed=1, kill=1.0, raise_=1.0, depth=2)
    # fault-eligible below depth, never at or above it
    assert always._should("kill", "k", 1, always.kill)
    assert not always._should("kill", "k", 2, always.kill)
    assert not always._should("kill", "k", 7, always.kill)


def test_chaos_corruption_styles_are_valid_and_sticky():
    chaos = ChaosPolicy(seed=3, corrupt=1.0)
    style = chaos.corruption("somekey")
    assert style in CORRUPTION_STYLES
    assert chaos.corruption("somekey") == style  # pure function
    assert ChaosPolicy(seed=3).corruption("somekey") is None  # rate 0


# -- retry policy and env validation -----------------------------------------

def test_backoff_is_deterministic_capped_and_growing():
    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, jitter=0.5)
    delays = [policy.delay_s("k", n) for n in range(1, 10)]
    assert delays == [policy.delay_s("k", n) for n in range(1, 10)]
    assert delays[0] >= 0.1
    assert all(d <= 1.0 * 1.5 for d in delays)  # cap plus max jitter
    # the uncapped prefix grows strictly
    assert delays[1] > delays[0]


def test_retry_policy_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_RETRIES", "5")
    monkeypatch.setenv("REPRO_TIMEOUT_S", "2.5")
    policy = RetryPolicy.from_env()
    assert policy.max_attempts == 5
    assert policy.timeout_s == 2.5
    monkeypatch.setenv("REPRO_RETRIES", "many")
    with pytest.raises(UsageError):
        RetryPolicy.from_env()
    monkeypatch.setenv("REPRO_RETRIES", "0")
    with pytest.raises(UsageError):
        RetryPolicy.from_env()


def test_env_knob_validation(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_WORKERS", "lots")
    with pytest.raises(UsageError):
        env_int("REPRO_WORKERS", 4)
    monkeypatch.setenv("REPRO_BACKOFF_S", "-1")
    with pytest.raises(UsageError):
        env_float("REPRO_BACKOFF_S", 0.05)
    monkeypatch.setenv("REPRO_CACHE", "sometimes")
    with pytest.raises(UsageError):
        cache_enabled_from_env()
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert cache_enabled_from_env() is False
    afile = tmp_path / "not-a-dir"
    afile.write_text("x")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(afile))
    with pytest.raises(UsageError):
        cache_base_dir()


# -- cache poisoning ---------------------------------------------------------

@pytest.mark.parametrize("style", CORRUPTION_STYLES)
def test_poisoned_entry_quarantined_and_recomputed(tmp_path, style, caplog):
    cache = ResultCache(tmp_path)
    payload = {"sim": {"retired": 7}, "x": 1.25}
    cache.put("deadbeef", payload)
    corrupt_file(tmp_path / "deadbeef.json", style)
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        assert cache.get("deadbeef") is None  # never surfaced
    assert cache.quarantined == 1
    assert [p.name for p in (tmp_path / "corrupt").iterdir()] \
        == ["deadbeef.json"]
    assert any("event=quarantine" in r.message for r in caplog.records)
    # the recompute-and-rewrite cycle restores the entry bit-for-bit
    cache.put("deadbeef", payload)
    assert cache.get("deadbeef") == payload


def test_warm_read_equals_cold_compute_after_poisoning(tmp_path, tasks,
                                                       baseline):
    runner = ExperimentRunner(cache_dir=tmp_path, workers=1, retry=FAST)
    assert _canon(runner.run_tasks(tasks)) == _canon(baseline)
    for task in tasks:  # poison every entry on disk
        corrupt_file(tmp_path / f"{task_key(task)}.json", "truncate")
    warm = ExperimentRunner(cache_dir=tmp_path, workers=1, retry=FAST)
    assert _canon(warm.run_tasks(tasks)) == _canon(baseline)
    assert warm.cache.quarantined == len(tasks)


def test_chaos_corruption_on_put_converges(tmp_path, caplog):
    chaos = ChaosPolicy(seed=5, corrupt=1.0)
    cache = ResultCache(tmp_path, chaos=chaos)
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        cache.put("k1", {"v": 1})          # damaged on write (once)
        assert cache.get("k1") is None     # quarantined, miss
        cache.put("k1", {"v": 1})          # rewrite stays clean
        assert cache.get("k1") == {"v": 1}
    assert any("event=chaos-corrupt" in r.message for r in caplog.records)


# -- retries, attempt budgets, failure payloads ------------------------------

def test_serial_retry_converges_to_fault_free(tasks, baseline, caplog):
    chaos = ChaosPolicy(seed=11, raise_=1.0, depth=1)
    runner = ExperimentRunner(workers=1, retry=FAST, chaos=chaos)
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        payloads = runner.run_tasks(tasks)
    assert _canon(payloads) == _canon(baseline)
    assert sum("event=retry" in r.message for r in caplog.records) \
        == len(tasks)


def test_exhausted_budget_yields_failure_payload_not_crash(tmp_path,
                                                           caplog):
    # depth exceeds the attempt budget: the fault always wins
    chaos = ChaosPolicy(seed=13, raise_=1.0, depth=10)
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.001)
    runner = ExperimentRunner(cache_dir=tmp_path, workers=1, retry=policy,
                              chaos=chaos)
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        payload = runner.run_tasks([_task()])[0]
    assert is_failure(payload)
    failure = TaskFailure.from_payload(payload)
    assert failure.attempts == 2
    assert "ChaosError" in failure.error
    assert any("event=task-failed" in r.message for r in caplog.records)
    # failures are never cached, in any tier
    assert len(runner.cache) == 0
    assert runner._memory == {}
    # single-result conveniences surface the failure as an exception
    with pytest.raises(TaskFailedError):
        ensure_payload(payload)


# -- pool-level faults: crashes, stalls, degradation -------------------------

def test_worker_kill_is_isolated_and_retried(tasks, baseline, caplog):
    chaos = ChaosPolicy(seed=17, kill=1.0, depth=1)
    executor = ResilientExecutor(2, policy=FAST, chaos=chaos)
    keys = [task_key(t) for t in tasks]
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        payloads = executor.run(list(tasks), keys)
    assert _canon(payloads) == _canon(baseline)
    assert any("event=pool-broken" in r.message for r in caplog.records)
    assert not executor.degraded


def test_stalled_generation_hits_watchdog_and_recovers(tasks, baseline,
                                                       caplog):
    chaos = ChaosPolicy(seed=19, slow=1.0, slow_s=5.0, depth=1)
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.001, timeout_s=0.3)
    executor = ResilientExecutor(2, policy=policy, chaos=chaos)
    keys = [task_key(t) for t in tasks]
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        payloads = executor.run(list(tasks), keys)
    assert _canon(payloads) == _canon(baseline)
    assert any("event=timeout" in r.message for r in caplog.records)


def test_repeated_pool_failures_downgrade_to_serial(tasks, baseline,
                                                    caplog):
    # depth 2 with a one-incident budget: the first kill breaks the pool
    # and trips the downgrade; the serial path absorbs the remaining
    # chaos as in-process ChaosErrors and retries through them
    chaos = ChaosPolicy(seed=23, kill=1.0, depth=2)
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.001,
                         max_pool_failures=1)
    executor = ResilientExecutor(2, policy=policy, chaos=chaos)
    keys = [task_key(t) for t in tasks]
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        payloads = executor.run(list(tasks), keys)
    assert _canon(payloads) == _canon(baseline)
    assert executor.degraded
    assert any("event=downgrade" in r.message for r in caplog.records)


# -- chaos convergence over whole sweeps (property) --------------------------

@pytest.fixture(scope="module")
def fault_free_render(tiny_pair):
    grid = sweep(DesignSpace.single("fpu"), [tiny_pair], budget=BUDGET,
                 runner=ExperimentRunner(workers=1))
    return SweepReport(grid).render("json")


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_any_chaos_seed_converges_byte_identically(seed, tiny_pair,
                                                   fault_free_render):
    """The tentpole property: once retries settle, a chaos run of the
    sweep is byte-identical to the fault-free run, for *any* seed."""
    chaos = ChaosPolicy(seed=seed, kill=0.4, raise_=0.6, depth=2)
    runner = ExperimentRunner(
        workers=1, chaos=chaos,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.001))
    grid = sweep(DesignSpace.single("fpu"), [tiny_pair], budget=BUDGET,
                 runner=runner)
    assert SweepReport(grid).render("json") == fault_free_render


def test_sweep_tolerates_terminal_failures(tiny_pair, fault_free_render):
    """All-fail chaos: every cell becomes a marked failure, the report
    still renders in every format, and nothing raises."""
    chaos = ChaosPolicy(seed=29, raise_=1.0, depth=10)
    runner = ExperimentRunner(
        workers=1, chaos=chaos,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.001))
    grid = sweep(DesignSpace.single("fpu"), [tiny_pair], budget=BUDGET,
                 runner=runner)
    assert not grid.points
    assert len(grid.failures) == 2  # fpu on/off, one workload
    report = SweepReport(grid)
    text = report.render("text")
    assert "no complete configurations" in text
    assert "failed cells: 2" in text
    assert json.loads(report.render("json"))["pareto"]["knee"] is None
    assert [f["config"] for f in
            json.loads(report.render("json"))["failures"]] \
        == [f.config for f in grid.failures]
    assert report.render("csv").count(",failed") == 2


# -- checkpoint / resume -----------------------------------------------------

def test_checkpoint_store_round_trip_and_damage(tmp_path, caplog):
    store = CheckpointStore(tmp_path)
    assert store.load("nope") is None
    store.save("r1", {"spec": {"a": 1}, "cells": {}})
    assert store.load("r1") == {"spec": {"a": 1}, "cells": {}}
    store.path("r1").write_text("{broken")
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        assert store.load("r1") is None
    assert any("event=quarantine" in r.message for r in caplog.records)


def test_checkpoint_spec_mismatch_starts_fresh(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("r1", {"spec": {"axes": "old"}, "cells": {"c\tw": [1]}})
    checkpoint = SweepCheckpoint.open(store, "r1", {"axes": "new"})
    assert checkpoint.cells == {}


def test_interrupted_sweep_checkpoints_and_resumes_byte_identically(
        tmp_path, tiny_pair, fault_free_render, monkeypatch, caplog):
    store = CheckpointStore(tmp_path)
    spec = {"axes": "fpu", "workloads": "fse:00"}
    runner = ExperimentRunner(workers=1)
    space = DesignSpace.single("fpu")

    calls = {"n": 0}
    real = dse_engine._job_nfps

    def interrupt_after_one_chunk(jobs, **kwargs):
        if calls["n"] >= 1:
            raise KeyboardInterrupt
        calls["n"] += 1
        return real(jobs, **kwargs)

    monkeypatch.setattr(dse_engine, "_job_nfps", interrupt_after_one_chunk)
    checkpoint = SweepCheckpoint.open(store, "r1", spec)
    with caplog.at_level(logging.INFO, logger="repro.runner"), \
            pytest.raises(SweepInterrupted) as excinfo:
        sweep_checkpointed(space, [tiny_pair], budget=BUDGET,
                           runner=runner, checkpoint=checkpoint, chunk=1)
    assert excinfo.value.completed == 1
    assert excinfo.value.total == 2
    assert len(excinfo.value.grid.points) == 1  # the partial grid
    assert any("event=checkpoint" in r.message for r in caplog.records)
    assert any("event=interrupted" in r.message for r in caplog.records)
    manifest = store.load("r1")
    assert len(manifest["cells"]) == 1  # flushed, nothing half-recorded

    # resume: only the missing cell is computed; the final report is
    # byte-identical to an uninterrupted (and to a fault-free) run
    monkeypatch.setattr(dse_engine, "_job_nfps", real)
    with caplog.at_level(logging.INFO, logger="repro.runner"):
        resumed = SweepCheckpoint.open(store, "r1", spec)
        assert len(resumed.cells) == 1
        grid = sweep_checkpointed(space, [tiny_pair], budget=BUDGET,
                                  runner=runner, checkpoint=resumed,
                                  chunk=1)
    assert any("event=resume" in r.message for r in caplog.records)
    assert SweepReport(grid).render("json") == fault_free_render
    assert len(store.load("r1")["cells"]) == 2


def test_driver_resume_matches_uninterrupted_run(tmp_path, monkeypatch):
    from repro.experiments import dse as dse_driver
    from repro.experiments.setup import reset_benches
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKERS", "1")
    reset_benches()
    first = dse_driver.run("smoke", axes="fpu", workloads="fse:00")
    assert first.run_id
    assert (tmp_path / "runs" / f"{first.run_id}.json").exists()
    resumed = dse_driver.run("smoke", axes="fpu", workloads="fse:00",
                             resume=first.run_id)
    assert resumed.render("json") == first.render("json")
    with pytest.raises(UsageError):
        dse_driver.run("smoke", axes="fpu", workloads="fse:00",
                       resume="no-such-run")


# -- CLI surface -------------------------------------------------------------

def test_cli_dse_flags_parse():
    from repro.cli import build_parser
    args = build_parser().parse_args(
        ["dse", "--resume", "abc123", "--run-id", "named", "--verbose"])
    assert (args.resume, args.run_id, args.verbose) \
        == ("abc123", "named", True)


def test_cli_usage_error_exits_2(monkeypatch, capsys):
    from repro.cli import main
    monkeypatch.setenv("REPRO_WORKERS", "lots")
    assert main(["dse", "--scale", "smoke"]) == 2
    assert "error: REPRO_WORKERS" in capsys.readouterr().err
    monkeypatch.delenv("REPRO_WORKERS")
    monkeypatch.setenv("REPRO_CHAOS", "broken")
    assert main(["dse", "--scale", "smoke"]) == 2
    assert "error: chaos spec" in capsys.readouterr().err


def test_cli_unknown_resume_exits_2(monkeypatch, tmp_path, capsys):
    from repro.cli import main
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["dse", "--scale", "smoke", "--resume", "nope"]) == 2
    assert "no checkpoint" in capsys.readouterr().err


def test_cli_interrupt_writes_partial_report_and_exits_130(
        monkeypatch, tmp_path, capsys):
    from repro.cli import main
    from repro.dse import DseGrid
    from repro.experiments import dse as dse_driver
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    partial = dse_driver.DseResult(
        report=SweepReport(DseGrid(points=()), title="t [partial]"),
        space=DesignSpace.single("fpu"), scale_name="smoke",
        run_id="cafe42", partial=True)

    def interrupted(*args, **kwargs):
        raise dse_driver.DseInterrupted(partial, completed=3, total=8)

    monkeypatch.setattr(dse_driver, "run", interrupted)
    assert main(["dse", "--scale", "smoke"]) == 130
    err = capsys.readouterr().err
    assert "interrupted at 3/8 cells" in err
    assert "repro dse --resume cafe42" in err
    report_path = tmp_path / "runs" / "cafe42.partial.txt"
    assert "no complete configurations" in report_path.read_text()


def test_cli_verbose_prints_doctor_summary(monkeypatch, capsys):
    from repro.experiments.setup import effective_settings
    monkeypatch.setenv("REPRO_CHAOS", "9:raise=0.5")
    monkeypatch.setenv("REPRO_CACHE", "off")
    rows = dict(effective_settings())
    assert rows["workers"]
    assert rows["cache"].startswith("off")
    assert rows["chaos"].startswith("9:")
