"""Cross-module integration: the full paper pipeline on small inputs."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.hw import Board, PerfectInstruments, leon3_fpu, leon3_nofpu
from repro.isa.categories import CATEGORY_IDS
from repro.nfp import Calibrator, NFPEstimator
from repro.nfp.dse import WorkloadPair, explore_fpu
from repro.fse.kernel import build_fse_kernel
from repro.fse.params import FseParams
from repro.kir import compile_module


@pytest.fixture(scope="module")
def calibrated():
    board = Board(leon3_fpu(), PerfectInstruments())
    model = Calibrator(board, iterations=600, unroll=16).calibrate().to_model()
    return board, model


class TestFullPipeline:
    def test_paper_workflow_end_to_end(self, calibrated):
        """Calibrate -> simulate -> estimate -> compare to measurement."""
        board, model = calibrated
        params = FseParams(block=8, iterations=3)
        program = compile_module(build_fse_kernel(2, params), "hard")
        estimator = NFPEstimator(model, board.config.core)
        report = estimator.estimate_program(program, "fse2")
        measurement = board.measure(program)
        assert report.time_s == pytest.approx(measurement.true_time_s,
                                              rel=0.10)
        assert report.energy_j == pytest.approx(measurement.true_energy_j,
                                                rel=0.10)
        # the counts vector covers every category slot
        assert len(report.sim.counts_vector) == len(CATEGORY_IDS)

    def test_dse_pipeline(self, calibrated):
        board, model = calibrated
        params = FseParams(block=8, iterations=3)
        module_hard = build_fse_kernel(1, params)
        module_soft = build_fse_kernel(1, params)
        pair = WorkloadPair(
            name="fse:01",
            float_program=compile_module(module_hard, "hard"),
            fixed_program=compile_module(module_soft, "soft"),
        )
        est_fpu = NFPEstimator(model, leon3_fpu().core)
        est_nofpu = NFPEstimator(model, leon3_nofpu().core)
        report = explore_fpu(est_fpu, est_nofpu, [pair])
        row = report.row("fse:01")
        assert row.energy_change < -0.5   # FPU saves over half the energy
        assert row.float_time_s < row.fixed_time_s
        assert report.area_increase > 1.0
        with pytest.raises(KeyError):
            report.row("nope")

    def test_estimation_linear_in_repetition(self, calibrated):
        """Running a loop twice as long doubles the estimate (Eq. 1)."""
        board, model = calibrated
        estimator = NFPEstimator(model, board.config.core)

        def loop_kernel(n: int) -> str:
            return f"""
    .text
_start:
    set {n}, %o1
l:  subcc %o1, 1, %o1
    bne l
    nop
    mov 0, %g1
    ta 5
"""
        small = estimator.estimate_program(assemble(loop_kernel(1000)))
        large = estimator.estimate_program(assemble(loop_kernel(2000)))
        ratio = large.time_s / small.time_s
        assert ratio == pytest.approx(2.0, rel=0.02)

    def test_model_transfers_across_kernels(self, calibrated):
        """A model calibrated once estimates unrelated kernels well."""
        board, model = calibrated
        estimator = NFPEstimator(model, board.config.core)
        kernel = """
    .text
_start:
    set buf, %o2
    set 300, %o1
l:
    ld [%o2], %g2
    st %g2, [%o2 + 4]
    subcc %o1, 1, %o1
    bne l
    nop
    mov 0, %g1
    ta 5
    .data
    .align 8
buf: .word 123, 0
"""
        report = estimator.estimate_program(assemble(kernel))
        measurement = board.measure(assemble(kernel))
        assert report.time_s == pytest.approx(measurement.true_time_s,
                                              rel=0.05)
