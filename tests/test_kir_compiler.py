"""Kernel-IR compiler: semantics of both backends against Python."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.kir import (
    F64,
    I32,
    KirError,
    KirTypeError,
    Module,
    U32,
    compile_module,
    generate_assembly,
)
from tests.helpers import run_kir

i32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
M32 = 0xFFFFFFFF


def _main_returning(build_body) -> Module:
    m = Module("t")
    f = m.function("main", ret=I32)
    build_body(m, f)
    return m


class TestIntegerSemantics:
    @settings(max_examples=20, deadline=None)
    @given(i32s, i32s)
    def test_arith_matrix(self, a, b):
        """One batch kernel evaluates many int ops; compared to Python."""
        def body(m, f):
            x = f.local(I32, "x", init=a)
            y = f.local(I32, "y", init=b)
            acc = f.local(U32, "acc", init=0)
            for expr in (x + y, x - y, x * y, x & y, x | y, x ^ y,
                         x << (y & 15), (x >> (y & 15))):
                f.assign(acc, (acc * 31) ^ expr)
            f.ret(acc)

        result = run_kir(_main_returning(body))
        acc = 0
        sy = b & 15
        for value in ((a + b), (a - b), (a * b), (a & b), (a | b),
                      (a ^ b), (a << sy) & M32,
                      ((a >> sy) if a >= 0 else ~((~a) >> sy))):
            acc = ((acc * 31) & M32) ^ (value & M32)
        assert result.exit_code == acc

    @settings(max_examples=15, deadline=None)
    @given(i32s, i32s.filter(lambda v: v != 0))
    def test_signed_div_rem(self, a, b):
        def body(m, f):
            x = f.local(I32, "x", init=a)
            y = f.local(I32, "y", init=b)
            f.ret((x // y) * 1000003 + x % y)

        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        q = max(-(2**31), min(2**31 - 1, q))
        r = a - q * b
        expected = (q * 1000003 + r) & M32
        assert run_kir(_main_returning(body)).exit_code == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=M32),
           st.integers(min_value=1, max_value=M32))
    def test_unsigned_div_rem(self, a, b):
        def body(m, f):
            x = f.local(U32, "x", init=a)
            y = f.local(U32, "y", init=b)
            f.ret((f.udiv(x, y) ^ f.urem(x, y)))

        expected = ((a // b) ^ (a % b)) & M32
        assert run_kir(_main_returning(body)).exit_code == expected

    def test_umul_wide(self):
        def body(m, f):
            hi = f.local(U32, "hi")
            lo = f.local(U32, "lo")
            f.umul_wide(hi, lo, 0xFFFFFFFF, 0x12345678)
            f.ret(hi ^ lo)

        product = 0xFFFFFFFF * 0x12345678
        assert run_kir(_main_returning(body)).exit_code == \
            ((product >> 32) ^ (product & M32))

    def test_unsigned_comparisons(self):
        def body(m, f):
            big = f.local(U32, "big", init=0x80000000)
            one = f.local(U32, "one", init=1)
            acc = f.local(I32, "acc", init=0)
            with f.if_(big > one):
                f.assign(acc, acc + 1)      # unsigned: taken
            si = f.local(I32, "si", init=-0x80000000)
            with f.if_(si < 1):
                f.assign(acc, acc + 10)     # signed: taken
            f.ret(acc)

        assert run_kir(_main_returning(body)).exit_code == 11


class TestControlFlow:
    def test_nested_loops_break_continue(self):
        def body(m, f):
            total = f.local(I32, "total", init=0)
            i = f.local(I32, "i", init=0)
            with f.while_(i < 10):
                f.assign(i, i + 1)
                with f.if_(i == 3):
                    f.continue_()
                with f.if_(i == 8):
                    f.break_()
                f.assign(total, total + i)
            f.ret(total)  # 1+2+4+5+6+7 = 25

        assert run_kir(_main_returning(body)).exit_code == 25

    def test_if_else_chains(self):
        def body(m, f):
            x = f.local(I32, "x", init=42)
            out = f.local(I32, "out", init=0)
            with f.if_(x > 100) as c:
                f.assign(out, 1)
            with c.else_():
                with f.if_(x > 40) as c2:
                    f.assign(out, 2)
                with c2.else_():
                    f.assign(out, 3)
            f.ret(out)

        assert run_kir(_main_returning(body)).exit_code == 2

    def test_for_range_negative_step(self):
        def body(m, f):
            total = f.local(I32, "total", init=0)
            with f.for_range("i", 5, 0, step=-1) as i:
                f.assign(total, total + i)
            f.ret(total)  # 5+4+3+2+1

        assert run_kir(_main_returning(body)).exit_code == 15

    def test_comparison_as_value(self):
        def body(m, f):
            a = f.local(I32, "a", init=3)
            f.ret((a == 3) + (a != 3) * 10 + (a < 5) * 100)

        assert run_kir(_main_returning(body)).exit_code == 101


class TestCallsAndGlobals:
    def test_multi_arg_calls_and_recursion(self):
        m = Module("t")
        g = m.function("ack_like", [("a", I32), ("b", I32)], ret=I32)
        a, b = g.params
        with g.if_(a == 0) as c:
            g.ret(b + 1)
        with c.else_():
            g.ret(g.call("ack_like", a - 1, b + a))
        f = m.function("main", ret=I32)
        f.ret(f.call("ack_like", 5, 0))
        assert run_kir(m).exit_code == 5 + 4 + 3 + 2 + 1 + 1

    def test_globals_and_memory_widths(self):
        m = Module("t")
        m.global_words("warr", [0x11223344])
        m.global_bytes("barr", bytes([1, 2, 3, 4]))
        m.global_zeros("zeros", 16)
        f = m.function("main", ret=I32)
        acc = f.local(I32, "acc", init=0)
        f.assign(acc, f.load(m.addr_of("warr")))            # 0x11223344
        f.assign(acc, acc + f.load_u8(m.addr_of("barr", 1)))  # +2
        f.store16(m.addr_of("zeros"), 0xBEEF)
        f.assign(acc, acc + f.load_u16(m.addr_of("zeros")))   # +0xBEEF
        f.store8(m.addr_of("zeros", 4), 0x80)
        f.assign(acc, acc + f.load_s8(m.addr_of("zeros", 4)))  # -128
        f.ret(acc)
        expected = (0x11223344 + 2 + 0xBEEF - 128) & M32
        assert run_kir(m).exit_code == expected

    def test_signed_halfword_load(self):
        m = Module("t")
        m.global_words("w", [0xFFFF0000])
        f = m.function("main", ret=I32)
        f.ret(f.load_s16(m.addr_of("w")))
        assert run_kir(m).exit_code == (-1) & M32

    def test_undeclared_call_rejected(self):
        m = Module("t")
        f = m.function("main", ret=I32)
        with pytest.raises(KirError):
            f.call("nowhere")

    def test_missing_function_fails_at_codegen(self):
        m = Module("t")
        m.declare("ghost", (), I32)
        f = m.function("main", ret=I32)
        f.ret(f.call("ghost"))
        with pytest.raises(KirError):
            generate_assembly(m)


class TestFloatBackends:
    @pytest.mark.parametrize("abi", ["hard", "soft"])
    def test_float_pipeline_identical(self, abi):
        def body(m, f):
            x = f.local(F64, "x", init=f.f64const(2.25))
            y = f.local(F64, "y", init=f.f64const(-0.5))
            z = f.local(F64, "z")
            f.assign(z, (x * y + f.f64const(10.0)) / f.f64const(4.0))
            f.assign(z, f.fsqrt(z) * f.f64const(100.0))
            f.ret(f.dtoi(z))

        result = run_kir(_main_returning(body), float_abi=abi,
                         has_fpu=(abi == "hard"))
        import math
        expected = int(math.sqrt((2.25 * -0.5 + 10.0) / 4.0) * 100.0)
        assert result.exit_code == expected

    @pytest.mark.parametrize("abi", ["hard", "soft"])
    def test_float_comparisons_and_neg(self, abi):
        def body(m, f):
            x = f.local(F64, "x", init=f.f64const(1.5))
            acc = f.local(I32, "acc", init=0)
            with f.if_(x > f.f64const(1.0)):
                f.assign(acc, acc + 1)
            with f.if_(-x < f.f64const(0.0)):
                f.assign(acc, acc + 10)
            with f.if_(x == f.f64const(1.5)):
                f.assign(acc, acc + 100)
            with f.if_(x >= f.f64const(2.0)):
                f.assign(acc, acc + 1000)   # not taken
            f.ret(acc)

        result = run_kir(_main_returning(body), float_abi=abi,
                         has_fpu=(abi == "hard"))
        assert result.exit_code == 111

    def test_soft_build_contains_no_fpu_instructions(self):
        def body(m, f):
            x = f.local(F64, "x", init=f.f64const(3.0))
            f.ret(f.dtoi(x * x))

        result = run_kir(_main_returning(body), float_abi="soft",
                         has_fpu=False)
        assert result.exit_code == 9
        assert result.category_counts["fpu_arith"] == 0
        assert result.category_counts["fpu_div"] == 0

    def test_f64_function_args_and_return(self):
        m = Module("t")
        g = m.function("scale", [("v", F64), ("k", I32)], ret=F64)
        v, k = g.params
        g.ret(v * g.itod(k))
        f = m.function("main", ret=I32)
        f.ret(f.dtoi(f.call("scale", f.f64const(2.5), 4)))
        for abi in ("hard", "soft"):
            assert run_kir(m, float_abi=abi,
                           has_fpu=(abi == "hard")).exit_code == 10
            m2 = Module("t")  # rebuild: modules are single-use per ABI
            g = m2.function("scale", [("v", F64), ("k", I32)], ret=F64)
            v, k = g.params
            g.ret(v * g.itod(k))
            f = m2.function("main", ret=I32)
            f.ret(f.dtoi(f.call("scale", f.f64const(2.5), 4)))
            m = m2


class TestTypeChecking:
    def test_mixed_assign_rejected(self):
        m = Module("t")
        f = m.function("main", ret=I32)
        x = f.local(F64, "x")
        with pytest.raises(KirTypeError):
            f.assign(x, 5)

    def test_int_truediv_rejected(self):
        m = Module("t")
        f = m.function("main", ret=I32)
        x = f.local(I32, "x", init=4)
        with pytest.raises(KirTypeError):
            _ = x / 2

    def test_return_type_enforced(self):
        m = Module("t")
        f = m.function("main", ret=I32)
        with pytest.raises(KirTypeError):
            f.ret(f.f64const(1.0))

    def test_duplicate_names_rejected(self):
        m = Module("t")
        f = m.function("main", ret=I32)
        f.local(I32, "x")
        with pytest.raises(KirError):
            f.local(I32, "x")
        with pytest.raises(KirError):
            m.function("main")

    def test_break_outside_loop(self):
        m = Module("t")
        f = m.function("main", ret=I32)
        with pytest.raises(KirError):
            f.break_()

    def test_arg_count_checked(self):
        m = Module("t")
        g = m.function("two", [("a", I32), ("b", I32)], ret=I32)
        g.ret(g.params[0])
        f = m.function("main", ret=I32)
        with pytest.raises(KirTypeError):
            f.call("two", 1)

    def test_entry_required(self):
        m = Module("t")
        with pytest.raises(KirError):
            compile_module(m)
