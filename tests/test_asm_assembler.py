"""Assembler tests: expressions, directives, synthetics, errors."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, strategies as st

from repro.asm import AsmError, assemble
from repro.asm.expr import evaluate, references_symbols
from repro.isa.decoder import decode
from repro.isa.disasm import disassemble


class TestExpressions:
    @pytest.mark.parametrize("text,expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("0x10 | 0b101", 0x15),
        ("1 << 20", 1 << 20),
        ("-8 / 2", -4),
        ("7 % 4", 3),
        ("~0 & 0xFF", 0xFF),
        ("'A'", 65),
        ("'\\n'", 10),
        ("%hi(0x40000000)", 0x40000000 >> 10),
        ("%lo(0x12345)", 0x12345 & 0x3FF),
    ])
    def test_literals(self, text, expected):
        assert evaluate(text) == expected

    def test_symbols(self):
        assert evaluate("base + 4 * n", {"base": 100, "n": 3}) == 112

    def test_undefined_symbol(self):
        with pytest.raises(AsmError):
            evaluate("missing + 1")

    def test_location_counter(self):
        assert evaluate(". + 8", location=0x40000000) == 0x40000008
        with pytest.raises(AsmError):
            evaluate(".")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_hi_lo_reconstruct(self, value):
        hi = evaluate(f"%hi({value})")
        lo = evaluate(f"%lo({value})")
        assert ((hi << 10) | lo) == value

    def test_references_symbols(self):
        assert references_symbols("label + 4")
        assert references_symbols("%hi(buf)")
        assert not references_symbols("0x1234 + 8")

    def test_division_by_zero(self):
        with pytest.raises(AsmError):
            evaluate("1 / 0")


class TestDirectives:
    def test_sections_and_symbols(self):
        prog = assemble("""
            .text
        _start:
            nop
            .data
            .align 8
        table:
            .word 1, 2, 3
        msg:
            .asciz "hi"
            .bss
            .align 8
        buffer:
            .skip 64
        """)
        assert prog.symbols["_start"] == prog.origin
        table = prog.symbols["table"]
        assert table % 8 == 0
        assert prog.symbols["msg"] == table + 12
        assert prog.symbols["buffer"] % 8 == 0
        assert prog.bss_size >= 64
        # .word contents land in the image
        image = prog.load_image
        off = table - prog.origin
        assert struct.unpack(">III", image[off:off + 12]) == (1, 2, 3)
        assert image[prog.symbols["msg"] - prog.origin:][:3] == b"hi\x00"

    def test_equ_and_word_expressions(self):
        prog = assemble("""
            .equ SIZE, 16
            .text
        _start:
            nop
            .data
        val:
            .word SIZE * 2 + 1, _start
        """)
        off = prog.symbols["val"] - prog.origin
        words = struct.unpack(">II", prog.load_image[off:off + 8])
        assert words == (33, prog.origin)

    def test_byte_half_ascii(self):
        prog = assemble("""
            .data
        d:
            .byte 1, 255, 'A'
            .half 0xBEEF
            .ascii "ab"
        """)
        off = prog.symbols["d"] - prog.origin
        blob = prog.load_image[off:off + 7]
        assert blob == bytes([1, 255, 65, 0xBE, 0xEF, 97, 98])

    @pytest.mark.parametrize("source,fragment", [
        (".align 3", "power of two"),
        (".equ", "needs"),
        (".word", "at least one"),
        (".bogus 1", "unknown directive"),
        (".bss\n .word 1", "not allowed in .bss"),
        ("label: \nlabel: nop", "duplicate"),
        (".data\n nop", "outside .text"),
    ])
    def test_directive_errors(self, source, fragment):
        with pytest.raises(AsmError) as err:
            assemble(source)
        assert fragment in str(err.value)


class TestInstructions:
    def _words(self, body: str) -> list[int]:
        prog = assemble(f"    .text\n_start:\n{body}\n")
        return [int.from_bytes(prog.text[i:i + 4], "big")
                for i in range(0, len(prog.text), 4)]

    def test_basic_encodings_disassemble_back(self):
        source_lines = [
            "add %g2, %g4, %g1",
            "sub %o0, 42, %o1",
            "ld [%o0 + 4], %o2",
            "st %o2, [%fp - 8]",
            "faddd %f0, %f2, %f4",
            "fcmpd %f0, %f2",
            "rd %y, %g3",
            "wr %g3, 0, %y",
        ]
        words = self._words("\n".join(f"    {s}" for s in source_lines))
        # %fp - 8 renders back as %i6 - 8
        rendered = [disassemble(decode(w)) for w in words]
        assert rendered[0] == "add %g2, %g4, %g1"
        assert rendered[1] == "sub %o0, 42, %o1"
        assert rendered[2] == "ld [%o0 + 4], %o2"
        assert "st %o2, [%i6 - 8]" == rendered[3]
        assert rendered[4] == "faddd %f0, %f2, %f4"
        assert rendered[5] == "fcmpd %f0, %f2"
        assert rendered[6] == "rd %y, %g3"
        assert rendered[7] == "wr %g3, 0, %y"

    def test_set_expansion_sizes(self):
        # small literal -> 1 word, round 22-bit -> 1 word, general -> 2 words
        assert len(self._words("    set 100, %o0")) == 1
        assert len(self._words("    set 0x12345400, %o0")) == 1
        assert len(self._words("    set 0x12345678, %o0")) == 2

    def test_set_symbol_always_two_words(self):
        prog = assemble("""
            .text
        _start:
            set tiny, %o0
            .data
        tiny:
            .word 0
        """)
        assert len(prog.text) == 8

    def test_synthetic_expansions(self):
        words = self._words("""
    mov 7, %o0
    cmp %o0, 3
    tst %o1
    clr %g4
    inc %o0
    dec 2, %o0
    neg %o1, %o2
    not %o1
    retl
    nop
""")
        texts = [disassemble(decode(w)) for w in words]
        assert texts[0] == "or %g0, 7, %o0"
        assert texts[1] == "subcc %o0, 3, %g0"
        assert texts[2] == "orcc %g0, %o1, %g0"
        assert texts[3] == "or %g0, %g0, %g4"
        assert texts[4] == "add %o0, 1, %o0"
        assert texts[5] == "sub %o0, 2, %o0"
        assert texts[6] == "sub %g0, %o1, %o2"
        assert texts[8] == "retl"

    def test_branch_targets_and_annul(self):
        prog = assemble("""
            .text
        _start:
            ba,a done
            nop
        done:
            nop
        """)
        word = int.from_bytes(prog.text[:4], "big")
        instr = decode(word)
        assert instr.annul and instr.imm == 8

    def test_call_and_register_call(self):
        words = self._words("""
    call _start
    nop
    call %o3
    nop
""")
        assert decode(words[0]).mnemonic == "call"
        jmpl = decode(words[2])
        assert jmpl.mnemonic == "jmpl" and jmpl.rd == 15

    @pytest.mark.parametrize("source,fragment", [
        ("add %g1, %g2", "expects 3"),
        ("bne", "expects 1"),
        ("frobnicate %g1", "unknown mnemonic"),
        ("add %g1, 9999, %g2", "simm13"),
        ("ld [%o0 - %o1], %g1", "subtracted"),
        ("ld %o0, %g1", "brackets"),
    ])
    def test_instruction_errors(self, source, fragment):
        with pytest.raises(AsmError) as err:
            assemble(f"    .text\n_start:\n    {source}\n")
        assert fragment in str(err.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError) as err:
            assemble("    .text\n_start:\n    nop\n    bogus %g1\n")
        assert err.value.line == 4
