"""HEVC-lite codec: unit pieces, codec roundtrip, kernel parity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.hevclite import (
    CONFIGS,
    QPS,
    build_decoder_module,
    decode,
    encode,
    encode_spec,
    frame_types_for,
    make_sequence,
    stream_specs,
)
from repro.codecs.hevclite.bitstream import BitReader, BitWriter
from repro.codecs.hevclite.predict import (
    MODE_AVG,
    MODE_DC,
    MODE_HOR,
    MODE_VER,
    average_blocks,
    intra_predict,
    motion_compensate,
)
from repro.codecs.hevclite.tables import T8, ZIGZAG8, qp_per_rem, rd_lambda
from repro.codecs.hevclite.transform import (
    dequantize,
    forward_transform,
    inverse_transform,
    quantize,
)
from tests.helpers import run_kir


class TestBitstream:
    @given(st.lists(st.integers(min_value=0, max_value=100000), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_ue_roundtrip(self, values):
        writer = BitWriter()
        for v in values:
            writer.put_ue(v)
        reader = BitReader(writer.flush())
        assert [reader.get_ue() for _ in values] == values

    @given(st.lists(st.integers(min_value=-50000, max_value=50000),
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_se_roundtrip(self, values):
        writer = BitWriter()
        for v in values:
            writer.put_se(v)
        reader = BitReader(writer.flush())
        assert [reader.get_se() for _ in values] == values

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=255),
                              st.integers(min_value=1, max_value=8)),
                    max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_fixed_bits_roundtrip(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.put_bits(value & ((1 << width) - 1), width)
        reader = BitReader(writer.flush())
        for value, width in fields:
            assert reader.get_bits(width) == value & ((1 << width) - 1)

    def test_negative_ue_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().put_ue(-1)

    def test_malformed_golomb_detected(self):
        reader = BitReader(b"\x00" * 8)
        with pytest.raises(ValueError):
            reader.get_ue()


class TestTransform:
    def test_t8_rows_are_nearly_orthogonal(self):
        # HEVC's integer core transform only approximates an orthogonal
        # DCT: row norms match within ~0.1 % and cross products are tiny
        # relative to the norm (this is true of the real H.265 matrix).
        for i in range(8):
            for j in range(8):
                dot = sum(T8[i][k] * T8[j][k] for k in range(8))
                if i == j:
                    assert dot == pytest.approx(64 * 64 * 8, rel=0.002)
                else:
                    assert abs(dot) <= 128

    def test_zigzag_is_permutation(self):
        assert sorted(ZIGZAG8) == list(range(64))
        assert ZIGZAG8[0] == 0  # DC first

    @given(st.lists(st.integers(min_value=-255, max_value=255),
                    min_size=64, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_transform_roundtrip_unquantised(self, flat):
        block = [flat[i * 8:(i + 1) * 8] for i in range(8)]
        recon = inverse_transform(forward_transform(block))
        for y in range(8):
            for x in range(8):
                assert abs(recon[y][x] - block[y][x]) <= 2

    @pytest.mark.parametrize("qp", QPS)
    def test_quant_roundtrip_error_scales_with_qp(self, qp):
        block = [[((x * 13 + y * 7) % 100) - 50 for x in range(8)]
                 for y in range(8)]
        coeffs = forward_transform(block)
        recon = inverse_transform(dequantize(quantize(coeffs, qp), qp))
        err = sum(abs(recon[y][x] - block[y][x])
                  for y in range(8) for x in range(8))
        if qp == 10:
            assert err < 120
        assert err >= 0

    def test_qp_helpers(self):
        assert qp_per_rem(32) == (5, 2)
        with pytest.raises(ValueError):
            qp_per_rem(60)
        assert rd_lambda(12) == pytest.approx(0.85)


class TestPrediction:
    def test_dc_with_both_neighbours(self):
        top = [10] * 8
        left = [30] * 8
        pred = intra_predict(MODE_DC, top, left)
        assert pred[0][0] == (80 + 240 + 8) >> 4

    def test_dc_unavailable_defaults_128(self):
        assert intra_predict(MODE_DC, None, None)[3][3] == 128

    def test_directional_modes(self):
        top = list(range(8))
        left = [10 * i for i in range(8)]
        assert intra_predict(MODE_VER, top, left)[5] == top
        assert [row[2] for row in intra_predict(MODE_HOR, top, left)] == left
        avg = intra_predict(MODE_AVG, top, left)
        assert avg[2][3] == (top[3] + left[2] + 1) >> 1

    def test_motion_compensation_clamps_edges(self):
        frame = [[x + 10 * y for x in range(16)] for y in range(16)]
        pred = motion_compensate(frame, 0, 0, -5, -5, 16, 16)
        assert pred[0][0] == frame[0][0]
        pred = motion_compensate(frame, 8, 8, 20, 20, 16, 16)
        assert pred[7][7] == frame[15][15]

    def test_average_rounds_up(self):
        a = [[1] * 8 for _ in range(8)]
        b = [[2] * 8 for _ in range(8)]
        assert average_blocks(a, b)[0][0] == 2


class TestSequencesAndConfigs:
    def test_sequences_deterministic(self):
        for name in ("gradient_pan", "blocks_bounce", "texture_noise"):
            s1 = make_sequence(name, 16, 16, 3)
            s2 = make_sequence(name, 16, 16, 3)
            assert s1 == s2
            assert len(s1) == 3
            assert all(0 <= p <= 255 for f in s1 for row in f for p in row)

    def test_frames_actually_move(self):
        frames = make_sequence("blocks_bounce", 16, 16, 3)
        assert frames[0] != frames[1]

    def test_unknown_sequence(self):
        with pytest.raises(ValueError):
            make_sequence("nope")

    def test_frame_type_schedules(self):
        assert frame_types_for("intra", 3) == [0, 0, 0]
        assert frame_types_for("lowdelay_p", 3) == [0, 1, 1]
        assert frame_types_for("lowdelay", 3) == [0, 1, 2]
        assert frame_types_for("randomaccess", 4) == [0, 1, 0, 1]
        with pytest.raises(ValueError):
            frame_types_for("cbr", 3)

    def test_36_stream_specs(self):
        specs = stream_specs()
        assert len(specs) == 36
        assert len({s.name for s in specs}) == 36
        assert {s.config for s in specs} == set(CONFIGS)
        assert {s.qp for s in specs} == set(QPS)


class TestCodecRoundtrip:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_decoder_matches_encoder_recon(self, config):
        frames = make_sequence("blocks_bounce", 16, 16, 3)
        enc = encode(frames, qp=32, config=config)
        dec = decode(enc.bitstream)
        assert dec.frames == enc.recon

    @pytest.mark.parametrize("qp", QPS)
    def test_quality_ordering(self, qp):
        """Lower QP must reconstruct closer to the original."""
        frames = make_sequence("gradient_pan", 16, 16, 2)
        enc = encode(frames, qp=qp, config="intra")
        sse = sum((enc.recon[t][y][x] - frames[t][y][x]) ** 2
                  for t in range(2) for y in range(16) for x in range(16))
        if qp == 10:
            assert sse < 1500
        else:
            assert sse > 0

    def test_inter_beats_intra_on_static_content(self):
        frames = [make_sequence("gradient_pan", 16, 16, 1)[0]] * 3
        intra = encode(frames, qp=32, config="intra")
        inter = encode(frames, qp=32, config="lowdelay_p")
        assert len(inter.bitstream) < len(intra.bitstream)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode(b"\x00" * 32)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            encode([[[0] * 12] * 12], qp=32, config="intra")


class TestKernelParity:
    @pytest.mark.parametrize("stream_index", [0, 16, 29])
    def test_kernel_matches_reference(self, stream_index):
        spec = stream_specs()[stream_index]
        enc = encode_spec(spec)
        ref = decode(enc.bitstream)
        res_hard = run_kir(build_decoder_module(enc.bitstream),
                           float_abi="hard")
        res_soft = run_kir(build_decoder_module(enc.bitstream),
                           float_abi="soft", has_fpu=False)
        assert res_hard.console == ref.console
        assert res_soft.console == ref.console
        assert res_hard.exit_code == 0

    def test_corrupt_stream_is_detected(self):
        spec = stream_specs()[0]
        enc = encode_spec(spec)
        ref = decode(enc.bitstream)
        corrupted = bytearray(enc.bitstream)
        corrupted[40] ^= 0xFF  # flip payload bits past the header
        from repro.vm import SimError
        try:
            result = run_kir(build_decoder_module(bytes(corrupted)),
                             float_abi="hard")
        except SimError:
            return  # faulted on garbage: acceptable detection
        # either the kernel's syntax checks fired (exit 2..5) or the
        # reconstruction diverged from the intact stream
        assert result.exit_code != 0 or result.console != ref.console

    def test_fixed_build_avoids_fpu(self):
        spec = stream_specs()[3]
        enc = encode_spec(spec)
        result = run_kir(build_decoder_module(enc.bitstream),
                         float_abi="soft", has_fpu=False)
        assert result.category_counts["fpu_arith"] == 0
        assert result.category_counts["fpu_sqrt"] == 0
