"""Experiment drivers at smoke scale: shapes of every table and figure."""

from __future__ import annotations

import pytest

from repro.experiments import (
    figure1,
    figure4,
    figure23,
    get_bench,
    get_scale,
    table1,
    table3,
    table4,
)
from repro.experiments.render import fmt_si, hbar, text_table
from repro.experiments.scale import DEFAULT, FULL, SMOKE
from repro.experiments.workloads import kernel_set, workload_pairs


@pytest.fixture(scope="module")
def smoke():
    return get_scale("smoke")


class TestScale:
    def test_presets(self):
        assert SMOKE.name == "smoke"
        assert len(FULL.fse_indices) == 24
        assert len(FULL.hevc_indices) == 36
        assert len(DEFAULT.hevc_indices) == 12

    def test_lookup(self, monkeypatch):
        assert get_scale("full") is FULL
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale() is SMOKE
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_default_covers_all_configs_and_qps(self):
        from repro.codecs.hevclite import stream_specs
        specs = stream_specs()
        chosen = [specs[i] for i in DEFAULT.hevc_indices]
        assert {s.config for s in chosen} == {
            "intra", "lowdelay_p", "lowdelay", "randomaccess"}
        assert {s.qp for s in chosen} == {10, 32, 45}


class TestRender:
    def test_text_table(self):
        out = text_table(("a", "bb"), [(1, 2), (33, 4)], title="t")
        assert "t" in out and "33" in out
        assert out.count("\n") >= 5

    def test_hbar(self):
        assert hbar(5, 10, width=10) == "#####"
        assert hbar(0, 10) == ""
        assert hbar(20, 10, width=10) == "#" * 10

    def test_fmt_si(self):
        assert fmt_si(0.00123, "J") == "1.230 mJ"
        assert fmt_si(1.5, "s") == "1.500 s"
        assert "n" in fmt_si(2e-9, "J")


class TestWorkloadSets:
    def test_kernel_set_contents(self, smoke):
        kernels = kernel_set(smoke)
        names = [k[0] for k in kernels]
        # every kernel twice: float and fixed
        assert len(kernels) == 2 * (len(smoke.fse_indices)
                                    + len(smoke.hevc_indices))
        assert any("fse" in n and "float" in n for n in names)
        assert any("hevc" in n and "fixed" in n for n in names)

    def test_workload_pairs(self, smoke):
        pairs = workload_pairs(smoke)
        assert len(pairs) == len(smoke.fse_indices) + len(smoke.hevc_indices)
        for pair in pairs:
            assert pair.float_program.word_count() > 0
            assert pair.fixed_program.word_count() > 0


class TestDrivers:
    def test_table1_shape(self, smoke):
        result = table1.run(smoke)
        rows = result.rows()
        assert len(rows) == 9
        by_name = {r[0]: r for r in rows}
        # memory loads slowest of the IU categories, fsqrt slowest overall
        assert by_name["Memory Load"][1] > by_name["Integer Arithmetic"][1]
        assert by_name["FPU Square root"][1] > by_name["FPU Divide"][1]
        assert by_name["FPU Divide"][2] > by_name["FPU Arithmetic"][2]
        assert "Table I" in result.render()

    def test_table3_errors_within_band(self, smoke):
        result = table3.run(smoke)
        assert result.summary["energy"].mean_abs_percent < 5.0
        assert result.summary["time"].mean_abs_percent < 5.0
        assert result.summary["energy"].max_abs_percent < 12.0
        assert len(result.records) == 2 * (len(smoke.fse_indices)
                                           + len(smoke.hevc_indices))
        rendered = result.render(per_kernel=True)
        assert "Mean absolute error" in rendered
        assert "fse:00:float" in rendered

    def test_table4_shape(self, smoke):
        result = table4.run(smoke)
        assert result.estimated["fse"]["energy"] < -85
        assert -60 < result.estimated["hevc"]["energy"] < -25
        assert 90 < result.area_increase_percent < 130
        # estimates and measurements agree on the decision
        assert result.measured["fse"]["energy"] < \
            result.measured["hevc"]["energy"]
        assert "Table IV" in result.render()

    def test_figure1_ordering(self, smoke):
        result = figure1.run(smoke)
        by_name = {p.name: p for p in result.points}
        assert by_name["algorithm (host)"].wall_seconds < \
            by_name["cycle/energy model (CAS rung)"].wall_seconds
        assert by_name["ISS + model (our work)"].provides_nfp
        assert "Figure 1" in result.render()

    def test_figure2_trace(self):
        result = figure23.run_figure2()
        assert result.disassembly == "add %g2, %g4, %g1"
        assert "doArithmetic" in result.morph_group
        assert "42" in result.register_effect
        assert "machine code" in result.render()

    def test_figure3_grouping(self):
        result = figure23.run_figure3()
        assert "doArithmetic" in result.groups
        assert "add" in result.groups["doArithmetic"]
        assert "ba" in result.groups["doBranch"]
        members = [m for group in result.groups.values() for m in group]
        assert len(members) == len(set(members))  # each entry in one group

    def test_figure4_bars(self, smoke):
        result = figure4.run(smoke)
        assert [b.name for b in result.bars] == [
            "fse float", "fse fixed", "hevc float", "hevc fixed"]
        for bar in result.bars:
            assert abs(bar.energy_error_percent) < 12
        assert "Figure 4" in result.render()

    def test_bench_memoises_measurements(self, smoke):
        bench = get_bench(smoke)
        kernels = kernel_set(smoke)
        name, abi, program = kernels[0]
        first = bench.measure(name, program, abi == "hard")
        second = bench.measure(name, program, abi == "hard")
        assert first is second
