"""The evaluation server: endpoints, single-flight, coalescing, identity.

The contracts under test (ISSUE 8):

- a materialized ``/v1/sweep`` body is byte-identical to the
  ``repro dse --profile`` CLI rendering of the same spec;
- N identical concurrent cold ``/v1/price`` requests run exactly one
  profiling simulation (single-flight), fault-free *and* under
  injected chaos;
- coalesced price batches return the same bits as solo evaluations;
- error paths answer with the intended statuses and never wedge the
  connection, and a client disconnect mid-request leaves the server's
  caches consistent;
- ``repro serve`` shuts down gracefully on SIGTERM (exit 0).

Everything runs the real asyncio server on an ephemeral port; only the
SIGTERM test spawns a subprocess.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import build_parser
from repro.dse.engine import stream_profiles
from repro.experiments.scale import get_scale
from repro.nfp.linear import evaluate_batch
from repro.runner import ExperimentRunner
from repro.runner.resilience import ChaosPolicy, RetryPolicy, UsageError
from repro.server import EvalServer, ServerSettings
from repro.server.client import ServerClient, fetch, fetch_json
from repro.server.singleflight import SingleFlight
from repro.server.stats import quantile
from repro.workloads import get_spec

SCALE = get_scale("smoke")
HOST = "127.0.0.1"

PRICE = {"workload": "img:sobel3x3", "axes": {"clock_mhz": 80.0,
                                              "fpu": True}}
SWEEP = {"axes": "clock_mhz=25:50,fpu",
         "workloads": "img:sobel3x3,img:histstats", "format": "json"}


@contextlib.asynccontextmanager
async def server_ctx(**kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("settings", ServerSettings())
    server = EvalServer(**kwargs)
    port = await server.start(HOST, 0)
    try:
        yield server, port
    finally:
        await server.aclose()


# -- units -------------------------------------------------------------------

def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert (args.command, args.host, args.port) == ("serve", HOST, 8650)
    args = build_parser().parse_args(["serve", "--port", "0",
                                      "--scale", "smoke"])
    assert args.port == 0 and args.scale == "smoke"


def test_settings_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SERVER_BATCH_WINDOW_MS", "5")
    monkeypatch.setenv("REPRO_SERVER_MAX_GRID", "123")
    settings = ServerSettings.from_env()
    assert settings.batch_window_s == pytest.approx(0.005)
    assert settings.max_grid == 123
    monkeypatch.setenv("REPRO_SERVER_MAX_GRID", "lots")
    with pytest.raises(UsageError):
        ServerSettings.from_env()


def test_quantile_nearest_rank():
    samples = [float(i) for i in range(1, 101)]
    assert quantile(samples, 0.50) == 50.0
    assert quantile(samples, 0.99) == 99.0
    assert quantile(samples, 1.00) == 100.0
    assert quantile([7.0], 0.99) == 7.0


def test_singleflight_collapses_and_retries_after_failure():
    calls = {"n": 0}

    async def fill():
        calls["n"] += 1
        await asyncio.sleep(0.01)
        if calls["n"] == 1:
            raise RuntimeError("first fill fails")
        return "filled"

    async def main():
        flights = SingleFlight()
        waits = {"n": 0}

        def on_wait():
            waits["n"] += 1

        results = await asyncio.gather(
            *[flights.do("k", fill, on_wait=on_wait) for _ in range(5)],
            return_exceptions=True)
        # one execution, the failure propagated to every waiter
        assert calls["n"] == 1 and waits["n"] == 4
        assert all(isinstance(r, RuntimeError) for r in results)
        # the failure was not memoised: the next call retries
        assert await flights.do("k", fill) == "filled"
        assert calls["n"] == 2
        assert not flights.flying("k")

    asyncio.run(main())


def test_evaluate_batch_helper_matches_engine():
    from repro.dse.axes import DesignSpace
    from repro.nfp.linear import BatchNfpEngine
    configs = DesignSpace.from_spec("clock_mhz=25:80,nwindows=4:8") \
        .configs()
    pair = get_spec("img:sobel3x3").pair(SCALE)
    vectors = stream_profiles([pair], [True],
                              budget=SCALE.max_instructions,
                              runner=ExperimentRunner(workers=1),
                              base=configs[0].hw)[("img:sobel3x3", "float")]
    hws = [config.hw for config in configs]
    assert evaluate_batch(hws, vectors) \
        == BatchNfpEngine(hws).evaluate(vectors)


def test_runner_run_tasks_is_thread_safe(tmp_path):
    from concurrent.futures import ThreadPoolExecutor
    from repro.dse.evaluate import profile_task
    from repro.vm.config import CoreConfig
    runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
    pair = get_spec("img:histstats").pair(SCALE)
    task = profile_task(pair.float_program, SCALE.max_instructions,
                        CoreConfig())
    with ThreadPoolExecutor(max_workers=4) as pool:
        batches = list(pool.map(lambda _: runner.run_tasks([task]),
                                range(4)))
    first = batches[0]
    assert all(batch == first for batch in batches)


# -- endpoints ---------------------------------------------------------------

def test_healthz_and_stats():
    async def main():
        async with server_ctx() as (server, port):
            status, body = await fetch(HOST, port, "GET", "/v1/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["scale"] == "smoke"
            assert health["uptime_s"] >= 0
            status, body = await fetch(HOST, port, "GET", "/v1/stats")
            assert status == 200
            stats = json.loads(body)
            for field in ("uptime_s", "qps", "requests", "by_endpoint",
                          "profiles", "batching", "sweeps"):
                assert field in stats
            assert stats["by_endpoint"]["/v1/healthz"]["requests"] == 1

    asyncio.run(main())


def test_price_matches_linear_evaluation_exactly():
    async def main():
        async with server_ctx() as (server, port):
            status, payload = await fetch_json(HOST, port, "/v1/price",
                                               PRICE)
            assert status == 200
            # the expected bits, straight from the engine
            from repro.server.schemas import price_request
            config, _, _ = price_request(dict(PRICE), server.base)
            pair = server._workload_spec("img:sobel3x3").pair(SCALE)
            vectors = stream_profiles(
                [pair], [True], budget=SCALE.max_instructions,
                runner=server.runner, base=server.base)[
                    ("img:sobel3x3", "float")]
            nfp = evaluate_batch([config.hw], vectors)[0]
            assert payload["time_s"] == nfp.true_time_s
            assert payload["energy_j"] == nfp.true_energy_j
            assert payload["cycles"] == nfp.cycles
            assert payload["retired"] == nfp.retired
            assert payload["build"] == "float"
            assert payload["config"] == "clk80-fpu"
            assert payload["area_les"] > 0

    asyncio.run(main())


def _stampede_body() -> bytes:
    return json.dumps(PRICE).encode()


def run_stampede(server_kwargs: dict, n: int = 6) -> tuple[dict, set]:
    """N identical concurrent cold prices; returns (stats dict, bodies)."""
    async def main():
        async with server_ctx(**server_kwargs) as (server, port):
            results = await asyncio.gather(*[
                fetch(HOST, port, "POST", "/v1/price", _stampede_body())
                for _ in range(n)])
            assert sorted({status for status, _ in results}) == [200]
            _, raw = await fetch(HOST, port, "GET", "/v1/stats")
            return json.loads(raw), {body for _, body in results}

    return asyncio.run(main())


def test_stampede_single_flight_fault_free():
    stats, bodies = run_stampede({})
    assert stats["profiles"]["fills"] == 1
    assert stats["profiles"]["misses"] == 6
    assert stats["profiles"]["waits"] == 5
    assert len(bodies) == 1


def test_stampede_single_flight_under_chaos(tmp_path):
    """The single-flight contract holds while the *one* fill is being
    retried through injected faults -- and prices the same bits."""
    chaos_runner = ExperimentRunner(
        cache_dir=tmp_path / "chaos", workers=1,
        chaos=ChaosPolicy(seed=11, raise_=1.0, depth=1),
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.001))
    stats, bodies = run_stampede({"runner": chaos_runner})
    assert stats["profiles"]["fills"] == 1
    assert len(bodies) == 1
    clean_stats, clean_bodies = run_stampede(
        {"runner": ExperimentRunner(cache_dir=tmp_path / "clean",
                                    workers=1)})
    assert bodies == clean_bodies   # chaos never changes the bits
    assert clean_stats["profiles"]["fills"] == 1


def test_price_coalescing_batches_and_matches_solo_bits():
    async def main():
        settings = ServerSettings(batch_window_s=0.05)
        async with server_ctx(settings=settings) as (server, port):
            # warm the profile so the measured batch is pure pricing
            status, _ = await fetch(HOST, port, "POST", "/v1/price",
                                    _stampede_body())
            assert status == 200
            _, raw = await fetch(HOST, port, "GET", "/v1/stats")
            before = json.loads(raw)["batching"]
            clocks = (25.0, 40.0, 50.0, 80.0)
            results = await asyncio.gather(*[
                fetch_json(HOST, port, "/v1/price",
                           {"workload": "img:sobel3x3",
                            "axes": {"clock_mhz": mhz, "fpu": True}})
                for mhz in clocks])
            assert all(status == 200 for status, _ in results)
            _, raw = await fetch(HOST, port, "GET", "/v1/stats")
            after = json.loads(raw)["batching"]
            assert after["batched_requests"] - before["batched_requests"] \
                == len(clocks)
            # they arrived within one window: fewer flushes than requests
            assert after["batches"] - before["batches"] < len(clocks)
            assert after["max_batch"] >= 2
            # coalesced bits == solo bits
            from repro.server.schemas import price_request
            key = ("img:sobel3x3", "float")
            vectors = server.profiles[key]
            for (_, payload), mhz in zip(results, clocks):
                config, _, _ = price_request(
                    {"workload": "img:sobel3x3",
                     "axes": {"clock_mhz": mhz, "fpu": True}},
                    server.base)
                nfp = evaluate_batch([config.hw], vectors)[0]
                assert payload["time_s"] == nfp.true_time_s
                assert payload["energy_j"] == nfp.true_energy_j

    asyncio.run(main())


def test_window_zero_disables_coalescing():
    async def main():
        settings = ServerSettings(batch_window_s=0.0)
        async with server_ctx(settings=settings) as (server, port):
            for _ in range(2):
                status, _ = await fetch(HOST, port, "POST", "/v1/price",
                                        _stampede_body())
                assert status == 200
            assert server.stats.batches == 2
            assert server.stats.max_batch == 1

    asyncio.run(main())


# -- error paths -------------------------------------------------------------

def test_price_error_paths():
    async def main():
        async with server_ctx() as (server, port):
            cases = [
                (b"{not json", 400, "bad-json"),
                (b"[1, 2]", 400, "bad-json"),
                (json.dumps({"workload": "img:nope"}).encode(), 404,
                 "unknown-workload"),
                (json.dumps({"workload": "img:*"}).encode(), 400,
                 "ambiguous-workload"),
                (json.dumps({"workload": "img:sobel3x3",
                             "axes": {"bogus": 1}}).encode(), 400,
                 "unknown-axis"),
                (json.dumps({"workload": "img:sobel3x3",
                             "axes": {"fpu": "maybe"}}).encode(), 400,
                 "bad-axis-value"),
                (json.dumps({"workload": "img:sobel3x3",
                             "surprise": 1}).encode(), 400,
                 "unknown-field"),
            ]
            for body, want_status, want_code in cases:
                status, raw = await fetch(HOST, port, "POST", "/v1/price",
                                          body)
                assert status == want_status, (body, status)
                assert json.loads(raw)["error"]["code"] == want_code
            status, _ = await fetch(HOST, port, "GET", "/v1/price")
            assert status == 405
            status, _ = await fetch(HOST, port, "GET", "/v1/nothing")
            assert status == 404
            # every error above was accounted
            assert server.stats.responses_err == len(cases) + 2

    asyncio.run(main())


def test_oversized_body_rejected_413():
    async def main():
        settings = ServerSettings(max_body=64)
        async with server_ctx(settings=settings) as (server, port):
            status, raw = await fetch(HOST, port, "POST", "/v1/price",
                                      b"x" * 200)
            assert status == 413
            assert json.loads(raw)["error"]["code"] == "payload-too-large"

    asyncio.run(main())


def test_oversized_grid_rejected_413():
    async def main():
        settings = ServerSettings(max_grid=3)
        async with server_ctx(settings=settings) as (server, port):
            status, raw = await fetch_json(HOST, port, "/v1/sweep",
                                           dict(SWEEP))
            assert status == 413
            assert raw["error"]["code"] == "grid-too-large"
            assert server.stats.sweeps == 0

    asyncio.run(main())


def test_sweep_error_paths():
    async def main():
        async with server_ctx() as (server, port):
            status, raw = await fetch_json(
                HOST, port, "/v1/sweep", {"axes": "warp_factor=9"})
            assert status == 400
            assert raw["error"]["code"] == "bad-axes"
            status, raw = await fetch_json(
                HOST, port, "/v1/sweep", {"workloads": "img:nope"})
            assert status == 404
            status, raw = await fetch_json(
                HOST, port, "/v1/sweep", {"format": "yaml"})
            assert status == 400
            assert raw["error"]["code"] == "bad-format"
            status, raw = await fetch_json(
                HOST, port, "/v1/sweep", {"mode": "metered"})
            assert status == 400
            assert raw["error"]["code"] == "bad-mode"

    asyncio.run(main())


# -- the byte-identity contract ----------------------------------------------

def reference_render(fmt: str, mode: str = "profile") -> bytes:
    from repro.experiments import dse as dse_driver
    result = dse_driver.run(SCALE, axes=SWEEP["axes"],
                            profile=(mode == "profile"),
                            workloads=SWEEP["workloads"],
                            stream=(mode == "stream"))
    return result.render(fmt).encode()


def test_sweep_byte_identical_to_cli_driver():
    async def main():
        async with server_ctx() as (server, port):
            for fmt in ("json", "csv"):
                status, body = await fetch(
                    HOST, port, "POST", "/v1/sweep",
                    json.dumps(dict(SWEEP, format=fmt)).encode())
                assert status == 200
                assert body == reference_render(fmt), fmt
            assert server.stats.sweeps == 2

    asyncio.run(main())


def test_streamed_sweep_byte_identical_to_driver():
    async def main():
        async with server_ctx() as (server, port):
            status, body = await fetch(
                HOST, port, "POST", "/v1/sweep",
                json.dumps(dict(SWEEP, mode="stream")).encode())
            assert status == 200
            assert body == reference_render("json", mode="stream")

    asyncio.run(main())


# -- disconnects and shutdown ------------------------------------------------

def test_disconnect_mid_request_is_counted_and_harmless():
    async def main():
        async with server_ctx() as (server, port):
            reader, writer = await asyncio.open_connection(HOST, port)
            head = ("POST /v1/price HTTP/1.1\r\n"
                    "Content-Length: 100\r\n\r\n")
            writer.write(head.encode() + b"only-ten-b")
            await writer.drain()
            writer.transport.abort()   # RST mid-body
            for _ in range(100):
                if server.stats.disconnects:
                    break
                await asyncio.sleep(0.01)
            assert server.stats.disconnects == 1
            # the server is unharmed: next request prices normally
            status, _ = await fetch(HOST, port, "POST", "/v1/price",
                                    _stampede_body())
            assert status == 200

    asyncio.run(main())


def test_disconnect_mid_sweep_leaves_results_consistent():
    async def main():
        async with server_ctx() as (server, port):
            reader, writer = await asyncio.open_connection(HOST, port)
            body = json.dumps(SWEEP).encode()
            head = (f"POST /v1/sweep HTTP/1.1\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n")
            writer.write(head.encode() + body)
            await writer.drain()
            writer.transport.abort()   # gone before the response
            for _ in range(600):       # the sweep itself still completes
                if server.stats.sweeps:
                    break
                await asyncio.sleep(0.05)
            assert server.stats.sweeps == 1
            # cache/checkpoint state stayed consistent: the re-issued
            # sweep renders byte-identically to the CLI reference
            status, payload = await fetch(HOST, port, "POST", "/v1/sweep",
                                          json.dumps(SWEEP).encode())
            assert status == 200
            assert payload == reference_render("json")

    asyncio.run(main())


def test_serve_subprocess_sigterm_graceful(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.setdefault("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--scale", "smoke"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env)
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        client = ServerClient(HOST, port)
        deadline = time.monotonic() + 30
        while True:
            try:
                status, _ = client.get("/v1/healthz")
                if status == 200:
                    break
            except OSError:
                pass
            assert time.monotonic() < deadline, "healthz never came up"
            time.sleep(0.1)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        proc.stdout.close()
        proc.stderr.close()
