"""Superblock translation: block mode == per-instruction mode, exactly.

Covers the exactness contract of :mod:`repro.vm.blocks` (identical
``SimulationResult`` fields in both dispatch modes on every workload
family), translation-cache invalidation for self-modifying and
host-patched code, delay-slot entries, watchdog exactness and the
block-statistics surface.
"""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.isa import encoder
from repro.isa.decoder import decode
from repro.vm import CoreConfig, Simulator, WatchdogTimeout

#: the SimulationResult fields that must match bit-for-bit across modes
#: (``translated_pcs`` legitimately differs: the block scanner may decode
#: straight-line words that execution never reaches).
IDENTICAL_FIELDS = (
    "exit_code", "retired", "category_counts", "mnemonic_counts",
    "console", "max_window_depth", "spill_count", "fill_count",
)


def run_both(source_or_program, max_instructions=50_000_000, **cfg):
    """Run in block mode and per-instruction mode; return both results."""
    program = (assemble(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    blocked = Simulator(program, CoreConfig(**cfg)).run(
        max_instructions=max_instructions)
    stepped = Simulator(
        program, CoreConfig(**cfg).with_blocks(False)).run(
        max_instructions=max_instructions)
    return blocked, stepped


def assert_identical(blocked, stepped):
    for field in IDENTICAL_FIELDS:
        assert getattr(blocked, field) == getattr(stepped, field), field


MIXED_KERNEL = """
    ! loads, stores, mul, branches both directions, delay-slot work
    .text
_start:
    set 3000, %o1
    mov 0, %o0
    set buf, %o2
loop:
    ld [%o2], %g2
    smul %g2, %g2, %g2
    add %o0, %g2, %o0
    st %o0, [%o2 + 4]
    and %o1, 28, %g3
    add %o2, %g3, %g4
    subcc %o1, 1, %o1
    bne loop
    nop
    mov 2, %g1
    ta 5
    mov 0, %o0
    mov 0, %g1
    ta 5

    .data
    .align 8
buf:
    .word 3, 0, 7, 0, 11, 0, 2, 0
"""

FP_KERNEL = """
    ! exercises fpops, fcmp and fbranches inside/around blocks
    .text
_start:
    set vals, %o2
    lddf [%o2], %f0
    lddf [%o2 + 8], %f2
    set 400, %o1
floop:
    faddd %f0, %f2, %f4
    fmuld %f4, %f2, %f4
    fdivd %f4, %f2, %f6
    fsqrtd %f6, %f8
    fcmpd %f8, %f2
    fbg keep
    nop
    fmovs %f2, %f8
keep:
    fdtoi %f8, %f10
    subcc %o1, 1, %o1
    bne floop
    nop
    set 0, %o0
    mov 0, %g1
    ta 5

    .data
    .align 8
vals:
    .word 0x40091EB8, 0x51EB851F   ! 3.14
    .word 0x3FF80000, 0x00000000   ! 1.5
"""

CALL_KERNEL = """
    ! call/save/restore terminators; window spill depth
    .text
_start:
    set 200, %o1
cloop:
    call twice
    mov %o1, %o0
    subcc %o1, 1, %o1
    bne cloop
    nop
    mov 0, %o0
    mov 0, %g1
    ta 5
twice:
    save %sp, -96, %sp
    add %i0, %i0, %i0
    ret
    restore %i0, 0, %o0
"""


class TestModeEquivalence:
    @pytest.mark.parametrize("kernel", [MIXED_KERNEL, FP_KERNEL, CALL_KERNEL],
                             ids=["mixed", "fp", "call"])
    def test_hand_kernels(self, kernel):
        blocked, stepped = run_both(kernel)
        assert_identical(blocked, stepped)
        assert blocked.exit_code == 0
        assert blocked.extras["block_mode"] == 1.0
        assert blocked.extras["translated_blocks"] > 0
        assert stepped.extras["block_mode"] == 0.0
        assert stepped.extras["translated_blocks"] == 0.0

    @pytest.mark.parametrize("block_size", [1, 2, 3, 8])
    def test_small_block_sizes(self, block_size):
        """Tiny blocks stress chaining, terminators and delay fallbacks."""
        blocked, stepped = run_both(MIXED_KERNEL, block_size=block_size)
        assert_identical(blocked, stepped)

    def test_long_straight_line_chain(self):
        """Thousands of sequential instructions must not exhaust the stack.

        Fall-through chaining passes the successor exactly its own length,
        so chains bottom out after one frame instead of recursing once per
        block.  With block_size=1 every instruction is its own block --
        the worst case.
        """
        body = "\n".join(f"    add %g1, 1, %g1" for _ in range(2500))
        src = (f"    .text\n_start:\n{body}\n    mov %g1, %o0\n"
               f"    mov 0, %g1\n    ta 5\n")
        # run twice per mode so the straight line crosses the compile
        # threshold... it cannot (executed once per sim), so force heat
        # aside: small block_size + repeated outer loop instead
        looped = f"""
    .text
_start:
    set 40, %o2
outer:
{body}
    subcc %o2, 1, %o2
    bne outer
    mov 0, %g1
    mov %g1, %o0
    mov 0, %g1
    ta 5
"""
        blocked, stepped = run_both(looped, block_size=1)
        assert_identical(blocked, stepped)
        blocked, stepped = run_both(src)
        assert_identical(blocked, stepped)

    def test_no_fpu_blocks_end_at_fpops(self):
        """Without an FPU the fp_disabled trap must fire exactly as before."""
        from repro.vm import FpuDisabled
        src = """
    .text
_start:
    mov 1, %g2
    faddd %f0, %f2, %f4
    ta 5
"""
        for enabled in (True, False):
            config = CoreConfig(has_fpu=False, blocks_enabled=enabled)
            with pytest.raises(FpuDisabled):
                Simulator(assemble(src), config).run()

    def test_hevclite_hard_and_soft(self):
        """The paper's HEVC-lite decoder, hard-float and soft-float ABIs."""
        from repro.experiments.scale import get_scale
        from repro.experiments.workloads import hevc_program
        scale = get_scale("smoke")
        for abi in ("hard", "soft"):
            blocked, stepped = run_both(hevc_program(0, abi, scale))
            assert_identical(blocked, stepped)
            assert blocked.exit_code == 0

    def test_fse_softfloat(self):
        """The soft-float FSE kernel (heaviest soft-FP workload)."""
        from repro.experiments.scale import get_scale
        from repro.experiments.workloads import fse_program
        scale = get_scale("smoke")
        blocked, stepped = run_both(fse_program(0, "soft", scale))
        assert_identical(blocked, stepped)
        assert blocked.exit_code == 0


class TestWatchdogExactness:
    INFINITE = """
    .text
_start:
    add %g1, 1, %g1
    ba _start
    nop
"""

    @pytest.mark.parametrize("budget", [1, 2, 3, 100, 1000, 1001])
    def test_watchdog_retires_exact_budget(self, budget):
        for enabled in (True, False):
            sim = Simulator(assemble(self.INFINITE),
                            CoreConfig(blocks_enabled=enabled))
            with pytest.raises(WatchdogTimeout):
                sim.run(max_instructions=budget)
            assert sim.state.retired == budget, enabled


class TestFaultExactness:
    def test_self_loop_fault_state_matches_stepwise(self):
        """A fault mid-self-loop must leave identical architectural state."""
        from repro.vm import MemoryFault
        # the load walks forward 4 bytes per iteration and eventually
        # leaves RAM: the fault interrupts a hot, internally-iterating block
        src = """
    .text
_start:
    set 0x407fff00, %o2
loop:
    ld [%o2], %g2
    add %o2, 4, %o2
    subcc %g0, 0, %g0
    be loop
    nop
    ta 5
"""
        states = []
        for enabled in (True, False):
            sim = Simulator(assemble(src), CoreConfig(blocks_enabled=enabled))
            with pytest.raises(MemoryFault):
                sim.run()
            st = sim.state
            states.append((st.retired, st.pc, st.npc, st.taken,
                           list(st.cat_counts), st.regs[10]))
        assert states[0] == states[1]


class TestSelfModifyingCode:
    def _patch_word(self):
        # "mov 42, %o0" == or %g0, 42, %o0
        return encoder.encode_arith("or", rd=8, rs1=0, imm=42)

    def test_cross_block_patch(self):
        """Patching an already-executed, cached subroutine must retranslate."""
        src = f"""
    .text
_start:
    set new_insn, %o2
    ld [%o2], %g3
    call doit
    nop
    mov %o0, %l0           ! first result: 7
    set patch, %o1
    st %g3, [%o1]          ! overwrite 'mov 7, %o0' with 'mov 42, %o0'
    call doit
    nop
    smul %l0, 100, %l0
    add %l0, %o0, %o0      ! 7 * 100 + 42
    mov 0, %g1
    ta 5
doit:
patch:
    mov 7, %o0
    retl
    nop

    .data
    .align 4
new_insn:
    .word {self._patch_word()}
"""
        blocked, stepped = run_both(src)
        assert blocked.exit_code == 742
        assert_identical(blocked, stepped)

    def test_same_block_patch(self):
        """A store may overwrite an instruction later in its *own* block."""
        src = f"""
    .text
_start:
    set new_insn, %o2
    ld [%o2], %g3
    set site, %o1
    call warm               ! translate the straight-line run once
    nop
    st %g3, [%o1]           ! patch two instructions ahead
    nop
site:
    mov 7, %o0              ! becomes 'mov 42, %o0'
    mov 0, %g1
    ta 5
warm:
    retl
    nop

    .data
    .align 4
new_insn:
    .word {self._patch_word()}
"""
        blocked, stepped = run_both(src)
        assert blocked.exit_code == 42
        assert_identical(blocked, stepped)

    def test_self_loop_patch_exits_loop(self):
        """Patching the back edge of the currently-iterating hot loop."""
        # Overwrite 'bne loop' with a nop once %o1 hits 5: the loop must
        # fall through immediately after the store becomes visible.
        nop_word = encoder.encode_nop()
        src = f"""
    .text
_start:
    set 50, %o1
    set branch_site, %o2
    set new_insn, %o3
    ld [%o3], %g4
loop:
    subcc %o1, 1, %o1
    cmp %o1, 5
    bne keep
    nop
    st %g4, [%o2]          ! kill the back edge
keep:
branch_site_pre:
    subcc %o1, 0, %g0
branch_site:
    bne loop
    nop
    mov %o1, %o0
    mov 0, %g1
    ta 5

    .data
    .align 4
new_insn:
    .word {nop_word}
"""
        blocked, stepped = run_both(src)
        assert blocked.exit_code == 5
        assert_identical(blocked, stepped)

    def test_host_write_invalidates_step_cache(self):
        """Memory pokes from the host must also drop stale translations."""
        src = """
    .text
_start:
    mov 7, %o0
    mov 0, %g1
    ta 5
"""
        sim = Simulator(assemble(src), CoreConfig())
        cpu, state = sim.cpu, sim.state
        entry = state.pc
        assert cpu.step() == "or"          # mov is or %g0, imm; now cached
        assert state.regs[8] == 7
        state.pc, state.npc = entry, entry + 4     # rewind
        state.mem.write_u32(entry, encoder.encode_arith(
            "or", rd=8, rs1=0, imm=99))
        assert cpu.step() == "or"
        assert state.regs[8] == 99, "stale closure executed after host patch"


class TestBlockSurface:
    def test_extras_and_stats(self):
        # only hot entries cross the compile threshold: the inner loop
        # becomes a superblock, the once-executed prologue stays stepped
        blocked, stepped = run_both(MIXED_KERNEL)
        assert blocked.extras["translated_blocks"] >= 1
        assert blocked.extras["avg_block_len"] > 1.0
        assert stepped.extras["avg_block_len"] == 0.0

    def test_decode_is_memoized(self):
        word = encoder.encode_arith("add", rd=3, rs1=1, rs2=2)
        assert decode(word) is decode(word)

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(block_size=0)
        with pytest.raises(ValueError):
            CoreConfig(block_size=4096)

    def test_config_copies_preserve_knobs(self):
        config = CoreConfig(blocks_enabled=False, block_size=7)
        assert config.without_fpu().block_size == 7
        assert not config.with_fpu().blocks_enabled
        assert config.with_blocks(True).blocks_enabled
        assert config.with_blocks(True, 9).block_size == 9
