"""Frequency Selective Extrapolation: reference invariants and kernel parity."""

from __future__ import annotations

import pytest

# the FSE reference model is genuinely numerical; unlike the evaluator
# fast paths (which fall back to pure python), these tests need numpy
np = pytest.importorskip("numpy")

from repro.fse import reference as ref
from repro.fse.images import (NUM_TEST_IMAGES, make_image, make_mask,
                              test_case as fse_case)
from repro.fse.kernel import build_fse_kernel, build_fse_module
from repro.fse.params import FseParams
from tests.helpers import run_kir

PARAMS = FseParams(block=8, iterations=4)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            FseParams(block=6)
        with pytest.raises(ValueError):
            FseParams(iterations=0)
        with pytest.raises(ValueError):
            FseParams(rho=1.5)
        with pytest.raises(ValueError):
            FseParams(gamma=0.0)

    def test_weight_table_is_decaying(self):
        table = PARAMS.weight_table()
        assert table[0] == 1.0
        assert all(table[i] >= table[i + 1] for i in range(len(table) - 1))

    def test_twiddles_are_unit_magnitude(self):
        re, im = PARAMS.twiddles()
        for r, i in zip(re, im):
            assert r * r + i * i == pytest.approx(1.0, abs=1e-12)

    def test_bit_reversal_is_involution(self):
        rev = PARAMS.bit_reversal()
        assert sorted(rev) == list(range(PARAMS.block))
        assert all(rev[rev[i]] == i for i in range(PARAMS.block))


class TestImages:
    def test_deterministic_and_in_range(self):
        for idx in range(NUM_TEST_IMAGES):
            img1 = make_image(idx, 8)
            img2 = make_image(idx, 8)
            assert img1 == img2
            assert all(0 <= p <= 255 for row in img1 for p in row)

    def test_masks_have_losses_and_support(self):
        for idx in range(NUM_TEST_IMAGES):
            mask = make_mask(idx, 8)
            flat = [v for row in mask for v in row]
            assert 0 in flat, f"mask {idx} has no losses"
            assert sum(flat) >= 2, f"mask {idx} has no support"

    def test_images_differ_between_indices(self):
        assert make_image(0, 8) != make_image(1, 8)

    def test_index_bounds(self):
        with pytest.raises(ValueError):
            make_image(NUM_TEST_IMAGES, 8)
        with pytest.raises(ValueError):
            make_mask(-1, 8)


class TestFftReference:
    def test_matches_numpy(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=8) + 1j * rng.normal(size=8)
        re = list(data.real)
        im = list(data.imag)
        ref.fft_inplace(re, im, PARAMS, inverse=False)
        expected = np.fft.fft(data)
        np.testing.assert_allclose(np.array(re) + 1j * np.array(im),
                                   expected, rtol=1e-12, atol=1e-12)

    def test_inverse_is_unscaled(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=8)
        re, im = list(data), [0.0] * 8
        ref.fft_inplace(re, im, PARAMS, inverse=False)
        ref.fft_inplace(re, im, PARAMS, inverse=True)
        np.testing.assert_allclose(np.array(re) / 8.0, data, rtol=1e-12)

    def test_fft2_matches_numpy(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(8, 8))
        re = list(data.flatten())
        im = [0.0] * 64
        ref.fft2(re, im, PARAMS, inverse=False)
        expected = np.fft.fft2(data)
        np.testing.assert_allclose(
            np.array(re).reshape(8, 8) + 1j * np.array(im).reshape(8, 8),
            expected, rtol=1e-10, atol=1e-9)


class TestReconstruction:
    def test_known_pixels_untouched(self):
        image, mask = fse_case(3, 8)
        recon = ref.reconstruct(image, mask, PARAMS)
        for y in range(8):
            for x in range(8):
                if mask[y][x]:
                    assert recon[y][x] == image[y][x]

    def test_lost_pixels_filled_plausibly(self):
        image, mask = fse_case(0, 8)
        recon = ref.reconstruct(image, mask, PARAMS)
        lost = [(y, x) for y in range(8) for x in range(8) if not mask[y][x]]
        assert lost
        for y, x in lost:
            assert 0 <= recon[y][x] <= 255

    def test_extrapolation_reduces_error_vs_constant_fill(self):
        """FSE should beat filling losses with mid-grey on smooth content."""
        params = FseParams(block=8, iterations=10)
        image, mask = fse_case(4, 8)
        recon = ref.reconstruct(image, mask, params)
        err_fse = 0
        err_flat = 0
        for y in range(8):
            for x in range(8):
                if not mask[y][x]:
                    err_fse += (recon[y][x] - image[y][x]) ** 2
                    err_flat += (128 - image[y][x]) ** 2
        assert err_fse < err_flat

    def test_full_mask_is_identity(self):
        image = make_image(2, 8)
        mask = [[1] * 8 for _ in range(8)]
        assert ref.reconstruct(image, mask, PARAMS) == image

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            ref.reconstruct([[0] * 12 for _ in range(12)],
                            [[1] * 12 for _ in range(12)], PARAMS)

    def test_checksum_rolls(self):
        assert ref.checksum([[1, 2]]) == ((1 * 31) + 2) & 0xFFFFFFFF


class TestKernelParity:
    @pytest.mark.parametrize("index", [0, 5])
    def test_hard_and_soft_match_reference(self, index):
        image, mask = fse_case(index, 8)
        expected = ref.checksum(ref.reconstruct(image, mask, PARAMS))
        res_hard = run_kir(build_fse_kernel(index, PARAMS, size=8),
                           float_abi="hard")
        res_soft = run_kir(build_fse_kernel(index, PARAMS, size=8),
                           float_abi="soft", has_fpu=False)
        assert res_hard.console.strip() == str(expected)
        assert res_soft.console.strip() == str(expected)

    def test_hard_build_uses_fpu_heavily(self):
        result = run_kir(build_fse_kernel(0, PARAMS, size=8),
                         float_abi="hard")
        counts = result.category_counts
        assert counts["fpu_arith"] > 1000
        assert counts["fpu_div"] >= 1  # the 1/W0 normalisation

    def test_soft_build_is_fpu_free_and_heavier(self):
        hard = run_kir(build_fse_kernel(0, PARAMS, size=8), float_abi="hard")
        soft = run_kir(build_fse_kernel(0, PARAMS, size=8),
                       float_abi="soft", has_fpu=False)
        assert soft.category_counts["fpu_arith"] == 0
        assert soft.retired > 3 * hard.retired

    def test_multiblock_image(self):
        params = FseParams(block=8, iterations=3)
        image = make_image(1, 16)
        mask = make_mask(1, 16)
        expected = ref.checksum(ref.reconstruct(image, mask, params))
        module = build_fse_module(image, mask, params, name="fse16")
        result = run_kir(module, float_abi="hard")
        assert result.console.strip() == str(expected)
