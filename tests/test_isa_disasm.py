"""Disassembler coverage: every implemented instruction renders sanely,
and rendering agrees with the assembler (asm -> encode -> disasm -> asm)."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.isa import decode, disassemble
from repro.isa.encoder import (
    encode_arith,
    encode_branch,
    encode_call,
    encode_fbranch,
    encode_fpop,
    encode_jmpl,
    encode_mem,
    encode_nop,
    encode_rdy,
    encode_sethi,
    encode_trap,
    encode_wry,
)
from repro.isa.opcodes import (
    ARITH_MNEMONIC_TO_OP3,
    FCC_NAME_TO_COND,
    FPOP_MNEMONIC_TO_OPF,
    ICC_COND_NAMES,
    MEM_MNEMONIC_TO_OP3,
    TRAP_COND_NAMES,
)


def test_every_mnemonic_disassembles():
    words = []
    for m in ARITH_MNEMONIC_TO_OP3:
        words.append((m, encode_arith(m, 1, 2, rs2=3)))
        words.append((m, encode_arith(m, 1, 2, imm=5)))
    for m in MEM_MNEMONIC_TO_OP3:
        words.append((m, encode_mem(m, 1, 2, imm=-8)))
        words.append((m, encode_mem(m, 1, 2, rs2=4)))
    for m in ICC_COND_NAMES.values():
        words.append((m, encode_branch(m, 16)))
        words.append((m, encode_branch(m, -16, annul=True)))
    for m in FCC_NAME_TO_COND:
        words.append((m, encode_fbranch(m, 8)))
    for m in FPOP_MNEMONIC_TO_OPF:
        words.append((m, encode_fpop(m, 4, 2, 0)))
    for m in TRAP_COND_NAMES.values():
        words.append((m, encode_trap(m, imm=5)))
    words.append(("call", encode_call(400)))
    words.append(("jmpl", encode_jmpl(0, 15, imm=8)))
    words.append(("sethi", encode_sethi(3, 0x3FF)))
    words.append(("nop", encode_nop()))
    words.append(("rd", encode_rdy(5)))
    words.append(("wr", encode_wry(5, imm=0)))
    for mnemonic, word in words:
        text = disassemble(decode(word))
        head = text.split()[0].split(",")[0]
        # the rendered mnemonic matches (allowing retl/ret synthetics)
        assert head.startswith(mnemonic[:2]) or head in ("retl", "ret"), \
            f"{mnemonic}: {text}"


def test_branch_target_rendering():
    word = encode_branch("bne", -24, annul=True)
    assert disassemble(decode(word)) == "bne,a . - 24"
    assert disassemble(decode(word), pc=0x40000100) == "bne,a 0x400000e8"


def test_call_target_with_pc():
    word = encode_call(0x40)
    assert disassemble(decode(word), pc=0x40000000) == "call 0x40000040"


def test_ret_retl_synthetics():
    assert disassemble(decode(encode_jmpl(0, 31, imm=8))) == "ret"
    assert disassemble(decode(encode_jmpl(0, 15, imm=8))) == "retl"


def test_sethi_rendering():
    assert disassemble(decode(encode_sethi(2, 0x12345))) == \
        "sethi %hi(0x48d1400), %g2"


@pytest.mark.parametrize("line", [
    "add %g2, %g4, %g1",
    "subcc %o0, -42, %o1",
    "ld [%o0 + 64], %o2",
    "ldd [%o0], %o2",
    "stb %o2, [%o0 + 3]",
    "faddd %f0, %f2, %f4",
    "fsqrtd %f6, %f8",
    "fitod %f1, %f2",
    "fcmps %f3, %f4",
    "umul %g1, %g2, %g3",
    "save %sp, -96, %sp",
])
def test_asm_disasm_asm_fixpoint(line):
    """Assembling the disassembly reproduces the same machine word."""
    prog1 = assemble(f"    .text\n_start:\n    {line}\n")
    word1 = int.from_bytes(prog1.text[:4], "big")
    rendered = disassemble(decode(word1))
    prog2 = assemble(f"    .text\n_start:\n    {rendered}\n")
    word2 = int.from_bytes(prog2.text[:4], "big")
    assert word1 == word2, f"{line!r} -> {rendered!r}"
