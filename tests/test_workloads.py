"""The workload registry and the image-processing kernel family."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import main
from repro.dse import DesignSpace, sweep, sweep_profiled
from repro.experiments.scale import DEFAULT, FULL, SMOKE
from repro.experiments.workloads import kernel_set, workload_pairs
from repro.runner import ExperimentRunner
from repro.vm import CoreConfig, Simulator
from repro.workloads import (
    PRESETS,
    build_cache_size,
    clear_build_cache,
    families,
    get_spec,
    register,
    select,
    select_pairs,
    specs,
)

SMOKE_SPECS = specs(scale=SMOKE)
# pipeline specs have no single program; their golden parity is checked
# per invocation in test_pipeline.py
KERNEL_SPECS = tuple(s for s in SMOKE_SPECS if s.family != "pipe")


def run_build(spec, abi: str, fpu: bool):
    program = spec.program(abi, SMOKE)
    return Simulator(program, CoreConfig(has_fpu=fpu)).run(
        max_instructions=SMOKE.max_instructions)


class TestRegistry:
    def test_families_and_counts(self):
        assert families() == ("fse", "hevc", "img", "pipe")
        assert len(specs("fse")) == 24
        assert len(specs("hevc")) == 36
        assert len(specs("img")) >= 7
        assert len(specs("pipe")) >= 2

    def test_smoke_suite_membership(self):
        names = [spec.name for spec in SMOKE_SPECS]
        # the paper preset at smoke scale plus every imaging kernel
        assert names[:2] == ["fse:00", "fse:01"]
        assert sum(n.startswith("hevc:") for n in names) == 4
        assert sum(n.startswith("img:") for n in names) == len(specs("img"))

    def test_scale_growth(self):
        assert len(specs("fse", DEFAULT)) == 8
        assert len(specs(scale=FULL)) == (24 + 36 + len(specs("img"))
                                          + len(specs("pipe")))

    def test_select_presets_families_and_globs(self):
        table3 = select("table3", SMOKE)
        assert [s.family for s in table3] == ["fse"] * 2 + ["hevc"] * 4
        assert select("img", SMOKE) == specs("img", SMOKE)
        assert [s.name for s in select("img:s*", SMOKE)] == [
            "img:sobel3x3", "img:sharpen3x3"]
        # comma combination, first occurrence wins on duplicates
        combo = select("fse:00,table3,img:median3x3", SMOKE)
        assert [s.name for s in combo[:2]] == ["fse:00", "fse:01"]
        assert combo[-1].name == "img:median3x3"
        # 'all' resolves dynamically to every registered family
        assert select("all") == specs()
        assert "all" not in PRESETS and PRESETS["table3"] == ("fse", "hevc")

    def test_select_rejects_empty_matches(self):
        with pytest.raises(ValueError):
            select("img:nope*", SMOKE)
        with pytest.raises(ValueError):
            select("", SMOKE)
        with pytest.raises(ValueError):
            # fse:23 exists but is outside the smoke suite
            select("fse:23", SMOKE)
        with pytest.raises(ValueError):
            get_spec("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register(get_spec("img:sobel3x3"))

    def test_build_cache_identity_and_clear(self):
        clear_build_cache()
        spec = get_spec("img:downscale2x")
        first = spec.program("hard", SMOKE)
        assert build_cache_size() == 1
        assert spec.program("hard", SMOKE) is first
        # the cache keys on the scale fields the build reads, not the
        # scale's identity: a renamed scale with the same image size hits
        renamed = dataclasses.replace(SMOKE, name="smoke-copy")
        assert spec.program("hard", renamed) is first
        assert spec.program("soft", SMOKE) is not first
        clear_build_cache()
        assert build_cache_size() == 0
        assert spec.program("hard", SMOKE) is not first

    def test_unknown_abi_rejected(self):
        with pytest.raises(ValueError):
            get_spec("fse:00").program("quad", SMOKE)

    def test_legacy_wrappers_resolve_through_registry(self):
        kernels = kernel_set(SMOKE)
        names = [name for name, _, _ in kernels]
        # historical order: both ABIs, HEVC streams before FSE kernels
        assert names[0].startswith("hevc:") and names[0].endswith(":float")
        assert names[len(names) // 2 - 1] == "fse:01:float"
        assert kernels[0][2] is get_spec(
            "hevc:gradient_pan_intra_qp10").program("hard", SMOKE)
        pairs = workload_pairs(SMOKE)
        assert [p.name for p in pairs] == [
            s.name for s in select("table3", SMOKE)]
        assert pairs[0].float_program is get_spec("fse:00").program(
            "hard", SMOKE)


class TestGoldenParity:
    @pytest.mark.parametrize(
        "spec", KERNEL_SPECS, ids=[s.name for s in KERNEL_SPECS])
    def test_hard_and_soft_builds_match_golden(self, spec):
        """Both ABI builds print the registered golden output, bit-exact."""
        golden = spec.golden(SMOKE)
        hard = run_build(spec, "hard", fpu=True)
        soft = run_build(spec, "soft", fpu=False)
        assert hard.exit_code == 0 and soft.exit_code == 0
        assert hard.console == golden
        assert soft.console == golden

    def test_imaging_family_exercises_both_units(self):
        hard = run_build(get_spec("img:sobel3x3"), "hard", fpu=True)
        soft = run_build(get_spec("img:sobel3x3"), "soft", fpu=False)
        assert hard.category_counts["fpu_arith"] > 0
        assert soft.category_counts["fpu_arith"] == 0
        assert soft.retired > hard.retired


class TestSweepEquivalence:
    @pytest.fixture(scope="class")
    def grids(self, tmp_path_factory):
        """Metered vs profiled sweep of the whole smoke suite, one config."""
        runner = ExperimentRunner(
            cache_dir=tmp_path_factory.mktemp("wl-cache"), workers=1)
        space = DesignSpace.from_spec("clock_mhz=80")
        pairs = [spec.pair(SMOKE) for spec in SMOKE_SPECS]
        budget = SMOKE.max_instructions
        metered = sweep(space, pairs, budget=budget, runner=runner)
        profiled = sweep_profiled(space, pairs, budget=budget, runner=runner)
        return metered, profiled

    def test_profiled_sweep_matches_metered(self, grids):
        metered, profiled = grids
        assert len(metered.points) == len(SMOKE_SPECS)
        for a, b in zip(metered.points, profiled.points):
            assert (a.config, a.workload, a.build) == \
                (b.config, b.workload, b.build)
            assert b.retired == a.retired
            assert b.cycles == a.cycles      # bit-identical integers
            assert b.time_s == a.time_s
            assert b.area_les == a.area_les
            assert b.energy_j == pytest.approx(a.energy_j, rel=1e-12)


class TestCli:
    def test_workloads_list(self, capsys):
        assert main(["workloads", "list", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "img:sobel3x3" in out and "fse:00" in out
        assert "pipe:xfel" in out
        assert "15 workloads" in out
        assert "fse:23" not in out

    def test_workloads_list_filter(self, capsys):
        assert main(["workloads", "list", "--workloads", "img:*"]) == 0
        out = capsys.readouterr().out
        assert "img:histstats" in out
        assert "hevc:" not in out

    def test_dse_workloads_filter_warm_equals_cold(self, capsys):
        """``repro dse --workloads`` through the cached parallel runner:
        a cold run (computing + caching) and a warm re-run render
        byte-identical reports."""
        argv = ["dse", "--scale", "smoke", "--axes", "fpu",
                "--workloads", "img:downscale2x,img:median3x3",
                "--format", "json"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert '"img:downscale2x"' in cold

    def test_dse_rejects_unknown_workload_filter(self, capsys):
        assert main(["dse", "--scale", "smoke", "--axes", "fpu",
                     "--workloads", "bogus*"]) == 2
        assert "matches nothing" in capsys.readouterr().err

    def test_workloads_list_rejects_unknown_filter(self, capsys):
        assert main(["workloads", "list", "--workloads", "img:nope*"]) == 2
        assert "matches nothing" in capsys.readouterr().err


def test_select_pairs_compiles_both_builds():
    pairs = select_pairs("img:downscale2x", SMOKE)
    assert len(pairs) == 1
    assert pairs[0].float_program.word_count() > 0
    assert pairs[0].fixed_program.word_count() > 0
