"""Load/store instruction semantics: widths, signs, pairs, endianness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm import MemoryFault
from tests.helpers import run_asm, run_exit_code

_DATA = """
    .data
    .align 8
buf:
    .word 0x81828384, 0x01020304
    .word 0, 0
"""


def _mem_kernel(body: str) -> str:
    return f"    .text\n_start:\n    set buf, %o1\n{body}\n" \
           f"    mov 0, %g1\n    ta 5\n{_DATA}"


class TestLoads:
    @pytest.mark.parametrize("op,offset,expected", [
        ("ld", 0, 0x81828384),
        ("ld", 4, 0x01020304),
        ("ldub", 0, 0x81),
        ("ldub", 3, 0x84),
        ("ldsb", 0, 0xFFFFFF81),   # sign-extended
        ("ldsb", 4, 0x01),
        ("lduh", 0, 0x8182),
        ("ldsh", 0, 0xFFFF8182),
        ("ldsh", 4, 0x0102),
    ])
    def test_load_widths(self, op, offset, expected):
        result = run_asm(_mem_kernel(f"    {op} [%o1 + {offset}], %o0"))
        assert result.exit_code == expected

    def test_ldd_fills_even_odd_pair(self):
        result = run_asm(_mem_kernel("""
    ldd [%o1], %o2
    xor %o2, %o3, %o0
"""))
        assert result.exit_code == 0x81828384 ^ 0x01020304

    def test_register_indexed_address(self):
        result = run_asm(_mem_kernel("""
    mov 4, %o2
    ld [%o1 + %o2], %o0
"""))
        assert result.exit_code == 0x01020304

    def test_misaligned_load_faults(self):
        with pytest.raises(MemoryFault):
            run_asm(_mem_kernel("    ld [%o1 + 2], %o0"))

    def test_misaligned_ldd_faults(self):
        with pytest.raises(MemoryFault):
            run_asm(_mem_kernel("    ldd [%o1 + 4], %o2"))


class TestStores:
    @pytest.mark.parametrize("op,offset,readback,expected", [
        ("st", 8, "ld [%o1 + 8], %o0", 0xCAFEBABE),
        ("sth", 8, "lduh [%o1 + 8], %o0", 0xBABE),
        ("stb", 9, "ldub [%o1 + 9], %o0", 0xBE),
    ])
    def test_store_widths(self, op, offset, readback, expected):
        result = run_asm(_mem_kernel(f"""
    set 0xCAFEBABE, %o2
    {op} %o2, [%o1 + {offset}]
    {readback}
"""))
        assert result.exit_code == expected

    def test_partial_store_preserves_neighbours(self):
        result = run_asm(_mem_kernel("""
    set 0xFF, %o2
    stb %o2, [%o1 + 1]
    ld [%o1], %o0
"""))
        assert result.exit_code == 0x81FF8384

    def test_std_writes_pair(self):
        result = run_asm(_mem_kernel("""
    set 0x11111111, %o2
    set 0x22222222, %o3
    std %o2, [%o1 + 8]
    ld [%o1 + 8], %g2
    ld [%o1 + 12], %g3
    sub %g2, %g3, %o0
"""))
        assert result.exit_code == (0x11111111 - 0x22222222) & 0xFFFFFFFF

    def test_store_outside_ram_faults(self):
        with pytest.raises(MemoryFault):
            run_exit_code("""
    set 0x10000000, %o1
    st %g0, [%o1]
""")


class TestFpMemory:
    def test_lddf_stdf_roundtrip(self):
        result = run_asm(_mem_kernel("""
    lddf [%o1], %f0
    stdf %f0, [%o1 + 8]
    ld [%o1 + 8], %g2
    ld [%o1], %g3
    xor %g2, %g3, %o0
"""))
        assert result.exit_code == 0

    def test_ldf_stf_single_word(self):
        result = run_asm(_mem_kernel("""
    ldf [%o1 + 4], %f5
    stf %f5, [%o1 + 8]
    ld [%o1 + 8], %o0
"""))
        assert result.exit_code == 0x01020304


class TestStorePatterns:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_word_roundtrip_arbitrary_patterns(self, value):
        result = run_asm(_mem_kernel(f"""
    set {value}, %o2
    st %o2, [%o1 + 8]
    ld [%o1 + 8], %o0
"""))
        assert result.exit_code == value

    def test_byte_order_big_endian(self):
        result = run_asm(_mem_kernel("""
    set 0x11223344, %o2
    st %o2, [%o1 + 8]
    ldub [%o1 + 8], %o0     ! MSB first on SPARC
"""))
        assert result.exit_code == 0x11
