"""Profile-once evaluation == metered simulation, across the cost model.

The execution profile (:mod:`repro.vm.profiler`) plus the linear
evaluator (:mod:`repro.nfp.linear`) must reproduce the metered testbed
for *any* hardware configuration: bit-identical integer counters and
cycles (hence bit-identical times) and dynamic energy within the metered
accumulator's own float rounding (1e-12 relative).  These tests pin that
contract per board, per sweep (property-based over randomized axis
values and over all five PR-3 axes), and pin the edge rules: profiled
block dispatch vs per-instruction observation, self-modifying kernels
falling back to full simulation, watchdog behaviour, and the cache
schema bump isolating profile payloads from pre-profile entries.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.dse import DesignSpace, WorkloadPair, get_axis, sweep, sweep_profiled
from repro.dse.evaluate import profile_core, profile_task
from repro.hw import Board, PerfectInstruments
from repro.hw.config import leon3_fpu, leon3_nofpu
from repro.isa.categories import CATEGORY_IDS
from repro.nfp.linear import ExecutionProfile, LinearNfpEngine
from repro.runner import ExperimentRunner, SimTask
from repro.runner.cache import ResultCache
from repro.runner.tasks import run_task, task_key
from repro.vm import CoreConfig, Simulator, WatchdogTimeout
from repro.vm.profiler import ProfileMeter

BUDGET = 5_000_000

#: Integer workload: taken/untaken branches, operand-dependent divides,
#: deep save/restore chains (spills for small window counts), memory
#: traffic -- every flag behaviour of the cost model.
FIXED_KERNEL = """
    .text
_start:
    save %sp, -96, %sp
    set 150, %l0
    set 123456789, %l1
    set buf, %l7
outer:
    set 15, %l2
inner:
    add %l1, %l2, %l3
    xor %l3, %l1, %l1
    smul %l1, 3, %l4
    subcc %l2, 1, %l2
    bne inner
    nop
    udiv %l1, 17, %l5
    sdiv %l5, 3, %l6
    st %l6, [%l7]
    ld [%l7], %l6
    andcc %l0, 3, %g0
    be skip
    nop
    call deeper
    nop
skip:
    subcc %l0, 1, %l0
    bne outer
    nop
    mov 0, %o0
    mov 0, %g1
    ta 5
deeper:
    save %sp, -96, %sp
    save %sp, -96, %sp
    save %sp, -96, %sp
    udiv %i0, 7, %l3
    restore
    restore
    restore
    retl
    nop

    .data
    .align 4
buf:
    .word 0
"""

#: Float workload: the integer body plus FP arithmetic, compares and
#: FP branches (runs only on FPU-bearing configurations).
FLOAT_KERNEL = FIXED_KERNEL.replace(
    """skip:
    subcc %l0, 1, %l0""",
    """skip:
    lddf [%l7 + 8], %f0
    lddf [%l7 + 16], %f2
    faddd %f0, %f2, %f4
    fmuld %f4, %f2, %f4
    fdivd %f4, %f2, %f6
    fsqrtd %f6, %f8
    fcmpd %f8, %f2
    fbg fkeep
    nop
    fmovs %f2, %f8
fkeep:
    fdtoi %f8, %f10
    subcc %l0, 1, %l0""").replace(
    """buf:
    .word 0
""",
    """buf:
    .word 0, 0
    .word 0x40091EB8, 0x51EB851F   ! 3.14
    .word 0x3FF80000, 0x00000000   ! 1.5
""")


@pytest.fixture(scope="module")
def pair():
    return WorkloadPair(name="mix",
                        float_program=assemble(FLOAT_KERNEL),
                        fixed_program=assemble(FIXED_KERNEL))


@pytest.fixture(scope="module")
def shared_runner(tmp_path_factory):
    return ExperimentRunner(
        cache_dir=tmp_path_factory.mktemp("profile-cache"), workers=1)


def profile_program(program, core):
    meter = ProfileMeter()
    simulator = Simulator(program, profile_core(core))
    sim = simulator.run_profiled(meter, max_instructions=BUDGET)
    payload = meter.snapshot(sim, clean=simulator.cpu.invalidations == 0)
    return ExecutionProfile.from_payload(payload), sim, payload


def assert_grids_match(metered, profiled, energy_tol=1e-12):
    # 1e-12 has ample margin here: the deviation is the metered
    # accumulator's own rounding drift, ~sqrt(retired) * eps, and these
    # kernels retire ~2e4 instructions (drift ~1e-14).  Longer workloads
    # need a proportionally padded tolerance.
    assert len(metered.points) == len(profiled.points)
    for a, b in zip(metered.points, profiled.points):
        assert (a.config, a.workload, a.build) == \
            (b.config, b.workload, b.build)
        assert b.retired == a.retired
        assert b.cycles == a.cycles          # bit-identical integers
        assert b.time_s == a.time_s          # same cycles, same conversion
        assert b.area_les == a.area_les
        assert b.energy_j == pytest.approx(a.energy_j, rel=energy_tol)


# -- board-level equivalence --------------------------------------------------

class TestLinearEvaluation:
    @pytest.mark.parametrize("factory", [
        lambda: leon3_fpu(),
        lambda: leon3_fpu(nwindows=4),
        lambda: leon3_fpu(nwindows=2),
        lambda: get_axis("wait_states").apply(leon3_fpu(), 3),
        lambda: get_axis("clock_mhz").apply(leon3_fpu(), 80.0),
    ], ids=["base", "w4", "w2", "ws3", "clk80"])
    def test_matches_board(self, factory, pair):
        hw = factory()
        raw = Board(hw).measure_raw(pair.float_program,
                                    max_instructions=BUDGET)
        profile, sim, _ = profile_program(pair.float_program, hw.core)
        nfp = LinearNfpEngine(hw).evaluate(profile)
        assert nfp.cycles == raw.cycles
        assert nfp.retired == raw.sim.retired == sim.retired
        assert nfp.true_time_s == raw.true_time_s
        assert nfp.dyn_energy_nj == pytest.approx(raw.dyn_energy_nj,
                                                  rel=1e-12)
        assert nfp.true_energy_j == pytest.approx(raw.true_energy_j,
                                                  rel=1e-12)
        # the window trap model resolves per-config from the histogram
        assert nfp.spills == raw.sim.spill_count
        assert nfp.fills == raw.sim.fill_count

    def test_one_profile_prices_every_window_count(self, pair):
        """One run yields exact spill/fill counts for any nwindows."""
        profile, _, _ = profile_program(pair.fixed_program,
                                        CoreConfig(has_fpu=False))
        for nwindows in range(2, 17):
            hw = leon3_nofpu(nwindows=nwindows)
            raw = Board(hw).measure_raw(pair.fixed_program,
                                        max_instructions=BUDGET)
            nfp = LinearNfpEngine(hw).evaluate(profile)
            assert nfp.cycles == raw.cycles, nwindows
            assert (nfp.spills, nfp.fills) == \
                (raw.sim.spill_count, raw.sim.fill_count), nwindows

    def test_profiled_blocks_match_stepwise_observation(self, pair):
        """Block-fused profiling == per-instruction observation, exactly.

        The profile is all integers, so the equality is bitwise.  The
        per-block execution counts stay in-memory dispatch diagnostics
        (populated only on the block path) and never reach the payload.
        """
        snaps = []
        meters = []
        for metered_blocks in (True, False):
            meter = ProfileMeter()
            core = profile_core(CoreConfig())
            simulator = Simulator(
                pair.float_program,
                core.with_metered_blocks(metered_blocks))
            sim = simulator.run_profiled(meter, max_instructions=BUDGET)
            snaps.append(meter.snapshot(sim, clean=True))
            meters.append(meter)
        blocked, stepped = snaps
        assert "blocks" not in blocked and "blocks" not in stepped
        assert meters[0].block_cells and not meters[1].block_cells
        assert blocked == stepped

    def test_payload_roundtrip_is_lossless(self, pair):
        """Cache JSON round-trips evaluate byte-identically (all-integer
        profiles + order-independent fsum evaluation)."""
        hw = leon3_fpu(nwindows=4)
        profile, _, payload = profile_program(pair.float_program, hw.core)
        rebuilt = ExecutionProfile.from_payload(
            json.loads(json.dumps(payload, sort_keys=True)))
        assert LinearNfpEngine(hw).evaluate(rebuilt) == \
            LinearNfpEngine(hw).evaluate(profile)


# -- sweep-level equivalence --------------------------------------------------

axis_values = st.tuples(
    st.sampled_from((12.5, 25.0, 50.0, 80.0, 100.0)),  # clock_mhz
    st.booleans(),                                     # fpu
    st.integers(2, 16),                                # nwindows
    st.integers(0, 4),                                 # wait_states
    st.sampled_from((4, 8, 32)),                       # block_size
)


class TestProfiledSweep:
    @settings(max_examples=12, deadline=None)
    @given(values=axis_values)
    def test_equals_metered_on_random_configs(self, pair, shared_runner,
                                              values):
        space = DesignSpace(tuple(
            (name, (value,)) for name, value in
            zip(("clock_mhz", "fpu", "nwindows", "wait_states",
                 "block_size"), values)))
        metered = sweep(space, [pair], budget=BUDGET, runner=shared_runner)
        profiled = sweep_profiled(space, [pair], budget=BUDGET,
                                  runner=shared_runner)
        assert_grids_match(metered, profiled)

    def test_all_five_axes_grid(self, pair, shared_runner):
        space = DesignSpace.from_spec(
            "clock_mhz=25:80,fpu,nwindows=4:8,wait_states=0:2,"
            "block_size=8:32")
        metered = sweep(space, [pair], budget=BUDGET, runner=shared_runner)
        profiled = sweep_profiled(space, [pair], budget=BUDGET,
                                  runner=shared_runner)
        assert_grids_match(metered, profiled)
        # 32 configurations, sharing two profiled runs (one per build)
        assert len(profiled.points) == 32
        front = profiled.front()
        assert front and all(p in profiled.aggregate() for p in front)

    def test_profiled_sweep_is_deterministic_warm_and_fresh(
            self, pair, shared_runner, tmp_path):
        space = DesignSpace.from_spec("fpu,nwindows=4:8")
        first = sweep_profiled(space, [pair], budget=BUDGET,
                               runner=shared_runner)
        warm = sweep_profiled(space, [pair], budget=BUDGET,
                              runner=shared_runner)
        assert warm == first
        fresh = sweep_profiled(space, [pair], budget=BUDGET,
                               runner=ExperimentRunner(cache_dir=tmp_path,
                                                       workers=1))
        assert fresh == first


# -- edge rules ---------------------------------------------------------------

SMC_KERNEL_TEMPLATE = """
    .text
_start:
    set new_insn, %o2
    ld [%o2], %g3
    call doit
    nop
    mov %o0, %l0           ! first result: 7
    set patch, %o1
    st %g3, [%o1]          ! overwrite 'mov 7, %o0' with 'mov 42, %o0'
    call doit
    nop
    smul %l0, 100, %l0
    add %l0, %o0, %o0      ! 7 * 100 + 42
    mov 0, %g1
    ta 5
doit:
patch:
    mov 7, %o0
    retl
    nop

    .data
    .align 4
new_insn:
    .word {patch_word}
"""


def smc_program():
    from repro.isa import encoder
    # "mov 42, %o0" == or %g0, 42, %o0
    word = encoder.encode_arith("or", rd=8, rs1=0, imm=42)
    return assemble(SMC_KERNEL_TEMPLATE.format(patch_word=word))


class TestEdgeRules:
    def test_smc_profile_is_flagged_unclean(self):
        program = smc_program()
        payload = run_task(profile_task(program, BUDGET, CoreConfig()))
        assert payload["sim"]["exit_code"] == 742
        assert payload["profile"]["clean"] is False
        assert payload["sim"]["extras"]["smc_invalidations"] >= 1.0

    def test_smc_sweep_falls_back_to_full_simulation(self, shared_runner):
        """Self-modifying workloads: profiled sweep == metered sweep,
        bit for bit (every point re-simulated on the metered path)."""
        program = smc_program()
        smc_pair = WorkloadPair(name="smc", float_program=program,
                                fixed_program=program)
        space = DesignSpace.from_spec("fpu,wait_states=0:2")
        metered = sweep(space, [smc_pair], budget=BUDGET,
                        runner=shared_runner)
        profiled = sweep_profiled(space, [smc_pair], budget=BUDGET,
                                  runner=shared_runner)
        # the fallback runs the identical metered tasks: exact equality,
        # energy included
        assert profiled == metered

    def test_clean_profile_of_plain_kernel(self, pair):
        _, _, payload = profile_program(pair.fixed_program,
                                        CoreConfig(has_fpu=False))
        assert payload["clean"] is True

    def test_watchdog_fires_like_the_metered_loop(self, pair):
        hw = leon3_fpu()
        with pytest.raises(WatchdogTimeout) as metered_exc:
            Board(hw, PerfectInstruments()).measure_raw(
                pair.float_program, max_instructions=1000)
        with pytest.raises(WatchdogTimeout) as profiled_exc:
            Simulator(pair.float_program, hw.core).run_profiled(
                ProfileMeter(), max_instructions=1000)
        assert profiled_exc.value.budget == metered_exc.value.budget == 1000


# -- cache schema isolation (satellite) ---------------------------------------

class TestCacheSchema:
    def test_profile_keys_cannot_alias_other_modes(self, pair):
        hw = leon3_fpu()
        program = pair.float_program
        mtask = SimTask(mode="metered", program=program, budget=BUDGET,
                        hw=hw)
        ftask = SimTask(mode="fast", program=program, budget=BUDGET,
                        core=hw.core)
        ptask = profile_task(program, BUDGET, hw.core)
        keys = {task_key(mtask), task_key(ftask), task_key(ptask)}
        assert len(keys) == 3

    def test_pre_profile_schema_entries_are_never_read(
            self, pair, tmp_path, monkeypatch):
        """Old (schema-1) metered entries cannot alias profile entries:
        the schema bump re-keys everything, so a stale payload planted
        under the old key is simply never addressed."""
        import repro.runner.tasks as tasks_mod
        hw = leon3_fpu()
        program = pair.float_program
        mtask = SimTask(mode="metered", program=program, budget=BUDGET,
                        hw=hw)
        ptask = profile_task(program, BUDGET, hw.core)
        with monkeypatch.context() as patch:
            patch.setattr(tasks_mod, "SCHEMA_VERSION", 1)
            old_metered_key = task_key(mtask)
            old_core_key = task_key(
                SimTask(mode="fast", program=program, budget=BUDGET,
                        core=profile_core(hw.core)))
        new_keys = {task_key(mtask), task_key(ptask)}
        assert old_metered_key not in new_keys
        assert old_core_key not in new_keys
        # plant stale pre-profile payloads at the old addresses
        cache = ResultCache(tmp_path)
        cache.put(old_metered_key, {"stale": "metered"})
        cache.put(old_core_key, {"stale": "fast"})
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        payload = runner.run_tasks([ptask])[0]
        assert "stale" not in payload
        assert payload["profile"]["clean"] is True
        assert payload["profile"]["retired"] > 0


# -- counts_vector satellite --------------------------------------------------

def test_counts_vector_is_a_cached_tuple(pair):
    sim = Simulator(pair.fixed_program, CoreConfig()).run(
        max_instructions=BUDGET)
    vector = sim.counts_vector
    assert isinstance(vector, tuple)
    assert vector is sim.counts_vector  # cached, not rebuilt per access
    assert list(vector) == [sim.category_counts[cid]
                            for cid in CATEGORY_IDS]
    assert sum(vector) == sim.retired
