"""Register windows, FPU semantics, traps and semihosting."""

from __future__ import annotations

import math
import struct

import pytest

from repro.vm import FpuDisabled, UnhandledTrap, WindowUnderflow
from repro.vm.morpher import (
    f64_to_i32_trunc,
    get_d,
    ieee_div,
    ieee_sqrt,
    put_d,
)
from tests.helpers import run_asm, run_exit_code


class TestRegisterWindows:
    def test_save_restore_shares_outs_ins(self):
        assert run_exit_code("""
    mov 11, %o1
    save %sp, -96, %sp
    ! caller's %o1 is now %i1
    add %i1, 1, %i1
    restore
    ! callee's %i1 went back to %o1
    mov %o1, %o0
""") == 12

    def test_locals_are_private_per_window(self):
        assert run_exit_code("""
    mov 5, %l0
    save %sp, -96, %sp
    mov 99, %l0
    restore
    mov %l0, %o0
""") == 5

    def test_save_computes_with_old_window(self):
        # `save %sp, -96, %sp`: the source %sp is the CALLER's stack
        # pointer, the destination lands in the CALLEE's window, and the
        # caller's %sp becomes the callee's %fp (= %i6).
        result = run_asm("""
    .text
_start:
    save %sp, -96, %sp
    sub %fp, %sp, %i0     ! callee frame size
    restore %i0, 0, %o0   ! restore moves the result to the caller
    mov 0, %g1
    ta 5
""")
        assert result.exit_code == 96

    def test_deep_recursion_spills(self):
        # factorial via recursion deeper than NWINDOWS exercises spill/fill
        result = run_asm("""
    .text
_start:
    mov 12, %o0
    call fact
    nop
    mov 0, %g1
    ta 5
fact:
    save %sp, -96, %sp
    cmp %i0, 1
    bg recurse
    nop
    mov 1, %i0
    ret
    restore
recurse:
    sub %i0, 1, %o0
    call fact
    nop
    smul %o0, %i0, %i0
    ret
    restore
""", nwindows=4)
        assert result.exit_code == math.factorial(12) & 0xFFFFFFFF
        assert result.max_window_depth >= 4
        assert result.spill_count > 0
        assert result.fill_count > 0

    def test_restore_without_save_underflows(self):
        with pytest.raises(WindowUnderflow):
            run_exit_code("    restore")


class TestFpuSemantics:
    def _fp_binop(self, op: str, a: float, b: float) -> float:
        a_bits = struct.unpack(">Q", struct.pack(">d", a))[0]
        b_bits = struct.unpack(">Q", struct.pack(">d", b))[0]
        result = run_asm(f"""
    .text
_start:
    set da, %o1
    lddf [%o1], %f0
    set db, %o1
    lddf [%o1], %f2
    {op} %f0, %f2, %f4
    set dout, %o1
    stdf %f4, [%o1]
    ld [%o1], %o0
    mov 0, %g1
    ta 5
    .data
    .align 8
da:   .word 0x{a_bits >> 32:08X}, 0x{a_bits & 0xFFFFFFFF:08X}
db:   .word 0x{b_bits >> 32:08X}, 0x{b_bits & 0xFFFFFFFF:08X}
dout: .word 0, 0
""")
        sim_mem_hi = result.exit_code
        return sim_mem_hi  # high word of the result

    @pytest.mark.parametrize("op,a,b,expected", [
        ("faddd", 1.5, 2.25, 1.5 + 2.25),
        ("fsubd", 10.0, 0.125, 9.875),
        ("fmuld", 3.0, -2.5, -7.5),
        ("fdivd", 1.0, 3.0, 1.0 / 3.0),
    ])
    def test_double_arithmetic_high_word(self, op, a, b, expected):
        expected_hi = struct.unpack(
            ">Q", struct.pack(">d", expected))[0] >> 32
        assert self._fp_binop(op, a, b) == expected_hi

    def test_fsqrt_and_conversions(self):
        result = run_asm("""
    .text
_start:
    set da, %o1
    lddf [%o1], %f0
    fsqrtd %f0, %f2
    fdtoi %f2, %f4
    set dout, %o1
    stf %f4, [%o1]
    ld [%o1], %o0
    mov 0, %g1
    ta 5
    .data
    .align 8
da:   .word 0x40310000, 0    ! 17.0
dout: .word 0
""")
        assert result.exit_code == int(math.sqrt(17.0))

    def test_fitod_roundtrip(self):
        result = run_asm("""
    .text
_start:
    set val, %o1
    ldf [%o1], %f0
    fitod %f0, %f2
    faddd %f2, %f2, %f2     ! *2
    fdtoi %f2, %f4
    set val, %o1
    stf %f4, [%o1]
    ld [%o1], %o0
    mov 0, %g1
    ta 5
    .data
    .align 4
val: .word 21
""")
        assert result.exit_code == 42

    def test_fcmp_branches(self):
        result = run_asm("""
    .text
_start:
    set da, %o1
    lddf [%o1], %f0
    set db, %o1
    lddf [%o1], %f2
    fcmpd %f0, %f2
    nop
    fbl less
    nop
    mov 0, %o0
    ba out
    nop
less:
    mov 1, %o0
out:
    mov 0, %g1
    ta 5
    .data
    .align 8
da: .word 0x3FF00000, 0     ! 1.0
db: .word 0x40000000, 0     ! 2.0
""")
        assert result.exit_code == 1

    def test_fneg_fabs_bit_ops(self):
        result = run_asm("""
    .text
_start:
    set da, %o1
    lddf [%o1], %f0
    fnegs %f0, %f2
    fmovs %f1, %f3
    fabss %f2, %f4
    set dout, %o1
    stf %f2, [%o1]
    ld [%o1], %o0
    mov 0, %g1
    ta 5
    .data
    .align 8
da:   .word 0x3FF00000, 0
dout: .word 0
""")
        assert result.exit_code == 0xBFF00000  # -1.0 high word

    def test_fpu_disabled_trap(self):
        with pytest.raises(FpuDisabled):
            run_exit_code("    faddd %f0, %f2, %f4", has_fpu=False)

    def test_integer_kernels_run_without_fpu(self):
        assert run_exit_code("    mov 9, %o0", has_fpu=False) == 9


class TestFpHelpers:
    def test_ieee_div_by_zero(self):
        assert ieee_div(1.0, 0.0) == math.inf
        assert ieee_div(-1.0, 0.0) == -math.inf
        assert math.isnan(ieee_div(0.0, 0.0))
        assert math.isnan(ieee_div(math.nan, 2.0))

    def test_ieee_sqrt(self):
        assert ieee_sqrt(4.0) == 2.0
        assert math.isnan(ieee_sqrt(-1.0))
        assert math.copysign(1.0, ieee_sqrt(-0.0)) == -1.0

    def test_f64_to_i32_trunc(self):
        assert f64_to_i32_trunc(1.99) == 1
        assert f64_to_i32_trunc(-1.99) == (-1) & 0xFFFFFFFF
        assert f64_to_i32_trunc(float("nan")) == 0
        assert f64_to_i32_trunc(1e300) == 0x7FFFFFFF
        assert f64_to_i32_trunc(-1e300) == 0x80000000

    def test_get_put_d_roundtrip(self):
        fregs = [0] * 32
        put_d(fregs, 4, -123.456)
        assert get_d(fregs, 4) == -123.456


class TestSemihosting:
    def test_console_services(self):
        result = run_asm("""
    .text
_start:
    mov 'H', %o0
    mov 1, %g1
    ta 5
    mov 'i', %o0
    mov 1, %g1
    ta 5
    mov 1234, %o0
    mov 2, %g1
    ta 5
    set msg, %o0
    mov 3, %o1
    mov 4, %g1
    ta 5
    mov 0, %o0
    mov 0, %g1
    ta 5
    .data
msg: .ascii "ok\\n"
""")
        assert result.console == "Hi1234\nok\n"
        assert result.exit_code == 0

    def test_clock_returns_retired_count(self):
        result = run_asm("""
    .text
_start:
    mov 3, %g1
    ta 5
    mov %o0, %o0
    mov 0, %g1
    ta 5
""")
        # exit code is the instruction count at the clock call
        assert 0 < result.exit_code < 10

    def test_unknown_service_raises(self):
        with pytest.raises(UnhandledTrap):
            run_exit_code("""
    mov 77, %g1
    ta 5
""")

    def test_unknown_trap_number_raises(self):
        with pytest.raises(UnhandledTrap):
            run_exit_code("    ta 9")

    def test_conditional_trap_not_taken_falls_through(self):
        assert run_exit_code("""
    cmp %g0, 1
    te 9                    ! equal? no -> no trap
    mov 5, %o0
""") == 5
