"""Command-line interface tests."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_disasm(capsys):
    assert main(["disasm", "0x82008004"]) == 0
    assert "add %g2, %g4, %g1" in capsys.readouterr().out


def test_figure2_command(capsys):
    assert main(["figure2"]) == 0
    assert "decoder" in capsys.readouterr().out


def test_figure3_command(capsys):
    assert main(["figure3"]) == 0
    assert "doBranch" in capsys.readouterr().out


def test_asm_and_run_commands(tmp_path, capsys):
    source = tmp_path / "k.s"
    source.write_text("""
    .text
_start:
    mov 6, %o1
    smul %o1, 7, %o0
    mov 2, %g1
    ta 5
    mov 0, %o0
    mov 0, %g1
    ta 5
    .data
buf: .word 0
""")
    assert main(["asm", str(source)]) == 0
    out = capsys.readouterr().out
    assert ".text" in out and "entry" in out

    assert main(["run", str(source)]) == 0
    out = capsys.readouterr().out
    assert "42" in out
    assert "exit code : 0" in out
    assert "int_arith" in out


def test_run_no_fpu_flag(tmp_path, capsys):
    source = tmp_path / "f.s"
    source.write_text("""
    .text
_start:
    faddd %f0, %f2, %f4
    mov 0, %g1
    ta 5
""")
    from repro.vm import FpuDisabled
    with pytest.raises(FpuDisabled):
        main(["run", str(source), "--no-fpu"])


def test_table1_smoke(capsys):
    assert main(["table1", "--scale", "smoke"]) == 0
    assert "Instruction category" in capsys.readouterr().out


def test_workloads_requires_action():
    with pytest.raises(SystemExit):
        main(["workloads"])
    with pytest.raises(SystemExit):
        main(["workloads", "frobnicate"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
