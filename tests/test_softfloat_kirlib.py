"""The kernel-IR soft-float runtime vs the Python reference, in batch.

One simulated kernel applies every runtime routine to many operand pairs;
the outputs must equal :mod:`repro.softfloat.pyref` bit-for-bit (which is
itself hypothesis-verified against the host FPU).
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.kir import I32, Module, U32, compile_module
from repro.softfloat import pyref as sf
from repro.softfloat.kirlib import ensure_softfloat
from repro.vm import CoreConfig, Simulator

_REC = 56  # bytes per result record


def _interesting_pairs(count: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)

    def bits(x: float) -> int:
        return struct.unpack(">Q", struct.pack(">d", x))[0]

    def rand_bits() -> int:
        r = rng.random()
        if r < 0.45:
            return rng.getrandbits(64)
        if r < 0.65:
            return bits(rng.uniform(-1e12, 1e12))
        if r < 0.75:
            return rng.getrandbits(52) | (rng.getrandbits(1) << 63)
        return rng.choice([
            0, sf.SIGN, sf.INF, sf.INF | sf.SIGN, sf.QNAN, 1,
            bits(1.0), bits(-1.0), bits(0.5), bits(2.0),
            (0x7FE << 52) | sf.MASK52, sf.HIDDEN - 1,
        ])

    return [(rand_bits(), rand_bits()) for _ in range(count)]


def _run_batch(pairs: list[tuple[int, int]]):
    m = Module("sfbatch")
    ensure_softfloat(m)
    inbuf = []
    for a, b in pairs:
        inbuf += [a >> 32, a & 0xFFFFFFFF, b >> 32, b & 0xFFFFFFFF]
    m.global_words("inp", inbuf, align=8)
    m.global_zeros("outp", len(pairs) * _REC, align=8)
    f = m.function("main", ret=I32)
    rh, rl = f.local(U32, "rh"), f.local(U32, "rl")
    src = f.local(U32, "src", init=m.addr_of("inp"))
    dst = f.local(U32, "dst", init=m.addr_of("outp"))
    ah, al = f.local(U32, "ah"), f.local(U32, "al")
    bh, bl = f.local(U32, "bh"), f.local(U32, "bl")
    with f.for_range("i", 0, len(pairs)):
        f.assign(ah, f.load(src))
        f.assign(al, f.load(src + 4))
        f.assign(bh, f.load(src + 8))
        f.assign(bl, f.load(src + 12))
        for k, op in enumerate(("__sf_add", "__sf_sub", "__sf_mul",
                                "__sf_div")):
            f.call_pair(rh, rl, op, ah, al, bh, bl)
            f.store(dst + k * 8, rh)
            f.store(dst + k * 8 + 4, rl)
        f.call_pair(rh, rl, "__sf_sqrt", ah, al)
        f.store(dst + 32, rh)
        f.store(dst + 36, rl)
        f.store(dst + 40, f.call("__sf_cmp", ah, al, bh, bl))
        f.store(dst + 44, f.call("__sf_dtoi", ah, al))
        f.call_pair(rh, rl, "__sf_itod", al)
        f.store(dst + 48, rh)
        f.store(dst + 52, rl)
        f.assign(src, src + 16)
        f.assign(dst, dst + _REC)
    f.ret(0)

    program = compile_module(m, float_abi="soft")
    simulator = Simulator(program, CoreConfig(has_fpu=False))
    result = simulator.run(max_instructions=200_000_000)
    assert result.exit_code == 0
    # soft-float must never touch the FPU
    assert result.category_counts["fpu_arith"] == 0
    assert result.category_counts["fpu_div"] == 0
    assert result.category_counts["fpu_sqrt"] == 0
    return simulator.memory, program.symbol("outp")


@pytest.fixture(scope="module")
def batch():
    pairs = _interesting_pairs(220, seed=1234)
    memory, base = _run_batch(pairs)

    def read_pair(index: int, slot: int) -> int:
        off = base + index * _REC + slot * 4
        return (memory.read_u32(off) << 32) | memory.read_u32(off + 4)

    def read_word(index: int, slot: int) -> int:
        return memory.read_u32(base + index * _REC + slot * 4)

    return pairs, read_pair, read_word


@pytest.mark.parametrize("slot,name,ref", [
    (0, "add", sf.f64_add),
    (2, "sub", sf.f64_sub),
    (4, "mul", sf.f64_mul),
    (6, "div", sf.f64_div),
])
def test_binary_ops_bit_exact(batch, slot, name, ref):
    pairs, read_pair, _ = batch
    for i, (a, b) in enumerate(pairs):
        got = read_pair(i, slot)
        expected = ref(a, b)
        assert got == expected, (
            f"{name}(0x{a:016x}, 0x{b:016x}) = 0x{got:016x}, "
            f"expected 0x{expected:016x}")


def test_sqrt_bit_exact(batch):
    pairs, read_pair, _ = batch
    for i, (a, _) in enumerate(pairs):
        assert read_pair(i, 8) == sf.f64_sqrt(a)


def test_cmp_matches(batch):
    pairs, _, read_word = batch
    for i, (a, b) in enumerate(pairs):
        assert read_word(i, 10) == sf.f64_cmp(a, b)


def test_dtoi_matches(batch):
    pairs, _, read_word = batch
    for i, (a, _) in enumerate(pairs):
        assert read_word(i, 11) == sf.f64_to_i32(a)


def test_itod_matches(batch):
    pairs, read_pair, _ = batch
    for i, (a, _) in enumerate(pairs):
        assert read_pair(i, 12) == sf.i32_to_f64(a & 0xFFFFFFFF)


def test_ensure_softfloat_idempotent():
    m = Module("t")
    ensure_softfloat(m)
    count = len(m.functions)
    ensure_softfloat(m)
    assert len(m.functions) == count
    assert "__sf_add" in m.functions
    assert "__sf_roundpack" in m.functions
