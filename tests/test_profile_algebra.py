"""The profile algebra: composition laws and compose-vs-simulate parity.

The contracts under test (see :mod:`repro.nfp.linear`):

* profiles form a commutative monoid under :func:`add_profiles` with
  :func:`identity_profile` neutral, and ``scale_profile(p, n)`` equals
  the n-fold add -- all exact, integers only;
* the lowered-vector twins (:func:`add_vectors`, :func:`scale_vectors`)
  are *bit-identical* to lowering the composed profile;
* :func:`offset_sites` changes no NFP (site keys only group counts);
* :func:`compose_profiles` prices a weighted mix of real stage
  invocations bit-identically in cycles/retired to metering every
  invocation (energy <= 1e-12 relative), for any stage order and any
  frame mix -- the exactness the pipeline workloads stand on.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.board import Board
from repro.hw.config import HwConfig
from repro.nfp.linear import (
    SITE_SPAN,
    ExecutionProfile,
    LinearNfpEngine,
    add_profiles,
    add_vectors,
    canonical_basis,
    compose_profiles,
    identity_profile,
    lower_profile,
    offset_sites,
    scale_profile,
    scale_vectors,
)
from repro.vm.blocks import FLAG_BRANCH, cost_flags
from repro.vm.config import CoreConfig

BASIS = canonical_basis()
FLAGS = cost_flags()


@st.composite
def profiles(draw):
    """A structurally valid ExecutionProfile (with site tables)."""
    mnemonics = {}
    retired = 0
    for m in draw(st.lists(st.sampled_from(BASIS), min_size=1,
                           max_size=10, unique=True)):
        count = draw(st.integers(min_value=1, max_value=10**6))
        jsum = draw(st.integers(min_value=0, max_value=count * 65535))
        if FLAGS.get(m) == FLAG_BRANCH:
            uc = draw(st.integers(min_value=0, max_value=count))
            uj = draw(st.integers(min_value=0, max_value=uc * 65535))
        else:
            uc = uj = 0
        mnemonics[m] = (count, jsum, uc, uj)
        retired += count

    def site_table(span: int):
        return {key: (draw(st.integers(1, 10**4)),
                      draw(st.integers(0, 10**4 * 65535)))
                for key in draw(st.lists(st.integers(0, span),
                                         max_size=4, unique=True))}

    return ExecutionProfile(
        retired=retired, clean=draw(st.booleans()), mnemonics=mnemonics,
        branch_sites=site_table(400), div_sites=site_table(400),
        save_depths=site_table(24), restore_depths=site_table(24))


@settings(max_examples=40, deadline=None)
@given(profiles(), profiles(), profiles())
def test_add_is_commutative_and_associative(a, b, c):
    assert add_profiles(a, b) == add_profiles(b, a)
    assert add_profiles(add_profiles(a, b), c) == \
        add_profiles(a, add_profiles(b, c)) == add_profiles(a, b, c)


@settings(max_examples=40, deadline=None)
@given(profiles())
def test_identity_is_neutral(p):
    assert add_profiles() == identity_profile()
    assert add_profiles(p, identity_profile()) == p
    assert add_profiles(identity_profile(), p) == p


@settings(max_examples=25, deadline=None)
@given(profiles(), st.integers(min_value=0, max_value=5))
def test_scale_equals_repeated_add(p, n):
    assert scale_profile(p, n) == add_profiles(*([p] * n))


def test_scale_rejects_negative_counts():
    with pytest.raises(ValueError):
        scale_profile(identity_profile(), -1)
    with pytest.raises(ValueError):
        scale_vectors(lower_profile(identity_profile()), -1)


@settings(max_examples=40, deadline=None)
@given(profiles(), profiles())
def test_add_vectors_bit_identical_to_lowered_add(a, b):
    """Vector-level addition == lowering the profile-level sum, bitwise."""
    assert add_vectors(lower_profile(a), lower_profile(b)) == \
        lower_profile(add_profiles(a, b))


@settings(max_examples=25, deadline=None)
@given(profiles(), st.integers(min_value=0, max_value=1000))
def test_scale_vectors_bit_identical_to_lowered_scale(p, n):
    assert scale_vectors(lower_profile(p), n) == \
        lower_profile(scale_profile(p, n))


@settings(max_examples=20, deadline=None)
@given(profiles(), st.integers(min_value=1, max_value=3))
def test_offset_sites_changes_no_nfp(p, windows_of_span):
    """Rebasing site keys is pricing-invariant (it only disambiguates)."""
    shifted = offset_sites(p, windows_of_span * SITE_SPAN)
    assert shifted.retired == p.retired
    for nwindows in (2, 8):
        assert shifted.window_events(nwindows) == p.window_events(nwindows)
    engine = LinearNfpEngine(HwConfig(name="leon3", core=CoreConfig()))
    assert engine.evaluate(shifted) == engine.evaluate(p)


# -- compose-vs-simulate parity on real stage invocations ---------------------

SIZE = 8   # tiny frames: the parity laws are size-independent

HWS = (
    HwConfig(name="leon3", core=CoreConfig(has_fpu=True)),
    HwConfig(name="leon3-nofpu", core=CoreConfig(has_fpu=False)),
)


@pytest.fixture(scope="module")
def stage_runs():
    """Per-stage (profile, per-hw raw metering) of real invocations."""
    from repro.dse.evaluate import profile_task
    from repro.runner.tasks import run_task
    from repro.workloads.pipeline import _invocation_program, frame_image

    runs = []
    image = frame_image(2, SIZE)
    for stage in ("bgsub", "threshold", "gauss5x5", "sobel3x3",
                  "histstats"):
        for hw in HWS:
            abi = "hard" if hw.core.has_fpu else "soft"
            program = _invocation_program(stage, image, SIZE, abi)
            payload = run_task(profile_task(program, 10**7, hw.core))
            profile = ExecutionProfile.from_payload(payload["profile"])
            raw = Board(hw).measure_raw(program, max_instructions=10**7)
            runs.append((stage, hw, profile, raw))
    return runs


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_compose_matches_metered_stream(stage_runs, data):
    """Any stage order, any frame mix: composed == metered, exactly.

    Cycles and retired counts of the composed profile are bit-identical
    to the weighted sum of per-invocation metered runs -- the exact
    oracle the pipeline workloads rely on -- and composed energy is
    within 1e-12 relative of the combined metered energy.
    """
    hw = data.draw(st.sampled_from(HWS))
    pool = [(stage, profile, raw)
            for stage, run_hw, profile, raw in stage_runs if run_hw is hw]
    chosen = data.draw(st.lists(st.sampled_from(pool), min_size=1,
                                max_size=6))
    counts = [data.draw(st.integers(min_value=1, max_value=1000))
              for _ in chosen]
    composed = compose_profiles(
        [(profile, count)
         for (_, profile, _), count in zip(chosen, counts)])
    nfp = LinearNfpEngine(hw).evaluate(composed)

    want_cycles = sum(count * raw.cycles
                      for (_, _, raw), count in zip(chosen, counts))
    want_retired = sum(count * raw.sim.retired
                       for (_, _, raw), count in zip(chosen, counts))
    assert nfp.cycles == want_cycles
    assert nfp.retired == want_retired
    assert nfp.true_time_s == want_cycles * hw.cycle_seconds
    dyn_nj = math.fsum(count * raw.dyn_energy_nj
                       for (_, _, raw), count in zip(chosen, counts))
    want_energy = dyn_nj * 1e-9 + hw.static_power_w * nfp.true_time_s
    assert nfp.true_energy_j == pytest.approx(want_energy, rel=1e-12)
