"""Shared test configuration.

Pins the runner's result cache to a per-session temporary directory so
test runs are hermetic: they exercise the real cache machinery but never
read state left behind by earlier runs or other tools.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("repro-cache"))
