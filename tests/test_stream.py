"""Streamed sweeps: online Pareto fronts equal to the materialized twin.

Two layers of guarantees:

* :class:`repro.dse.pareto.ParetoAccumulator` -- the bounded-memory
  online front is element-for-element equal to the batch
  :func:`repro.dse.pareto.pareto_front` on any point sequence,
  including duplicates and exact objective ties (property-tested);
* :func:`repro.dse.engine.sweep_streamed` -- the streamed summary (and
  every :class:`repro.dse.report.StreamReport` format rendered from it)
  is byte-identical to ``StreamSummary.from_grid`` over the
  materialized :func:`repro.dse.engine.sweep_profiled` grid, with or
  without numpy, at any chunk size.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    DesignSpace,
    ParetoAccumulator,
    StreamSummary,
    WorkloadPair,
    knee_point,
    pareto_front,
    sweep_profiled,
    sweep_streamed,
)
from repro.dse.report import StreamReport
from repro.fse.kernel import build_fse_kernel
from repro.fse.params import FseParams
from repro.hw.config import HwConfig
from repro.kir import compile_module
from repro.runner import ExperimentRunner
from repro.vm.config import CoreConfig

BUDGET = 50_000_000

SPACE = DesignSpace((
    ("clock_mhz", (25.0, 50.0, 66.0)),
    ("fpu", (False, True)),
    ("nwindows", (2, 8)),
    ("wait_states", (0, 2)),
))


@contextmanager
def pure_python():
    held = os.environ.get("REPRO_NUMPY")
    os.environ["REPRO_NUMPY"] = "0"
    try:
        yield
    finally:
        if held is None:
            os.environ.pop("REPRO_NUMPY", None)
        else:
            os.environ["REPRO_NUMPY"] = held


# -- the online accumulator vs the batch front (property-based) --------------

# small coordinate grids force duplicates and exact objective ties
vectors = st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 3))


@settings(max_examples=200, deadline=None)
@given(st.lists(vectors, min_size=1, max_size=64))
def test_accumulator_front_equals_batch_front(points):
    acc = ParetoAccumulator()
    for point in points:
        acc.add(point)
    assert acc.front() == pareto_front(points)
    assert acc.seen == len(points)
    assert len(acc) <= len(points)


@settings(max_examples=100, deadline=None)
@given(st.lists(vectors, min_size=1, max_size=48))
def test_accumulator_knee_matches_batch(points):
    acc = ParetoAccumulator()
    for point in points:
        acc.add(point)
    assert knee_point(acc.front()) == knee_point(pareto_front(points))


@settings(max_examples=100, deadline=None)
@given(st.lists(vectors, min_size=1, max_size=48))
def test_accumulator_add_verdict_is_definitive_when_false(points):
    """A False add() means the point is not on the final front."""
    acc = ParetoAccumulator()
    rejected = []
    for point in points:
        if not acc.add(point):
            rejected.append(point)
    front = acc.front()
    assert all(point not in front for point in rejected)


# -- streamed vs materialized sweeps (end to end) ----------------------------


@pytest.fixture(scope="module")
def tiny_pair():
    params = FseParams(block=8, iterations=2)
    module = build_fse_kernel(0, params, size=8)
    return WorkloadPair(
        name="fse:00",
        float_program=compile_module(module, "hard"),
        fixed_program=compile_module(module, "soft"))


@pytest.fixture(scope="module")
def sweep_setup(tiny_pair, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("stream-cache")
    runner = ExperimentRunner(cache_dir=cache_dir, workers=1)
    base = HwConfig(name="leon3", core=CoreConfig())
    return tiny_pair, runner, base


def streamed(setup, **kwargs):
    pair, runner, base = setup
    return sweep_streamed(SPACE, [pair], budget=BUDGET, runner=runner,
                          base=base, **kwargs)


def test_streamed_equals_materialized_summary(sweep_setup):
    pair, runner, base = sweep_setup
    grid = sweep_profiled(SPACE, [pair], budget=BUDGET, runner=runner,
                          base=base)
    assert streamed(sweep_setup) == StreamSummary.from_grid(grid)
    assert (streamed(sweep_setup, front_cap=3)
            == StreamSummary.from_grid(grid, front_cap=3))


def test_streamed_report_is_byte_identical_to_materialized(sweep_setup):
    pair, runner, base = sweep_setup
    grid = sweep_profiled(SPACE, [pair], budget=BUDGET, runner=runner,
                          base=base)
    summary = streamed(sweep_setup, front_cap=4)
    twin = StreamSummary.from_grid(grid, front_cap=4)
    for fmt in ("text", "csv", "json"):
        lhs = StreamReport(summary).render(fmt)
        rhs = StreamReport(twin).render(fmt)
        assert lhs == rhs, f"format {fmt} diverged"


def test_streamed_pure_python_matches_numpy(sweep_setup):
    fast = streamed(sweep_setup)
    with pure_python():
        pure = streamed(sweep_setup)
    assert fast == pure


def test_streamed_is_chunk_independent(sweep_setup):
    reference = streamed(sweep_setup)
    for chunk in (1, 7, 13):
        assert streamed(sweep_setup, chunk=chunk) == reference


def test_streamed_front_cap_bounds_materialized_points(sweep_setup):
    capped = streamed(sweep_setup, front_cap=2)
    full = streamed(sweep_setup)
    assert capped.front_cap == 2
    assert len(capped.aggregate.front) <= 2
    # counts, knees and minima stay exact under any cap
    assert capped.aggregate.front_size == full.aggregate.front_size
    assert capped.aggregate.knee == full.aggregate.knee
    assert capped.aggregate.best_energy == full.aggregate.best_energy
    assert capped.aggregate.front == full.aggregate.front[:2]


def test_streamed_refinement_is_deterministic(sweep_setup):
    first = streamed(sweep_setup, refine=2)
    again = streamed(sweep_setup, refine=2)
    assert first == again
    assert first.refined >= 0
    assert first.configs == SPACE.size + first.refined
    with pure_python():
        pure = streamed(sweep_setup, refine=2)
    assert pure == first


def test_streamed_never_materializes_the_grid(sweep_setup):
    """The summary retains fronts and winners, never per-config cells."""
    summary = streamed(sweep_setup, front_cap=2)
    assert summary.configs == SPACE.size
    held = len(summary.aggregate.front) + sum(
        len(w.front) for w in summary.per_workload)
    assert held <= (len(summary.per_workload) + 1) * (2 + 3)


def test_cli_parser_stream_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["dse", "--stream", "--refine", "2", "--front-cap", "16"])
    assert args.stream is True
    assert args.refine == 2
    assert args.front_cap == 16
