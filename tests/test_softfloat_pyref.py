"""Bit-exactness of the pure-Python soft-float against the host FPU.

CPython floats are IEEE-754 binary64 with round-to-nearest-even, so
``struct``-packed host results are the oracle.  NaNs compare as a class
(payloads are canonicalised, see the module docstring).
"""

from __future__ import annotations

import math
import struct

from hypothesis import given, settings, strategies as st

from repro.softfloat import pyref as sf
from repro.vm.morpher import f64_to_i32_trunc, ieee_div, ieee_sqrt


def bits_of(x: float) -> int:
    return struct.unpack(">Q", struct.pack(">d", x))[0]


def value_of(b: int) -> float:
    return struct.unpack(">d", struct.pack(">Q", b & (2**64 - 1)))[0]


finite = st.floats(allow_nan=False, allow_infinity=False)
any_bits = st.one_of(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.builds(bits_of, finite),
    st.builds(lambda f, s: (s << 63) | f,
              st.integers(min_value=0, max_value=(1 << 52) - 1),
              st.integers(min_value=0, max_value=1)),  # subnormals
    st.sampled_from([0, sf.SIGN, sf.INF, sf.INF | sf.SIGN, sf.QNAN,
                     1, (1 << 52) - 1, bits_of(1.0), bits_of(-0.0),
                     (0x7FE << 52) | sf.MASK52]),
)


def same(host: float, ours: int) -> bool:
    if math.isnan(host):
        return math.isnan(value_of(ours))
    return bits_of(host) == ours


class TestArithmetic:
    @given(any_bits, any_bits)
    @settings(max_examples=600, deadline=None)
    def test_add(self, a, b):
        assert same(value_of(a) + value_of(b), sf.f64_add(a, b))

    @given(any_bits, any_bits)
    @settings(max_examples=400, deadline=None)
    def test_sub(self, a, b):
        assert same(value_of(a) - value_of(b), sf.f64_sub(a, b))

    @given(any_bits, any_bits)
    @settings(max_examples=600, deadline=None)
    def test_mul(self, a, b):
        assert same(value_of(a) * value_of(b), sf.f64_mul(a, b))

    @given(any_bits, any_bits)
    @settings(max_examples=600, deadline=None)
    def test_div(self, a, b):
        assert same(ieee_div(value_of(a), value_of(b)), sf.f64_div(a, b))

    @given(any_bits)
    @settings(max_examples=400, deadline=None)
    def test_sqrt(self, a):
        assert same(ieee_sqrt(value_of(a)), sf.f64_sqrt(a))

    @given(any_bits, any_bits)
    @settings(max_examples=300, deadline=None)
    def test_cmp(self, a, b):
        fa, fb = value_of(a), value_of(b)
        if math.isnan(fa) or math.isnan(fb):
            expected = 3
        elif fa == fb:
            expected = 0
        else:
            expected = 1 if fa < fb else 2
        assert sf.f64_cmp(a, b) == expected

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    @settings(max_examples=300, deadline=None)
    def test_i32_to_f64(self, x):
        assert sf.i32_to_f64(x & 0xFFFFFFFF) == bits_of(float(x))

    @given(any_bits)
    @settings(max_examples=300, deadline=None)
    def test_f64_to_i32(self, a):
        assert sf.f64_to_i32(a) == f64_to_i32_trunc(value_of(a))


class TestIdentities:
    """Algebraic identities that hold exactly in IEEE-754."""

    @given(any_bits)
    @settings(max_examples=200, deadline=None)
    def test_add_zero_identity(self, a):
        # x + 0.0 == x for every non-NaN x except -0.0 (which becomes +0.0)
        result = sf.f64_add(a, 0)
        fa = value_of(a)
        if math.isnan(fa):
            assert math.isnan(value_of(result))
        elif a == sf.SIGN:  # -0.0 + +0.0 = +0.0
            assert result == 0
        else:
            assert result == a

    @given(st.builds(bits_of, finite))
    @settings(max_examples=200, deadline=None)
    def test_sub_self_is_plus_zero(self, a):
        assert sf.f64_sub(a, a) == 0

    @given(st.builds(bits_of, finite))
    @settings(max_examples=200, deadline=None)
    def test_mul_one_identity(self, a):
        assert sf.f64_mul(a, bits_of(1.0)) == a

    @given(st.builds(bits_of, st.floats(min_value=1e-150, max_value=1e150)))
    @settings(max_examples=200, deadline=None)
    def test_sqrt_of_square_stays_close(self, a):
        squared = sf.f64_mul(a, a)
        root = sf.f64_sqrt(squared)
        # correctly rounded sqrt of a correctly rounded square is within
        # one ulp of the original
        assert abs(root - a) <= 1

    def test_nan_canonicalisation(self):
        assert sf.f64_add(sf.QNAN, bits_of(1.0)) == sf.QNAN
        assert sf.f64_mul(sf.INF, 0) == sf.QNAN
        assert sf.f64_div(0, 0) == sf.QNAN
        assert sf.f64_sqrt(bits_of(-4.0)) == sf.QNAN

    def test_special_cases_table(self):
        inf, ninf = sf.INF, sf.INF | sf.SIGN
        one = bits_of(1.0)
        assert sf.f64_add(inf, one) == inf
        assert sf.f64_add(inf, ninf) == sf.QNAN
        assert sf.f64_div(one, 0) == inf
        assert sf.f64_div(one, sf.SIGN) == ninf  # 1 / -0.0
        assert sf.f64_div(one, inf) == 0
        assert sf.f64_sqrt(inf) == inf
        assert sf.f64_to_i32(sf.QNAN) == 0
        assert sf.f64_to_i32(bits_of(-2147483648.0)) == 0x80000000
        assert sf.f64_to_i32(bits_of(2147483648.0)) == 0x7FFFFFFF

    @given(st.builds(bits_of, finite), st.builds(bits_of, finite))
    @settings(max_examples=200, deadline=None)
    def test_add_commutes(self, a, b):
        assert sf.f64_add(a, b) == sf.f64_add(b, a)

    @given(st.builds(bits_of, finite), st.builds(bits_of, finite))
    @settings(max_examples=200, deadline=None)
    def test_mul_commutes(self, a, b):
        assert sf.f64_mul(a, b) == sf.f64_mul(b, a)
