"""Encode/decode roundtrips and decode rejection for the SPARC V8 subset."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.isa import encoder
from repro.isa.decoder import decode
from repro.isa.errors import DecodeError, EncodeError
from repro.isa.fields import s32, sign_extend, u32
from repro.isa.opcodes import (
    ARITH_MNEMONIC_TO_OP3,
    FCC_NAME_TO_COND,
    FPOP_MNEMONIC_TO_OPF,
    FPOP_TWO_SOURCE,
    ICC_COND_NAMES,
    INSTR_SPECS,
    MEM_MNEMONIC_TO_OP3,
)

regs = st.integers(min_value=0, max_value=31)
simm13 = st.integers(min_value=-4096, max_value=4095)


class TestFields:
    @given(st.integers())
    def test_u32_s32_roundtrip(self, value):
        assert u32(s32(value)) == u32(value)

    @given(st.integers(min_value=-(1 << 12), max_value=(1 << 12) - 1))
    def test_sign_extend_13(self, value):
        assert sign_extend(value & 0x1FFF, 13) == value

    def test_sign_extend_negative(self):
        assert sign_extend(0x1FFF, 13) == -1
        assert sign_extend(0x1000, 13) == -4096


class TestArithRoundtrip:
    @given(st.sampled_from(sorted(ARITH_MNEMONIC_TO_OP3)), regs, regs, regs)
    def test_register_form(self, mnemonic, rd, rs1, rs2):
        word = encoder.encode_arith(mnemonic, rd, rs1, rs2=rs2)
        instr = decode(word)
        assert instr.mnemonic == mnemonic
        assert (instr.rd, instr.rs1, instr.rs2) == (rd, rs1, rs2)
        assert not instr.i

    @given(st.sampled_from(sorted(ARITH_MNEMONIC_TO_OP3)), regs, regs, simm13)
    def test_immediate_form(self, mnemonic, rd, rs1, imm):
        if mnemonic in ("sll", "srl", "sra"):
            imm &= 31
        word = encoder.encode_arith(mnemonic, rd, rs1, imm=imm)
        instr = decode(word)
        assert instr.mnemonic == mnemonic
        assert instr.i and instr.imm == imm

    def test_immediate_overflow_rejected(self):
        with pytest.raises(EncodeError):
            encoder.encode_arith("add", 1, 2, imm=5000)
        with pytest.raises(EncodeError):
            encoder.encode_arith("sll", 1, 2, imm=40)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(EncodeError):
            encoder.encode_arith("madd", 1, 2, 3)


class TestMemoryRoundtrip:
    @given(st.sampled_from(sorted(MEM_MNEMONIC_TO_OP3)), regs, regs, simm13)
    def test_immediate_address(self, mnemonic, rd, rs1, imm):
        word = encoder.encode_mem(mnemonic, rd, rs1, imm=imm)
        instr = decode(word)
        assert instr.mnemonic == mnemonic
        assert instr.kind in ("load", "store")
        assert (instr.rd, instr.rs1, instr.imm) == (rd, rs1, imm)

    @given(st.sampled_from(sorted(MEM_MNEMONIC_TO_OP3)), regs, regs, regs)
    def test_register_address(self, mnemonic, rd, rs1, rs2):
        instr = decode(encoder.encode_mem(mnemonic, rd, rs1, rs2=rs2))
        assert (instr.rd, instr.rs1, instr.rs2) == (rd, rs1, rs2)


class TestBranchRoundtrip:
    @given(st.sampled_from(sorted(ICC_COND_NAMES.values())),
           st.integers(min_value=-(1 << 21), max_value=(1 << 21) - 1),
           st.booleans())
    def test_bicc(self, mnemonic, disp_words, annul):
        word = encoder.encode_branch(mnemonic, disp_words * 4, annul)
        instr = decode(word)
        assert instr.mnemonic == mnemonic
        assert instr.imm == disp_words * 4
        assert instr.annul == annul

    @given(st.sampled_from(sorted(FCC_NAME_TO_COND)),
           st.integers(min_value=-1000, max_value=1000))
    def test_fbfcc(self, mnemonic, disp_words):
        instr = decode(encoder.encode_fbranch(mnemonic, disp_words * 4))
        assert instr.mnemonic == mnemonic
        assert instr.kind == "fbranch"

    def test_unaligned_displacement_rejected(self):
        with pytest.raises(EncodeError):
            encoder.encode_branch("ba", 6)

    def test_displacement_range(self):
        with pytest.raises(EncodeError):
            encoder.encode_branch("ba", 4 << 22)

    @given(st.integers(min_value=-(1 << 29), max_value=(1 << 29) - 1))
    def test_call(self, disp_words):
        instr = decode(encoder.encode_call(disp_words * 4))
        assert instr.mnemonic == "call"
        assert instr.imm == disp_words * 4


class TestFpopRoundtrip:
    @given(st.sampled_from(sorted(FPOP_MNEMONIC_TO_OPF)), regs, regs, regs)
    def test_fpop(self, mnemonic, rd, rs1, rs2):
        word = encoder.encode_fpop(mnemonic, rd, rs2, rs1)
        instr = decode(word)
        assert instr.mnemonic == mnemonic
        assert instr.rs2 == rs2
        if mnemonic in FPOP_TWO_SOURCE:
            assert instr.rs1 == rs1


class TestSpecialForms:
    def test_sethi_and_nop(self):
        instr = decode(encoder.encode_sethi(5, 0x12345))
        assert instr.mnemonic == "sethi" and instr.imm == 0x12345
        assert decode(encoder.encode_nop()).mnemonic == "nop"
        # sethi 0, %g0 is the canonical nop
        assert decode(encoder.encode_sethi(0, 0)).kind == "nop"

    def test_jmpl_rdy_wry_trap(self):
        assert decode(encoder.encode_jmpl(15, 3, imm=8)).mnemonic == "jmpl"
        assert decode(encoder.encode_rdy(4)).mnemonic == "rdy"
        assert decode(encoder.encode_wry(4, imm=0)).mnemonic == "wry"
        instr = decode(encoder.encode_trap("ta", imm=5))
        assert instr.mnemonic == "ta" and instr.imm == 5

    def test_every_spec_has_morph_group_and_category(self):
        for mnemonic, spec in INSTR_SPECS.items():
            assert spec.morph_group.startswith("do"), mnemonic
            assert 0 <= spec.category <= 8


class TestDecodeRejection:
    @pytest.mark.parametrize("word", [
        0x00000000,              # UNIMP
        0x81D82000,              # unsupported op3 (flush-like)
        0xC1982000 ^ 0x00080000,  # bogus memory op3
        (2 << 30) | (0x2A << 19),  # unknown arith op3
        (2 << 30) | (0x34 << 19) | (0x1FF << 5),  # unknown FPop opf
    ])
    def test_undecodable(self, word):
        with pytest.raises(DecodeError):
            decode(word)

    def test_decode_error_carries_word(self):
        try:
            decode(0)
        except DecodeError as exc:
            assert exc.word == 0
            assert "0x00000000" in str(exc)
