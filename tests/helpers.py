"""Shared test utilities."""

from __future__ import annotations

from repro.asm import assemble
from repro.kir import Module, compile_module
from repro.vm import CoreConfig, SimulationResult, Simulator

EXIT_EPILOGUE = """
    mov 0, %g1
    ta 5
"""


def run_asm(source: str, has_fpu: bool = True,
            max_instructions: int = 5_000_000,
            nwindows: int = 8) -> SimulationResult:
    """Assemble and run a source snippet (must exit via ``ta 5``)."""
    config = CoreConfig(has_fpu=has_fpu, nwindows=nwindows)
    program = assemble(source)
    return Simulator(program, config).run(max_instructions=max_instructions)


def run_exit_code(body: str, **kwargs) -> int:
    """Run ``body`` (with %o0 as eventual exit code) and return the code."""
    source = f"    .text\n_start:\n{body}\n{EXIT_EPILOGUE}"
    return run_asm(source, **kwargs).exit_code


def run_kir(module: Module, float_abi: str = "hard", has_fpu: bool = True,
            max_instructions: int = 50_000_000) -> SimulationResult:
    """Compile a kernel-IR module and run it."""
    program = compile_module(module, float_abi=float_abi)
    config = CoreConfig(has_fpu=has_fpu)
    return Simulator(program, config).run(max_instructions=max_instructions)
