"""Kernel-IR -> SPARC V8 assembly.

A deliberately simple, correctness-first code generator:

* every local/parameter lives in a stack slot (no global register
  allocation); expression evaluation uses a LIFO pool of scratch
  registers (``%l0-%l7``, ``%i0-%i5``), which are automatically preserved
  across calls by the SPARC register windows;
* ``f64`` values live in FP register pairs in the **hard-float** backend
  and in pairs of integer registers in the **soft-float** backend, where
  every FP operation lowers to a call into the integer-only runtime of
  :mod:`repro.softfloat.kirlib` -- the exact effect of compiling with
  ``-msoft-float`` in the paper;
* calling convention (both backends): integer args/results in ``%o0-%o5``
  / ``%o0``; ``f64`` args occupy two consecutive ``%o`` registers; ``f64``
  results return in ``%f0:%f1`` (hard) or ``%o0:%o1`` (soft).

Generated code is not clever -- it does not need to be: it runs on a
simulator where *relative* instruction mix, not micro-optimisation,
drives the reproduced experiments.
"""

from __future__ import annotations

import struct

from repro.asm import assemble
from repro.asm.program import Program
from repro.kir.builder import Function, Module
from repro.kir.errors import CodegenError, KirError
from repro.kir.ir import (
    F64,
    MEM_F64,
    MEM_S8,
    MEM_S16,
    MEM_U8,
    MEM_U16,
    MEM_W32,
    Assign,
    Binop,
    BreakStat,
    CallExpr,
    CallPair,
    Const,
    ContinueStat,
    Expr,
    ExprStat,
    GlobalAddr,
    IfStat,
    LoadExpr,
    LocalRef,
    RawAsm,
    ReturnPair,
    ReturnStat,
    Stat,
    StoreStat,
    UMulWide,
    Unop,
    WhileStat,
)

HARD = "hard"
SOFT = "soft"

_INT_TEMPS = ["%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
              "%i0", "%i1", "%i2", "%i3", "%i4", "%i5"]
_FP_TEMPS = [f"%f{n}" for n in range(4, 32, 2)]
_ARG_REGS = ["%o0", "%o1", "%o2", "%o3", "%o4", "%o5"]

_SIGNED_BRANCH = {"eq": "be", "ne": "bne", "slt": "bl", "sle": "ble",
                  "sgt": "bg", "sge": "bge"}
_UNSIGNED_BRANCH = {"ult": "bcs", "ule": "bleu", "ugt": "bgu", "uge": "bcc"}
_FLOAT_BRANCH = {"feq": "fbe", "fne": "fbne", "flt": "fbl", "fle": "fble",
                 "fgt": "fbg", "fge": "fbge"}
_BRANCH_INVERSE = {
    "be": "bne", "bne": "be", "bl": "bge", "ble": "bg", "bg": "ble",
    "bge": "bl", "bcs": "bcc", "bleu": "bgu", "bgu": "bleu", "bcc": "bcs",
    "fbe": "fbne", "fbne": "fbe", "fbl": "fbuge", "fble": "fbug",
    "fbg": "fbule", "fbge": "fbul",
}
# NB: the FP inverses route NaN to the "false" side, i.e. `if (a < b)` takes
# the else-branch on unordered operands -- matching C semantics.

_SF_BINOP = {"fadd": "__sf_add", "fsub": "__sf_sub", "fmul": "__sf_mul",
             "fdiv": "__sf_div"}

#: soft-float compare result encoding (mirrors the SPARC fcc):
#: 0 equal, 1 less, 2 greater, 3 unordered.
_SF_CMP_TESTS = {
    # op -> (branch after `cmp code, value`, compare value)
    "feq": ("be", 0),
    "fne": ("bne", 0),
    "flt": ("be", 1),
    "fgt": ("be", 2),
    # fle: code <= 1 (equal or less);  fge: code in {0, 2} tested via lsb
    "fle": ("bleu", 1),
}


class _Pool:
    """LIFO scratch register pool."""

    def __init__(self, regs: list[str], what: str):
        self._free = list(reversed(regs))
        self._what = what

    def alloc(self) -> str:
        if not self._free:
            raise CodegenError(
                f"expression too deep: out of {self._what} scratch registers")
        return self._free.pop()

    def release(self, reg: str) -> None:
        self._free.append(reg)


class _FnCodegen:
    """Code generation context for one function."""

    def __init__(self, mcg: "_ModuleCodegen", fn: Function):
        self.mcg = mcg
        self.fn = fn
        self.abi = mcg.abi
        self.lines: list[str] = []
        self.ints = _Pool(_INT_TEMPS, "integer")
        self.fps = _Pool(_FP_TEMPS, "floating-point")
        self._loop_stack: list[tuple[str, str]] = []  # (continue, break)
        self._slots: dict[str, int] = {}
        self._slot_types: dict[str, str] = {}
        offset = 8
        for ref in list(fn.params) + fn.locals:
            if ref.type == F64:
                offset = (offset + 15) & ~7  # 8-aligned, past previous slot
                self._slots[ref.name] = offset
            else:
                offset += 4
                self._slots[ref.name] = offset
            self._slot_types[ref.name] = ref.type
        offset = (offset + 15) & ~7
        self._scratch = offset          # 8-byte FP/int transfer slot
        locals_bytes = offset
        self.frame = 96 + ((locals_bytes + 7) & ~7)
        if self.frame > 4000:
            raise CodegenError(
                f"{fn.name}: frame of {self.frame} bytes exceeds simm13 "
                f"addressing; move large arrays to module globals")
        self._epilogue = self._label("epilogue")

    # -- helpers ------------------------------------------------------------

    def _label(self, tag: str) -> str:
        return self.mcg.new_label(self.fn.name, tag)

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def _slot_addr(self, name: str) -> str:
        return f"[%fp - {self._slots[name]}]"

    def _slot_addr_lo(self, name: str) -> str:
        return f"[%fp - {self._slots[name] - 4}]"

    def _scratch_addr(self, lo: bool = False) -> str:
        return f"[%fp - {self._scratch - (4 if lo else 0)}]"

    # -- function body -------------------------------------------------------

    def generate(self) -> list[str]:
        fn = self.fn
        self.emit_label(fn.name)
        self.emit(f"save %sp, -{self.frame}, %sp")
        arg_word = 0
        in_regs = [f"%i{n}" for n in range(6)]
        for ref in fn.params:
            if ref.type == F64:
                if arg_word + 2 > 6:
                    raise CodegenError(f"{fn.name}: more than 6 argument words")
                self.emit(f"st {in_regs[arg_word]}, {self._slot_addr(ref.name)}")
                self.emit(f"st {in_regs[arg_word + 1]}, "
                          f"{self._slot_addr_lo(ref.name)}")
                arg_word += 2
            else:
                if arg_word + 1 > 6:
                    raise CodegenError(f"{fn.name}: more than 6 argument words")
                self.emit(f"st {in_regs[arg_word]}, {self._slot_addr(ref.name)}")
                arg_word += 1
        for stat in fn.body:
            self.stat(stat)
        self.emit_label(self._epilogue)
        self.emit("ret")
        self.emit("restore")
        return self.lines

    # -- statements ------------------------------------------------------------

    def stat(self, stat: Stat) -> None:
        if isinstance(stat, Assign):
            self._stat_assign(stat)
        elif isinstance(stat, StoreStat):
            self._stat_store(stat)
        elif isinstance(stat, IfStat):
            self._stat_if(stat)
        elif isinstance(stat, WhileStat):
            self._stat_while(stat)
        elif isinstance(stat, BreakStat):
            self.emit(f"ba {self._loop_stack[-1][1]}")
            self.emit("nop")
        elif isinstance(stat, ContinueStat):
            self.emit(f"ba {self._loop_stack[-1][0]}")
            self.emit("nop")
        elif isinstance(stat, ReturnStat):
            self._stat_return(stat)
        elif isinstance(stat, ReturnPair):
            hi = self.eval_int(stat.hi)
            lo = self.eval_int(stat.lo)
            self.emit(f"mov {hi}, %i0")
            self.emit(f"mov {lo}, %i1")
            self.ints.release(lo)
            self.ints.release(hi)
            self.emit(f"ba {self._epilogue}")
            self.emit("nop")
        elif isinstance(stat, ExprStat):
            self._discard(self.eval(stat.value))
        elif isinstance(stat, UMulWide):
            a = self.eval_int(stat.a)
            b = self.eval_int(stat.b)
            self.emit(f"umul {a}, {b}, {a}")
            self.emit(f"rd %y, {b}")
            self.emit(f"st {b}, {self._slot_addr(stat.hi.name)}")
            self.emit(f"st {a}, {self._slot_addr(stat.lo.name)}")
            self.ints.release(b)
            self.ints.release(a)
        elif isinstance(stat, CallPair):
            self._marshal_and_call(stat.func, stat.args)
            self.emit(f"st %o0, {self._slot_addr(stat.hi.name)}")
            self.emit(f"st %o1, {self._slot_addr(stat.lo.name)}")
        elif isinstance(stat, RawAsm):
            for line in stat.lines:
                self.emit(line)
        else:  # pragma: no cover - exhaustive
            raise CodegenError(f"unhandled statement {type(stat).__name__}")

    def _stat_assign(self, stat: Assign) -> None:
        name = stat.target.name
        if name not in self._slots:
            raise CodegenError(
                f"{self.fn.name}: assignment to unknown local {name!r}")
        if stat.value.type == F64:
            if self.abi == HARD:
                freg = self.eval_f64(stat.value)
                self.emit(f"stdf {freg}, {self._slot_addr(name)}")
                self.fps.release(freg)
            else:
                hi, lo = self.eval_f64(stat.value)
                self.emit(f"st {hi}, {self._slot_addr(name)}")
                self.emit(f"st {lo}, {self._slot_addr_lo(name)}")
                self.ints.release(lo)
                self.ints.release(hi)
        else:
            reg = self.eval_int(stat.value)
            self.emit(f"st {reg}, {self._slot_addr(name)}")
            self.ints.release(reg)

    def _stat_store(self, stat: StoreStat) -> None:
        addr = self.eval_int(stat.addr)
        if stat.mem == MEM_F64:
            if self.abi == HARD:
                freg = self.eval_f64(stat.value)
                self.emit(f"stdf {freg}, [{addr}]")
                self.fps.release(freg)
            else:
                hi, lo = self.eval_f64(stat.value)
                self.emit(f"st {hi}, [{addr}]")
                self.emit(f"add {addr}, 4, {addr}")
                self.emit(f"st {lo}, [{addr}]")
                self.ints.release(lo)
                self.ints.release(hi)
        else:
            value = self.eval_int(stat.value)
            op = {MEM_U8: "stb", MEM_S8: "stb", MEM_U16: "sth",
                  MEM_S16: "sth", MEM_W32: "st"}[stat.mem]
            self.emit(f"{op} {value}, [{addr}]")
            self.ints.release(value)
        self.ints.release(addr)

    def _stat_if(self, stat: IfStat) -> None:
        else_label = self._label("else")
        end_label = self._label("endif")
        self.branch_if_false(stat.cond,
                             else_label if stat.else_body else end_label)
        for s in stat.then_body:
            self.stat(s)
        if stat.else_body:
            self.emit(f"ba {end_label}")
            self.emit("nop")
            self.emit_label(else_label)
            for s in stat.else_body:
                self.stat(s)
        self.emit_label(end_label)

    def _stat_while(self, stat: WhileStat) -> None:
        cond_label = self._label("loop")
        end_label = self._label("endloop")
        self.emit_label(cond_label)
        self.branch_if_false(stat.cond, end_label)
        self._loop_stack.append((cond_label, end_label))
        for s in stat.body:
            self.stat(s)
        self._loop_stack.pop()
        self.emit(f"ba {cond_label}")
        self.emit("nop")
        self.emit_label(end_label)

    def _stat_return(self, stat: ReturnStat) -> None:
        if stat.value is not None:
            if stat.value.type == F64:
                if self.abi == HARD:
                    freg = self.eval_f64(stat.value)
                    if freg != "%f0":
                        hi = int(freg[2:])
                        self.emit(f"fmovs %f{hi}, %f0")
                        self.emit(f"fmovs %f{hi + 1}, %f1")
                    self.fps.release(freg)
                else:
                    hi, lo = self.eval_f64(stat.value)
                    self.emit(f"mov {hi}, %i0")
                    self.emit(f"mov {lo}, %i1")
                    self.ints.release(lo)
                    self.ints.release(hi)
            else:
                reg = self.eval_int(stat.value)
                self.emit(f"mov {reg}, %i0")
                self.ints.release(reg)
        self.emit(f"ba {self._epilogue}")
        self.emit("nop")

    # -- conditional branching -----------------------------------------------

    def branch_if_false(self, cond: Expr, target: str) -> None:
        """Branch to ``target`` when ``cond`` evaluates false."""
        if isinstance(cond, Binop) and (cond.op in _SIGNED_BRANCH
                                        or cond.op in _UNSIGNED_BRANCH):
            branch = (_SIGNED_BRANCH.get(cond.op) or
                      _UNSIGNED_BRANCH[cond.op])
            a = self.eval_int(cond.a)
            b = self.eval_int(cond.b)
            self.emit(f"cmp {a}, {b}")
            self.ints.release(b)
            self.ints.release(a)
            self.emit(f"{_BRANCH_INVERSE[branch]} {target}")
            self.emit("nop")
            return
        if isinstance(cond, Binop) and cond.op in _FLOAT_BRANCH:
            if self.abi == HARD:
                fa = self.eval_f64(cond.a)
                fb = self.eval_f64(cond.b)
                self.emit(f"fcmpd {fa}, {fb}")
                self.emit("nop")  # fcmp/fbranch hazard slot
                self.fps.release(fb)
                self.fps.release(fa)
                self.emit(f"{_BRANCH_INVERSE[_FLOAT_BRANCH[cond.op]]} {target}")
                self.emit("nop")
            else:
                code = self._soft_fcmp_code(cond.a, cond.b)
                self._branch_soft_cmp_false(cond.op, code, target)
                self.ints.release(code)
            return
        reg = self.eval_int(cond)
        self.emit(f"cmp {reg}, 0")
        self.ints.release(reg)
        self.emit(f"be {target}")
        self.emit("nop")

    def _soft_fcmp_code(self, a: Expr, b: Expr) -> str:
        """Call ``__sf_cmp``; result code (0 eq, 1 lt, 2 gt, 3 unordered)."""
        self._marshal_and_call("__sf_cmp", (a, b))
        reg = self.ints.alloc()
        self.emit(f"mov %o0, {reg}")
        return reg

    def _branch_soft_cmp_false(self, op: str, code: str, target: str) -> None:
        if op == "fge":
            # true for codes {0, 2}: branch false when lsb set (lt/unordered)
            self.emit(f"andcc {code}, 1, %g0")
            self.emit(f"bne {target}")
            self.emit("nop")
            return
        branch, value = _SF_CMP_TESTS[op]
        self.emit(f"cmp {code}, {value}")
        self.emit(f"{_BRANCH_INVERSE[branch]} {target}")
        self.emit("nop")

    # -- expression evaluation --------------------------------------------------

    def _discard(self, result) -> None:
        if result is None:
            return
        if isinstance(result, tuple):
            self.ints.release(result[1])
            self.ints.release(result[0])
        elif result.startswith("%f"):
            self.fps.release(result)
        else:
            self.ints.release(result)

    def eval(self, expr: Expr):
        if expr.type == F64:
            return self.eval_f64(expr)
        return self.eval_int(expr)

    def eval_int(self, expr: Expr) -> str:
        """Evaluate an integer-typed expression into a scratch register."""
        if isinstance(expr, Const):
            reg = self.ints.alloc()
            self.emit(f"set {expr.value & 0xFFFFFFFF}, {reg}")
            return reg
        if isinstance(expr, LocalRef):
            if expr.name not in self._slots:
                raise CodegenError(
                    f"{self.fn.name}: unknown local {expr.name!r}")
            reg = self.ints.alloc()
            self.emit(f"ld {self._slot_addr(expr.name)}, {reg}")
            return reg
        if isinstance(expr, GlobalAddr):
            self.mcg.require_global(expr.name)
            reg = self.ints.alloc()
            if expr.offset:
                self.emit(f"set {expr.name} + {expr.offset}, {reg}")
            else:
                self.emit(f"set {expr.name}, {reg}")
            return reg
        if isinstance(expr, LoadExpr):
            return self._eval_load_int(expr)
        if isinstance(expr, Unop):
            return self._eval_unop_int(expr)
        if isinstance(expr, Binop):
            return self._eval_binop_int(expr)
        if isinstance(expr, CallExpr):
            result = self._eval_call(expr)
            if isinstance(result, str) and result.startswith("%f"):
                raise CodegenError(f"{expr.func} returns f64, not int")
            return result  # type: ignore[return-value]
        raise CodegenError(f"unhandled int expression {type(expr).__name__}")

    def _eval_load_int(self, expr: LoadExpr) -> str:
        addr = self.eval_int(expr.addr)
        op = {MEM_U8: "ldub", MEM_S8: "ldsb", MEM_U16: "lduh",
              MEM_S16: "ldsh", MEM_W32: "ld"}[expr.mem]
        self.emit(f"{op} [{addr}], {addr}")
        return addr

    def _eval_unop_int(self, expr: Unop) -> str:
        if expr.op == "not":
            reg = self.eval_int(expr.a)
            self.emit(f"not {reg}, {reg}")
            return reg
        if expr.op in ("bitcast_i2u", "bitcast_u2i"):
            return self.eval_int(expr.a)
        if expr.op == "dtoi":
            if self.abi == HARD:
                freg = self.eval_f64(expr.a)
                self.emit(f"fdtoi {freg}, %f0")
                self.emit(f"stf %f0, {self._scratch_addr()}")
                self.fps.release(freg)
                reg = self.ints.alloc()
                self.emit(f"ld {self._scratch_addr()}, {reg}")
                return reg
            self._marshal_and_call("__sf_dtoi", (expr.a,))
            reg = self.ints.alloc()
            self.emit(f"mov %o0, {reg}")
            return reg
        raise CodegenError(f"unhandled int unop {expr.op!r}")

    def _eval_binop_int(self, expr: Binop) -> str:
        op = expr.op
        if op in _SIGNED_BRANCH or op in _UNSIGNED_BRANCH or op in _FLOAT_BRANCH:
            return self._eval_cmp_value(expr)
        a = self.eval_int(expr.a)
        if op in ("add", "sub", "and", "or", "xor", "shl", "lshr", "ashr") \
                and isinstance(expr.b, Const) and -4096 <= expr.b.value <= 4095:
            mnem = {"add": "add", "sub": "sub", "and": "and", "or": "or",
                    "xor": "xor", "shl": "sll", "lshr": "srl",
                    "ashr": "sra"}[op]
            operand = expr.b.value & 31 if op in ("shl", "lshr", "ashr") \
                else expr.b.value
            self.emit(f"{mnem} {a}, {operand}, {a}")
            return a
        b = self.eval_int(expr.b)
        if op in ("add", "sub", "and", "or", "xor"):
            self.emit(f"{op} {a}, {b}, {a}")
        elif op == "mul":
            self.emit(f"smul {a}, {b}, {a}")
        elif op == "shl":
            self.emit(f"sll {a}, {b}, {a}")
        elif op == "lshr":
            self.emit(f"srl {a}, {b}, {a}")
        elif op == "ashr":
            self.emit(f"sra {a}, {b}, {a}")
        elif op == "udiv":
            self.emit("wr %g0, 0, %y")
            self.emit(f"udiv {a}, {b}, {a}")
        elif op == "sdiv":
            tmp = self.ints.alloc()
            self.emit(f"sra {a}, 31, {tmp}")
            self.emit(f"wr {tmp}, 0, %y")
            self.ints.release(tmp)
            self.emit(f"sdiv {a}, {b}, {a}")
        elif op == "urem":
            tmp = self.ints.alloc()
            self.emit("wr %g0, 0, %y")
            self.emit(f"udiv {a}, {b}, {tmp}")
            self.emit(f"smul {tmp}, {b}, {tmp}")
            self.emit(f"sub {a}, {tmp}, {a}")
            self.ints.release(tmp)
        elif op == "srem":
            tmp = self.ints.alloc()
            self.emit(f"sra {a}, 31, {tmp}")
            self.emit(f"wr {tmp}, 0, %y")
            self.emit(f"sdiv {a}, {b}, {tmp}")
            self.emit(f"smul {tmp}, {b}, {tmp}")
            self.emit(f"sub {a}, {tmp}, {a}")
            self.ints.release(tmp)
        else:  # pragma: no cover - exhaustive over _INT_BINOPS
            raise CodegenError(f"unhandled int binop {op!r}")
        self.ints.release(b)
        return a

    def _eval_cmp_value(self, expr: Binop) -> str:
        """Materialise a comparison as 0/1."""
        done = self._label("cmpdone")
        if expr.op in _FLOAT_BRANCH:
            if self.abi == HARD:
                fa = self.eval_f64(expr.a)
                fb = self.eval_f64(expr.b)
                self.emit(f"fcmpd {fa}, {fb}")
                self.emit("nop")
                self.fps.release(fb)
                self.fps.release(fa)
                dest = self.ints.alloc()
                self.emit(f"mov 1, {dest}")
                self.emit(f"{_FLOAT_BRANCH[expr.op]} {done}")
                self.emit("nop")
                self.emit(f"mov 0, {dest}")
                self.emit_label(done)
                return dest
            code = self._soft_fcmp_code(expr.a, expr.b)
            dest = self.ints.alloc()
            false_label = self._label("cmpfalse")
            self.emit(f"mov 1, {dest}")
            self._branch_soft_cmp_false(expr.op, code, false_label)
            self.emit(f"ba {done}")
            self.emit("nop")
            self.emit_label(false_label)
            self.emit(f"mov 0, {dest}")
            self.emit_label(done)
            self.ints.release(code)
            return dest
        branch = _SIGNED_BRANCH.get(expr.op) or _UNSIGNED_BRANCH[expr.op]
        a = self.eval_int(expr.a)
        b = self.eval_int(expr.b)
        self.emit(f"cmp {a}, {b}")
        self.ints.release(b)
        self.emit(f"mov 1, {a}")
        self.emit(f"{branch} {done}")
        self.emit("nop")
        self.emit(f"mov 0, {a}")
        self.emit_label(done)
        return a

    # -- f64 evaluation ------------------------------------------------------------

    def eval_f64(self, expr: Expr):
        """Evaluate an f64 expression.

        Returns an FP register name (hard) or an (hi, lo) int register
        pair (soft).
        """
        if self.abi == HARD:
            return self._eval_f64_hard(expr)
        return self._eval_f64_soft(expr)

    def _eval_f64_hard(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            label = self.mcg.f64_constant(expr.value)
            addr = self.ints.alloc()
            self.emit(f"set {label}, {addr}")
            freg = self.fps.alloc()
            self.emit(f"lddf [{addr}], {freg}")
            self.ints.release(addr)
            return freg
        if isinstance(expr, LocalRef):
            freg = self.fps.alloc()
            self.emit(f"lddf {self._slot_addr(expr.name)}, {freg}")
            return freg
        if isinstance(expr, LoadExpr):
            addr = self.eval_int(expr.addr)
            freg = self.fps.alloc()
            self.emit(f"lddf [{addr}], {freg}")
            self.ints.release(addr)
            return freg
        if isinstance(expr, Unop):
            if expr.op == "fneg":
                freg = self._eval_f64_hard(expr.a)
                self.emit(f"fnegs {freg}, {freg}")  # sign lives in the hi word
                return freg
            if expr.op == "fsqrt":
                freg = self._eval_f64_hard(expr.a)
                self.emit(f"fsqrtd {freg}, {freg}")
                return freg
            if expr.op == "itod":
                reg = self.eval_int(expr.a)
                self.emit(f"st {reg}, {self._scratch_addr()}")
                self.ints.release(reg)
                freg = self.fps.alloc()
                self.emit(f"ldf {self._scratch_addr()}, %f0")
                self.emit(f"fitod %f0, {freg}")
                return freg
            raise CodegenError(f"unhandled f64 unop {expr.op!r}")
        if isinstance(expr, Binop):
            mnem = {"fadd": "faddd", "fsub": "fsubd", "fmul": "fmuld",
                    "fdiv": "fdivd"}.get(expr.op)
            if mnem is None:
                raise CodegenError(f"unhandled f64 binop {expr.op!r}")
            fa = self._eval_f64_hard(expr.a)
            fb = self._eval_f64_hard(expr.b)
            self.emit(f"{mnem} {fa}, {fb}, {fa}")
            self.fps.release(fb)
            return fa
        if isinstance(expr, CallExpr):
            result = self._eval_call(expr)
            if not (isinstance(result, str) and result.startswith("%f")):
                raise CodegenError(f"{expr.func} does not return f64")
            return result
        raise CodegenError(f"unhandled f64 expression {type(expr).__name__}")

    def _eval_f64_soft(self, expr: Expr) -> tuple[str, str]:
        if isinstance(expr, Const):
            bits = struct.unpack(">Q", struct.pack(">d", expr.value))[0]
            hi = self.ints.alloc()
            lo = self.ints.alloc()
            self.emit(f"set {bits >> 32}, {hi}")
            self.emit(f"set {bits & 0xFFFFFFFF}, {lo}")
            return hi, lo
        if isinstance(expr, LocalRef):
            hi = self.ints.alloc()
            lo = self.ints.alloc()
            self.emit(f"ld {self._slot_addr(expr.name)}, {hi}")
            self.emit(f"ld {self._slot_addr_lo(expr.name)}, {lo}")
            return hi, lo
        if isinstance(expr, LoadExpr):
            addr = self.eval_int(expr.addr)
            lo = self.ints.alloc()
            self.emit(f"ld [{addr} + 4], {lo}")
            self.emit(f"ld [{addr}], {addr}")
            return addr, lo
        if isinstance(expr, Unop):
            if expr.op == "fneg":
                hi, lo = self._eval_f64_soft(expr.a)
                tmp = self.ints.alloc()
                self.emit(f"sethi %hi(0x80000000), {tmp}")
                self.emit(f"xor {hi}, {tmp}, {hi}")
                self.ints.release(tmp)
                return hi, lo
            if expr.op == "fsqrt":
                return self._soft_pair_call("__sf_sqrt", (expr.a,))
            if expr.op == "itod":
                return self._soft_pair_call("__sf_itod", (expr.a,))
            raise CodegenError(f"unhandled f64 unop {expr.op!r}")
        if isinstance(expr, Binop):
            runtime = _SF_BINOP.get(expr.op)
            if runtime is None:
                raise CodegenError(f"unhandled f64 binop {expr.op!r}")
            return self._soft_pair_call(runtime, (expr.a, expr.b))
        if isinstance(expr, CallExpr):
            result = self._eval_call(expr)
            if not isinstance(result, tuple):
                raise CodegenError(f"{expr.func} does not return f64")
            return result
        raise CodegenError(f"unhandled f64 expression {type(expr).__name__}")

    def _soft_pair_call(self, func: str, args: tuple[Expr, ...]) -> tuple[str, str]:
        self._marshal_and_call(func, args)
        hi = self.ints.alloc()
        lo = self.ints.alloc()
        self.emit(f"mov %o0, {hi}")
        self.emit(f"mov %o1, {lo}")
        return hi, lo

    # -- calls ------------------------------------------------------------------

    _BUILTINS = {"__sys_exit": 0, "__sys_putc": 1, "__sys_write_u32": 2}

    def _eval_call(self, expr: CallExpr):
        if expr.func in self._BUILTINS:
            if len(expr.args) != 1:
                raise CodegenError(f"{expr.func} takes one argument")
            arg = self.eval_int(expr.args[0])
            self.emit(f"mov {arg}, %o0")
            self.ints.release(arg)
            self.emit(f"mov {self._BUILTINS[expr.func]}, %g1")
            self.emit("ta 5")
            reg = self.ints.alloc()
            self.emit(f"mov %o0, {reg}")
            return reg
        self._marshal_and_call(expr.func, expr.args)
        self.mcg.require_function(expr.func)
        if expr.type == F64:
            if self.abi == HARD:
                freg = self.fps.alloc()
                hi = int(freg[2:])
                self.emit(f"fmovs %f0, %f{hi}")
                self.emit(f"fmovs %f1, %f{hi + 1}")
                return freg
            hi = self.ints.alloc()
            lo = self.ints.alloc()
            self.emit(f"mov %o0, {hi}")
            self.emit(f"mov %o1, {lo}")
            return hi, lo
        reg = self.ints.alloc()
        self.emit(f"mov %o0, {reg}")
        return reg

    def _marshal_and_call(self, func: str, args: tuple[Expr, ...]) -> None:
        """Evaluate ``args``, move them to %o registers, emit the call."""
        evaluated: list[tuple[str, object]] = []
        words = 0
        for arg in args:
            if arg.type == F64:
                if self.abi == HARD:
                    freg = self.eval_f64(arg)
                    # transfer through memory: FP regs are not directly
                    # readable by the integer unit on SPARC V8
                    self.emit(f"stdf {freg}, {self._scratch_addr()}")
                    self.fps.release(freg)
                    hi = self.ints.alloc()
                    lo = self.ints.alloc()
                    self.emit(f"ld {self._scratch_addr()}, {hi}")
                    self.emit(f"ld {self._scratch_addr(lo=True)}, {lo}")
                    evaluated.append(("pair", (hi, lo)))
                else:
                    evaluated.append(("pair", self.eval_f64(arg)))
                words += 2
            else:
                evaluated.append(("int", self.eval_int(arg)))
                words += 1
        if words > len(_ARG_REGS):
            raise CodegenError(f"call to {func}: more than 6 argument words")
        slot = 0
        for kind, payload in evaluated:
            if kind == "pair":
                hi, lo = payload  # type: ignore[misc]
                self.emit(f"mov {hi}, {_ARG_REGS[slot]}")
                self.emit(f"mov {lo}, {_ARG_REGS[slot + 1]}")
                slot += 2
            else:
                self.emit(f"mov {payload}, {_ARG_REGS[slot]}")
                slot += 1
        for kind, payload in reversed(evaluated):
            if kind == "pair":
                hi, lo = payload  # type: ignore[misc]
                self.ints.release(lo)
                self.ints.release(hi)
            else:
                self.ints.release(payload)  # type: ignore[arg-type]
        self.emit(f"call {func}")
        self.emit("nop")
        self.mcg.require_function(func)


class _ModuleCodegen:
    """Whole-module code generation state."""

    def __init__(self, module: Module, abi: str):
        if abi not in (HARD, SOFT):
            raise KirError(f"float_abi must be 'hard' or 'soft', got {abi!r}")
        self.module = module
        self.abi = abi
        self._label_count = 0
        self._f64_pool: dict[int, str] = {}
        self._called: set[str] = set()
        self._used_globals: set[str] = set()

    def new_label(self, fn_name: str, tag: str) -> str:
        self._label_count += 1
        return f".L_{fn_name}_{tag}_{self._label_count}"

    def f64_constant(self, value: float) -> str:
        bits = struct.unpack(">Q", struct.pack(">d", value))[0]
        label = self._f64_pool.get(bits)
        if label is None:
            label = f".Lfc_{len(self._f64_pool)}"
            self._f64_pool[bits] = label
        return label

    def require_function(self, name: str) -> None:
        self._called.add(name)

    def require_global(self, name: str) -> None:
        self._used_globals.add(name)

    def generate(self) -> str:
        module = self.module
        if module.entry not in module.functions:
            raise KirError(
                f"module {module.name!r} has no entry function "
                f"{module.entry!r}")
        lines: list[str] = [
            f"! module {module.name} ({self.abi}-float) -- generated by "
            f"repro.kir",
            "    .text",
            "_start:",
            f"    call {module.entry}",
            "    nop",
            "    mov 0, %g1",
            "    ta 5",
        ]
        for fn in module.functions.values():
            lines.extend(_FnCodegen(self, fn).generate())
        missing = self._called - set(module.functions)
        if missing:
            raise KirError(
                f"calls to undefined functions: {sorted(missing)} "
                f"(soft-float builds need the runtime from "
                f"repro.softfloat.kirlib)")
        unknown = self._used_globals - set(module.globals)
        if unknown:
            raise KirError(f"references to undefined globals: {sorted(unknown)}")

        data_lines: list[str] = ["    .data"]
        for bits, label in self._f64_pool.items():
            data_lines.append("    .align 8")
            data_lines.append(f"{label}:")
            data_lines.append(
                f"    .word 0x{bits >> 32:08X}, 0x{bits & 0xFFFFFFFF:08X}")
        bss_lines: list[str] = ["    .bss"]
        for g in module.globals.values():
            target = data_lines if g.data is not None else bss_lines
            target.append(f"    .align {max(g.align, 1)}")
            target.append(f"{g.name}:")
            if g.data is not None:
                target.extend(_bytes_to_directives(g.data))
            else:
                target.append(f"    .skip {g.size}")
        lines.extend(data_lines)
        lines.extend(bss_lines)
        return "\n".join(lines) + "\n"


def _bytes_to_directives(blob: bytes) -> list[str]:
    """Render raw bytes as .word/.byte directives (word-packed when possible)."""
    out: list[str] = []
    pos = 0
    while pos + 4 <= len(blob):
        chunk = []
        while pos + 4 <= len(blob) and len(chunk) < 8:
            chunk.append("0x" + blob[pos:pos + 4].hex())
            pos += 4
        out.append("    .word " + ", ".join(chunk))
    if pos < len(blob):
        tail = ", ".join(str(b) for b in blob[pos:])
        out.append("    .byte " + tail)
    return out


def generate_assembly(module: Module, float_abi: str = HARD) -> str:
    """Compile ``module`` to SPARC assembly text."""
    if float_abi == SOFT:
        from repro.softfloat.kirlib import ensure_softfloat
        ensure_softfloat(module)
    return _ModuleCodegen(module, float_abi).generate()


def compile_module(module: Module, float_abi: str = HARD,
                   origin: int = 0x40000000) -> Program:
    """Compile ``module`` and assemble it into a loadable program."""
    return assemble(generate_assembly(module, float_abi), origin=origin)
