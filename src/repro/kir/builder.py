"""Fluent construction of kernel-IR modules and functions.

Typical use::

    m = Module("demo")
    f = m.function("main", ret=I32)
    total = f.local(I32, "total", init=0)
    with f.for_range("i", 0, 10) as i:
        f.assign(total, total + i)
    f.ret(total)
    program = compile_module(m)          # -> repro.asm Program

Control flow uses context managers (``if_``/``else_``, ``while_``,
``for_range``); everything else is plain method calls appending statements
to the innermost open block.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import dataclass

from repro.kir.errors import KirError, KirTypeError
from repro.kir.ir import (
    F64,
    I32,
    MEM_F64,
    MEM_S8,
    MEM_S16,
    MEM_U8,
    MEM_U16,
    MEM_W32,
    U32,
    Assign,
    Binop,
    BreakStat,
    CallExpr,
    CallPair,
    Const,
    ContinueStat,
    Expr,
    ExprStat,
    GlobalAddr,
    IfStat,
    LoadExpr,
    LocalRef,
    RawAsm,
    ReturnPair,
    ReturnStat,
    Stat,
    StoreStat,
    UMulWide,
    Unop,
    WhileStat,
    expr_of,
    sequence_exprs,
)

_VALUE_TYPES = (I32, U32, F64)


@dataclass(frozen=True)
class GlobalData:
    """One module-level data object."""

    name: str
    data: bytes | None  # None => zero-initialised (.bss)
    size: int
    align: int


@dataclass(frozen=True)
class Signature:
    """Declared interface of a function (used for call type checking)."""

    name: str
    param_types: tuple[str, ...]
    ret: str | None
    returns_pair: bool = False


class Function:
    """IR function under construction."""

    def __init__(self, module: "Module", name: str,
                 params: list[tuple[str, str]], ret: str | None):
        self.module = module
        self.name = name
        self.ret_type = ret
        self.params: list[LocalRef] = []
        self.locals: list[LocalRef] = []
        self.body: list[Stat] = []
        self._blocks: list[list[Stat]] = [self.body]
        self._names: set[str] = set()
        self._loop_depth = 0
        self.returns_pair = False
        for pname, ptype in params:
            ref = self._new_ref(pname, ptype)
            self.params.append(ref)

    # -- declarations ---------------------------------------------------------

    def _new_ref(self, name: str, vtype: str) -> LocalRef:
        if vtype not in _VALUE_TYPES:
            raise KirTypeError(f"unknown value type {vtype!r}")
        if name in self._names:
            raise KirError(f"duplicate local {name!r} in {self.name}")
        self._names.add(name)
        ref = LocalRef(name=name, slot=len(self._names) - 1, type=vtype)
        return ref

    def local(self, vtype: str, name: str, init=None) -> LocalRef:
        """Declare a local variable, optionally with an initial value."""
        ref = self._new_ref(name, vtype)
        self.locals.append(ref)
        if init is not None:
            self.assign(ref, init)
        return ref

    # -- statement emission ----------------------------------------------------

    def _emit(self, stat: Stat) -> None:
        self._blocks[-1].append(stat)

    def assign(self, target: LocalRef, value) -> None:
        """``target = value`` (integer widths coerce; f64 must match)."""
        value = expr_of(value)
        if (target.type == F64) != (value.type == F64):
            raise KirTypeError(
                f"cannot assign {value.type} to {target.type} "
                f"({target.name}); use itod()/dtoi()")
        self._emit(Assign(target, value))

    def store(self, addr, value, mem: str = MEM_W32) -> None:
        """Store ``value`` at byte address ``addr`` with width ``mem``."""
        addr = expr_of(addr)
        value = expr_of(value)
        if (mem == MEM_F64) != (value.type == F64):
            raise KirTypeError(f"store width {mem} vs value type {value.type}")
        self._emit(StoreStat(addr, value, mem))

    def store8(self, addr, value) -> None:
        self.store(addr, value, MEM_U8)

    def store16(self, addr, value) -> None:
        self.store(addr, value, MEM_U16)

    def storef(self, addr, value) -> None:
        self.store(addr, value, MEM_F64)

    def ret(self, value=None) -> None:
        """Return from the function (value type must match signature)."""
        if value is None:
            if self.ret_type is not None:
                raise KirTypeError(
                    f"{self.name} must return a {self.ret_type}")
            self._emit(ReturnStat(None))
            return
        value = expr_of(value)
        if self.ret_type is None:
            raise KirTypeError(f"{self.name} returns nothing")
        if (self.ret_type == F64) != (value.type == F64):
            raise KirTypeError(
                f"{self.name} returns {self.ret_type}, got {value.type}")
        self._emit(ReturnStat(value))

    def ret_pair(self, hi, lo) -> None:
        """Return a (hi, lo) 32-bit pair (soft-float runtime convention)."""
        self.returns_pair = True
        self._emit(ReturnPair(expr_of(hi), expr_of(lo)))

    def call(self, func: str, *args, ret: str | None = "auto") -> Expr | None:
        """Call ``func``; returns the value expression (or emits a statement
        when the callee returns nothing)."""
        sig = self.module.signature(func)
        arg_exprs = sequence_exprs(args)
        if sig is not None:
            if len(arg_exprs) != len(sig.param_types):
                raise KirTypeError(
                    f"{func} takes {len(sig.param_types)} args, "
                    f"got {len(arg_exprs)}")
            for expr, expected in zip(arg_exprs, sig.param_types):
                if (expr.type == F64) != (expected == F64):
                    raise KirTypeError(
                        f"{func}: arg type {expr.type} vs declared {expected}")
            ret_type = sig.ret
        elif ret == "auto":
            raise KirError(
                f"call to undeclared function {func!r}; declare it first or "
                f"pass ret=")
        else:
            ret_type = ret
        if ret_type is None:
            self._emit(ExprStat(CallExpr(func, arg_exprs, ret=I32)))
            return None
        return CallExpr(func, arg_exprs, ret=ret_type)

    def call_stat(self, func: str, *args) -> None:
        """Call for side effects, discarding any return value."""
        sig = self.module.signature(func)
        arg_exprs = sequence_exprs(args)
        if sig is not None and len(arg_exprs) != len(sig.param_types):
            raise KirTypeError(
                f"{func} takes {len(sig.param_types)} args, got {len(arg_exprs)}")
        self._emit(ExprStat(CallExpr(func, arg_exprs, ret=I32)))

    def call_pair(self, hi: LocalRef, lo: LocalRef, func: str, *args) -> None:
        """``(hi, lo) = func(...)`` for pair-returning runtime routines."""
        self._emit(CallPair(hi, lo, func, sequence_exprs(args)))

    def umul_wide(self, hi: LocalRef, lo: LocalRef, a, b) -> None:
        """``(hi, lo) = a * b`` unsigned 64-bit product."""
        self._emit(UMulWide(hi, lo, expr_of(a), expr_of(b)))

    def raw_asm(self, *lines: str) -> None:
        """Append literal assembly (runtime shims only)."""
        self._emit(RawAsm(tuple(lines)))

    def break_(self) -> None:
        if not self._loop_depth:
            raise KirError("break outside loop")
        self._emit(BreakStat())

    def continue_(self) -> None:
        if not self._loop_depth:
            raise KirError("continue outside loop")
        self._emit(ContinueStat())

    # -- expression helpers -----------------------------------------------------

    def load(self, addr, mem: str = MEM_W32) -> Expr:
        return LoadExpr(expr_of(addr), mem)

    def load_u8(self, addr) -> Expr:
        return LoadExpr(expr_of(addr), MEM_U8)

    def load_s8(self, addr) -> Expr:
        return LoadExpr(expr_of(addr), MEM_S8)

    def load_u16(self, addr) -> Expr:
        return LoadExpr(expr_of(addr), MEM_U16)

    def load_s16(self, addr) -> Expr:
        return LoadExpr(expr_of(addr), MEM_S16)

    def loadf(self, addr) -> Expr:
        return LoadExpr(expr_of(addr), MEM_F64)

    @staticmethod
    def udiv(a, b) -> Expr:
        return Binop("udiv", expr_of(a), expr_of(b))

    @staticmethod
    def urem(a, b) -> Expr:
        return Binop("urem", expr_of(a), expr_of(b))

    @staticmethod
    def itod(a) -> Expr:
        """Convert int -> double (exact)."""
        return Unop("itod", expr_of(a))

    @staticmethod
    def dtoi(a) -> Expr:
        """Convert double -> int (truncate toward zero, saturating)."""
        return Unop("dtoi", expr_of(a))

    @staticmethod
    def fsqrt(a) -> Expr:
        return Unop("fsqrt", expr_of(a))

    @staticmethod
    def f64const(value: float) -> Expr:
        return Const(float(value), F64)

    # -- control flow ------------------------------------------------------------

    @contextmanager
    def _block(self, target: list[Stat]):
        self._blocks.append(target)
        try:
            yield
        finally:
            self._blocks.pop()

    def if_(self, cond) -> "_IfContext":
        stat = IfStat(expr_of(cond))
        self._emit(stat)
        return _IfContext(self, stat)

    @contextmanager
    def while_(self, cond):
        stat = WhileStat(expr_of(cond))
        self._emit(stat)
        self._loop_depth += 1
        try:
            with self._block(stat.body):
                yield
        finally:
            self._loop_depth -= 1

    @contextmanager
    def for_range(self, name: str, start, stop, step: int = 1):
        """``for name in range(start, stop, step)`` over an i32 local.

        ``continue_`` inside this loop would skip the increment; use
        ``while_`` with a manual increment when you need ``continue``.
        """
        if step == 0:
            raise KirError("for_range step must be non-zero")
        var = self.local(I32, name, init=start)
        cond = var < expr_of(stop) if step > 0 else var > expr_of(stop)
        stat = WhileStat(cond)
        self._emit(stat)
        self._loop_depth += 1
        try:
            with self._block(stat.body):
                yield var
        finally:
            self._loop_depth -= 1
            stat.body.append(Assign(var, var + step))

    # -- semihosting --------------------------------------------------------------

    def sys_exit(self, code) -> None:
        """Terminate the kernel with exit status ``code``."""
        self._emit(ExprStat(CallExpr("__sys_exit", (expr_of(code),), ret=I32)))

    def sys_write_u32(self, value) -> None:
        """Print ``value`` as unsigned decimal + newline on the console."""
        self._emit(ExprStat(CallExpr("__sys_write_u32", (expr_of(value),),
                                     ret=I32)))

    def sys_putc(self, ch) -> None:
        self._emit(ExprStat(CallExpr("__sys_putc", (expr_of(ch),), ret=I32)))

    def signature(self) -> Signature:
        return Signature(
            name=self.name,
            param_types=tuple(p.type for p in self.params),
            ret=self.ret_type,
            returns_pair=self.returns_pair,
        )


class _IfContext:
    """Handle returned by :meth:`Function.if_`, supports ``else_``."""

    def __init__(self, fn: Function, stat: IfStat):
        self._fn = fn
        self._stat = stat
        self._then_cm = fn._block(stat.then_body)

    def __enter__(self):
        self._then_cm.__enter__()
        return self

    def __exit__(self, *exc):
        return self._then_cm.__exit__(*exc)

    @contextmanager
    def else_(self):
        with self._fn._block(self._stat.else_body):
            yield


class Module:
    """A compilation unit: functions + global data + an entry point."""

    def __init__(self, name: str):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalData] = {}
        self._declarations: dict[str, Signature] = {}
        self.entry = "main"

    # -- functions -------------------------------------------------------------

    def function(self, name: str, params: list[tuple[str, str]] | None = None,
                 ret: str | None = I32) -> Function:
        """Create (and register) a new function builder."""
        if name in self.functions:
            raise KirError(f"duplicate function {name!r}")
        fn = Function(self, name, params or [], ret)
        self.functions[name] = fn
        return fn

    def declare(self, name: str, param_types: tuple[str, ...],
                ret: str | None, returns_pair: bool = False) -> None:
        """Forward-declare a function signature for call type checking."""
        self._declarations[name] = Signature(name, param_types, ret,
                                             returns_pair)

    def signature(self, name: str) -> Signature | None:
        fn = self.functions.get(name)
        if fn is not None:
            return fn.signature()
        return self._declarations.get(name)

    # -- global data -------------------------------------------------------------

    def _add_global(self, g: GlobalData) -> GlobalAddr:
        if g.name in self.globals:
            raise KirError(f"duplicate global {g.name!r}")
        if g.align & (g.align - 1):
            raise KirError(f"alignment must be a power of two: {g.align}")
        self.globals[g.name] = g
        return GlobalAddr(g.name)

    def global_bytes(self, name: str, data: bytes, align: int = 4) -> GlobalAddr:
        """Initialised byte array in ``.data``."""
        return self._add_global(GlobalData(name, bytes(data), len(data), align))

    def global_words(self, name: str, words: list[int],
                     align: int = 4) -> GlobalAddr:
        """Initialised 32-bit word array (big-endian in memory)."""
        blob = b"".join(struct.pack(">I", w & 0xFFFFFFFF) for w in words)
        return self._add_global(GlobalData(name, blob, len(blob), align))

    def global_f64s(self, name: str, values: list[float],
                    align: int = 8) -> GlobalAddr:
        """Initialised array of doubles."""
        blob = b"".join(struct.pack(">d", v) for v in values)
        return self._add_global(GlobalData(name, blob, len(blob), align))

    def global_zeros(self, name: str, size: int, align: int = 8) -> GlobalAddr:
        """Zero-initialised buffer (linked into ``.bss``)."""
        if size <= 0:
            raise KirError(f"global {name!r} needs a positive size")
        return self._add_global(GlobalData(name, None, size, align))

    def addr_of(self, name: str, offset: int = 0) -> GlobalAddr:
        if name not in self.globals:
            raise KirError(f"unknown global {name!r}")
        return GlobalAddr(name, offset)
