"""Kernel-IR error types."""

from __future__ import annotations


class KirError(Exception):
    """Base class for kernel-IR construction and compilation errors."""


class KirTypeError(KirError):
    """Operands have incompatible or unsupported types."""


class CodegenError(KirError):
    """The code generator cannot lower a construct (e.g. temp exhaustion)."""
