"""Kernel-IR: a small typed compiler targeting the SPARC V8 simulator.

Stands in for the paper's cross-compiler toolchain.  Workloads are written
once against the IR builder and compiled twice:

* ``float_abi="hard"`` -- FP operations become FPU instructions
  (``faddd``, ``fsqrtd``, ...);
* ``float_abi="soft"`` -- FP operations lower to calls into the bit-exact
  integer-only runtime of :mod:`repro.softfloat.kirlib`, exactly like
  building with ``-msoft-float`` in the paper; program output is
  bit-identical between the two builds.
"""

from repro.kir.builder import Function, GlobalData, Module, Signature
from repro.kir.codegen import (
    HARD,
    SOFT,
    compile_module,
    generate_assembly,
)
from repro.kir.errors import CodegenError, KirError, KirTypeError
from repro.kir.ir import (
    F64,
    I32,
    MEM_F64,
    MEM_S8,
    MEM_S16,
    MEM_U8,
    MEM_U16,
    MEM_W32,
    U32,
    Binop,
    Const,
    Expr,
    LoadExpr,
    LocalRef,
    Unop,
)

__all__ = [
    "Binop",
    "CodegenError",
    "Const",
    "Expr",
    "F64",
    "Function",
    "GlobalData",
    "HARD",
    "I32",
    "KirError",
    "KirTypeError",
    "LoadExpr",
    "LocalRef",
    "MEM_F64",
    "MEM_S8",
    "MEM_S16",
    "MEM_U8",
    "MEM_U16",
    "MEM_W32",
    "Module",
    "SOFT",
    "Signature",
    "U32",
    "Unop",
    "compile_module",
    "generate_assembly",
]
