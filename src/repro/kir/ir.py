"""Typed kernel IR: expression trees and statements.

The IR is deliberately small: three value types (``i32``, ``u32``,
``f64``) plus byte-addressed memory with explicit access widths.  Python
operator overloading on :class:`Expr` gives workload code a C-like feel::

    acc = fn.local(i32, "acc")
    fn.assign(acc, acc + px * coeff - (base >> 2))

``f64`` expressions compile to FPU instructions in the hard-float backend
and to calls into the integer-only soft-float runtime in the soft-float
backend -- the IR itself is identical, mirroring how ``-msoft-float``
changes code generation, not source code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.kir.errors import KirTypeError

# -- value types -------------------------------------------------------------

I32 = "i32"
U32 = "u32"
F64 = "f64"

#: memory access widths for loads/stores (value type is i32/u32 except f64)
MEM_U8 = "u8"
MEM_S8 = "s8"
MEM_U16 = "u16"
MEM_S16 = "s16"
MEM_W32 = "w32"
MEM_F64 = "f64"

_INT_TYPES = (I32, U32)

_INT_BINOPS = {
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
}
_INT_CMPS = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
_F64_BINOPS = {"fadd", "fsub", "fmul", "fdiv"}
_F64_CMPS = {"feq", "fne", "flt", "fle", "fgt", "fge"}


class Expr:
    """Base class of all IR expressions; carries a value type."""

    type: str = I32

    # -- integer arithmetic via operators ------------------------------------

    def _coerce(self, other) -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, int):
            return Const(other, self.type if self.type in _INT_TYPES else I32)
        if isinstance(other, float):
            return Const(other, F64)
        raise KirTypeError(f"cannot use {other!r} in an IR expression")

    def _intop(self, op: str, other, swap: bool = False) -> "Expr":
        rhs = self._coerce(other)
        a, b = (rhs, self) if swap else (self, rhs)
        if self.type == F64 or rhs.type == F64:
            fop = {"add": "fadd", "sub": "fsub", "mul": "fmul"}.get(op)
            if fop is None:
                raise KirTypeError(f"operator {op} not defined for f64")
            return Binop(fop, a, b)
        return Binop(op, a, b)

    def __add__(self, other):
        return self._intop("add", other)

    def __radd__(self, other):
        return self._intop("add", other, swap=True)

    def __sub__(self, other):
        return self._intop("sub", other)

    def __rsub__(self, other):
        return self._intop("sub", other, swap=True)

    def __mul__(self, other):
        return self._intop("mul", other)

    def __rmul__(self, other):
        return self._intop("mul", other, swap=True)

    def __truediv__(self, other):
        rhs = self._coerce(other)
        if self.type != F64 or rhs.type != F64:
            raise KirTypeError("use // (signed) or udiv() for integers")
        return Binop("fdiv", self, rhs)

    def __rtruediv__(self, other):
        lhs = self._coerce(other)
        return lhs.__truediv__(self)

    def __floordiv__(self, other):
        return Binop("sdiv", self, self._coerce(other))

    def __mod__(self, other):
        return Binop("srem", self, self._coerce(other))

    def __and__(self, other):
        return Binop("and", self, self._coerce(other))

    def __or__(self, other):
        return Binop("or", self, self._coerce(other))

    def __xor__(self, other):
        return Binop("xor", self, self._coerce(other))

    def __lshift__(self, other):
        return Binop("shl", self, self._coerce(other))

    def __rshift__(self, other):
        op = "lshr" if self.type == U32 else "ashr"
        return Binop(op, self, self._coerce(other))

    def __neg__(self):
        if self.type == F64:
            return Unop("fneg", self)
        return Binop("sub", Const(0, self.type), self)

    def __invert__(self):
        return Unop("not", self)

    # -- comparisons ----------------------------------------------------------

    def _cmp(self, signed_op: str, other) -> "Expr":
        rhs = self._coerce(other)
        if self.type == F64 or rhs.type == F64:
            return Binop("f" + signed_op.lstrip("s"), self, rhs)
        if signed_op in ("eq", "ne"):
            return Binop(signed_op, self, rhs)
        if self.type == U32 or rhs.type == U32:
            return Binop("u" + signed_op.lstrip("s"), self, rhs)
        return Binop(signed_op, self, rhs)

    def __eq__(self, other):  # type: ignore[override]
        return self._cmp("eq", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._cmp("ne", other)

    def __lt__(self, other):
        return self._cmp("slt", other)

    def __le__(self, other):
        return self._cmp("sle", other)

    def __gt__(self, other):
        return self._cmp("sgt", other)

    def __ge__(self, other):
        return self._cmp("sge", other)

    __hash__ = None  # type: ignore[assignment]  # exprs are not hashable


@dataclass(eq=False)
class Const(Expr):
    """Integer or floating-point literal."""

    value: int | float
    type: str = I32

    def __post_init__(self) -> None:
        if self.type == F64:
            self.value = float(self.value)
        elif not isinstance(self.value, int):
            raise KirTypeError(f"integer constant expected, got {self.value!r}")


@dataclass(eq=False)
class LocalRef(Expr):
    """Read of a local variable or parameter."""

    name: str
    slot: int = 0
    type: str = I32


@dataclass(eq=False)
class GlobalAddr(Expr):
    """Address of a module-level data object (+ constant byte offset)."""

    name: str
    offset: int = 0
    type: str = U32


@dataclass(eq=False)
class Binop(Expr):
    """Binary operation; comparisons yield ``i32`` 0/1."""

    op: str
    a: Expr
    b: Expr

    def __post_init__(self) -> None:
        if self.op in _INT_BINOPS:
            if self.a.type == F64 or self.b.type == F64:
                raise KirTypeError(f"{self.op} needs integer operands")
            self.type = U32 if U32 in (self.a.type, self.b.type) else I32
            if self.op in ("lshr",):
                self.type = U32
        elif self.op in _F64_BINOPS:
            if self.a.type != F64 or self.b.type != F64:
                raise KirTypeError(f"{self.op} needs f64 operands")
            self.type = F64
        elif self.op in _INT_CMPS or self.op in _F64_CMPS:
            self.type = I32
        else:
            raise KirTypeError(f"unknown binop {self.op!r}")


@dataclass(eq=False)
class Unop(Expr):
    """Unary operation: ``not``, ``fneg``, ``fsqrt``, ``itod``, ``dtoi``,
    ``bitcast_i2u``/``bitcast_u2i`` (free reinterpretation)."""

    op: str
    a: Expr

    def __post_init__(self) -> None:
        if self.op == "not":
            if self.a.type == F64:
                raise KirTypeError("bitwise not needs an integer")
            self.type = self.a.type
        elif self.op in ("fneg", "fsqrt"):
            if self.a.type != F64:
                raise KirTypeError(f"{self.op} needs f64")
            self.type = F64
        elif self.op == "itod":
            if self.a.type == F64:
                raise KirTypeError("itod takes an integer")
            self.type = F64
        elif self.op == "dtoi":
            if self.a.type != F64:
                raise KirTypeError("dtoi takes f64")
            self.type = I32
        elif self.op == "bitcast_i2u":
            self.type = U32
        elif self.op == "bitcast_u2i":
            self.type = I32
        else:
            raise KirTypeError(f"unknown unop {self.op!r}")


@dataclass(eq=False)
class LoadExpr(Expr):
    """Memory read of the given width at byte address ``addr``."""

    addr: Expr
    mem: str = MEM_W32

    def __post_init__(self) -> None:
        if self.addr.type == F64:
            raise KirTypeError("addresses must be integers")
        self.type = {MEM_U8: U32, MEM_S8: I32, MEM_U16: U32, MEM_S16: I32,
                     MEM_W32: I32, MEM_F64: F64}[self.mem]


@dataclass(eq=False)
class CallExpr(Expr):
    """Direct call; the callee's signature fixes arg/return types."""

    func: str
    args: tuple[Expr, ...]
    ret: str = I32

    def __post_init__(self) -> None:
        self.type = self.ret


# -- statements ---------------------------------------------------------------


class Stat:
    """Base class for IR statements."""


@dataclass(eq=False)
class Assign(Stat):
    target: LocalRef
    value: Expr


@dataclass(eq=False)
class StoreStat(Stat):
    addr: Expr
    value: Expr
    mem: str = MEM_W32


@dataclass(eq=False)
class IfStat(Stat):
    cond: Expr
    then_body: list[Stat] = field(default_factory=list)
    else_body: list[Stat] = field(default_factory=list)


@dataclass(eq=False)
class WhileStat(Stat):
    cond: Expr
    body: list[Stat] = field(default_factory=list)


@dataclass(eq=False)
class BreakStat(Stat):
    pass


@dataclass(eq=False)
class ContinueStat(Stat):
    pass


@dataclass(eq=False)
class ReturnStat(Stat):
    value: Expr | None = None


@dataclass(eq=False)
class ExprStat(Stat):
    """Evaluate an expression (usually a call) for its side effects."""

    value: Expr


@dataclass(eq=False)
class UMulWide(Stat):
    """``(hi, lo) = a * b`` unsigned 32x32->64 (the ``umul``/``rd %y`` pair)."""

    hi: LocalRef
    lo: LocalRef
    a: Expr
    b: Expr


@dataclass(eq=False)
class CallPair(Stat):
    """Call a function that returns a 32-bit pair (soft-float convention)."""

    hi: LocalRef
    lo: LocalRef
    func: str
    args: tuple[Expr, ...]


@dataclass(eq=False)
class ReturnPair(Stat):
    """Return a 32-bit pair in ``%i0``/``%i1`` (soft-float convention)."""

    hi: Expr
    lo: Expr


@dataclass(eq=False)
class RawAsm(Stat):
    """Escape hatch: literal assembly lines (used by runtime shims)."""

    lines: tuple[str, ...]


def expr_of(value) -> Expr:
    """Coerce a Python literal (or pass through an Expr)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), I32)
    if isinstance(value, int):
        return Const(value, I32)
    if isinstance(value, float):
        return Const(value, F64)
    raise KirTypeError(f"cannot convert {value!r} to an IR expression")


def sequence_exprs(values: Sequence) -> tuple[Expr, ...]:
    return tuple(expr_of(v) for v in values)
