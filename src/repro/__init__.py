"""repro -- reproduction of "Estimation of Non-Functional Properties for
Embedded Hardware with Application to Image Processing" (IPPS 2015).

The package estimates processing **time** and **energy** of bare-metal
kernels without cycle-accurate simulation: a fast instruction-accurate
SPARC V8 simulator counts retired instructions per category, and a
mechanistic model multiplies the counts with calibrated specific costs
(``E = sum_c e_c * n_c``, ``T = sum_c t_c * n_c``).

Quickstart::

    from repro.asm import assemble
    from repro.hw import Board, leon3_fpu
    from repro.nfp import Calibrator, NFPEstimator

    board = Board(leon3_fpu())                          # the testbed
    model = Calibrator(board).calibrate().to_model()    # Table I
    nfp = NFPEstimator(model)
    report = nfp.estimate_program(assemble(open("kernel.s").read()))
    print(report.time_s, report.energy_j)

Sub-packages: :mod:`repro.isa` (SPARC V8 definitions), :mod:`repro.asm`
(assembler), :mod:`repro.vm` (instruction-set simulator), :mod:`repro.hw`
(cycle/energy testbed model), :mod:`repro.nfp` (the estimation method),
:mod:`repro.kir` (kernel compiler), :mod:`repro.softfloat` (bit-exact
soft FP), :mod:`repro.codecs.hevclite` and :mod:`repro.fse` (workloads),
:mod:`repro.experiments` (per-table/figure drivers).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
