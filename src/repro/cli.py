"""Command-line interface: ``python -m repro <command>``.

Commands reproduce the paper's tables/figures or expose the toolchain:

==============  ====================================================
command         action
==============  ====================================================
table1          calibrate and print Table I
table3          estimation-error evaluation (Table III)
table4          FPU design-space exploration (Table IV)
dse             multi-dimensional design-space exploration (Pareto)
serve           long-lived HTTP evaluation server (``repro serve``)
workloads       inspect the workload registry (``workloads list``)
pipeline        list / structurally sweep frame-stream pipelines
profile         warm the profile cache (``profile warm``)
figure1         simulator landscape (Figure 1)
figure2         trace one instruction through the simulator (Fig. 2)
figure3         morph-function grouping (Figure 3)
figure4         measurement vs estimation showcases (Figure 4)
all             every table and figure in sequence
asm FILE        assemble a SPARC source file and print a summary
run FILE        assemble and simulate; print console and counts
disasm WORD     decode and disassemble a hex instruction word
==============  ====================================================
"""

from __future__ import annotations

import argparse
import sys


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=("smoke", "default", "full"),
                        default=None,
                        help="experiment size (default: REPRO_SCALE or "
                             "'default')")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for independent simulations "
                             "(default: REPRO_WORKERS or min(cpus, 8))")
    parser.add_argument("--no-metered-blocks", action="store_true",
                        help="meter the testbed per instruction instead of "
                             "on cost-fused superblocks (slower A/B "
                             "baseline, bit-identical results)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk simulation result cache "
                             "(REPRO_CACHE_DIR, default "
                             "~/.cache/repro-nfp)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Estimation of Non-Functional "
                    "Properties for Embedded Hardware' (IPPS 2015)")
    sub = parser.add_subparsers(dest="command", required=True)
    for cmd in ("table1", "table3", "table4", "figure1", "figure4", "all"):
        p = sub.add_parser(cmd)
        _add_scale(p)
        if cmd == "table3":
            p.add_argument("--per-kernel", action="store_true",
                           help="print the per-kernel error breakdown")
    p = sub.add_parser(
        "dse", help="sweep a hardware design space, print Pareto fronts")
    _add_scale(p)
    p.add_argument("--axes", default=None, metavar="SPEC",
                   help="design-space spec, e.g. "
                        "'clock_mhz=25:50:80,fpu,nwindows=4:8'; bare axis "
                        "names take their registered default values "
                        "(default: the stock clock/fpu/windows/wait-state "
                        "grid)")
    p.add_argument("--profile", action="store_true",
                   help="profile each workload build once and price every "
                        "configuration with the linear NFP evaluator "
                        "instead of one metered simulation per grid point "
                        "(identical counters/cycles, energy to 1e-12; "
                        "self-modifying kernels fall back to full "
                        "simulation)")
    p.add_argument("--workloads", default=None, metavar="FILTER",
                   help="workload suite: comma-separated registry "
                        "presets, families or name globs, e.g. "
                        "'img:*' or 'table3,img:sobel3x3' "
                        "(default: the paper's table3 preset; see "
                        "'repro workloads list')")
    p.add_argument("--stream", action="store_true",
                   help="generate-price-reduce: profile each build once, "
                        "then stream the cartesian product through the "
                        "batch evaluator into online Pareto fronts "
                        "without materializing the grid (memory stays "
                        "proportional to the front; reports are "
                        "byte-identical to the materialized --profile "
                        "sweep at equal --front-cap)")
    p.add_argument("--refine", type=int, default=0, metavar="N",
                   help="run N adaptive coordinate-refinement rounds "
                        "around the streaming aggregate knee (implies "
                        "--stream; refined configs are off-grid "
                        "midpoints on refinable axes)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="price the streamed flat config space across N "
                        "parallel worker processes with exact "
                        "Pareto-front merging (reports are "
                        "byte-identical to --shards 1; default: "
                        "derived from REPRO_WORKERS for large grids, "
                        "serial for small ones)")
    p.add_argument("--front-cap", type=int, default=None, metavar="N",
                   dest="front_cap",
                   help="materialize at most N front members per "
                        "workload in streamed reports (counts, knees "
                        "and winners stay exact; default: all)")
    p.add_argument("--format", choices=("text", "csv", "json"),
                   default="text", dest="fmt",
                   help="output rendering (default: text)")
    p.add_argument("--resume", default=None, metavar="RUN_ID",
                   help="continue an interrupted sweep from its "
                        "checkpoint (run ids are printed on interrupt; "
                        "the resumed report is byte-identical to an "
                        "uninterrupted run)")
    p.add_argument("--run-id", default=None, metavar="RUN_ID",
                   help="name this sweep's checkpoint explicitly "
                        "(default: a hash of the sweep parameters)")
    p.add_argument("--verbose", action="store_true",
                   help="print the resolved runner/resilience settings "
                        "(workers, cache, retries, timeouts, chaos) to "
                        "stderr before sweeping")
    p = sub.add_parser(
        "serve", help="serve NFP pricing and sweeps over HTTP/JSON")
    _add_scale(p)
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8650,
                   help="bind port; 0 picks an ephemeral port, announced "
                        "on stdout (default: 8650)")
    p = sub.add_parser(
        "workloads", help="inspect the workload registry")
    p.add_argument("action", choices=("list",),
                   help="'list': print the workload catalogue")
    p.add_argument("--workloads", default=None, metavar="FILTER",
                   help="restrict the listing to a registry filter "
                        "(same syntax as 'dse --workloads')")
    p.add_argument("--scale", choices=("smoke", "default", "full"),
                   default=None,
                   help="restrict the listing to one scale's suite")
    p = sub.add_parser(
        "pipeline",
        help="compose and sweep frame-stream pipelines (family 'pipe')")
    _add_scale(p)
    p.add_argument("action", choices=("list", "sweep"),
                   help="'list': registered pipelines with their stage "
                        "chains; 'sweep': structural x hardware sweep on "
                        "composed profiles")
    p.add_argument("--pipeline", default=None, metavar="NAME",
                   help="one registered pipeline, e.g. 'pipe:xfel' "
                        "(default: all)")
    p.add_argument("--axes", default=None, metavar="SPEC",
                   help="hardware design-space spec, as in 'dse --axes' "
                        "(default: the stock grid)")
    p.add_argument("--variants", action="store_true",
                   help="also sweep each pipeline's one-change structural "
                        "neighbourhood: every stage toggled off, every "
                        "non-terminal stage repeated")
    p.add_argument("--repeat", type=int, default=2, metavar="N",
                   help="repeat count for --variants stage repeats "
                        "(default: 2)")
    p.add_argument("--format", choices=("text", "csv", "json"),
                   default="text", dest="fmt",
                   help="output rendering (default: text)")
    p = sub.add_parser(
        "profile",
        help="manage execution profiles (the profile-once cache)")
    _add_scale(p)
    p.add_argument("action", choices=("warm",),
                   help="'warm': profile every selected workload build "
                        "into the result cache, so 'repro serve' and "
                        "profiled sweeps start hot")
    p.add_argument("--workloads", default=None, metavar="FILTER",
                   help="registry filter to warm (same syntax as "
                        "'dse --workloads'; default: every registered "
                        "workload)")
    sub.add_parser("figure2")
    sub.add_parser("figure3")
    p = sub.add_parser("asm")
    p.add_argument("file")
    p = sub.add_parser("run")
    p.add_argument("file")
    p.add_argument("--no-fpu", action="store_true")
    p.add_argument("--no-blocks", action="store_true",
                   help="disable superblock translation (per-instruction "
                        "dispatch, slower but step-exact tooling baseline)")
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p = sub.add_parser("disasm")
    p.add_argument("word", help="hex instruction word, e.g. 0x82008004")
    return parser


def _run_dse(scale, args) -> int:
    """The ``repro dse`` branch: sweep, render, and handle interrupts.

    A Ctrl-C (or a killed terminal) flushes the sweep checkpoint,
    renders the partial report to a file under the runs directory
    (noted on stderr, together with the ``--resume`` command line that
    continues the sweep) and exits 130; the worker pool is torn down by
    the executor, so no orphaned processes survive.  Malformed flags or
    ``REPRO_*`` environment values exit 2 with a one-line error.
    """
    from repro.experiments import dse as dse_driver
    try:
        if args.verbose:
            from repro.experiments.setup import effective_settings
            for knob, value in effective_settings():
                print(f"# {knob:<20} {value}", file=sys.stderr)
        rendered = dse_driver.run(scale, axes=args.axes,
                                  profile=args.profile,
                                  workloads=args.workloads,
                                  resume=args.resume,
                                  run_id=args.run_id,
                                  stream=args.stream,
                                  refine=args.refine,
                                  front_cap=args.front_cap,
                                  shards=args.shards).render(args.fmt)
    except dse_driver.DseInterrupted as exc:
        partial = exc.result
        root = dse_driver.checkpoint_root()
        root.mkdir(parents=True, exist_ok=True)
        ext = {"text": "txt", "csv": "csv", "json": "json"}[args.fmt]
        path = root / f"{partial.run_id or 'unnamed'}.partial.{ext}"
        rendered = partial.render(args.fmt)
        path.write_text(
            rendered if rendered.endswith("\n") else rendered + "\n",
            encoding="utf-8")
        print(f"interrupted at {exc.completed}/{exc.total} cells; "
              f"partial report written to {path}", file=sys.stderr)
        if partial.run_id:
            print(f"resume with: repro dse --resume {partial.run_id}",
                  file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except ValueError as exc:  # bad flags, filters or REPRO_* environment
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "text":
        print(rendered)
    else:  # csv/json renderers terminate their own output
        sys.stdout.write(rendered)
    return 0


def _run_pipeline(scale, args) -> int:
    """The ``repro pipeline`` branch: list chains or sweep structures."""
    from repro.experiments import pipeline as pipeline_driver
    from repro.experiments.render import text_table
    from repro.runner.resilience import UsageError
    try:
        if args.action == "list":
            rows = pipeline_driver.catalogue()
            print(text_table(
                ("pipeline", "stages", "frame classes", "frames"),
                [(name, chain, classes, str(frames))
                 for name, chain, classes, frames in rows],
                title=f"registered pipelines: {len(rows)}"))
            return 0
        rendered = pipeline_driver.run(
            scale, pipeline=args.pipeline, axes=args.axes,
            variants=args.variants, repeat=args.repeat).render(args.fmt)
    except (UsageError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    if args.fmt == "text":
        print(rendered)
    else:  # csv/json renderers terminate their own output
        sys.stdout.write(rendered)
    return 0


def _run_profile_warm(scale, args) -> int:
    """The ``repro profile warm`` branch: pre-fill the profile cache.

    Profiles every selected workload build (both FPU builds; pipelines
    profile per invocation) through the cached resilient runner --
    exactly the tasks a profiled sweep or the evaluation server would
    run cold, so a warmed cache makes those start hot.
    """
    from repro.dse.engine import stream_profiles
    from repro.experiments.setup import (
        metered_blocks_from_env,
        runner_from_env,
    )
    from repro.hw.config import HwConfig
    from repro.runner.resilience import UsageError
    from repro.vm.config import CoreConfig
    from repro.workloads import select
    try:
        specs = select(args.workloads or "all", scale)
        runner = runner_from_env()
        base = HwConfig(name="leon3", core=CoreConfig(
            metered_blocks_enabled=metered_blocks_from_env()))
        vectors = stream_profiles(
            [spec.pair(scale) for spec in specs], [False, True],
            budget=scale.max_instructions, runner=runner, base=base)
    except (UsageError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:  # a profile task exhausted its retries
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    where = ("result cache off -- profiles computed but not persisted"
             if runner.cache is None else f"cache: {runner.cache.root}")
    print(f"warmed {len(vectors)} profiles "
          f"({len(specs)} workloads x 2 builds, {scale.name} scale; "
          f"{where})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command

    if command in ("table1", "table3", "table4", "figure1", "figure4",
                   "dse", "serve", "all", "pipeline", "profile"):
        import os
        if args.workers is not None:
            os.environ["REPRO_WORKERS"] = str(args.workers)
        if args.no_metered_blocks:
            os.environ["REPRO_METERED_BLOCKS"] = "0"
        if args.no_cache:
            os.environ["REPRO_CACHE"] = "off"
        if command == "serve":
            from repro.server import serve_command
            return serve_command(args)
        from repro.experiments.scale import get_scale
        scale = get_scale(args.scale)
        if command == "dse":
            return _run_dse(scale, args)
        if command == "pipeline":
            return _run_pipeline(scale, args)
        if command == "profile":
            return _run_profile_warm(scale, args)
        from repro.runner.resilience import UsageError
        from repro.experiments import (figure1, figure4, table1, table3,
                                       table4)
        try:
            if command == "all":
                from repro.experiments import figure23
                print(table1.run(scale).render(), "\n")
                print(table3.run(scale).render(), "\n")
                print(table4.run(scale).render(), "\n")
                print(figure1.run(scale).render(), "\n")
                print(figure23.run_figure2().render(), "\n")
                print(figure23.run_figure3().render(), "\n")
                print(figure4.run(scale).render())
                return 0
            driver = {"table1": table1, "table3": table3, "table4": table4,
                      "figure1": figure1, "figure4": figure4}[command]
            result = driver.run(scale)
        except UsageError as exc:  # malformed REPRO_* environment
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            print("interrupted", file=sys.stderr)
            return 130
        if command == "table3" and args.per_kernel:
            print(result.render(per_kernel=True))
        else:
            print(result.render())
        return 0

    if command == "workloads":
        from repro.experiments.render import text_table
        from repro.experiments.scale import get_scale
        from repro.workloads import select
        scale = get_scale(args.scale) if args.scale else None
        try:
            specs = select(args.workloads or "all", scale)
        except ValueError as exc:  # filter matching nothing
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rows = []
        for spec in specs:
            # pipeline specs render their stage chain; kernels have none
            chain = spec.chain() if hasattr(spec, "chain") else "-"
            rows.append((spec.name, spec.family, chain,
                         ",".join(sorted(spec.tags)),
                         ",".join(spec.scales())))
        suite = (f" at {scale.name} scale" if scale else "")
        print(text_table(
            ("workload", "family", "stages", "tags", "scales"), rows,
            title=f"workload registry: {len(rows)} workloads{suite}"))
        return 0

    if command == "figure2":
        from repro.experiments.figure23 import run_figure2
        print(run_figure2().render())
        return 0
    if command == "figure3":
        from repro.experiments.figure23 import run_figure3
        print(run_figure3().render())
        return 0

    if command == "asm":
        from repro.asm import assemble
        with open(args.file, encoding="utf-8") as handle:
            program = assemble(handle.read())
        print(f"entry   0x{program.entry:08x}")
        for section in program.sections:
            print(f"{section.name:<8} 0x{section.addr:08x}  "
                  f"{section.size} bytes")
        return 0

    if command == "run":
        from repro.asm import assemble
        from repro.vm import CoreConfig, Simulator
        with open(args.file, encoding="utf-8") as handle:
            program = assemble(handle.read())
        config = CoreConfig(has_fpu=not args.no_fpu,
                            blocks_enabled=not args.no_blocks)
        result = Simulator(program, config).run(
            max_instructions=args.max_instructions)
        if result.console:
            sys.stdout.write(result.console)
        print(f"exit code : {result.exit_code}")
        print(f"retired   : {result.retired}")
        print(f"speed     : {result.mips:.2f} MIPS")
        if result.extras.get("block_mode"):
            print(f"blocks    : {result.extras['translated_blocks']:.0f} "
                  f"translated, avg {result.extras['avg_block_len']:.1f} "
                  f"instrs")
        for cid, count in result.category_counts.items():
            if count:
                print(f"  {cid:<10} {count}")
        return 0

    if command == "disasm":
        from repro.isa import decode, disassemble
        word = int(args.word, 16)
        print(disassemble(decode(word)))
        return 0

    raise AssertionError(command)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
