"""Parallel, cached experiment running.

The paper's workflow repeats one expensive primitive -- "simulate this
kernel on that platform" -- across figures, tables, calibration sweeps
and repeated invocations.  This package factors that primitive out:

* :mod:`repro.runner.tasks` defines :class:`SimTask`, a *deterministic*
  unit of work (program + platform + budget), its content-addressed key
  and its JSON-able result payload;
* :mod:`repro.runner.cache` stores payloads on disk keyed by content, so
  any process that ever computed a simulation shares it with every later
  one;
* :mod:`repro.runner.pool` fans batches of tasks across a process pool
  and merges the cache in front of it.

The split in :class:`repro.hw.board.Board` between :meth:`measure_raw`
(pure, cacheable) and :meth:`reading` (stateful instruments, applied by
the caller in measurement order) is what makes results bit-identical no
matter whether they were computed serially, in parallel workers, or read
back from a warm cache.

* :mod:`repro.runner.resilience` keeps all of the above alive under
  faults: retries with backoff, pool stall watchdogs, worker-crash
  isolation with graceful downgrade to serial execution, terminal
  :class:`TaskFailure` payloads, cache-corruption quarantine, sweep
  checkpoints, and the deterministic ``REPRO_CHAOS`` injection harness
  that proves each guarantee in tests.
"""

from repro.runner.cache import CACHE_SCHEMA, ResultCache
from repro.runner.pool import ExperimentRunner, default_workers
from repro.runner.resilience import (
    ChaosError,
    ChaosPolicy,
    CheckpointStore,
    ResilientExecutor,
    RetryPolicy,
    SweepCheckpoint,
    TaskFailedError,
    TaskFailure,
    UsageError,
    ensure_payload,
    is_failure,
    log_event,
)
from repro.runner.tasks import (
    SCHEMA_VERSION,
    SimTask,
    program_digest,
    run_task,
    sim_from_dict,
    sim_to_dict,
    task_key,
)

__all__ = [
    "CACHE_SCHEMA",
    "ChaosError",
    "ChaosPolicy",
    "CheckpointStore",
    "ExperimentRunner",
    "ResilientExecutor",
    "ResultCache",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "SimTask",
    "SweepCheckpoint",
    "TaskFailedError",
    "TaskFailure",
    "UsageError",
    "default_workers",
    "ensure_payload",
    "is_failure",
    "log_event",
    "program_digest",
    "run_task",
    "sim_from_dict",
    "sim_to_dict",
    "task_key",
]
