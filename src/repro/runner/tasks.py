"""Deterministic simulation tasks: the unit of caching and distribution.

A :class:`SimTask` describes everything a worker process needs to
reproduce one simulation bit-for-bit: the linked program image, the
functional core (``fast`` mode, the ISS counts run; ``profile`` mode,
the execution-profile run of the profile-once DSE path) or the fully
priced hardware configuration (``metered`` mode, the testbed
cycle/energy run), and the watchdog budget.  :func:`task_key` hashes
exactly those inputs (plus :data:`SCHEMA_VERSION`), so the disk cache
can never return a result for different content, regardless of kernel
names or call sites.

Results travel as plain JSON dicts.  Python's ``repr``-based float
serialisation round-trips exactly, so a payload loaded from a warm cache
is bit-identical to the one computed cold -- the property the warm/cold
tests pin down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.asm.program import Program
from repro.hw.board import Board, RawMeasurement
from repro.hw.config import HwConfig
from repro.vm.config import CoreConfig
from repro.vm.simulator import SimulationResult, Simulator

#: Bump when result payloads or simulation cost semantics change: old
#: cache entries then simply stop being addressed.  2: the ``profile``
#: task mode and its execution-profile payloads joined the schema --
#: pre-profile entries (metered included) address different keys, so a
#: stale cache can never alias across the schema change.  3: profile
#: payloads dropped the per-block dispatch diagnostics
#: (``PROFILE_VERSION`` 2), so v2 entries must stop being addressed.
SCHEMA_VERSION = 3


@dataclass(frozen=True)
class SimTask:
    """One deterministic simulation to run (and cache) somewhere."""

    mode: str  #: ``"fast"`` / ``"profile"`` (ISS) or ``"metered"`` (testbed)
    program: Program
    budget: int
    core: CoreConfig | None = None  #: fast/profile mode platform
    hw: HwConfig | None = None      #: metered mode platform

    def __post_init__(self) -> None:
        if self.mode in ("fast", "profile"):
            if self.core is None:
                raise ValueError(f"{self.mode} tasks need a CoreConfig")
        elif self.mode == "metered":
            if self.hw is None:
                raise ValueError("metered tasks need a HwConfig")
        else:
            raise ValueError(f"unknown task mode {self.mode!r}")


def program_digest(program: Program) -> str:
    """SHA-256 over everything execution can observe of ``program``.

    Memoised on the program object (:class:`Program` is a frozen
    dataclass, so the hashed content cannot change underneath the
    memo): a DSE sweep keys hundreds of tasks against the same handful
    of images, so each image is hashed once rather than once per task
    key.
    """
    cached = getattr(program, "_content_digest", None)
    if cached is None:
        h = hashlib.sha256()
        h.update(f"{program.origin}|{program.entry}|{program.data_addr}|"
                 f"{program.bss_addr}|{program.bss_size}|".encode())
        h.update(program.text)
        h.update(b"|")
        h.update(program.data)
        cached = h.hexdigest()
        object.__setattr__(program, "_content_digest", cached)
    return cached


def _core_fingerprint(core: CoreConfig) -> list:
    return [core.has_fpu, core.nwindows, core.ram_size, core.ram_base,
            core.stack_reserve, core.blocks_enabled, core.block_size,
            core.metered_blocks_enabled]


def _hw_fingerprint(hw: HwConfig) -> list:
    return [
        hw.clock_hz, hw.static_power_w, hw.jitter_amplitude,
        hw.untaken_branch_discount, hw.untaken_branch_energy_factor,
        hw.window_trap_cycles, hw.window_trap_energy_nj,
        sorted(hw.cycle_table.items()),
        sorted(hw.dyn_energy_nj.items()),
    ]


def task_key(task: SimTask) -> str:
    """The content address of ``task``'s result."""
    core = task.hw.core if task.mode == "metered" else task.core
    blob = json.dumps({
        "v": SCHEMA_VERSION,
        "mode": task.mode,
        "budget": task.budget,
        "program": program_digest(task.program),
        "core": _core_fingerprint(core),
        "hw": _hw_fingerprint(task.hw) if task.mode == "metered" else None,
    }, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- result payloads ---------------------------------------------------------

def sim_to_dict(sim: SimulationResult) -> dict:
    return {
        "exit_code": sim.exit_code,
        "retired": sim.retired,
        "category_counts": sim.category_counts,
        "mnemonic_counts": sim.mnemonic_counts,
        "console": sim.console,
        "wall_seconds": sim.wall_seconds,
        "translated_pcs": sim.translated_pcs,
        "max_window_depth": sim.max_window_depth,
        "spill_count": sim.spill_count,
        "fill_count": sim.fill_count,
        "extras": sim.extras,
    }


def sim_from_dict(data: dict) -> SimulationResult:
    return SimulationResult(**data)


def raw_to_payload(raw: RawMeasurement) -> dict:
    return {
        "cycles": raw.cycles,
        "dyn_energy_nj": raw.dyn_energy_nj,
        "true_time_s": raw.true_time_s,
        "true_energy_j": raw.true_energy_j,
        "sim": sim_to_dict(raw.sim),
    }


def raw_from_payload(data: dict) -> RawMeasurement:
    return RawMeasurement(
        cycles=data["cycles"],
        dyn_energy_nj=data["dyn_energy_nj"],
        true_time_s=data["true_time_s"],
        true_energy_j=data["true_energy_j"],
        sim=sim_from_dict(data["sim"]),
    )


def run_task(task) -> dict:
    """Execute ``task`` (in this or a worker process) -> JSON payload.

    Dispatches on ``task.mode``: the three :class:`SimTask` simulation
    modes, plus the sharded streamed sweep's ``"shard"`` pricing tasks
    (:class:`repro.dse.shard.ShardTask`) -- routed here so the
    resilient executor's chaos injection, retries and failure records
    apply to them unchanged.
    """
    if task.mode == "shard":
        # deferred: keeps worker bootstrap light for plain sim tasks
        from repro.dse.shard import run_shard_task
        return run_shard_task(task)
    if task.mode == "metered":
        raw = Board(task.hw).measure_raw(task.program,
                                         max_instructions=task.budget)
        return raw_to_payload(raw)
    if task.mode == "profile":
        from repro.vm.profiler import ProfileMeter
        meter = ProfileMeter()
        simulator = Simulator(task.program, task.core)
        sim = simulator.run_profiled(meter, max_instructions=task.budget)
        clean = simulator.cpu.invalidations == 0
        return {"sim": sim_to_dict(sim),
                "profile": meter.snapshot(sim, clean=clean)}
    sim = Simulator(task.program, task.core).run(
        max_instructions=task.budget)
    return {"sim": sim_to_dict(sim)}
