"""Content-addressed on-disk result cache with end-to-end integrity.

One JSON file per result, named by the task's content key (a SHA-256 over
the program image, the priced hardware configuration, the watchdog budget
and the schema version -- see :func:`repro.runner.tasks.task_key`).
Content addressing is the whole invalidation story: changing the kernel,
the cost tables or the result schema changes the key, so stale entries
are never *read*, only left behind (and can be deleted wholesale at any
time without correctness impact).

Every entry is an envelope ``{"schema", "sha256", "payload"}`` carrying
a checksum over the canonical payload JSON.  :meth:`ResultCache.get`
verifies the envelope on every read: truncated, non-JSON, tampered or
stale-schema files are moved to a ``corrupt/`` quarantine subdirectory
(one ``event=quarantine`` log line each), counted as misses and
transparently recomputed by the runner -- never a crash, never silent
reuse of a damaged result.

Writes are atomic (temp file + ``os.replace``), so concurrent processes
-- pool workers, parallel pytest sessions -- can share one directory.
A :class:`~repro.runner.resilience.ChaosPolicy` can be armed on the
cache to deterministically damage fresh writes (once per key), which is
how the quarantine path is proven in tests and CI.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.runner.resilience import ChaosPolicy, log_event

#: Envelope schema: bump when the integrity wrapper itself changes (old
#: envelopes then quarantine as ``stale-schema`` and recompute).
CACHE_SCHEMA = 1


def payload_digest(payload: dict) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``."""
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def corrupt_file(path: Path, style: str) -> None:
    """Damage ``path`` in one of the :data:`CORRUPTION_STYLES` ways.

    Shared by the chaos write hook and the cache-poisoning tests, so the
    faults injected and the faults tested are the same bytes.
    """
    text = path.read_text()
    if style == "truncate":
        path.write_text(text[:max(1, len(text) // 3)])
    elif style == "garbage":
        path.write_bytes(b"\x00\xffnot json at all\x9c" + text[:16].encode())
    elif style == "bad-checksum":
        entry = json.loads(text)
        digest = entry.get("sha256", "0" * 64)
        entry["sha256"] = ("f" if digest[0] != "f" else "0") + digest[1:]
        path.write_text(json.dumps(entry, sort_keys=True))
    elif style == "stale-schema":
        entry = json.loads(text)
        entry["schema"] = -1
        path.write_text(json.dumps(entry, sort_keys=True))
    else:  # pragma: no cover - guarded by ChaosPolicy/test parametrize
        raise ValueError(f"unknown corruption style {style!r}")


class ResultCache:
    """A directory of checksummed ``<sha256>.json`` payload envelopes."""

    def __init__(self, root: str | os.PathLike,
                 chaos: ChaosPolicy | None = None):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self._chaos = chaos
        self._chaos_corrupted: set[str] = set()

    # -- reads ---------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The verified payload stored under ``key``, or None on a miss.

        A present-but-damaged entry (truncated write, disk corruption,
        tampering, pre-envelope schema) is quarantined and reported as a
        miss: the caller recomputes, and the fresh write replaces the
        entry -- a corrupt result can never surface.
        """
        path = self.root / f"{key}.json"
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        except UnicodeDecodeError:  # binary garbage is not even text
            self._quarantine(path, key, "not-json")
            self.misses += 1
            return None
        payload, reason = self._verify(text)
        if reason is not None:
            self._quarantine(path, key, reason)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    @staticmethod
    def _verify(text: str) -> tuple[dict | None, str | None]:
        """``(payload, None)`` for an intact envelope, else ``(None, why)``."""
        try:
            entry = json.loads(text)
        except ValueError:
            return None, "not-json"
        if not isinstance(entry, dict) or "payload" not in entry \
                or "sha256" not in entry:
            return None, "stale-schema"
        if entry.get("schema") != CACHE_SCHEMA:
            return None, "stale-schema"
        payload = entry["payload"]
        if payload_digest(payload) != entry["sha256"]:
            return None, "bad-checksum"
        return payload, None

    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        dest = self.root / "corrupt" / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            # cross-device or permission trouble: dropping the entry
            # still guarantees it is never read again
            try:
                path.unlink()
            except OSError:  # pragma: no cover - nothing left to do
                pass
        self.quarantined += 1
        log_event("quarantine", key=key[:12], reason=reason,
                  dest=str(dest))

    # -- writes --------------------------------------------------------------

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` atomically, checksummed."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {"schema": CACHE_SCHEMA, "sha256": payload_digest(payload),
                 "payload": payload}
        target = self.root / f"{key}.json"
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, target)
        if self._chaos is not None and key not in self._chaos_corrupted:
            style = self._chaos.corruption(key)
            if style is not None:
                self._chaos_corrupted.add(key)
                corrupt_file(target, style)
                log_event("chaos-corrupt", key=key[:12], style=style)

    def __len__(self) -> int:
        try:
            return sum(1 for p in self.root.iterdir()
                       if p.suffix == ".json")
        except OSError:
            return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses}, quarantined={self.quarantined})")
