"""Content-addressed on-disk result cache.

One JSON file per result, named by the task's content key (a SHA-256 over
the program image, the priced hardware configuration, the watchdog budget
and the schema version -- see :func:`repro.runner.tasks.task_key`).
Content addressing is the whole invalidation story: changing the kernel,
the cost tables or the result schema changes the key, so stale entries
are never *read*, only left behind (and can be deleted wholesale at any
time without correctness impact).  Execution-profile payloads (the
``profile`` task mode) ride the same mechanism under the bumped
:data:`~repro.runner.tasks.SCHEMA_VERSION`, so pre-profile entries of
any mode can never alias them.

Writes are atomic (temp file + ``os.replace``), so concurrent processes
-- pool workers, parallel pytest sessions -- can share one directory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


class ResultCache:
    """A directory of ``<sha256>.json`` payloads."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or None on a miss."""
        try:
            text = (self.root / f"{key}.json").read_text()
            payload = json.loads(text)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` atomically."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.root / f"{key}.json")

    def __len__(self) -> int:
        try:
            return sum(1 for p in self.root.iterdir()
                       if p.suffix == ".json")
        except OSError:
            return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")
