"""Process-pool execution of simulation tasks behind the result cache.

:class:`ExperimentRunner` is what the experiment drivers talk to: hand it
a batch of :class:`~repro.runner.tasks.SimTask` and it returns their
payloads, fetching what the cache already holds, fanning the rest across
worker processes (``REPRO_WORKERS``, default ``min(cpu_count, 8)``) and
persisting fresh results for the next figure, process or invocation.

Within a batch, duplicate keys are computed once.  With ``workers <= 1``
or single-task batches everything runs inline -- bit-identical either
way, because tasks are deterministic.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.asm.program import Program
from repro.hw.board import RawMeasurement
from repro.hw.config import HwConfig
from repro.runner.cache import ResultCache
from repro.runner.tasks import (
    SimTask,
    raw_from_payload,
    run_task,
    sim_from_dict,
    task_key,
)
from repro.vm.config import CoreConfig
from repro.vm.simulator import SimulationResult


def default_workers() -> int:
    """``REPRO_WORKERS`` or a conservative CPU-count default."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return min(os.cpu_count() or 1, 8)


class ExperimentRunner:
    """Cache-fronted, pool-backed executor for simulation tasks.

    Parameters
    ----------
    cache_dir:
        Directory of the on-disk result cache; ``None`` disables
        persistence (tasks still dedupe within a batch).
    workers:
        Maximum worker processes for one batch; ``None`` picks
        :func:`default_workers`.  ``1`` computes inline.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 workers: int | None = None):
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.workers = default_workers() if workers is None else workers
        #: process-local tier in front of (or instead of) the disk cache,
        #: so prefetch batches pay off even with persistence disabled
        self._memory: dict[str, dict] = {}

    # -- batch interface -----------------------------------------------------

    def run_tasks(self, tasks: list[SimTask]) -> list[dict]:
        """Payloads for ``tasks``, cache-first, misses fanned out."""
        keys = [task_key(task) for task in tasks]
        payloads: dict[str, dict] = {}
        missing: dict[str, SimTask] = {}
        for key, task in zip(keys, tasks):
            if key in payloads or key in missing:
                continue
            cached = self._memory.get(key)
            if cached is None and self.cache is not None:
                cached = self.cache.get(key)
            if cached is not None:
                payloads[key] = cached
            else:
                missing[key] = task
        if missing:
            fresh = self._compute(list(missing.values()))
            for key, payload in zip(missing, fresh):
                payloads[key] = payload
                if self.cache is not None:
                    self.cache.put(key, payload)
        self._memory.update(payloads)
        return [payloads[key] for key in keys]

    def _compute(self, tasks: list[SimTask]) -> list[dict]:
        n = min(self.workers, len(tasks))
        if n <= 1:
            return [run_task(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=n) as pool:
            return list(pool.map(run_task, tasks))

    # -- single-task conveniences -------------------------------------------

    def metered_raw(self, program: Program, hw: HwConfig,
                    budget: int) -> RawMeasurement:
        """The deterministic half of ``Board(hw).measure(program)``."""
        task = SimTask(mode="metered", program=program, budget=budget,
                       hw=hw)
        return raw_from_payload(self.run_tasks([task])[0])

    def fast_sim(self, program: Program, core: CoreConfig,
                 budget: int) -> SimulationResult:
        """A functional ISS run (the estimation path's counts)."""
        task = SimTask(mode="fast", program=program, budget=budget,
                       core=core)
        return sim_from_dict(self.run_tasks([task])[0]["sim"])
