"""Process-pool execution of simulation tasks behind the result cache.

:class:`ExperimentRunner` is what the experiment drivers talk to: hand it
a batch of :class:`~repro.runner.tasks.SimTask` and it returns their
payloads, fetching what the cache already holds, fanning the rest across
worker processes (``REPRO_WORKERS``, default ``min(cpu_count, 8)``) and
persisting fresh results for the next figure, process or invocation.

Within a batch, duplicate keys are computed once.  With ``workers <= 1``
or single-task batches everything runs inline -- bit-identical either
way, because tasks are deterministic.

Execution is fault-tolerant (:mod:`repro.runner.resilience`): failed
tasks are retried with exponential backoff, hung pool generations are
detected by the ``REPRO_TIMEOUT_S`` watchdog, crashed workers break a
pool that is rebuilt and -- after ``REPRO_POOL_FAILURES`` incidents --
abandoned for in-process serial execution.  A task whose attempt budget
(``REPRO_RETRIES``) runs out yields a terminal
:class:`~repro.runner.resilience.TaskFailure` payload in its slot
instead of aborting the batch; failure payloads are never cached, so the
next batch tries again.
"""

from __future__ import annotations

import os
import threading

from repro.asm.program import Program
from repro.hw.board import RawMeasurement
from repro.hw.config import HwConfig
from repro.runner.cache import ResultCache
from repro.runner.resilience import (
    ChaosPolicy,
    ResilientExecutor,
    RetryPolicy,
    ensure_payload,
    env_int,
    is_failure,
)
from repro.runner.tasks import (
    SimTask,
    raw_from_payload,
    sim_from_dict,
    task_key,
)
from repro.vm.config import CoreConfig
from repro.vm.simulator import SimulationResult


def default_workers() -> int:
    """``REPRO_WORKERS`` (validated) or a conservative CPU-count default."""
    return env_int("REPRO_WORKERS", min(os.cpu_count() or 1, 8))


class ExperimentRunner:
    """Cache-fronted, pool-backed, fault-tolerant executor for tasks.

    Parameters
    ----------
    cache_dir:
        Directory of the on-disk result cache; ``None`` disables
        persistence (tasks still dedupe within a batch).
    workers:
        Maximum worker processes for one batch; ``None`` picks
        :func:`default_workers`.  ``1`` computes inline.
    retry:
        Retry/timeout policy; ``None`` reads the ``REPRO_RETRIES`` /
        ``REPRO_BACKOFF_S`` / ``REPRO_TIMEOUT_S`` / ``REPRO_POOL_FAILURES``
        knobs.
    chaos:
        Deterministic fault injection; ``None`` arms from ``REPRO_CHAOS``
        (usually unset, i.e. no chaos).
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 workers: int | None = None,
                 retry: RetryPolicy | None = None,
                 chaos: ChaosPolicy | None = None):
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.chaos = chaos if chaos is not None else ChaosPolicy.from_env()
        self.cache = (ResultCache(cache_dir, chaos=self.chaos)
                      if cache_dir else None)
        self.workers = default_workers() if workers is None else workers
        #: process-local tier in front of (or instead of) the disk cache,
        #: so prefetch batches pay off even with persistence disabled
        self._memory: dict[str, dict] = {}
        #: holds the degradation state (pool failures survive batches)
        self._executor = ResilientExecutor(self.workers, policy=self.retry,
                                           chaos=self.chaos)
        #: batches execute one at a time: the memory tier and the
        #: executor's degradation state are not safe under concurrent
        #: mutation, so threaded callers (the evaluation server fills
        #: cold profiles from worker threads) serialize here.  Reentrant
        #: because single-task conveniences call ``run_tasks`` themselves.
        self._batch_lock = threading.RLock()

    # -- batch interface -----------------------------------------------------

    def run_tasks(self, tasks: list[SimTask]) -> list[dict]:
        """Payloads for ``tasks``, cache-first, misses fanned out.

        A slot holds a :class:`TaskFailure` record (see
        :func:`repro.runner.resilience.is_failure`) when that task's
        attempt budget ran out; failures are returned, not raised, and
        never stored in any cache tier.

        Thread-safe: concurrent batches from different threads are
        serialized (results are deterministic, so ordering is free);
        parallelism belongs *inside* a batch, across the worker pool.
        """
        keys = [task_key(task) for task in tasks]
        with self._batch_lock:
            return self._run_tasks_locked(tasks, keys)

    def _run_tasks_locked(self, tasks: list[SimTask],
                          keys: list[str]) -> list[dict]:
        payloads: dict[str, dict] = {}
        missing: dict[str, SimTask] = {}
        for key, task in zip(keys, tasks):
            if key in payloads or key in missing:
                continue
            cached = self._memory.get(key)
            if cached is None and self.cache is not None:
                cached = self.cache.get(key)
            if cached is not None:
                payloads[key] = cached
            else:
                missing[key] = task
        if missing:
            fresh = self._compute(list(missing.values()), list(missing))
            for key, payload in zip(missing, fresh):
                payloads[key] = payload
                if self.cache is not None and not is_failure(payload):
                    self.cache.put(key, payload)
        self._memory.update(
            (key, payload) for key, payload in payloads.items()
            if not is_failure(payload))
        return [payloads[key] for key in keys]

    def _compute(self, tasks: list[SimTask], keys: list[str]) -> list[dict]:
        return self._executor.run(tasks, keys)

    def run_raw(self, tasks: list, keys: list[str]) -> list[dict]:
        """Resilient-pool execution for non-simulation tasks, cache-bypassed.

        The sharded streamed sweep ships its
        :class:`~repro.dse.shard.ShardTask` batches through here: the
        tasks inherit the executor's retry budget, stall watchdog,
        pool-rebuild/serial-downgrade ladder and chaos injection
        unchanged, but their payloads are derived data (shard fronts
        over already-cached profiles, keyed by shard geometry rather
        than content), so they never enter the content-addressed
        result cache or the memory tier.  Slots may hold terminal
        :class:`~repro.runner.resilience.TaskFailure` payloads, exactly
        like :meth:`run_tasks`.
        """
        with self._batch_lock:
            return self._executor.run(list(tasks), list(keys))

    # -- single-task conveniences -------------------------------------------

    def metered_raw(self, program: Program, hw: HwConfig,
                    budget: int) -> RawMeasurement:
        """The deterministic half of ``Board(hw).measure(program)``."""
        task = SimTask(mode="metered", program=program, budget=budget,
                       hw=hw)
        return raw_from_payload(ensure_payload(self.run_tasks([task])[0]))

    def fast_sim(self, program: Program, core: CoreConfig,
                 budget: int) -> SimulationResult:
        """A functional ISS run (the estimation path's counts)."""
        task = SimTask(mode="fast", program=program, budget=budget,
                       core=core)
        return sim_from_dict(
            ensure_payload(self.run_tasks([task])[0])["sim"])
