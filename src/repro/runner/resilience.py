"""Fault-tolerant experiment execution.

Long sweeps die in boring ways: a pool worker is OOM-killed, a cache
JSON is truncated by a full disk, a simulation wedges, a laptop lid
closes mid-campaign.  This module is the cross-cutting layer that turns
each of those from "the sweep aborts and hours of work are discarded"
into a logged, bounded, *deterministic* recovery:

* :class:`RetryPolicy` -- exponential backoff with deterministic jitter
  and a per-task attempt budget; an exhausted budget produces a terminal
  :class:`TaskFailure` payload instead of an exception.
* :class:`ResilientExecutor` -- the process-pool driver behind
  :class:`~repro.runner.pool.ExperimentRunner`: per-generation stall
  watchdogs (``REPRO_TIMEOUT_S``), worker-crash isolation (a broken pool
  is rebuilt and its tasks retried) and, after
  ``RetryPolicy.max_pool_failures`` pool-level incidents, a logged
  downgrade to in-process serial execution.
* :class:`ChaosPolicy` -- the deterministic chaos-injection harness
  (``REPRO_CHAOS=<seed>:<spec>``): worker kills, cache corruption, slow
  tasks and transient exceptions fire at points decided purely by
  ``sha256(seed | site | task-key | attempt)``, and only on attempts
  below ``depth`` -- so any retry budget ``> depth`` provably converges
  to the fault-free result, bit for bit.
* :class:`CheckpointStore` / :class:`SweepCheckpoint` -- atomic JSON run
  manifests for ``repro dse --resume RUN_ID``.
* :func:`log_event` -- one-line structured events (``repro.runner``
  logger) for every retry, timeout, quarantine, downgrade and
  checkpoint; silent recovery is unauditable.
* :class:`UsageError` and the ``env_*`` readers -- every ``REPRO_*``
  knob is validated on first read into one clear message instead of a
  deep traceback.

Everything here is stdlib-only and import-light (the simulator chain is
loaded lazily inside the execution paths), so the CLI can import the
error types for free.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields
from pathlib import Path

LOGGER = logging.getLogger("repro.runner")

#: Payload key marking a terminal task failure (see :class:`TaskFailure`).
FAILURE_KEY = "task_failure"


class UsageError(ValueError):
    """A bad knob (environment variable or flag): one line, no traceback."""


class ChaosError(RuntimeError):
    """A transient fault injected by :class:`ChaosPolicy`."""


class TaskFailedError(RuntimeError):
    """A caller demanded the payload of a task whose retries ran out."""


def log_event(event: str, _level: int = logging.WARNING, **fields_) -> None:
    """One structured line on the ``repro.runner`` logger.

    ``event=<kind> key=value ...`` -- greppable, single-line, and
    asserted on by the resilience tests: every retry, timeout,
    quarantine, downgrade and checkpoint must leave a trace.
    """
    parts = [f"event={event}"]
    parts += [f"{name}={value}" for name, value in fields_.items()]
    LOGGER.log(_level, "%s", " ".join(parts))


# -- validated environment knobs ---------------------------------------------

def env_int(name: str, default: int, minimum: int = 1) -> int:
    """``int(os.environ[name])`` or ``default``; junk raises UsageError."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise UsageError(
            f"{name} must be an integer >= {minimum}, got {raw!r}") from None
    if value < minimum:
        raise UsageError(
            f"{name} must be an integer >= {minimum}, got {raw!r}")
    return value


def env_float(name: str, default: float, minimum: float = 0.0) -> float:
    """``float(os.environ[name])`` or ``default``; junk raises UsageError."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        raise UsageError(
            f"{name} must be a number >= {minimum}, got {raw!r}") from None
    if value < minimum:
        raise UsageError(f"{name} must be a number >= {minimum}, got {raw!r}")
    return value


_CACHE_ON = frozenset(("", "on", "1", "yes", "true", "enabled"))
_CACHE_OFF = frozenset(("off", "0", "no", "false", "disabled"))


def cache_enabled_from_env() -> bool:
    """``REPRO_CACHE`` as a validated boolean (default: enabled)."""
    raw = os.environ.get("REPRO_CACHE", "").strip().lower()
    if raw in _CACHE_OFF:
        return False
    if raw in _CACHE_ON:
        return True
    raise UsageError(
        f"REPRO_CACHE must be one of {sorted(_CACHE_ON - {''})} or "
        f"{sorted(_CACHE_OFF)}, got {raw!r}")


def cache_base_dir() -> Path:
    """The cache root (``REPRO_CACHE_DIR`` or the default), validated.

    Resolved even when the result cache is disabled: checkpoint
    manifests live under ``<root>/runs`` either way.
    """
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    path = Path(raw) if raw else Path.home() / ".cache" / "repro-nfp"
    if path.exists() and not path.is_dir():
        raise UsageError(
            f"REPRO_CACHE_DIR points at a file, not a directory: {path}")
    return path


def cache_dir_from_env() -> str | None:
    """The result-cache directory, or ``None`` when ``REPRO_CACHE=off``."""
    if not cache_enabled_from_env():
        return None
    return str(cache_base_dir())


# -- deterministic rolls ------------------------------------------------------

def _roll(seed: int, site: str, key: str, attempt: int) -> float:
    """A reproducible uniform draw in ``[0, 1)`` for one decision point."""
    digest = hashlib.sha256(
        f"{seed}|{site}|{key}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


# -- retry policy -------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, backoff shape and pool-level failure tolerance."""

    max_attempts: int = 3        #: total tries per task before TaskFailure
    base_delay_s: float = 0.05   #: first backoff step
    max_delay_s: float = 2.0     #: backoff cap
    jitter: float = 0.5          #: deterministic jitter fraction on delays
    timeout_s: float | None = None  #: pool stall watchdog (None: disabled)
    max_pool_failures: int = 3   #: broken pools / stalls before serial mode

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """``REPRO_RETRIES`` / ``REPRO_BACKOFF_S`` / ``REPRO_TIMEOUT_S`` /
        ``REPRO_POOL_FAILURES``, validated."""
        timeout = env_float("REPRO_TIMEOUT_S", 0.0)
        return cls(
            max_attempts=env_int("REPRO_RETRIES", cls.max_attempts),
            base_delay_s=env_float("REPRO_BACKOFF_S", cls.base_delay_s),
            timeout_s=timeout or None,
            max_pool_failures=env_int("REPRO_POOL_FAILURES",
                                      cls.max_pool_failures),
        )

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered.

        Exponential in the attempt, capped at :attr:`max_delay_s`, with
        a deterministic jitter drawn from the task key -- two retries of
        the same task always wait the same time, but a batch of failed
        tasks never thunders back in lockstep.
        """
        step = min(self.max_delay_s,
                   self.base_delay_s * (2 ** max(0, attempt - 1)))
        return step * (1.0 + self.jitter * _roll(0, "backoff", key, attempt))


# -- terminal failures --------------------------------------------------------

@dataclass(frozen=True)
class TaskFailure:
    """The terminal record of a task whose attempt budget ran out."""

    key: str
    mode: str
    attempts: int
    error: str

    def to_payload(self) -> dict:
        return {FAILURE_KEY: {"key": self.key, "mode": self.mode,
                              "attempts": self.attempts,
                              "error": self.error}}

    @classmethod
    def from_payload(cls, payload: dict) -> "TaskFailure":
        return cls(**payload[FAILURE_KEY])


def is_failure(payload: object) -> bool:
    """True when a runner payload is a :class:`TaskFailure` record."""
    return isinstance(payload, dict) and FAILURE_KEY in payload


def ensure_payload(payload: dict) -> dict:
    """``payload``, or :class:`TaskFailedError` if it records a failure.

    The guard for single-result conveniences that have no way to carry
    a partial outcome (``metered_raw``/``fast_sim``).
    """
    if is_failure(payload):
        failure = TaskFailure.from_payload(payload)
        raise TaskFailedError(
            f"task {failure.key[:12]} ({failure.mode}) failed after "
            f"{failure.attempts} attempts: {failure.error}")
    return payload


# -- chaos injection ----------------------------------------------------------

#: Styles :meth:`ChaosPolicy.corruption` picks between (cache damage).
CORRUPTION_STYLES = ("truncate", "garbage", "bad-checksum", "stale-schema")


@dataclass(frozen=True)
class ChaosPolicy:
    """Deterministic fault injection: ``REPRO_CHAOS=<seed>:<spec>``.

    ``<spec>`` is a comma list of ``name=value`` entries::

        kill=R      worker process dies at task start (rate R in [0,1])
        raise=R     transient exception at task start
        slow=R      task stalls for slow_s before running
        corrupt=R   a fresh cache write is damaged (once per key)
        slow_s=S    stall duration in seconds (default 0.75)
        depth=D     attempts 0..D-1 are fault-eligible (default 1)

    Every decision is a pure function of ``(seed, site, task key,
    attempt)``, and no fault fires at attempts ``>= depth`` -- so any
    retry budget larger than ``depth`` converges to the fault-free
    result exactly, which is what the convergence property tests prove.
    """

    seed: int
    kill: float = 0.0
    raise_: float = 0.0
    slow: float = 0.0
    corrupt: float = 0.0
    slow_s: float = 0.75
    depth: int = 1

    #: spec-name -> field-name (``raise`` is a Python keyword)
    _NAMES = {"kill": "kill", "raise": "raise_", "slow": "slow",
              "corrupt": "corrupt", "slow_s": "slow_s", "depth": "depth"}

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        head, sep, tail = spec.partition(":")
        if not sep:
            raise UsageError(
                f"chaos spec must look like '<seed>:kill=0.2,corrupt=0.3', "
                f"got {spec!r}")
        try:
            seed = int(head.strip())
        except ValueError:
            raise UsageError(
                f"chaos seed must be an integer, got {head!r}") from None
        kwargs: dict[str, float | int] = {}
        for part in tail.split(","):
            part = part.strip()
            if not part:
                continue
            name, eq, value = part.partition("=")
            name = name.strip()
            if not eq or name not in cls._NAMES:
                raise UsageError(
                    f"unknown chaos entry {part!r}; available: "
                    f"{', '.join(sorted(cls._NAMES))}")
            field_name = cls._NAMES[name]
            try:
                if field_name == "depth":
                    parsed: float | int = int(value)
                else:
                    parsed = float(value)
            except ValueError:
                raise UsageError(
                    f"bad chaos value in {part!r}") from None
            if field_name == "depth" and parsed < 1:
                raise UsageError(f"chaos depth must be >= 1, got {value}")
            if field_name == "slow_s" and parsed <= 0:
                raise UsageError(f"chaos slow_s must be > 0, got {value}")
            if field_name in ("kill", "raise_", "slow", "corrupt") \
                    and not 0.0 <= parsed <= 1.0:
                raise UsageError(
                    f"chaos rate {name!r} must be in [0, 1], got {value}")
            kwargs[field_name] = parsed
        return cls(seed=seed, **kwargs)

    @classmethod
    def from_env(cls) -> "ChaosPolicy | None":
        raw = os.environ.get("REPRO_CHAOS", "").strip()
        return cls.parse(raw) if raw else None

    def spec(self) -> str:
        """The round-trippable spec string (ships the policy to workers)."""
        inverse = {v: k for k, v in self._NAMES.items()}
        parts = [f"{inverse[f.name]}={getattr(self, f.name)}"
                 for f in fields(self) if f.name != "seed"]
        return f"{self.seed}:" + ",".join(parts)

    def _should(self, site: str, key: str, attempt: int,
                rate: float) -> bool:
        return (attempt < self.depth and rate > 0.0
                and _roll(self.seed, site, key, attempt) < rate)

    def inject_task_faults(self, key: str, attempt: int, *,
                           in_worker: bool) -> None:
        """Fire task-start faults for ``(key, attempt)``, if any.

        ``kill`` in a pool worker is a hard ``os._exit`` (the pool sees
        a crashed process, exactly like an OOM kill); in-process it
        degrades to a :class:`ChaosError` -- killing the parent would
        take the experiment down with it, which is the failure mode this
        module exists to avoid.
        """
        if self._should("slow", key, attempt, self.slow):
            time.sleep(self.slow_s)
        if self._should("kill", key, attempt, self.kill):
            if in_worker:
                os._exit(0x2A)
            raise ChaosError(
                f"chaos kill (in-process) key={key[:12]} attempt={attempt}")
        if self._should("raise", key, attempt, self.raise_):
            raise ChaosError(
                f"chaos transient key={key[:12]} attempt={attempt}")

    def corruption(self, key: str) -> str | None:
        """The corruption style for a fresh cache write, or ``None``.

        Rolled at attempt 0 only: after the quarantine-and-recompute
        cycle rewrites the entry, it stays clean.
        """
        if not self._should("corrupt", key, 0, self.corrupt):
            return None
        pick = _roll(self.seed, "corrupt-style", key, 0)
        return CORRUPTION_STYLES[int(pick * len(CORRUPTION_STYLES))]


#: Per-process parse cache for chaos specs shipped into pool workers.
_WORKER_CHAOS: dict[str, ChaosPolicy] = {}


def _resilient_worker(task, key: str, attempt: int,
                      chaos_spec: str | None) -> dict:
    """Pool-worker entry: inject chaos (if armed), then run the task."""
    from repro.runner.tasks import run_task
    if chaos_spec:
        chaos = _WORKER_CHAOS.get(chaos_spec)
        if chaos is None:
            chaos = _WORKER_CHAOS[chaos_spec] = ChaosPolicy.parse(chaos_spec)
        chaos.inject_task_faults(key, attempt, in_worker=True)
    return run_task(task)


# -- the resilient executor ---------------------------------------------------

class ResilientExecutor:
    """Run task batches to completion through crashes, hangs and faults.

    The degradation ladder: a healthy process pool; a rebuilt pool after
    each worker crash or stall (every survivor's attempt counter is
    advanced, so deterministic chaos cannot re-fire forever); and, after
    ``max_pool_failures`` pool-level incidents, in-process serial
    execution for the remainder of the executor's life.  Tasks whose own
    attempt budget runs out become :class:`TaskFailure` payloads -- the
    batch always returns, one way or the other.
    """

    def __init__(self, workers: int, policy: RetryPolicy | None = None,
                 chaos: ChaosPolicy | None = None):
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy()
        self.chaos = chaos
        self.degraded = False
        self.pool_failures = 0

    def run(self, tasks: list, keys: list[str]) -> list[dict]:
        """Payloads (or failure records) for ``tasks``, in order."""
        results: list[dict | None] = [None] * len(tasks)
        attempts = [0] * len(tasks)
        pending = list(range(len(tasks)))
        n = min(self.workers, len(tasks))
        if n > 1 and not self.degraded:
            pending = self._parallel(tasks, keys, n, results, attempts,
                                     pending)
        for i in pending:
            if results[i] is None:
                results[i] = self._run_serial(tasks[i], keys[i], attempts[i])
        return results  # type: ignore[return-value]

    # -- pool generations ----------------------------------------------------

    def _parallel(self, tasks, keys, n, results, attempts,
                  pending) -> list[int]:
        chaos_spec = self.chaos.spec() if self.chaos else None
        while pending and not self.degraded:
            pool = ProcessPoolExecutor(max_workers=min(n, len(pending)))
            fs = {}
            try:
                for i in pending:
                    fs[pool.submit(_resilient_worker, tasks[i], keys[i],
                                   attempts[i], chaos_spec)] = i
                pending = self._drain(pool, fs, tasks, keys, results,
                                      attempts, chaos_spec)
            except KeyboardInterrupt:
                self._teardown(pool, fs)
                raise
        return pending

    def _drain(self, pool, fs, tasks, keys, results, attempts,
               chaos_spec) -> list[int]:
        """Wait out one pool generation; returns indices that need a
        fresh pool (worker crash / stall), or ``[]`` when drained."""
        while fs:
            done, _ = wait(fs, timeout=self.policy.timeout_s,
                           return_when=FIRST_COMPLETED)
            if not done:
                # the per-task wall-clock watchdog: nothing finished
                # within timeout_s, so the generation is hung
                stalled = sorted(fs.values())
                log_event("timeout", tasks=len(stalled),
                          timeout_s=self.policy.timeout_s)
                self._teardown(pool, fs)
                return self._note_pool_failure(stalled, attempts)
            for future in done:
                i = fs.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    survivors = sorted([i] + list(fs.values()))
                    log_event("pool-broken", tasks=len(survivors))
                    self._teardown(pool, fs)
                    return self._note_pool_failure(survivors, attempts)
                except Exception as exc:  # noqa: BLE001 - retry boundary
                    attempts[i] += 1
                    if attempts[i] >= self.policy.max_attempts:
                        results[i] = self._terminal(tasks[i], keys[i],
                                                    attempts[i], exc)
                    else:
                        self._backoff(keys[i], attempts[i], exc)
                        try:
                            fs[pool.submit(_resilient_worker, tasks[i],
                                           keys[i], attempts[i],
                                           chaos_spec)] = i
                        except (BrokenProcessPool, RuntimeError):
                            survivors = sorted([i] + list(fs.values()))
                            log_event("pool-broken", tasks=len(survivors))
                            self._teardown(pool, fs)
                            return self._note_pool_failure(survivors,
                                                           attempts)
                else:
                    results[i] = payload
        pool.shutdown()
        return []

    def _note_pool_failure(self, survivors, attempts) -> list[int]:
        # advance every survivor's attempt counter (the culprit is
        # unknowable once the pool is gone): deterministic chaos moves
        # past its depth instead of re-firing forever, but the bump is
        # capped so a pool-level incident never spends a task's last try
        for i in survivors:
            attempts[i] = min(attempts[i] + 1,
                              self.policy.max_attempts - 1)
        self.pool_failures += 1
        if self.pool_failures >= self.policy.max_pool_failures:
            self.degraded = True
            log_event("downgrade", to="serial",
                      pool_failures=self.pool_failures)
        return survivors

    @staticmethod
    def _teardown(pool, fs) -> None:
        """Cancel, shut down and terminate a (possibly hung) pool."""
        for future in list(fs):
            future.cancel()
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                if proc.is_alive():
                    proc.terminate()
            except (OSError, ValueError):  # pragma: no cover - racy exit
                pass

    # -- serial (in-process) execution ---------------------------------------

    def _run_serial(self, task, key: str, attempt: int = 0) -> dict:
        from repro.runner.tasks import run_task
        while True:
            try:
                if self.chaos is not None:
                    self.chaos.inject_task_faults(key, attempt,
                                                  in_worker=False)
                return run_task(task)
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - retry boundary
                attempt += 1
                if attempt >= self.policy.max_attempts:
                    return self._terminal(task, key, attempt, exc)
                self._backoff(key, attempt, exc)

    # -- shared bookkeeping --------------------------------------------------

    def _backoff(self, key: str, attempt: int, exc: Exception) -> None:
        delay = self.policy.delay_s(key, attempt)
        log_event("retry", key=key[:12],
                  attempt=f"{attempt + 1}/{self.policy.max_attempts}",
                  delay_s=round(delay, 4), error=type(exc).__name__)
        time.sleep(delay)

    def _terminal(self, task, key: str, attempt: int,
                  exc: Exception) -> dict:
        log_event("task-failed", key=key[:12], mode=task.mode,
                  attempts=attempt, error=type(exc).__name__)
        return TaskFailure(key=key, mode=task.mode, attempts=attempt,
                           error=repr(exc)).to_payload()


# -- checkpoint manifests -----------------------------------------------------

class CheckpointStore:
    """A directory of atomic ``<run_id>.json`` sweep manifests."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    def load(self, run_id: str) -> dict | None:
        try:
            manifest = json.loads(self.path(run_id).read_text())
        except OSError:
            return None
        except ValueError:
            log_event("quarantine", kind="checkpoint", run=run_id,
                      reason="not-json")
            return None
        return manifest if isinstance(manifest, dict) else None

    def save(self, run_id: str, manifest: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".{run_id}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(manifest, sort_keys=True))
        os.replace(tmp, self.path(run_id))


@dataclass
class SweepCheckpoint:
    """Completed sweep cells, flushed after every chunk.

    ``cells`` maps ``"<config>\\t<workload>"`` to either the cell's
    deterministic NFP list ``[time_s, energy_j, retired, cycles]``
    (JSON floats round-trip exactly, so a resumed report is
    byte-identical to an uninterrupted one) or a ``{"failed": ...}``
    record for cells whose attempt budget ran out.
    """

    store: CheckpointStore
    run_id: str
    spec: dict
    cells: dict = field(default_factory=dict)

    @classmethod
    def open(cls, store: CheckpointStore, run_id: str,
             spec: dict) -> "SweepCheckpoint":
        """Load ``run_id``'s manifest when it matches ``spec``, else
        start fresh (a changed spec invalidates old cells wholesale)."""
        manifest = store.load(run_id)
        cells: dict = {}
        if manifest is not None and manifest.get("spec") == spec:
            cells = dict(manifest.get("cells", {}))
            if cells:
                log_event("resume", _level=logging.INFO, run=run_id,
                          cells=len(cells))
        return cls(store=store, run_id=run_id, spec=spec, cells=cells)

    def flush(self, total: int | None = None) -> None:
        self.store.save(self.run_id, {"spec": self.spec,
                                      "cells": self.cells})
        log_event("checkpoint", _level=logging.INFO, run=self.run_id,
                  cells=len(self.cells),
                  **({"total": total} if total is not None else {}))


__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "CheckpointStore",
    "CORRUPTION_STYLES",
    "FAILURE_KEY",
    "LOGGER",
    "ResilientExecutor",
    "RetryPolicy",
    "SweepCheckpoint",
    "TaskFailedError",
    "TaskFailure",
    "UsageError",
    "cache_base_dir",
    "cache_dir_from_env",
    "cache_enabled_from_env",
    "ensure_payload",
    "env_float",
    "env_int",
    "is_failure",
    "log_event",
]
