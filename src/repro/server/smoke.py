"""End-to-end service smoke: boot, price, sweep, stampede, shut down.

``python -m repro.server.smoke`` is the scripted client the CI
``service-smoke`` job runs against a real ``repro serve`` subprocess:

1. boot the server on an ephemeral port and wait on ``/v1/healthz``;
2. price one configuration (2xx, sane payload);
3. fire a stampede of identical cold ``/v1/price`` requests and assert
   the single-flight contract: every response 200 and byte-identical,
   exactly **one** profiling fill on ``/v1/stats``;
4. run a materialized ``/v1/sweep`` and compare its body byte-for-byte
   against ``repro dse --profile --format json`` for the same spec
   (``--ref FILE`` supplies a pre-rendered reference instead);
5. poke the error paths (malformed JSON, unknown workload, wrong
   method, unknown route) and require the intended statuses;
6. SIGTERM the server and require a graceful exit 0 with no process
   left behind.

Any deviation exits 1 with a one-line reason.  The harness pins a
scratch ``REPRO_CACHE_DIR`` (shared between the server and the CLI
reference run) unless the environment already provides one.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro.server.client import ServerClient, fetch

STAMPEDE = 8
#: the sequential price check (cheap at smoke scale, axes off-default)
PRICE_PAYLOAD = {"workload": "img:sobel3x3",
                 "axes": {"clock_mhz": 80.0, "fpu": True}}
#: a *different* workload, so the stampede's key is genuinely cold
STAMPEDE_PAYLOAD = {"workload": "img:sharpen3x3",
                    "axes": {"nwindows": 8, "fpu": True}}
SWEEP_AXES = "clock_mhz=25:50,fpu"


class SmokeFailure(Exception):
    """One failed smoke check."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def boot_server(scale: str, env: dict) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve`` on an ephemeral port; return (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--scale", scale],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on [^:]+:(\d+)", line or "")
    if not match:
        proc.kill()
        raise SmokeFailure(f"server did not announce a port: {line!r}")
    return proc, int(match.group(1))


def wait_healthy(client: ServerClient, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            status, _ = client.get("/v1/healthz")
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.1)
    raise SmokeFailure(f"/v1/healthz not ready within {timeout_s}s")


def check_stampede(host: str, port: int) -> None:
    """N identical cold prices -> one fill, identical 200 bodies."""
    client = ServerClient(host, port)
    status, before = client.get_json("/v1/stats")
    check(status == 200, f"/v1/stats -> {status}")
    body = json.dumps(STAMPEDE_PAYLOAD).encode()

    async def stampede():
        return await asyncio.gather(*[
            fetch(host, port, "POST", "/v1/price", body)
            for _ in range(STAMPEDE)])

    results = asyncio.run(stampede())
    statuses = sorted({status for status, _ in results})
    check(statuses == [200], f"stampede statuses {statuses}, wanted [200]")
    bodies = {payload for _, payload in results}
    check(len(bodies) == 1,
          f"stampede produced {len(bodies)} distinct bodies, wanted 1")
    status, after = client.get_json("/v1/stats")
    check(status == 200, f"/v1/stats -> {status}")
    fills = after["profiles"]["fills"] - before["profiles"]["fills"]
    check(fills == 1,
          f"{STAMPEDE} identical cold prices ran {fills} profiling "
          f"fills, wanted exactly 1 (single-flight broken)")


def reference_sweep(scale: str, env: dict, ref_path: str | None) -> bytes:
    """The CLI-rendered reference report for the smoke sweep spec."""
    if ref_path:
        with open(ref_path, "rb") as handle:
            return handle.read()
    done = subprocess.run(
        [sys.executable, "-m", "repro", "dse", "--scale", scale,
         "--profile", "--axes", SWEEP_AXES, "--format", "json"],
        capture_output=True, env=env)
    check(done.returncode == 0,
          f"reference `repro dse` exited {done.returncode}: "
          f"{done.stderr.decode(errors='replace')[-300:]}")
    return done.stdout


def check_errors(client: ServerClient) -> None:
    status, _ = client._request("POST", "/v1/price", b"{not json")
    check(status == 400, f"malformed JSON -> {status}, wanted 400")
    status, _ = client.post_json("/v1/price",
                                 {"workload": "img:no-such-kernel"})
    check(status == 404, f"unknown workload -> {status}, wanted 404")
    status, _ = client.get("/v1/price")
    check(status == 405, f"GET /v1/price -> {status}, wanted 405")
    status, _ = client.get("/v1/nope")
    check(status == 404, f"unknown route -> {status}, wanted 404")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--ref", default=None, metavar="FILE",
                        help="pre-rendered `repro dse --profile --format "
                             "json` report to compare the sweep body "
                             "against (default: render one now)")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    scratch = None
    if "REPRO_CACHE_DIR" not in env:
        scratch = tempfile.mkdtemp(prefix="repro-serve-smoke-")
        env["REPRO_CACHE_DIR"] = scratch
    env.setdefault("PYTHONPATH", "src")

    proc, port = boot_server(args.scale, env)
    client = ServerClient("127.0.0.1", port)
    try:
        wait_healthy(client)
        print(f"smoke: server healthy on port {port}")

        status, priced = client.post_json("/v1/price", PRICE_PAYLOAD)
        check(status == 200, f"/v1/price -> {status}, wanted 200")
        payload = json.loads(priced)
        check(payload["time_s"] > 0 and payload["energy_j"] > 0,
              f"degenerate price payload: {payload}")
        print(f"smoke: priced {payload['workload']} on "
              f"{payload['config']}")

        check_stampede("127.0.0.1", port)
        print(f"smoke: {STAMPEDE}-way stampede -> single-flight held")

        status, body = client.post_json(
            "/v1/sweep", {"axes": SWEEP_AXES, "format": "json"})
        check(status == 200, f"/v1/sweep -> {status}, wanted 200")
        reference = reference_sweep(args.scale, env, args.ref)
        check(body == reference,
              f"sweep body ({len(body)} bytes) differs from the CLI "
              f"report ({len(reference)} bytes): byte-identity broken")
        print(f"smoke: sweep byte-identical to CLI ({len(body)} bytes)")

        check_errors(client)
        print("smoke: error paths answered with intended statuses")

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            raise SmokeFailure("server did not exit within 30s of "
                               "SIGTERM (leaked process)") from None
        check(code == 0, f"server exited {code} on SIGTERM, wanted 0")
        print("smoke: graceful SIGTERM shutdown, exit 0")
    except SmokeFailure as exc:
        print(f"smoke FAILED: {exc}", file=sys.stderr)
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        return 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if proc.stdout is not None:
            proc.stdout.close()
    print("smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
