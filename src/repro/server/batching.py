"""Request coalescing: concurrent prices -> one batch evaluation.

``/v1/price`` requests arriving within ``REPRO_SERVER_BATCH_WINDOW_MS``
of each other join one :func:`repro.nfp.linear.evaluate_batch` pass:
the first request opens a window, later arrivals append to it, and the
flush (window timer, or ``REPRO_SERVER_MAX_BATCH`` arrivals, whichever
first) prices every member's configuration in a single matrix-product
evaluation per distinct hot profile.  Each request still receives
exactly the bits a solo evaluation would produce -- the batch engine is
bit-identical per row regardless of batch composition -- so coalescing
changes throughput, never results.

All bookkeeping runs on the event-loop thread (no locks); only the
pricing itself runs in a worker thread.
"""

from __future__ import annotations

import asyncio

from repro.server.settings import ServerSettings
from repro.server.stats import ServerStats


def price_batch(entries: list[tuple]) -> list:
    """Price ``[(hw, vectors), ...]`` -- one engine, one pass per profile.

    The configurations lower into one :class:`~repro.nfp.linear.BatchNfpEngine`
    (rows deduplicated across the whole batch); each distinct profile in
    the batch is then evaluated once and every entry picks its own row.
    Pure function of its arguments, safe to run in any thread.
    """
    from repro.nfp.linear import BatchNfpEngine
    engine = BatchNfpEngine([hw for hw, _ in entries])
    # keyed by id: every vectors object is alive in ``entries`` for the
    # whole call, so ids are unique per distinct profile here
    groups: dict[int, tuple[object, list[int]]] = {}
    for i, (_, vectors) in enumerate(entries):
        groups.setdefault(id(vectors), (vectors, []))[1].append(i)
    out: list = [None] * len(entries)
    for vectors, indices in groups.values():
        priced = engine.evaluate(vectors)
        for i in indices:
            out[i] = priced[i]
    return out


class PriceBatcher:
    """The coalescing window in front of the batch evaluator."""

    def __init__(self, settings: ServerSettings, stats: ServerStats):
        self._window_s = settings.batch_window_s
        self._max_batch = max(1, settings.max_batch)
        self._stats = stats
        self._pending: list[tuple] = []   # (hw, vectors, future)
        self._timer: asyncio.TimerHandle | None = None

    async def submit(self, hw, vectors):
        """Price one configuration, riding whatever batch is open.

        Returns the entry's :class:`~repro.nfp.linear.LinearNfp`; a
        pricing failure propagates to every member of the batch.
        """
        loop = asyncio.get_running_loop()
        if self._window_s <= 0:
            self._stats.record_batch(1)
            return (await asyncio.to_thread(price_batch, [(hw, vectors)]))[0]
        future = loop.create_future()
        self._pending.append((hw, vectors, future))
        if len(self._pending) >= self._max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self._window_s, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self._stats.record_batch(len(batch))
        asyncio.get_running_loop().create_task(self._run(batch))

    async def _run(self, batch: list[tuple]) -> None:
        try:
            priced = await asyncio.to_thread(
                price_batch, [(hw, vectors) for hw, vectors, _ in batch])
        except BaseException as exc:
            for _, _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, _, future), nfp in zip(batch, priced):
            if not future.done():
                future.set_result(nfp)
