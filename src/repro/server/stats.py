"""Operational counters of the evaluation server.

All mutation happens on the event-loop thread (handlers update counters
before and after awaiting work), so the counters need no locks; the
``/v1/stats`` endpoint renders :meth:`ServerStats.snapshot`.

Latency quantiles are computed over a bounded per-endpoint reservoir of
the most recent samples (``REPRO_SERVER_LATENCY_WINDOW``), nearest-rank
-- deterministic for a fixed sample window, bounded memory forever.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field


def quantile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending, non-empty sample list."""
    rank = max(1, -(-int(len(sorted_samples) * q * 100) // 100))
    index = min(len(sorted_samples) - 1, rank - 1)
    return sorted_samples[index]


@dataclass
class ServerStats:
    """Uptime, request counts, cache/batch/flight counters, latencies."""

    latency_window: int = 2048
    started_monotonic: float = field(default_factory=time.monotonic)
    started_unix: float = field(default_factory=time.time)
    requests: int = 0
    responses_2xx: int = 0
    responses_err: int = 0
    disconnects: int = 0
    by_endpoint: dict = field(default_factory=dict)
    #: profile cache: hot-dict hits / misses / actual fill executions /
    #: requests that joined another request's in-flight fill
    profile_hits: int = 0
    profile_misses: int = 0
    profile_fills: int = 0
    profile_waits: int = 0
    #: price coalescing: batches flushed, requests they carried, largest
    batches: int = 0
    batched_requests: int = 0
    max_batch: int = 0
    sweeps: int = 0
    _latencies: dict = field(default_factory=dict)

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        """Account one finished request."""
        self.requests += 1
        if 200 <= status < 300:
            self.responses_2xx += 1
        else:
            self.responses_err += 1
        per = self.by_endpoint.setdefault(
            endpoint, {"requests": 0, "errors": 0})
        per["requests"] += 1
        if status >= 400:
            per["errors"] += 1
        samples = self._latencies.get(endpoint)
        if samples is None:
            samples = self._latencies[endpoint] = deque(
                maxlen=self.latency_window)
        samples.append(seconds)

    def record_batch(self, size: int) -> None:
        """Account one flushed price-coalescing batch."""
        self.batches += 1
        self.batched_requests += size
        if size > self.max_batch:
            self.max_batch = size

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    def _latency_summary(self, endpoint: str) -> dict | None:
        samples = self._latencies.get(endpoint)
        if not samples:
            return None
        ordered = sorted(samples)
        return {
            "samples": len(ordered),
            "p50_ms": quantile(ordered, 0.50) * 1000.0,
            "p90_ms": quantile(ordered, 0.90) * 1000.0,
            "p99_ms": quantile(ordered, 0.99) * 1000.0,
            "max_ms": ordered[-1] * 1000.0,
        }

    def snapshot(self, profiles_hot: int) -> dict:
        """The ``/v1/stats`` payload."""
        uptime = self.uptime_s
        lookups = self.profile_hits + self.profile_misses
        return {
            "uptime_s": uptime,
            "started_unix": self.started_unix,
            "requests": self.requests,
            "responses_2xx": self.responses_2xx,
            "responses_err": self.responses_err,
            "disconnects": self.disconnects,
            "qps": (self.requests / uptime) if uptime > 0 else 0.0,
            "by_endpoint": {
                name: dict(counts,
                           latency=self._latency_summary(name))
                for name, counts in sorted(self.by_endpoint.items())},
            "profiles": {
                "hot": profiles_hot,
                "hits": self.profile_hits,
                "misses": self.profile_misses,
                "fills": self.profile_fills,
                "waits": self.profile_waits,
                "hit_rate": (self.profile_hits / lookups) if lookups else None,
            },
            "batching": {
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "max_batch": self.max_batch,
                "mean_batch": (self.batched_requests / self.batches
                               if self.batches else None),
            },
            "sweeps": self.sweeps,
        }
