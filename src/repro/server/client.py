"""Thin stdlib clients for the evaluation server.

Two flavours, both dependency-free:

- :class:`ServerClient` -- a synchronous ``http.client`` wrapper for
  scripts and sequential checks (the smoke harness, curl-equivalents).
- :func:`fetch` -- a raw asyncio request, one connection per call, for
  tests that need genuinely *concurrent* requests in flight (stampede
  and coalescing assertions).

Both return ``(status, body_bytes)``; JSON decoding stays with the
caller so byte-level checks (the sweep identity contract) see the body
exactly as it crossed the wire.
"""

from __future__ import annotations

import asyncio
import http.client
import json


class ServerClient:
    """One keep-alive connection to a running evaluation server."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def get(self, path: str) -> tuple[int, bytes]:
        return self._request("GET", path)

    def post_json(self, path: str, payload: dict) -> tuple[int, bytes]:
        return self._request("POST", path,
                             json.dumps(payload).encode("utf-8"))

    def get_json(self, path: str) -> tuple[int, dict]:
        status, body = self.get(path)
        return status, json.loads(body)


async def fetch(host: str, port: int, method: str, path: str,
                body: bytes | None = None) -> tuple[int, bytes]:
    """One raw HTTP/1.1 exchange on its own connection (async).

    Used where the test *is* the concurrency: ``asyncio.gather`` over
    :func:`fetch` calls puts every request on the server simultaneously,
    which a pooled or serialized client would quietly prevent.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = body or b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length is None:
            data = await reader.read()
        else:
            data = await reader.readexactly(length)
        return status, data
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def fetch_json(host: str, port: int, path: str,
                     payload: dict) -> tuple[int, dict]:
    """POST ``payload`` and decode the JSON response."""
    status, body = await fetch(host, port, "POST", path,
                               json.dumps(payload).encode("utf-8"))
    return status, json.loads(body)
