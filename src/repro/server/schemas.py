"""Request validation for the evaluation server's JSON API.

Every endpoint's payload is validated here into plain typed values; any
violation raises :class:`ApiError` carrying the HTTP status and a
stable machine-readable ``code``, which the connection handler renders
as ``{"error": {"code", "message"}}``.  Axis names and values go
through the design-space registry itself (:mod:`repro.dse.axes`), so
the API accepts exactly what ``repro dse --axes`` accepts -- no second
vocabulary to drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.dse.axes import AXES, SweepConfig, DesignSpace
from repro.hw.config import HwConfig


class ApiError(Exception):
    """One client-visible failure: HTTP status + stable error code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def body(self) -> bytes:
        return json.dumps(
            {"error": {"code": self.code, "message": self.message}},
            sort_keys=True).encode() + b"\n"


def parse_json(body: bytes) -> dict:
    """The request body as a JSON object, or a 400."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(400, "bad-json",
                       f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ApiError(400, "bad-json",
                       "request body must be a JSON object")
    return payload


def _check_fields(payload: dict, allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ApiError(400, "unknown-field",
                       f"unknown field(s) {unknown}; "
                       f"expected a subset of {sorted(allowed)}")


def price_request(payload: dict,
                  base: HwConfig) -> tuple[SweepConfig, str,
                                           tuple[tuple[str, object], ...]]:
    """Validate a ``/v1/price`` payload into a single candidate platform.

    Returns ``(config, workload, axes)`` where ``axes`` echoes the
    resolved (name, value) pairs in canonical registry order.  String
    axis values go through the axis' own CLI parser, so
    ``{"fpu": "on"}`` and ``{"fpu": true}`` price identically.
    """
    _check_fields(payload, ("workload", "axes"))
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ApiError(400, "bad-workload",
                       "'workload' must be a non-empty workload name, "
                       "e.g. 'img:sobel3x3'")
    axes = payload.get("axes", {})
    if axes is None:
        axes = {}
    if not isinstance(axes, dict):
        raise ApiError(400, "bad-axes",
                       "'axes' must be an object of axis-name: value")
    unknown = sorted(set(axes) - set(AXES))
    if unknown:
        raise ApiError(400, "unknown-axis",
                       f"unknown axis(es) {unknown}; "
                       f"available: {sorted(AXES)}")
    resolved: list[tuple[str, object]] = []
    for name, axis in AXES.items():     # canonical registry order
        if name not in axes:
            continue
        value = axes[name]
        if isinstance(value, str):
            try:
                value = axis.parse(value)
            except ValueError as exc:
                raise ApiError(400, "bad-axis-value",
                               f"axis {name!r}: {exc}") from None
        elif not isinstance(value, (int, float, bool)):
            raise ApiError(400, "bad-axis-value",
                           f"axis {name!r}: expected a scalar or string, "
                           f"got {type(value).__name__}")
        resolved.append((name, value))
    if not resolved:
        config = SweepConfig(name=base.name or "base", axis_values=(),
                             hw=base)
    else:
        space = DesignSpace(tuple((name, (value,))
                                  for name, value in resolved))
        try:
            config = space.config_for([value for _, value in resolved],
                                      base)
        except (ValueError, TypeError) as exc:
            raise ApiError(400, "bad-axis-value", str(exc)) from None
    return config, workload, tuple(resolved)


@dataclass(frozen=True)
class SweepRequest:
    """A validated ``/v1/sweep`` payload (defaults match ``repro dse``)."""

    axes: str | None = None
    workloads: str | None = None
    fmt: str = "json"
    mode: str = "profile"
    refine: int = 0
    front_cap: int | None = None
    shards: int | None = None   #: streamed only; None derives from workers


def sweep_request(payload: dict) -> SweepRequest:
    """Validate a ``/v1/sweep`` payload into a :class:`SweepRequest`."""
    _check_fields(payload, ("axes", "workloads", "format", "mode",
                            "refine", "front_cap", "shards"))
    axes = payload.get("axes")
    if axes is not None and (not isinstance(axes, str) or not axes.strip()):
        raise ApiError(400, "bad-axes",
                       "'axes' must be a design-space spec string, e.g. "
                       "'clock_mhz=25:50,fpu' (or null for the stock grid)")
    workloads = payload.get("workloads")
    if workloads is not None and (not isinstance(workloads, str)
                                  or not workloads.strip()):
        raise ApiError(400, "bad-workloads",
                       "'workloads' must be a registry filter string "
                       "(or null for the table3 preset)")
    fmt = payload.get("format", "json")
    if fmt not in ("text", "csv", "json"):
        raise ApiError(400, "bad-format",
                       f"'format' must be text, csv or json, not {fmt!r}")
    mode = payload.get("mode", "profile")
    if mode not in ("profile", "stream"):
        raise ApiError(400, "bad-mode",
                       f"'mode' must be profile or stream, not {mode!r}")
    refine = payload.get("refine", 0)
    if not isinstance(refine, int) or isinstance(refine, bool) or refine < 0:
        raise ApiError(400, "bad-refine",
                       "'refine' must be a non-negative integer")
    front_cap = payload.get("front_cap")
    if front_cap is not None and (not isinstance(front_cap, int)
                                  or isinstance(front_cap, bool)
                                  or front_cap < 1):
        raise ApiError(400, "bad-front-cap",
                       "'front_cap' must be a positive integer or null")
    shards = payload.get("shards")
    if shards is not None and (not isinstance(shards, int)
                               or isinstance(shards, bool) or shards < 1):
        raise ApiError(400, "bad-shards",
                       "'shards' must be a positive integer or null")
    if shards is not None and mode != "stream":
        raise ApiError(400, "bad-shards",
                       "'shards' only applies to mode=stream sweeps")
    return SweepRequest(axes=axes, workloads=workloads, fmt=fmt, mode=mode,
                        refine=refine, front_cap=front_cap, shards=shards)
