"""A minimal HTTP/1.1 layer over asyncio streams.

Just enough protocol for the evaluation server's JSON API -- request
line + headers + ``Content-Length`` bodies in, status + headers + body
out, keep-alive by default -- written against ``asyncio`` streams so
the whole server stays on the standard library.  Anything malformed
raises :class:`BadRequest` (the connection answers 400 and closes);
bodies above the server's budget raise :class:`PayloadTooLarge` (413).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

#: Bound on the request line + headers block, independent of the body cap.
MAX_HEADER_BYTES = 16384

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class BadRequest(Exception):
    """The bytes on the wire are not a parseable HTTP/1.x request."""


class PayloadTooLarge(Exception):
    """The declared request body exceeds the server's budget."""


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader,
                       max_body: int) -> Request | None:
    """Parse one request off ``reader``; ``None`` on a clean EOF.

    A peer that closes between requests yields ``None`` (normal
    keep-alive teardown); one that closes mid-request raises the usual
    ``asyncio.IncompleteReadError``, which the connection handler
    accounts as a disconnect.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    except asyncio.LimitOverrunError:
        raise BadRequest("header block exceeds the line limit") from None
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("header block too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, path, _ = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise BadRequest(
            f"malformed Content-Length: {length_text!r}") from None
    if length < 0:
        raise BadRequest("negative Content-Length")
    if length > max_body:
        raise PayloadTooLarge(
            f"request body of {length} bytes exceeds the "
            f"{max_body}-byte budget (REPRO_SERVER_MAX_BODY)")
    body = await reader.readexactly(length) if length else b""
    return Request(method=method, path=path, headers=headers, body=body)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json",
                   *, keep_alive: bool = True) -> bytes:
    """Serialize one response, ``Content-Length`` framed."""
    reason = REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body
