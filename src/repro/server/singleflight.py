"""Per-key single-flight execution for cold-profile fills.

A stampede of identical cold ``/v1/price`` requests must trigger exactly
one underlying simulation: the first request for a key launches the fill
(in a worker thread, so the event loop stays responsive) and every
concurrent duplicate awaits the same future.  A fill that raises
propagates to every waiter and is *not* memoised -- the next request
retries, mirroring the result cache's never-cache-failures rule.

The flight table only deduplicates *in-flight* work; completed results
belong to the caller (the server's hot-profile dict), keeping this
module a pure concurrency primitive.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable, TypeVar

T = TypeVar("T")


class SingleFlight:
    """Collapse concurrent calls per key onto one executing fill."""

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future] = {}

    def flying(self, key: Hashable) -> bool:
        """True while a fill for ``key`` is executing."""
        return key in self._inflight

    async def do(self, key: Hashable, fill: Callable[[], Awaitable[T]],
                 *, on_wait: Callable[[], None] | None = None) -> T:
        """Run ``fill`` once per key across concurrent callers.

        ``fill`` is an async callable; exactly one caller per key
        executes it while the others await its result (``on_wait`` is
        called once per deduplicated waiter -- the stats hook).  The
        table entry is removed when the fill settles, success or not.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            if on_wait is not None:
                on_wait()
            return await asyncio.shield(existing)
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await fill()
        except BaseException as exc:
            future.set_exception(exc)
            raise
        else:
            future.set_result(result)
            return result
        finally:
            del self._inflight[key]
            # a future nobody awaited must not warn on GC
            if future.exception() is not None and not future.cancelled():
                future.exception()
