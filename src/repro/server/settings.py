"""Validated operational knobs of the evaluation server.

Every knob reads a ``REPRO_SERVER_*`` environment variable through the
shared validated-environment helpers, so a typo'd value fails as a
one-line :class:`~repro.runner.resilience.UsageError` at boot instead
of a traceback deep inside a request:

``REPRO_SERVER_BATCH_WINDOW_MS``
    Coalescing window for concurrent ``/v1/price`` requests (default
    2 ms).  Requests arriving while a window is open join one
    :class:`~repro.nfp.linear.BatchNfpEngine` evaluation; ``0``
    disables coalescing (every request prices alone).
``REPRO_SERVER_MAX_BATCH``
    Flush a coalescing window early once this many requests joined it
    (default 256).
``REPRO_SERVER_MAX_GRID``
    Request budget for ``/v1/sweep``: the configuration-grid size
    (configs x workloads) above which a sweep is rejected with a
    413-style error instead of tying the server up (default 250000
    points).
``REPRO_SERVER_MAX_BODY``
    Largest accepted request body in bytes (default 1 MiB); larger
    payloads are rejected with 413.
``REPRO_SERVER_LATENCY_WINDOW``
    Per-endpoint latency samples retained for the ``/v1/stats``
    quantiles (default 2048; bounded memory).
``REPRO_SERVER_DRAIN_S``
    Seconds a graceful shutdown waits for in-flight requests before
    closing their connections (default 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runner.resilience import env_float, env_int


@dataclass(frozen=True)
class ServerSettings:
    """One resolved set of server knobs (see the module docstring)."""

    batch_window_s: float = 0.002
    max_batch: int = 256
    max_grid: int = 250_000
    max_body: int = 1 << 20
    latency_window: int = 2048
    drain_s: float = 10.0

    @classmethod
    def from_env(cls) -> "ServerSettings":
        """Read and validate every ``REPRO_SERVER_*`` knob."""
        return cls(
            batch_window_s=env_float(
                "REPRO_SERVER_BATCH_WINDOW_MS", 2.0, minimum=0.0) / 1000.0,
            max_batch=env_int("REPRO_SERVER_MAX_BATCH", 256),
            max_grid=env_int("REPRO_SERVER_MAX_GRID", 250_000),
            max_body=env_int("REPRO_SERVER_MAX_BODY", 1 << 20),
            latency_window=env_int("REPRO_SERVER_LATENCY_WINDOW", 2048),
            drain_s=env_float("REPRO_SERVER_DRAIN_S", 10.0, minimum=0.0),
        )
