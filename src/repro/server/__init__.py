"""NFP-estimation-as-a-service: the async evaluation server.

The profile-once linear engine prices any :class:`~repro.hw.config.HwConfig`
as dot products over a cached :class:`~repro.nfp.linear.ExecutionProfile`
-- exactly the shape of a high-QPS service.  This package stands that
service up on the stdlib alone (``asyncio`` + HTTP/1.1 + JSON, no new
runtime dependencies):

``repro serve --host --port``
    boots :class:`~repro.server.app.EvalServer`, which holds hot
    lowered profiles in memory and answers

``POST /v1/price``
    one (configuration, workload) point.  Concurrent requests arriving
    within a short window coalesce into one
    :class:`~repro.nfp.linear.BatchNfpEngine` evaluation
    (:mod:`repro.server.batching`), and cold workloads are profiled
    through the resilient cached runner behind per-key single-flight
    locks (:mod:`repro.server.singleflight`) -- a stampede of identical
    cold queries triggers exactly one simulation.

``POST /v1/sweep``
    a whole design-space spec, run through the same sweep drivers the
    ``repro dse`` CLI uses; a materialized sweep response is
    byte-identical to ``repro dse --profile --format json`` for the
    same spec (the service-smoke CI job compares the bytes).

``GET /v1/healthz`` / ``GET /v1/stats``
    liveness and operational metrics (uptime, profile cache hit rate,
    QPS, latency quantiles, batching and single-flight counters).
"""

from repro.server.app import EvalServer, serve_command
from repro.server.settings import ServerSettings

__all__ = ["EvalServer", "ServerSettings", "serve_command"]
