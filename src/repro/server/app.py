"""The evaluation server: hot profiles, coalesced pricing, sweeps on demand.

:class:`EvalServer` is the long-lived process behind ``repro serve``.
It owns one resilient cached runner, a dict of hot lowered profiles
(:class:`~repro.nfp.linear.ProfileVectors` keyed by ``(workload,
build)``), a per-key single-flight table for cold fills, and a price
coalescer -- the four pieces that turn the profile-once linear engine
into a service:

- ``/v1/price`` looks the profile up hot, or fills it through
  :func:`repro.dse.engine.stream_profiles` (one simulation, via the
  PR-2/PR-6 cached fault-tolerant runner) behind a single-flight lock;
  pricing itself rides a coalesced :func:`~repro.nfp.linear.evaluate_batch`.
- ``/v1/sweep`` delegates to the ``repro dse`` driver in a worker
  thread, so a materialized sweep's response body is *byte-identical*
  to ``repro dse --profile --format json`` for the same spec.
- ``/v1/healthz`` and ``/v1/stats`` render liveness and the
  :class:`~repro.server.stats.ServerStats` snapshot.

Shutdown is graceful: SIGTERM/SIGINT stop the accept loop, in-flight
requests drain for ``REPRO_SERVER_DRAIN_S`` seconds, and the process
exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time

from repro.dse.axes import DesignSpace
from repro.dse.engine import config_area_les, stream_profiles
from repro.hw.config import HwConfig
from repro.runner.resilience import UsageError
from repro.server.batching import PriceBatcher
from repro.server.httpio import (
    BadRequest,
    PayloadTooLarge,
    Request,
    read_request,
    response_bytes,
)
from repro.server.schemas import (
    ApiError,
    SweepRequest,
    parse_json,
    price_request,
    sweep_request,
)
from repro.server.settings import ServerSettings
from repro.server.singleflight import SingleFlight
from repro.server.stats import ServerStats
from repro.vm.config import CoreConfig

ENDPOINTS = ("/v1/healthz", "/v1/stats", "/v1/price", "/v1/sweep")

_CONTENT_TYPES = {
    "json": "application/json",
    "csv": "text/csv; charset=utf-8",
    "text": "text/plain; charset=utf-8",
}


class EvalServer:
    """One serving process: hot profiles + coalesced linear pricing."""

    def __init__(self, settings: ServerSettings | None = None,
                 scale=None, runner=None, base: HwConfig | None = None):
        from repro.experiments.scale import get_scale
        from repro.experiments.setup import (
            metered_blocks_from_env,
            runner_from_env,
        )
        self.settings = settings if settings is not None \
            else ServerSettings.from_env()
        self.scale = scale if scale is not None else get_scale(None)
        self.runner = runner if runner is not None else runner_from_env()
        self.base = base if base is not None else HwConfig(
            name="leon3",
            core=CoreConfig(
                metered_blocks_enabled=metered_blocks_from_env()))
        self.stats = ServerStats(
            latency_window=self.settings.latency_window)
        #: the hot tier: (workload name, build tag) -> lowered profile
        self.profiles: dict[tuple[str, str], object] = {}
        self.flights = SingleFlight()
        self.batcher = PriceBatcher(self.settings, self.stats)
        #: sweeps run one at a time (they own the runner for minutes)
        self.sweep_lock = asyncio.Lock()
        self._active: set[asyncio.StreamWriter] = set()
        self._busy = 0
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and accept; returns the bound port (``port=0`` picks one)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight work, close every connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.settings.drain_s
        while self._busy and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._active):
            writer.close()
        # give the per-connection handlers a tick to unwind
        await asyncio.sleep(0)

    async def serve(self, host: str, port: int) -> None:
        """``repro serve``: run until SIGTERM/SIGINT, then drain and return."""
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix loops
                pass
        bound = await self.start(host, port)
        # the one stdout line: scripts (and the smoke client) parse it
        print(f"repro-serve listening on {host}:{bound}", flush=True)
        try:
            await stop.wait()
        finally:
            await self.aclose()
        print(f"repro-serve drained after {self.stats.requests} requests",
              file=sys.stderr, flush=True)

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._active.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader,
                                                 self.settings.max_body)
                except BadRequest as exc:
                    error = ApiError(400, "bad-request", str(exc))
                except PayloadTooLarge as exc:
                    error = ApiError(413, "payload-too-large", str(exc))
                else:
                    if request is None:
                        break
                    started = time.monotonic()
                    self._busy += 1
                    try:
                        label, status, body, ctype = \
                            await self._dispatch(request)
                    finally:
                        self._busy -= 1
                    self.stats.record(label, status,
                                      time.monotonic() - started)
                    writer.write(response_bytes(
                        status, body, ctype,
                        keep_alive=request.keep_alive))
                    await writer.drain()
                    if not request.keep_alive:
                        break
                    continue
                # protocol-level failure: answer once, then close (the
                # unread rest of the stream is not parseable)
                self.stats.record("other", error.status, 0.0)
                writer.write(response_bytes(error.status, error.body(),
                                            keep_alive=False))
                await writer.drain()
                break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            self.stats.disconnects += 1
        finally:
            self._active.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request
                        ) -> tuple[str, int, bytes, str]:
        label = request.path if request.path in ENDPOINTS else "other"
        try:
            if request.path == "/v1/healthz":
                self._require(request, "GET")
                return label, 200, self._healthz_body(), "application/json"
            if request.path == "/v1/stats":
                self._require(request, "GET")
                body = json.dumps(
                    self.stats.snapshot(profiles_hot=len(self.profiles)),
                    sort_keys=True).encode() + b"\n"
                return label, 200, body, "application/json"
            if request.path == "/v1/price":
                self._require(request, "POST")
                return await self._price(request)
            if request.path == "/v1/sweep":
                self._require(request, "POST")
                return await self._sweep(request)
            raise ApiError(404, "not-found",
                           f"no route {request.method} {request.path}; "
                           f"endpoints: {', '.join(ENDPOINTS)}")
        except ApiError as exc:
            return label, exc.status, exc.body(), "application/json"
        except Exception as exc:   # a bug, not a client error: say so once
            error = ApiError(500, "internal",
                             f"{type(exc).__name__}: {exc}")
            return label, error.status, error.body(), "application/json"

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise ApiError(405, "method-not-allowed",
                           f"{request.path} takes {method}, "
                           f"not {request.method}")

    def _healthz_body(self) -> bytes:
        return json.dumps({
            "status": "ok",
            "scale": self.scale.name,
            "uptime_s": self.stats.uptime_s,
        }, sort_keys=True).encode() + b"\n"

    # -- /v1/price -----------------------------------------------------------

    async def _price(self, request: Request) -> tuple[str, int, bytes, str]:
        config, workload, axes = price_request(parse_json(request.body),
                                               self.base)
        spec = self._workload_spec(workload)
        build = "float" if config.hw.core.has_fpu else "fixed"
        key = (spec.name, build)
        vectors = self.profiles.get(key)
        if vectors is not None:
            self.stats.profile_hits += 1
        else:
            self.stats.profile_misses += 1
            vectors = await self.flights.do(
                key, lambda: self._fill_profile(spec, key),
                on_wait=self._count_wait)
        nfp = await self.batcher.submit(config.hw, vectors)
        body = json.dumps({
            "workload": spec.name,
            "build": build,
            "config": config.name,
            "axes": {name: value for name, value in axes},
            "time_s": nfp.true_time_s,
            "energy_j": nfp.true_energy_j,
            "cycles": nfp.cycles,
            "retired": nfp.retired,
            "area_les": config_area_les(config),
        }, sort_keys=True).encode() + b"\n"
        return "/v1/price", 200, body, "application/json"

    def _count_wait(self) -> None:
        self.stats.profile_waits += 1

    def _workload_spec(self, workload: str):
        from repro.workloads import select
        try:
            specs = select(workload, self.scale)
        except ValueError as exc:
            raise ApiError(404, "unknown-workload", str(exc)) from None
        if len(specs) != 1:
            raise ApiError(400, "ambiguous-workload",
                           f"workload filter {workload!r} matches "
                           f"{len(specs)} workloads; /v1/price prices "
                           f"exactly one (try 'repro workloads list')")
        return specs[0]

    async def _fill_profile(self, spec, key: tuple[str, str]):
        """The single-flight fill: one profiling simulation, then hot."""
        self.stats.profile_fills += 1
        fpu = key[1] == "float"
        try:
            vectors = await asyncio.to_thread(
                self._profile_sync, spec, fpu)
        except UsageError as exc:     # self-modifying: no linear pricing
            raise ApiError(422, "unclean-workload", str(exc)) from None
        except RuntimeError as exc:   # retries ran out
            raise ApiError(502, "profiling-failed", str(exc)) from None
        self.profiles[key] = vectors
        return vectors

    def _profile_sync(self, spec, fpu: bool):
        pair = spec.pair(self.scale)
        build = "float" if fpu else "fixed"
        vectors = stream_profiles(
            [pair], [fpu], budget=self.scale.max_instructions,
            runner=self.runner, base=self.base)
        return vectors[(pair.name, build)]

    # -- /v1/sweep -----------------------------------------------------------

    async def _sweep(self, request: Request) -> tuple[str, int, bytes, str]:
        spec = sweep_request(parse_json(request.body))
        from repro.workloads import select
        try:
            space = (DesignSpace.from_spec(spec.axes) if spec.axes
                     else DesignSpace.default())
        except ValueError as exc:
            raise ApiError(400, "bad-axes", str(exc)) from None
        try:
            suite = select(spec.workloads or "table3", self.scale)
        except ValueError as exc:
            raise ApiError(404, "unknown-workloads", str(exc)) from None
        points = space.size * len(suite)
        if points > self.settings.max_grid:
            raise ApiError(
                413, "grid-too-large",
                f"sweep of {space.size} configs x {len(suite)} workloads "
                f"= {points} points exceeds the {self.settings.max_grid}-"
                f"point request budget (REPRO_SERVER_MAX_GRID)")
        async with self.sweep_lock:
            try:
                rendered = await asyncio.to_thread(self._sweep_sync, spec)
            except UsageError as exc:
                raise ApiError(400, "bad-sweep", str(exc)) from None
            except RuntimeError as exc:
                raise ApiError(502, "profiling-failed", str(exc)) from None
        self.stats.sweeps += 1
        return ("/v1/sweep", 200, rendered.encode("utf-8"),
                _CONTENT_TYPES[spec.fmt])

    def _sweep_sync(self, spec: SweepRequest) -> str:
        # the CLI's own driver end to end, so a materialized sweep body
        # is byte-identical to `repro dse --profile --format json`
        from repro.experiments import dse as dse_driver
        return dse_driver.run(
            self.scale, axes=spec.axes,
            profile=(spec.mode == "profile"),
            workloads=spec.workloads,
            stream=(spec.mode == "stream"),
            refine=spec.refine,
            front_cap=spec.front_cap,
            shards=spec.shards).render(spec.fmt)


def serve_command(args) -> int:
    """The ``repro serve`` CLI branch."""
    try:
        from repro.experiments.scale import get_scale
        server = EvalServer(settings=ServerSettings.from_env(),
                            scale=get_scale(args.scale))
        asyncio.run(server.serve(args.host, args.port))
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:   # pragma: no cover - signal-handler race
        return 130
    return 0
