"""Hardware testbed model: the FPGA board + instruments surrogate.

This package stands in for the paper's physical measurement setup
(LEON3 soft-core on a Terasic DE2-115, GRMON, power meter, Quartus
synthesis reports).  See DESIGN.md for the substitution rationale.
"""

from repro.hw.area import AreaReport, fpu_area_increase, synthesize
from repro.hw.board import (
    Board,
    CostMeter,
    Measurement,
    RawMeasurement,
    instruction_cost,
)
from repro.hw.config import HwConfig, leon3_fpu, leon3_nofpu
from repro.hw.energy import default_energy_table, jitter_factor
from repro.hw.powermeter import (
    InstrumentModel,
    InstrumentSpec,
    PerfectInstruments,
)
from repro.hw.timing import default_cycle_table, intdiv_cycles

__all__ = [
    "AreaReport",
    "Board",
    "CostMeter",
    "HwConfig",
    "RawMeasurement",
    "InstrumentModel",
    "InstrumentSpec",
    "Measurement",
    "PerfectInstruments",
    "default_cycle_table",
    "default_energy_table",
    "fpu_area_increase",
    "instruction_cost",
    "intdiv_cycles",
    "jitter_factor",
    "leon3_fpu",
    "leon3_nofpu",
    "synthesize",
]
