"""Measurement-instrument model: timer quantisation and power-meter noise.

The paper measures wall time with ``clock()`` and energy with an external
power meter; both instruments are imperfect.  :class:`InstrumentModel`
converts the testbed's *true* time/energy into what those instruments
would report:

* each instrument has a fixed calibration (gain) error drawn once per
  instance -- a systematic bias, like a real shunt tolerance;
* each reading carries small additive relative noise;
* the timer quantises to its tick.

All randomness comes from a seeded generator so measurements are exactly
reproducible, which matters for tests and for the calibration procedure
(Table II) that differences two measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class InstrumentSpec:
    """Noise/quantisation parameters of the measurement instruments."""

    timer_resolution_s: float = 100e-6
    timer_gain_sigma: float = 0.002
    timer_noise_sigma: float = 0.0005
    energy_gain_sigma: float = 0.003
    energy_noise_sigma: float = 0.001


class InstrumentModel:
    """Stateful instrument pair (timer + power meter) with fixed calibration."""

    def __init__(self, spec: InstrumentSpec | None = None, seed: int = 2015):
        self.spec = spec or InstrumentSpec()
        self._rng = random.Random(seed)
        # Systematic per-instrument calibration error, fixed at "power-on".
        self.timer_gain = 1.0 + self._rng.gauss(0.0, self.spec.timer_gain_sigma)
        self.energy_gain = 1.0 + self._rng.gauss(0.0, self.spec.energy_gain_sigma)

    def read_time(self, true_seconds: float) -> float:
        """What ``clock()`` reports for a run of ``true_seconds``."""
        noisy = true_seconds * self.timer_gain
        noisy *= 1.0 + self._rng.gauss(0.0, self.spec.timer_noise_sigma)
        tick = self.spec.timer_resolution_s
        if tick > 0:
            noisy = round(noisy / tick) * tick
        return noisy

    def read_energy(self, true_joules: float) -> float:
        """What the power meter reports for ``true_joules``."""
        noisy = true_joules * self.energy_gain
        noisy *= 1.0 + self._rng.gauss(0.0, self.spec.energy_noise_sigma)
        return noisy


class PerfectInstruments(InstrumentModel):
    """Instruments without any error (for isolating model error in tests)."""

    def __init__(self) -> None:
        super().__init__(InstrumentSpec(timer_resolution_s=0.0,
                                        timer_gain_sigma=0.0,
                                        timer_noise_sigma=0.0,
                                        energy_gain_sigma=0.0,
                                        energy_noise_sigma=0.0), seed=0)
