"""FPGA synthesis area model (logic elements on the Cyclone IV).

The paper's design decision (Table IV) weighs a ~109 % increase in logic
elements against the energy/time saved by the FPU.  This model exposes
per-component LE counts calibrated against that ratio for the default
8-window core; other configurations scale plausibly (register windows
cost LEs, the divider is optional in a real LEON3 but always present
here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.config import CoreConfig

#: Logic elements of the integer pipeline (fetch/decode/execute, no regfile).
IU_LES = 3500
#: Logic elements per register window (the windowed register file).
LES_PER_WINDOW = 60
#: Hardware multiplier/divider unit.
MULDIV_LES = 270
#: The GRFPU-lite class floating-point unit.
FPU_LES = 4633
#: Memory interface at zero wait states (widest/fastest bus logic).
MEMCTRL_LES = 1500


def memctrl_les(wait_states: int = 0) -> int:
    """Logic elements of the memory interface for a given stall budget.

    A zero-wait-state interface needs the full-width bus logic; relaxing
    the interface by allowing wait states lets synthesis share and narrow
    it, shrinking the footprint.  This is what makes memory wait states a
    genuine axis in the design-space exploration: they trade time (and
    the static energy of the longer run) against chip area.
    """
    if wait_states < 0:
        raise ValueError("wait_states must be non-negative")
    return MEMCTRL_LES // (1 + wait_states)


@dataclass(frozen=True)
class AreaReport:
    """Synthesis result for one core configuration."""

    config_name: str
    by_component: dict[str, int]

    @property
    def total_les(self) -> int:
        return sum(self.by_component.values())

    def formatted(self) -> str:
        lines = [f"synthesis report: {self.config_name}"]
        for name, les in sorted(self.by_component.items()):
            lines.append(f"  {name:<18} {les:>7} LEs")
        lines.append(f"  {'total':<18} {self.total_les:>7} LEs")
        return "\n".join(lines)


def synthesize(core: CoreConfig, name: str = "leon3") -> AreaReport:
    """Estimate logic-element usage of ``core`` (the Quartus stand-in)."""
    components = {
        "integer unit": IU_LES,
        "register file": LES_PER_WINDOW * core.nwindows,
        "mul/div unit": MULDIV_LES,
    }
    if core.has_fpu:
        components["fpu"] = FPU_LES
    return AreaReport(config_name=name, by_component=components)


def fpu_area_increase(core: CoreConfig | None = None) -> float:
    """Relative LE increase from adding an FPU to ``core`` (Table IV row 3)."""
    base = core.without_fpu() if core is not None else CoreConfig(has_fpu=False)
    with_fpu = base.with_fpu()
    les_base = synthesize(base).total_les
    les_fpu = synthesize(with_fpu).total_les
    return (les_fpu - les_base) / les_base
