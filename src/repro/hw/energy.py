"""Per-opcode dynamic energy of the modelled core, with data-dependent jitter.

Total energy of a run is::

    E = sum_i  e_dyn(op_i) * (1 + jitter_i)  +  P_static * T

where ``jitter_i`` is a deterministic pseudo-random factor derived from the
instruction's address and its result value -- a stand-in for switching
activity, which on real silicon depends on operand bit patterns.  The
dynamic bases are tuned so that calibrated per-category specific energies
approximate Table I of the paper (15 nJ integer ops, 229 nJ loads, 431 nJ
double divides, ...).
"""

from __future__ import annotations

from repro.isa.opcodes import (
    FCC_COND_NAMES,
    ICC_COND_NAMES,
    INSTR_SPECS,
    TRAP_COND_NAMES,
)


def default_energy_table() -> dict[str, float]:
    """Dynamic energy (nanojoule) per retired instruction, by mnemonic."""
    table: dict[str, float] = {}

    def put(mnemonics, nj: float) -> None:
        for m in mnemonics:
            table[m] = nj

    alu = ("add", "addcc", "addx", "addxcc", "sub", "subcc", "subx",
           "subxcc", "and", "andcc", "andn", "andncc", "or", "orcc",
           "orn", "orncc", "xor", "xorcc", "xnor", "xnorcc",
           "sll", "srl", "sra", "sethi")
    put(alu, 13.4)
    put(("nop",), 11.4)
    put(("umul", "umulcc", "smul", "smulcc"), 30.0)
    put(("udiv", "udivcc", "sdiv", "sdivcc"), 120.0)

    put(tuple(ICC_COND_NAMES.values()), 66.0)    # taken; scaled when untaken
    put(tuple(FCC_COND_NAMES.values()), 66.0)
    put(("call", "jmpl"), 66.0)

    put(("ld", "ldf"), 200.0)
    put(("ldub", "ldsb", "lduh", "ldsh"), 205.0)
    put(("ldd", "lddf"), 232.0)
    put(("st", "stb", "sth", "stf"), 150.0)
    put(("std", "stdf"), 182.0)

    put(("save", "restore"), 11.4)
    put(("rdy", "wry"), 11.4)
    put(tuple(TRAP_COND_NAMES.values()), 30.0)

    put(("fadds", "faddd", "fsubs", "fsubd", "fmuls", "fmuld"), 12.4)
    put(("fmovs", "fnegs", "fabss"), 10.5)
    put(("fcmps", "fcmpd"), 11.0)
    put(("fitos", "fitod", "fstoi", "fdtoi", "fstod", "fdtos"), 14.0)
    put(("fdivs",), 300.0)
    put(("fdivd",), 413.0)
    put(("fsqrts",), 50.0)
    put(("fsqrtd",), 63.0)

    missing = set(INSTR_SPECS) - set(table)
    if missing:
        raise AssertionError(f"energy table missing {sorted(missing)}")
    return table


#: Fraction of the taken-branch dynamic energy spent by untaken branches.
UNTAKEN_BRANCH_ENERGY_FACTOR = 0.82

#: Dynamic energy (nJ) of one window overflow/underflow trap.
WINDOW_TRAP_ENERGY_NJ = 95.0

#: Default jitter amplitude: dynamic energy varies by up to +/- this factor
#: with operand data.
DEFAULT_JITTER_AMPLITUDE = 0.05


def jitter_factor(pc: int, value: int, amplitude: float) -> float:
    """Deterministic data-dependent energy factor in ``[1-a, 1+a)``.

    A multiplicative integer hash mixes the instruction address with its
    result value; the same (pc, value) pair always yields the same factor,
    keeping measurements reproducible run-to-run like a real averaged
    power measurement.
    """
    h = ((value * 2654435761) ^ (pc * 0x9E3779B1)) & 0xFFFFFFFF
    h ^= h >> 15
    centered = ((h & 0xFFFF) / 32768.0) - 1.0  # [-1, 1)
    return 1.0 + amplitude * centered
