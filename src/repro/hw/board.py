"""The measurement testbed: run a kernel, measure time and energy.

:class:`Board` plays the role of the paper's Terasic DE2-115 + GRMON +
power-meter setup: it executes the kernel on the *instrumented* simulator
loop, accumulating cycle-accurate time and data-dependent energy per
retired instruction, then passes the totals through the instrument model
to produce what the experimenter would read off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.hw.config import HwConfig
from repro.hw.energy import jitter_factor
from repro.hw.powermeter import InstrumentModel
from repro.vm.cpu import DEFAULT_BUDGET
from repro.vm.simulator import SimulationResult, Simulator
from repro.vm.state import CpuState

_FLAG_NORMAL = 0
_FLAG_BRANCH = 1
_FLAG_INTDIV = 2
_FLAG_WINDOW = 3

_BRANCH_KINDS = ("branch", "fbranch")


@dataclass
class Measurement:
    """One testbed measurement of a kernel run.

    ``true_*`` are the exact values accumulated by the hardware model;
    ``time_s``/``energy_j`` are the instrument readings (what the paper's
    Eq. 3 calls the measured values).
    """

    time_s: float
    energy_j: float
    true_time_s: float
    true_energy_j: float
    cycles: int
    sim: SimulationResult

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


class _CostAccumulator:
    """Retire observer accumulating cycles and dynamic energy."""

    __slots__ = ("cycles", "dyn_energy_nj", "_tbl", "_amp", "_untaken_cyc",
                 "_untaken_factor", "_wtrap_cyc", "_wtrap_nj", "_spills",
                 "_fills")

    def __init__(self, config: HwConfig):
        from repro.isa.decoder import decode  # local import, avoid cycle
        from repro.isa.opcodes import INSTR_SPECS

        self.cycles = 0
        self.dyn_energy_nj = 0.0
        self._amp = config.jitter_amplitude
        self._untaken_cyc = config.untaken_branch_discount
        self._untaken_factor = config.untaken_branch_energy_factor
        self._wtrap_cyc = config.window_trap_cycles
        self._wtrap_nj = config.window_trap_energy_nj
        self._spills = 0
        self._fills = 0

        tbl: dict[str, tuple[int, float, int]] = {}
        for mnemonic, spec in INSTR_SPECS.items():
            flag = _FLAG_NORMAL
            if mnemonic in ("udiv", "udivcc", "sdiv", "sdivcc"):
                flag = _FLAG_INTDIV
            elif spec.morph_group in ("doBranch", "doFBranch"):
                flag = _FLAG_BRANCH
            elif mnemonic in ("save", "restore"):
                flag = _FLAG_WINDOW
            tbl[mnemonic] = (config.cycle_table[mnemonic],
                             config.dyn_energy_nj[mnemonic], flag)
        self._tbl = tbl

    def on_retire(self, pc: int, mnemonic: str, st: CpuState) -> None:
        base_cyc, dyn, flag = self._tbl[mnemonic]
        value = st.last_value
        if flag:
            if flag == _FLAG_BRANCH:
                if not st.taken:
                    base_cyc -= self._untaken_cyc
                    dyn *= self._untaken_factor
            elif flag == _FLAG_INTDIV:
                base_cyc -= (32 - value.bit_length()) >> 1
            else:  # save/restore: charge window overflow/underflow traps
                if st.spill_count != self._spills:
                    self._spills = st.spill_count
                    base_cyc += self._wtrap_cyc
                    dyn += self._wtrap_nj
                if st.fill_count != self._fills:
                    self._fills = st.fill_count
                    base_cyc += self._wtrap_cyc
                    dyn += self._wtrap_nj
        self.cycles += base_cyc
        h = ((value * 2654435761) ^ (pc * 0x9E3779B1)) & 0xFFFFFFFF
        h ^= h >> 15
        self.dyn_energy_nj += dyn * (
            1.0 + self._amp * (((h & 0xFFFF) / 32768.0) - 1.0))


class Board:
    """A synthesised CPU configuration on the test bench.

    Parameters
    ----------
    config:
        Hardware configuration (timing, energy, clock, FPU presence).
    instruments:
        Timer/power-meter model; a fresh default instance is created when
        omitted.  Pass :class:`~repro.hw.powermeter.PerfectInstruments`
        to read exact values.
    """

    def __init__(self, config: HwConfig | None = None,
                 instruments: InstrumentModel | None = None):
        self.config = config or HwConfig()
        self.instruments = instruments or InstrumentModel()

    def measure(self, program: Program,
                max_instructions: int = DEFAULT_BUDGET) -> Measurement:
        """Run ``program`` on the bench and measure time and energy."""
        config = self.config
        accumulator = _CostAccumulator(config)
        simulator = Simulator(program, config.core)
        sim_result = simulator.run_metered(accumulator,
                                           max_instructions=max_instructions)
        true_time = accumulator.cycles * config.cycle_seconds
        true_energy = (accumulator.dyn_energy_nj * 1e-9 +
                       config.static_power_w * true_time)
        return Measurement(
            time_s=self.instruments.read_time(true_time),
            energy_j=self.instruments.read_energy(true_energy),
            true_time_s=true_time,
            true_energy_j=true_energy,
            cycles=accumulator.cycles,
            sim=sim_result,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Board({self.config.name!r}, {self.config.clock_hz/1e6:.0f} MHz)"


# Re-exported convenience: a single retire-cost sanity checker used in tests.
def instruction_cost(config: HwConfig, mnemonic: str) -> tuple[int, float]:
    """Base (cycles, dynamic energy nJ) of ``mnemonic`` under ``config``."""
    return (config.cycle_table[mnemonic], config.dyn_energy_nj[mnemonic])


# keep module self-contained for doctest-style use
_ = jitter_factor
