"""The measurement testbed: run a kernel, measure time and energy.

:class:`Board` plays the role of the paper's Terasic DE2-115 + GRMON +
power-meter setup: it executes the kernel on the *instrumented* simulator
loop, accumulating cycle-accurate time and data-dependent energy per
retired instruction, then passes the totals through the instrument model
to produce what the experimenter would read off.

The accumulation itself is performed by :class:`CostMeter`.  Because the
meter exposes its cost model *structurally* (per-mnemonic base costs plus
flag behaviours) rather than as an opaque callback, the simulator's
metered loop can compile it into cost-fused superblocks
(:func:`repro.vm.blocks.compile_metered_block`) -- the fast testbed path
-- while remaining bit-identical to per-instruction observation.

:meth:`Board.measure` splits into two halves: :meth:`Board.measure_raw`
runs the simulation and returns the *deterministic* totals (cacheable and
computable in a worker process, see :mod:`repro.runner`), and
:meth:`Board.reading` applies the stateful instrument model -- which must
happen in the parent process, in measurement order, because real
instruments consume their noise sequence one reading at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.hw.config import HwConfig
from repro.hw.energy import jitter_factor
from repro.hw.powermeter import InstrumentModel
from repro.vm.blocks import FLAG_BRANCH as _FLAG_BRANCH
from repro.vm.blocks import FLAG_INTDIV as _FLAG_INTDIV
from repro.vm.blocks import jitter_table, scaled_jitter_table
from repro.vm.cpu import DEFAULT_BUDGET
from repro.vm.simulator import SimulationResult, Simulator
from repro.vm.state import CpuState


@dataclass
class Measurement:
    """One testbed measurement of a kernel run.

    ``true_*`` are the exact values accumulated by the hardware model;
    ``time_s``/``energy_j`` are the instrument readings (what the paper's
    Eq. 3 calls the measured values).
    """

    time_s: float
    energy_j: float
    true_time_s: float
    true_energy_j: float
    cycles: int
    sim: SimulationResult

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


@dataclass
class RawMeasurement:
    """The deterministic half of a measurement (no instrument noise).

    Everything here is a pure function of (program, hardware config,
    budget): safe to compute in a worker process and to cache on disk
    keyed by content (see :mod:`repro.runner`).
    """

    cycles: int
    dyn_energy_nj: float
    true_time_s: float
    true_energy_j: float
    sim: SimulationResult


class CostMeter:
    """Retire observer accumulating cycles and dynamic energy.

    The attributes mirror the accumulator arithmetic exactly and are part
    of the block-metering contract consumed by
    :func:`repro.vm.blocks.compile_metered_block`:

    * ``table`` -- per-mnemonic ``(base cycles, dynamic nJ, flag)``,
      shared per :class:`HwConfig` via :attr:`HwConfig.cost_table`;
    * ``amp``/``untaken_*``/``wtrap_*`` -- flag-behaviour constants;
    * ``cycles``/``dyn_energy_nj``/``spills``/``fills`` -- the mutable
      accumulation state generated block code banks into.
    """

    supports_block_metering = True

    __slots__ = ("cycles", "dyn_energy_nj", "table", "amp", "jit",
                 "untaken_cycles", "untaken_energy_factor",
                 "wtrap_cycles", "wtrap_energy_nj", "spills", "fills")

    def __init__(self, config: HwConfig):
        self.cycles = 0
        self.dyn_energy_nj = 0.0
        self.table = config.cost_table
        self.amp = config.jitter_amplitude
        self.jit = jitter_table(self.amp)
        self.untaken_cycles = config.untaken_branch_discount
        self.untaken_energy_factor = config.untaken_branch_energy_factor
        self.wtrap_cycles = config.window_trap_cycles
        self.wtrap_energy_nj = config.window_trap_energy_nj
        self.spills = 0
        self.fills = 0

    def on_retire(self, pc: int, mnemonic: str, st: CpuState) -> None:
        base_cyc, dyn, flag = self.table[mnemonic]
        value = st.last_value
        if flag:
            if flag == _FLAG_BRANCH:
                if not st.taken:
                    base_cyc -= self.untaken_cycles
                    dyn *= self.untaken_energy_factor
            elif flag == _FLAG_INTDIV:
                base_cyc -= (32 - value.bit_length()) >> 1
            else:  # save/restore: charge window overflow/underflow traps
                if st.spill_count != self.spills:
                    self.spills = st.spill_count
                    base_cyc += self.wtrap_cycles
                    dyn += self.wtrap_energy_nj
                if st.fill_count != self.fills:
                    self.fills = st.fill_count
                    base_cyc += self.wtrap_cycles
                    dyn += self.wtrap_energy_nj
        self.cycles += base_cyc
        h = ((value * 2654435761) ^ (pc * 0x9E3779B1)) & 0xFFFFFFFF
        h ^= h >> 15
        # table lookup == jitter_factor(pc, value, amp), bit-identically
        self.dyn_energy_nj += dyn * self.jit[h & 0xFFFF]


def warm_cost_tables(config: HwConfig) -> None:
    """Prime the (process-shared) jitter lookup tables for ``config``.

    Powering a board builds every energy table its meter or the metered
    block compiler could reach -- the analogue of libraries precomputing
    their CRC tables at start-up -- so the first measurement costs the
    same as every later one.  All tables are cached per (amplitude, dyn)
    module-wide: a no-op from the second board on, and pool workers
    (forked on Linux) share the parent's tables copy-on-write.
    """
    amp = config.jitter_amplitude
    jitter_table(amp)
    factor = config.untaken_branch_energy_factor
    for _, dyn, flag in config.cost_table.values():
        scaled_jitter_table(amp, dyn)
        if flag == _FLAG_BRANCH:
            scaled_jitter_table(amp, dyn * factor)


class Board:
    """A synthesised CPU configuration on the test bench.

    Parameters
    ----------
    config:
        Hardware configuration (timing, energy, clock, FPU presence).
    instruments:
        Timer/power-meter model; a fresh default instance is created when
        omitted.  Pass :class:`~repro.hw.powermeter.PerfectInstruments`
        to read exact values.
    """

    def __init__(self, config: HwConfig | None = None,
                 instruments: InstrumentModel | None = None):
        self.config = config or HwConfig()
        self.instruments = instruments or InstrumentModel()
        warm_cost_tables(self.config)

    def measure_raw(self, program: Program,
                    max_instructions: int = DEFAULT_BUDGET) -> RawMeasurement:
        """Run ``program`` and accumulate the exact cycle/energy totals."""
        config = self.config
        meter = CostMeter(config)
        simulator = Simulator(program, config.core)
        sim_result = simulator.run_metered(meter,
                                           max_instructions=max_instructions)
        true_time = meter.cycles * config.cycle_seconds
        true_energy = (meter.dyn_energy_nj * 1e-9 +
                       config.static_power_w * true_time)
        return RawMeasurement(
            cycles=meter.cycles,
            dyn_energy_nj=meter.dyn_energy_nj,
            true_time_s=true_time,
            true_energy_j=true_energy,
            sim=sim_result,
        )

    def reading(self, raw: RawMeasurement) -> Measurement:
        """Read ``raw`` off this board's (stateful) instruments."""
        return Measurement(
            time_s=self.instruments.read_time(raw.true_time_s),
            energy_j=self.instruments.read_energy(raw.true_energy_j),
            true_time_s=raw.true_time_s,
            true_energy_j=raw.true_energy_j,
            cycles=raw.cycles,
            sim=raw.sim,
        )

    def measure(self, program: Program,
                max_instructions: int = DEFAULT_BUDGET) -> Measurement:
        """Run ``program`` on the bench and measure time and energy."""
        return self.reading(self.measure_raw(
            program, max_instructions=max_instructions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Board({self.config.name!r}, {self.config.clock_hz/1e6:.0f} MHz)"


# Re-exported convenience: a single retire-cost sanity checker used in tests.
def instruction_cost(config: HwConfig, mnemonic: str) -> tuple[int, float]:
    """Base (cycles, dynamic energy nJ) of ``mnemonic`` under ``config``."""
    return (config.cycle_table[mnemonic], config.dyn_energy_nj[mnemonic])


# keep module self-contained for doctest-style use
_ = jitter_factor
