"""Per-opcode cycle costs of the modelled LEON3-class core.

The board in the paper runs a cacheless LEON3 at FPGA clock rates; every
memory access pays the full SDRAM latency, the hardware divider and FPU
are multi-cycle, and branches cost a couple of cycles more when taken.
The default table is chosen so that, at the 50 MHz default clock, the
*calibrated* per-category specific times land close to Table I of the
paper (e.g. 35-cycle word loads = 700 ns, 22-cycle double divides =
440 ns vs. the paper's 431 ns).

Within-category heterogeneity is deliberate: ``ldd`` is slower than
``ld``, integer division much slower than addition, taken branches
slower than untaken ones.  The nine-constant mechanistic model cannot
represent this spread -- that compression is exactly the estimation-error
mechanism the paper quantifies.
"""

from __future__ import annotations

from typing import Mapping

from repro.isa.opcodes import (
    FCC_COND_NAMES,
    ICC_COND_NAMES,
    INSTR_SPECS,
    TRAP_COND_NAMES,
)


def default_cycle_table() -> dict[str, int]:
    """Base cycle cost for every implemented mnemonic."""
    table: dict[str, int] = {}

    def put(mnemonics, cycles: int) -> None:
        for m in mnemonics:
            table[m] = cycles

    alu = ("add", "addcc", "addx", "addxcc", "sub", "subcc", "subx",
           "subxcc", "and", "andcc", "andn", "andncc", "or", "orcc",
           "orn", "orncc", "xor", "xorcc", "xnor", "xnorcc",
           "sll", "srl", "sra", "sethi")
    put(alu, 2)
    put(("nop",), 2)
    put(("umul", "umulcc", "smul", "smulcc"), 5)
    put(("udiv", "udivcc", "sdiv", "sdivcc"), 35)

    put(tuple(ICC_COND_NAMES.values()), 12)      # taken cost; -2 if untaken
    put(tuple(FCC_COND_NAMES.values()), 12)
    put(("call", "jmpl"), 12)

    put(("ld", "ldf"), 35)
    put(("ldub", "ldsb", "lduh", "ldsh"), 36)
    put(("ldd", "lddf"), 40)
    put(("st", "stb", "sth", "stf"), 19)
    put(("std", "stdf"), 23)

    put(("save", "restore", "rdy", "wry"), 2)
    put(tuple(TRAP_COND_NAMES.values()), 10)

    put(("fadds", "faddd", "fsubs", "fsubd", "fmuls", "fmuld"), 2)
    put(("fmovs", "fnegs", "fabss"), 2)
    put(("fcmps", "fcmpd"), 2)
    put(("fitos", "fitod", "fstoi", "fdtoi", "fstod", "fdtos"), 3)
    put(("fdivs",), 16)
    put(("fdivd",), 22)
    put(("fsqrts",), 24)
    put(("fsqrtd",), 31)

    missing = set(INSTR_SPECS) - set(table)
    if missing:  # defensive: every implemented opcode must be priced
        raise AssertionError(f"cycle table missing {sorted(missing)}")
    return table


#: Mnemonics performing one memory bus transaction.
MEMORY_SINGLE_MNEMONICS = ("ld", "ldf", "ldub", "ldsb", "lduh", "ldsh",
                           "st", "stb", "sth", "stf")
#: Mnemonics performing two bus transactions (double-word accesses).
MEMORY_DOUBLE_MNEMONICS = ("ldd", "lddf", "std", "stdf")


def cycle_table_with_wait_states(base: Mapping[str, int],
                                 wait_states: int) -> dict[str, int]:
    """Derive a cycle table with ``wait_states`` extra cycles per bus access.

    The design-space exploration sweeps memory subsystems: each wait
    state stalls the pipeline for one extra cycle per bus transaction, so
    single-word accesses pay ``wait_states`` extra cycles and double-word
    accesses (two transactions) pay twice that.  Non-memory instructions
    are untouched; ``wait_states=0`` reproduces ``base`` exactly.
    """
    if wait_states < 0:
        raise ValueError("wait_states must be non-negative")
    table = dict(base)
    for mnemonic in MEMORY_SINGLE_MNEMONICS:
        table[mnemonic] += wait_states
    for mnemonic in MEMORY_DOUBLE_MNEMONICS:
        table[mnemonic] += 2 * wait_states
    return table


#: Cycles refunded when a conditional branch falls through (not taken).
UNTAKEN_BRANCH_DISCOUNT = 2

#: Cycle cost of one register-window overflow (spill) or underflow (fill)
#: trap, covering the handler that moves a window to/from the stack.
WINDOW_TRAP_CYCLES = 30


def intdiv_cycles(base: int, result: int) -> int:
    """Operand-dependent divider latency.

    The iterative divider early-exits on small quotients: latency grows
    with the bit length of the result.  ``base`` is the table entry (the
    worst case); the refund keeps values in ``[base-16, base]``.
    """
    return base - ((32 - result.bit_length()) >> 1)
