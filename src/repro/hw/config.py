"""Full hardware configuration: functional core + non-functional cost model.

:class:`HwConfig` is what "synthesising a LEON3 onto the DE2-115" pins
down in the paper: clock rate, presence of the FPU, cycle and energy cost
structure, and static power.  Factory functions provide the two
configurations the paper evaluates (baseline CPU with FPU, and the same
CPU without FPU for ``-msoft-float`` builds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from types import MappingProxyType
from typing import Mapping

from repro.hw.energy import (
    DEFAULT_JITTER_AMPLITUDE,
    UNTAKEN_BRANCH_ENERGY_FACTOR,
    WINDOW_TRAP_ENERGY_NJ,
    default_energy_table,
)
from repro.hw.timing import (
    UNTAKEN_BRANCH_DISCOUNT,
    WINDOW_TRAP_CYCLES,
    default_cycle_table,
)
from repro.vm.config import CoreConfig


class ScaledDynTable(dict):
    """A dynamic-energy table derived as ``base * scale``.

    Entry-wise identical to ``{m: nj * scale for m, nj in base.items()}``
    but carries its factorization, so batch evaluators can reduce the
    base table once and rescale the dots -- one multiply per derived
    table instead of one exact reduction (see
    :class:`repro.nfp.linear.BatchNfpEngine`).  Workers receive it
    pickled down to a plain mapping, which only costs them the fast
    dedup, never correctness.
    """

    __slots__ = ("base", "scale")

    def __init__(self, base: Mapping[str, float], scale: float):
        super().__init__({m: nj * scale for m, nj in base.items()})
        self.base = base
        self.scale = scale


@dataclass(frozen=True)
class HwConfig:
    """A fully priced hardware platform.

    Attributes
    ----------
    name:
        Human-readable configuration name (used in reports).
    core:
        Functional configuration handed to the simulator.
    clock_hz:
        Core clock; the DE2-115 LEON3 designs run at 50 MHz.
    cycle_table / dyn_energy_nj:
        Per-mnemonic base costs (see :mod:`repro.hw.timing` /
        :mod:`repro.hw.energy`).
    static_power_w:
        Leakage + clock-tree power charged for the whole run duration.
    jitter_amplitude:
        Data-dependent dynamic-energy variation (+/- fraction).
    """

    name: str = "leon3-50mhz"
    core: CoreConfig = field(default_factory=CoreConfig)
    clock_hz: float = 50e6
    cycle_table: Mapping[str, int] = field(
        default_factory=lambda: MappingProxyType(default_cycle_table()))
    dyn_energy_nj: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(default_energy_table()))
    static_power_w: float = 0.040
    jitter_amplitude: float = DEFAULT_JITTER_AMPLITUDE
    untaken_branch_discount: int = UNTAKEN_BRANCH_DISCOUNT
    untaken_branch_energy_factor: float = UNTAKEN_BRANCH_ENERGY_FACTOR
    window_trap_cycles: int = WINDOW_TRAP_CYCLES
    window_trap_energy_nj: float = WINDOW_TRAP_ENERGY_NJ

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if not 0 <= self.jitter_amplitude < 0.5:
            raise ValueError("jitter_amplitude must be in [0, 0.5)")

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz

    @cached_property
    def cost_table(self) -> dict[str, tuple[int, float, int]]:
        """``mnemonic -> (base cycles, dynamic energy nJ, cost flag)``.

        The merged retire-cost table every meter over this configuration
        shares.  Built once per :class:`HwConfig` instance (the build
        loops over all instruction specs, so hoisting it out of the
        per-measurement path matters for the testbed's throughput); the
        ``cached_property`` write lands in the instance ``__dict__``
        directly, which is legal on frozen dataclasses.
        """
        from repro.vm.blocks import cost_flags

        # the flag classification is shared with the metered block
        # compiler and the execution profiler via cost_flags()
        return {mnemonic: (self.cycle_table[mnemonic],
                           self.dyn_energy_nj[mnemonic], flag)
                for mnemonic, flag in cost_flags().items()}

    # -- pickling (the experiment runner ships configs to worker processes) --

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("cost_table", None)  # cached_property: rebuilt on demand
        state["cycle_table"] = dict(self.cycle_table)
        state["dyn_energy_nj"] = dict(self.dyn_energy_nj)
        return state

    def __setstate__(self, state):
        state["cycle_table"] = MappingProxyType(state["cycle_table"])
        state["dyn_energy_nj"] = MappingProxyType(state["dyn_energy_nj"])
        self.__dict__.update(state)


def leon3_fpu(**core_overrides) -> HwConfig:
    """The paper's baseline CPU *including* the FPU."""
    return HwConfig(name="leon3-fpu",
                    core=CoreConfig(has_fpu=True, **core_overrides))


def leon3_nofpu(**core_overrides) -> HwConfig:
    """The same CPU synthesised without an FPU (soft-float kernels only)."""
    return HwConfig(name="leon3-nofpu",
                    core=CoreConfig(has_fpu=False, **core_overrides))
