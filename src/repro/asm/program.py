"""Loadable program images (the *kernel* binaries the paper feeds to OVP)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Section:
    """One linked output section."""

    name: str
    addr: int
    size: int

    @property
    def end(self) -> int:
        return self.addr + self.size


@dataclass(frozen=True)
class Program:
    """A fully linked bare-metal program (immutable once linked).

    Attributes
    ----------
    origin:
        Load address of the first byte of ``.text``.
    text, data:
        Encoded section contents.  ``.data`` immediately follows ``.text``
        (8-byte aligned); ``.bss`` follows ``.data`` and is zero-filled by
        the loader.
    entry:
        Address execution starts at.
    symbols:
        Label -> absolute address (or ``.equ`` value).
    source_map:
        Instruction address -> (source line number, source text); used for
        listings and simulator diagnostics.
    """

    origin: int
    text: bytes
    data: bytes
    data_addr: int
    bss_addr: int
    bss_size: int
    entry: int
    symbols: dict[str, int] = field(default_factory=dict)
    source_map: dict[int, tuple[int, str]] = field(default_factory=dict)

    @property
    def sections(self) -> tuple[Section, ...]:
        return (
            Section(".text", self.origin, len(self.text)),
            Section(".data", self.data_addr, len(self.data)),
            Section(".bss", self.bss_addr, self.bss_size),
        )

    @property
    def load_image(self) -> bytes:
        """Contiguous bytes from ``origin`` covering ``.text`` and ``.data``."""
        gap = self.data_addr - (self.origin + len(self.text))
        return self.text + b"\x00" * gap + self.data

    @property
    def end_addr(self) -> int:
        """First address past every section (start of free memory)."""
        return self.bss_addr + self.bss_size

    def symbol(self, name: str) -> int:
        """Address of ``name``; raises ``KeyError`` when unknown."""
        return self.symbols[name]

    def word_count(self) -> int:
        """Number of instruction words in ``.text``."""
        return len(self.text) // 4
