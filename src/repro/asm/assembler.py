"""The two-pass assembler core.

Pass 1 sizes every statement and binds labels to section offsets; pass 2
resolves expressions against the final symbol table and encodes machine
words.  Synthetic instructions expand here (``set`` may occupy one or two
words -- the expansion size is decided deterministically in pass 1).
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass

from repro.asm.errors import AsmError
from repro.asm.expr import evaluate, references_symbols
from repro.asm.program import Program
from repro.isa import encoder
from repro.isa.fields import fits_simm13, u32
from repro.isa.opcodes import (
    ARITH_MNEMONIC_TO_OP3,
    FCC_NAME_TO_COND,
    FPOP_MNEMONIC_TO_OPF,
    FPOP_TWO_SOURCE,
    ICC_NAME_TO_COND,
    MEM_MNEMONIC_TO_OP3,
    STORE_MNEMONICS,
    TRAP_NAME_TO_COND,
)
from repro.isa.registers import is_freg, is_reg, parse_freg, parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_MEM_ADDR_RE = re.compile(r"^\s*(%\w+)\s*(?:([+-])\s*(.+?))?\s*$")

_DEFAULT_ORIGIN = 0x40000000


@dataclass
class _Item:
    """One sized statement produced by pass 1."""

    section: str
    offset: int
    size: int
    kind: str  # "instr" | "data"
    mnemonic: str
    annul: bool
    operands: list[str]
    line_no: int
    raw: str


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_string:
            out.append(ch)
            if ch == "\\" and i + 1 < len(line):
                out.append(line[i + 1])
                i += 2
                continue
            if ch == '"':
                in_string = False
        else:
            if ch in "!#":
                break
            if ch == '"':
                in_string = True
            out.append(ch)
        i += 1
    return "".join(out).strip()


def _split_operands(text: str) -> list[str]:
    """Split on top-level commas (commas inside ``[]``/``()``/strings group)."""
    if not text.strip():
        return []
    parts: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            current.append(ch)
            if ch == "\\" and i + 1 < len(text):
                current.append(text[i + 1])
                i += 2
                continue
            if ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
            current.append(ch)
        elif ch in "[(":
            depth += 1
            current.append(ch)
        elif ch in "])":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current).strip())
    return parts


def _parse_string_literal(text: str) -> bytes:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AsmError(f"expected string literal, got {text!r}")
    body = text[1:-1]
    out = bytearray()
    i = 0
    escapes = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, '"': 34, "'": 39}
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise AsmError("dangling escape in string literal")
            code = escapes.get(body[i + 1])
            if code is None:
                raise AsmError(f"unknown escape \\{body[i + 1]}")
            out.append(code)
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


_SYNTHETIC_SIZES = {
    "nop": 4, "mov": 4, "cmp": 4, "tst": 4, "clr": 4, "inc": 4, "dec": 4,
    "neg": 4, "not": 4, "ret": 4, "retl": 4, "jmp": 4, "rd": 4, "wr": 4,
}


class Assembler:
    """Assemble SPARC V8 source into a :class:`~repro.asm.program.Program`.

    Parameters
    ----------
    origin:
        Load/link address of ``.text`` (LEON3 RAM base by default).
    entry_symbol:
        Execution starts at this label when defined, else at ``origin``.
    """

    def __init__(self, origin: int = _DEFAULT_ORIGIN,
                 entry_symbol: str = "_start"):
        if origin % 8:
            raise AsmError(f"origin must be 8-byte aligned, got {origin:#x}")
        self.origin = origin
        self.entry_symbol = entry_symbol

    # -- pass 1 -------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` and return the linked program image."""
        items: list[_Item] = []
        # symbol -> (section, offset) for labels; absolute ints for .equ
        label_defs: dict[str, tuple[str, int]] = {}
        equ_defs: dict[str, int] = {}
        lc = {".text": 0, ".data": 0, ".bss": 0}
        section = ".text"

        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw_line)
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                name = match.group(1)
                if name in label_defs or name in equ_defs:
                    raise AsmError(f"duplicate symbol {name!r}", line_no)
                label_defs[name] = (section, lc[section])
                line = match.group(2).strip()
            if not line:
                continue

            fields = line.split(None, 1)
            head = fields[0].lower()
            rest = fields[1] if len(fields) > 1 else ""

            if head.startswith("."):
                section, consumed = self._directive_pass1(
                    head, rest, section, lc, items, equ_defs, line_no, raw_line)
                if consumed:
                    continue
                continue

            annul = False
            if head.endswith(",a"):
                head = head[:-2]
                annul = True
            operands = _split_operands(rest)
            size = self._instr_size(head, operands, equ_defs, line_no)
            if section != ".text":
                raise AsmError(
                    f"instruction {head!r} outside .text", line_no)
            items.append(_Item(section, lc[section], size, "instr", head,
                               annul, operands, line_no, raw_line.strip()))
            lc[section] += size

        return self._pass2(items, label_defs, equ_defs, lc)

    def _directive_pass1(self, head: str, rest: str, section: str,
                         lc: dict[str, int], items: list[_Item],
                         equ_defs: dict[str, int], line_no: int,
                         raw: str) -> tuple[str, bool]:
        operands = _split_operands(rest)

        def emit(size: int) -> None:
            items.append(_Item(section, lc[section], size, "data", head,
                               False, operands, line_no, raw.strip()))
            lc[section] += size

        if head in (".text", ".data", ".bss"):
            return head, True
        if head in (".global", ".globl", ".type", ".size"):
            return section, True
        if head in (".equ", ".set"):
            if len(operands) != 2:
                raise AsmError(f"{head} needs `name, value`", line_no)
            name = operands[0]
            try:
                value = evaluate(operands[1], equ_defs)
            except AsmError as exc:
                raise exc.at_line(line_no)
            equ_defs[name] = value
            return section, True
        if head == ".align":
            if len(operands) != 1:
                raise AsmError(".align needs one operand", line_no)
            try:
                alignment = evaluate(operands[0], equ_defs)
            except AsmError as exc:
                raise exc.at_line(line_no)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AsmError(
                    f".align must be a power of two, got {alignment}", line_no)
            pad = (-lc[section]) % alignment
            if pad:
                emit(pad)
            return section, True
        if head in (".skip", ".space"):
            if len(operands) not in (1, 2):
                raise AsmError(f"{head} needs `size[, fill]`", line_no)
            try:
                size = evaluate(operands[0], equ_defs)
            except AsmError as exc:
                raise exc.at_line(line_no)
            if size < 0:
                raise AsmError(f"negative {head} size", line_no)
            emit(size)
            return section, True
        if head in (".word", ".half", ".byte"):
            if section == ".bss":
                raise AsmError(f"{head} not allowed in .bss", line_no)
            unit = {".word": 4, ".half": 2, ".byte": 1}[head]
            if not operands:
                raise AsmError(f"{head} needs at least one value", line_no)
            emit(unit * len(operands))
            return section, True
        if head in (".ascii", ".asciz"):
            if section == ".bss":
                raise AsmError(f"{head} not allowed in .bss", line_no)
            data = _parse_string_literal(rest)
            emit(len(data) + (1 if head == ".asciz" else 0))
            return section, True
        raise AsmError(f"unknown directive {head!r}", line_no)

    def _instr_size(self, mnemonic: str, operands: list[str],
                    equ_defs: dict[str, int], line_no: int) -> int:
        if mnemonic == "set":
            if len(operands) != 2:
                raise AsmError("set needs `value, register`", line_no)
            expr = operands[0]
            if references_symbols(expr):
                return 8
            try:
                value = u32(evaluate(expr, equ_defs))
            except AsmError as exc:
                raise exc.at_line(line_no)
            signed = value - 0x100000000 if value & 0x80000000 else value
            if fits_simm13(signed) or (value & 0x3FF) == 0:
                return 4
            return 8
        return 4

    # -- pass 2 -------------------------------------------------------------

    def _pass2(self, items: list[_Item], label_defs: dict[str, tuple[str, int]],
               equ_defs: dict[str, int], lc: dict[str, int]) -> Program:
        def align8(addr: int) -> int:
            return (addr + 7) & ~7

        text_base = self.origin
        data_base = align8(text_base + lc[".text"])
        bss_base = align8(data_base + lc[".data"])
        bases = {".text": text_base, ".data": data_base, ".bss": bss_base}

        symbols = dict(equ_defs)
        for name, (section, offset) in label_defs.items():
            symbols[name] = bases[section] + offset

        text = bytearray(lc[".text"])
        data = bytearray(lc[".data"])
        source_map: dict[int, tuple[int, str]] = {}

        for item in items:
            addr = bases[item.section] + item.offset
            try:
                blob = self._encode_item(item, addr, symbols)
            except (AsmError, ValueError) as exc:
                if isinstance(exc, AsmError):
                    raise exc.at_line(item.line_no)
                raise AsmError(str(exc), item.line_no) from exc
            if len(blob) != item.size:
                raise AsmError(
                    f"internal: pass1 sized {item.size} bytes but pass2 "
                    f"encoded {len(blob)} for {item.raw!r}", item.line_no)
            buf = text if item.section == ".text" else data
            if item.section == ".bss":
                continue
            buf[item.offset:item.offset + len(blob)] = blob
            if item.kind == "instr":
                for word_idx in range(len(blob) // 4):
                    source_map[addr + 4 * word_idx] = (item.line_no, item.raw)

        entry = symbols.get(self.entry_symbol, text_base)
        return Program(
            origin=text_base,
            text=bytes(text),
            data=bytes(data),
            data_addr=data_base,
            bss_addr=bss_base,
            bss_size=lc[".bss"],
            entry=entry,
            symbols=symbols,
            source_map=source_map,
        )

    # -- statement encoding --------------------------------------------------

    def _encode_item(self, item: _Item, addr: int,
                     symbols: dict[str, int]) -> bytes:
        if item.kind == "data":
            return self._encode_data(item, addr, symbols)
        words = self._encode_instr(item.mnemonic, item.annul, item.operands,
                                   addr, symbols)
        return b"".join(struct.pack(">I", u32(w)) for w in words)

    def _encode_data(self, item: _Item, addr: int,
                     symbols: dict[str, int]) -> bytes:
        head = item.mnemonic
        if head in (".skip", ".space"):
            fill = 0
            if len(item.operands) == 2:
                fill = evaluate(item.operands[1], symbols, addr) & 0xFF
            return bytes([fill]) * item.size
        if head == ".align":
            return bytes(item.size)
        if head in (".word", ".half", ".byte"):
            unit = {".word": 4, ".half": 2, ".byte": 1}[head]
            fmt = {4: ">I", 2: ">H", 1: ">B"}[unit]
            out = bytearray()
            for op in item.operands:
                value = evaluate(op, symbols, addr) & ((1 << (unit * 8)) - 1)
                out += struct.pack(fmt, value)
            return bytes(out)
        if head in (".ascii", ".asciz"):
            blob = _parse_string_literal(" ".join(item.operands) if
                                         len(item.operands) > 1 else
                                         item.operands[0])
            return blob + (b"\x00" if head == ".asciz" else b"")
        raise AsmError(f"internal: unsized directive {head!r}")

    def _reg_or_imm(self, text: str, symbols: dict[str, int],
                    addr: int) -> tuple[int | None, int | None]:
        """Parse an op2 operand: (register, None) or (None, immediate)."""
        if is_reg(text):
            return parse_reg(text), None
        value = evaluate(text, symbols, addr)
        if not fits_simm13(value):
            raise AsmError(f"immediate {value} does not fit simm13")
        return None, value

    def _mem_address(self, text: str, symbols: dict[str, int],
                     addr: int) -> tuple[int, int | None, int | None]:
        """Parse ``[base]``, ``[base + reg]``, ``[base +/- imm]``."""
        text = text.strip()
        if not (text.startswith("[") and text.endswith("]")):
            raise AsmError(f"expected memory operand in brackets: {text!r}")
        inner = text[1:-1].strip()
        match = _MEM_ADDR_RE.match(inner)
        if not match or not is_reg(match.group(1)):
            raise AsmError(f"unsupported address form: {text!r}")
        base = parse_reg(match.group(1))
        if match.group(2) is None:
            return base, None, 0
        sign, tail = match.group(2), match.group(3).strip()
        if is_reg(tail):
            if sign == "-":
                raise AsmError("register offsets cannot be subtracted")
            return base, parse_reg(tail), None
        value = evaluate(tail, symbols, addr)
        if sign == "-":
            value = -value
        if not fits_simm13(value):
            raise AsmError(f"address offset {value} does not fit simm13")
        return base, None, value

    def _encode_instr(self, m: str, annul: bool, ops: list[str], addr: int,
                      symbols: dict[str, int]) -> list[int]:
        """Encode one (possibly synthetic) instruction into words."""
        if m == "nop":
            self._arity(m, ops, 0)
            return [encoder.encode_nop()]

        if m in ICC_NAME_TO_COND:
            self._arity(m, ops, 1)
            target = evaluate(ops[0], symbols, addr)
            return [encoder.encode_branch(m, target - addr, annul)]
        if m in FCC_NAME_TO_COND:
            self._arity(m, ops, 1)
            target = evaluate(ops[0], symbols, addr)
            return [encoder.encode_fbranch(m, target - addr, annul)]
        if m in TRAP_NAME_TO_COND:
            self._arity(m, ops, 1)
            value = evaluate(ops[0], symbols, addr)
            return [encoder.encode_trap(m, rs1=0, imm=value)]

        if m == "call":
            self._arity(m, ops, 1)
            if is_reg(ops[0]):
                return [encoder.encode_jmpl(15, parse_reg(ops[0]), imm=0)]
            target = evaluate(ops[0], symbols, addr)
            return [encoder.encode_call(target - addr)]
        if m == "jmp":
            self._arity(m, ops, 1)
            base, rs2, imm = self._jump_address(ops[0], symbols, addr)
            return [encoder.encode_jmpl(0, base, rs2, imm)]
        if m == "jmpl":
            self._arity(m, ops, 2)
            base, rs2, imm = self._jump_address(ops[0], symbols, addr)
            return [encoder.encode_jmpl(parse_reg(ops[1]), base, rs2, imm)]
        if m == "ret":
            self._arity(m, ops, 0)
            return [encoder.encode_jmpl(0, 31, imm=8)]
        if m == "retl":
            self._arity(m, ops, 0)
            return [encoder.encode_jmpl(0, 15, imm=8)]

        if m == "sethi":
            self._arity(m, ops, 2)
            value = evaluate(ops[0], symbols, addr)
            return [encoder.encode_sethi(parse_reg(ops[1]), value)]
        if m == "set":
            self._arity(m, ops, 2)
            rd = parse_reg(ops[1])
            value = u32(evaluate(ops[0], symbols, addr))
            signed = value - 0x100000000 if value & 0x80000000 else value
            symbolic = references_symbols(ops[0])
            if not symbolic and fits_simm13(signed):
                return [encoder.encode_arith("or", rd, 0, imm=signed)]
            if not symbolic and (value & 0x3FF) == 0:
                return [encoder.encode_sethi(rd, value >> 10)]
            return [
                encoder.encode_sethi(rd, (value >> 10) & 0x3FFFFF),
                encoder.encode_arith("or", rd, rd, imm=value & 0x3FF),
            ]

        if m in ("save", "restore") and not ops:
            return [encoder.encode_arith(m, 0, 0, rs2=0)]
        if m in ARITH_MNEMONIC_TO_OP3:
            self._arity(m, ops, 3)
            rs1 = parse_reg(ops[0])
            rd = parse_reg(ops[2])
            reg2, imm = self._reg_or_imm(ops[1], symbols, addr)
            return [encoder.encode_arith(m, rd, rs1, reg2, imm)]

        if m in MEM_MNEMONIC_TO_OP3:
            if m in STORE_MNEMONICS:
                self._arity(m, ops, 2)
                data_op, mem_op = ops[0], ops[1]
            else:
                self._arity(m, ops, 2)
                mem_op, data_op = ops[0], ops[1]
            if m in ("ldf", "lddf", "stf", "stdf"):
                rd = parse_freg(data_op)
            else:
                rd = parse_reg(data_op)
            base, rs2, imm = self._mem_address(mem_op, symbols, addr)
            return [encoder.encode_mem(m, rd, base, rs2, imm)]

        if m in FPOP_MNEMONIC_TO_OPF:
            if m in ("fcmps", "fcmpd"):
                self._arity(m, ops, 2)
                return [encoder.encode_fpop(m, 0, parse_freg(ops[1]),
                                            parse_freg(ops[0]))]
            if m in FPOP_TWO_SOURCE:
                self._arity(m, ops, 3)
                return [encoder.encode_fpop(m, parse_freg(ops[2]),
                                            parse_freg(ops[1]),
                                            parse_freg(ops[0]))]
            self._arity(m, ops, 2)
            return [encoder.encode_fpop(m, parse_freg(ops[1]),
                                        parse_freg(ops[0]))]

        if m == "rd":
            self._arity(m, ops, 2)
            if ops[0].strip().lower() != "%y":
                raise AsmError("only `rd %y, reg` is supported")
            return [encoder.encode_rdy(parse_reg(ops[1]))]
        if m == "wr":
            if len(ops) == 2:
                ops = [ops[0], "%g0", ops[1]]
            self._arity(m, ops, 3)
            if ops[2].strip().lower() != "%y":
                raise AsmError("only `wr reg, op2, %y` is supported")
            reg2, imm = self._reg_or_imm(ops[1], symbols, addr)
            return [encoder.encode_wry(parse_reg(ops[0]), reg2, imm)]

        if m == "mov":
            self._arity(m, ops, 2)
            if ops[0].strip().lower() == "%y":
                return [encoder.encode_rdy(parse_reg(ops[1]))]
            if ops[1].strip().lower() == "%y":
                return [encoder.encode_wry(parse_reg(ops[0]), None, 0)]
            if is_freg(ops[0]) or is_freg(ops[1]):
                return [encoder.encode_fpop("fmovs", parse_freg(ops[1]),
                                            parse_freg(ops[0]))]
            rd = parse_reg(ops[1])
            reg2, imm = self._reg_or_imm(ops[0], symbols, addr)
            return [encoder.encode_arith("or", rd, 0, reg2, imm)]
        if m == "cmp":
            self._arity(m, ops, 2)
            reg2, imm = self._reg_or_imm(ops[1], symbols, addr)
            return [encoder.encode_arith("subcc", 0, parse_reg(ops[0]),
                                         reg2, imm)]
        if m == "tst":
            self._arity(m, ops, 1)
            return [encoder.encode_arith("orcc", 0, 0,
                                         rs2=parse_reg(ops[0]))]
        if m == "clr":
            self._arity(m, ops, 1)
            return [encoder.encode_arith("or", parse_reg(ops[0]), 0, rs2=0)]
        if m in ("inc", "dec"):
            base = "add" if m == "inc" else "sub"
            if len(ops) == 1:
                rd = parse_reg(ops[0])
                return [encoder.encode_arith(base, rd, rd, imm=1)]
            self._arity(m, ops, 2)
            rd = parse_reg(ops[1])
            step = evaluate(ops[0], symbols, addr)
            return [encoder.encode_arith(base, rd, rd, imm=step)]
        if m == "neg":
            rd = parse_reg(ops[-1])
            rs = parse_reg(ops[0])
            return [encoder.encode_arith("sub", rd, 0, rs2=rs)]
        if m == "not":
            rd = parse_reg(ops[-1])
            rs = parse_reg(ops[0])
            return [encoder.encode_arith("xnor", rd, rs, rs2=0)]

        raise AsmError(f"unknown mnemonic {m!r}")

    def _jump_address(self, text: str, symbols: dict[str, int],
                      addr: int) -> tuple[int, int | None, int | None]:
        """Parse a jmpl-style address: ``reg``, ``reg + reg``, ``reg +/- imm``."""
        match = _MEM_ADDR_RE.match(text.strip())
        if not match or not is_reg(match.group(1)):
            raise AsmError(f"unsupported jump address: {text!r}")
        base = parse_reg(match.group(1))
        if match.group(2) is None:
            return base, None, 0
        sign, tail = match.group(2), match.group(3).strip()
        if is_reg(tail):
            if sign == "-":
                raise AsmError("register offsets cannot be subtracted")
            return base, parse_reg(tail), None
        value = evaluate(tail, symbols, addr)
        if sign == "-":
            value = -value
        return base, None, value

    @staticmethod
    def _arity(mnemonic: str, ops: list[str], expected: int) -> None:
        if len(ops) != expected:
            raise AsmError(
                f"{mnemonic} expects {expected} operand(s), got {len(ops)}")


def assemble(source: str, origin: int = _DEFAULT_ORIGIN,
             entry_symbol: str = "_start") -> Program:
    """Convenience wrapper: assemble ``source`` with default settings."""
    return Assembler(origin=origin, entry_symbol=entry_symbol).assemble(source)
