"""Two-pass SPARC V8 assembler.

Turns assembly source (as emitted by :mod:`repro.kir` or written by hand,
e.g. the calibration kernels of Table II) into a loadable
:class:`~repro.asm.program.Program` image for the simulator.

Supported surface:

* all instructions of :mod:`repro.isa` plus the usual synthetic instructions
  (``set``, ``mov``, ``cmp``, ``tst``, ``clr``, ``inc``, ``dec``, ``neg``,
  ``not``, ``ret``, ``retl``, ``jmp``, ``nop``, ``b``);
* sections ``.text`` / ``.data`` / ``.bss`` with ``.align``, ``.word``,
  ``.half``, ``.byte``, ``.ascii``, ``.asciz``, ``.skip``/``.space``,
  ``.global`` (accepted, no-op), ``.equ``/``.set``;
* expressions with ``+ - * / % & | ^ << >>``, parentheses, labels and the
  ``%hi()``/``%lo()`` relocation operators;
* ``!`` and ``#`` line comments, ``label:`` definitions, branch annul
  suffix ``,a``.
"""

from repro.asm.assembler import Assembler, assemble
from repro.asm.errors import AsmError, UndefinedSymbolError
from repro.asm.program import Program, Section

__all__ = [
    "AsmError",
    "Assembler",
    "Program",
    "Section",
    "UndefinedSymbolError",
    "assemble",
]
