"""Assembler error types carrying source positions."""

from __future__ import annotations


class AsmError(Exception):
    """Any assembly failure; carries the 1-based source line when known."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        self.message = message
        super().__init__(f"line {line}: {message}" if line else message)

    def at_line(self, line: int) -> "AsmError":
        """Return a copy of this error annotated with ``line`` if unset."""
        if self.line is not None:
            return self
        return AsmError(self.message, line)


class UndefinedSymbolError(AsmError):
    """An expression referenced a symbol that was never defined."""

    def __init__(self, symbol: str, line: int | None = None):
        self.symbol = symbol
        super().__init__(f"undefined symbol {symbol!r}", line)
