"""Constant-expression evaluation for assembler operands.

Grammar (standard precedence, all integer arithmetic)::

    expr    := or
    or      := xor ('|' xor)*
    xor     := and ('^' and)*
    and     := shift ('&' shift)*
    shift   := sum (('<<' | '>>') sum)*
    sum     := term (('+' | '-') term)*
    term    := unary (('*' | '/' | '%') unary)*
    unary   := ('-' | '~' | '+') unary | atom
    atom    := INT | SYMBOL | '(' expr ')' | '%hi' '(' expr ')'
             | '%lo' '(' expr ')' | "'" CHAR "'" | '.'

``%hi(x)`` yields the upper 22 bits (for ``sethi``), ``%lo(x)`` the lower
10 bits, so ``sethi %hi(x), r; or r, %lo(x), r`` materialises ``x``.
``.`` evaluates to the current location counter when one is supplied.
"""

from __future__ import annotations

import re

from repro.asm.errors import AsmError, UndefinedSymbolError

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<hi>%hi\b) | (?P<lo>%lo\b) |
        (?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+) |
        (?P<char>'(?:\\.|[^'\\])') |
        (?P<sym>\.(?![\w])|[A-Za-z_.$][\w.$]*) |
        (?P<op><<|>>|[()+\-*/%&|^~])
    )
    """,
    re.VERBOSE,
)

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            rest = text[pos:].strip()
            if not rest:
                break
            raise AsmError(f"cannot tokenize expression at {rest!r}")
        tokens.append(match.group().strip())
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], symbols: dict[str, int],
                 location: int | None):
        self._tokens = tokens
        self._pos = 0
        self._symbols = symbols
        self._location = location

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise AsmError("unexpected end of expression")
        self._pos += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._next()
        if got != token:
            raise AsmError(f"expected {token!r}, got {got!r}")

    def parse(self) -> int:
        value = self._or()
        if self._peek() is not None:
            raise AsmError(f"trailing tokens in expression: {self._peek()!r}")
        return value

    def _binary(self, sub, ops) -> int:
        value = sub()
        while self._peek() in ops:
            op = self._next()
            rhs = sub()
            if op == "|":
                value |= rhs
            elif op == "^":
                value ^= rhs
            elif op == "&":
                value &= rhs
            elif op == "<<":
                value <<= rhs
            elif op == ">>":
                value >>= rhs
            elif op == "+":
                value += rhs
            elif op == "-":
                value -= rhs
            elif op == "*":
                value *= rhs
            elif op == "/":
                if rhs == 0:
                    raise AsmError("division by zero in expression")
                value = int(value / rhs) if (value < 0) != (rhs < 0) else value // rhs
            elif op == "%":
                if rhs == 0:
                    raise AsmError("modulo by zero in expression")
                value %= rhs
        return value

    def _or(self) -> int:
        return self._binary(self._xor, ("|",))

    def _xor(self) -> int:
        return self._binary(self._and, ("^",))

    def _and(self) -> int:
        return self._binary(self._shift, ("&",))

    def _shift(self) -> int:
        return self._binary(self._sum, ("<<", ">>"))

    def _sum(self) -> int:
        return self._binary(self._term, ("+", "-"))

    def _term(self) -> int:
        return self._binary(self._unary, ("*", "/", "%"))

    def _unary(self) -> int:
        token = self._peek()
        if token == "-":
            self._next()
            return -self._unary()
        if token == "~":
            self._next()
            return ~self._unary()
        if token == "+":
            self._next()
            return self._unary()
        return self._atom()

    def _atom(self) -> int:
        token = self._next()
        if token == "(":
            value = self._or()
            self._expect(")")
            return value
        if token in ("%hi", "%lo"):
            self._expect("(")
            value = self._or()
            self._expect(")")
            value &= 0xFFFFFFFF
            return (value >> 10) & 0x3FFFFF if token == "%hi" else value & 0x3FF
        if token == ".":
            if self._location is None:
                raise AsmError("'.' not allowed in this context")
            return self._location
        if token.startswith("'"):
            body = token[1:-1]
            if body.startswith("\\"):
                code = _ESCAPES.get(body[1])
                if code is None:
                    raise AsmError(f"unknown escape {body!r}")
                return code
            return ord(body)
        if token[0].isdigit():
            if token.lower().startswith("0x"):
                return int(token, 16)
            if token.lower().startswith("0b"):
                return int(token, 2)
            return int(token, 10)
        if re.match(r"[A-Za-z_.$]", token[0]):
            if token not in self._symbols:
                raise UndefinedSymbolError(token)
            return self._symbols[token]
        raise AsmError(f"unexpected token {token!r} in expression")


def evaluate(text: str, symbols: dict[str, int] | None = None,
             location: int | None = None) -> int:
    """Evaluate an assembler constant expression.

    Parameters
    ----------
    text:
        The expression source, e.g. ``"%lo(buf + 16)"`` or ``"(1 << 20) - 4"``.
    symbols:
        Symbol table for label references.
    location:
        Value of the ``.`` location counter, when meaningful.
    """
    parser = _Parser(_tokenize(text), symbols or {}, location)
    return parser.parse()


def references_symbols(text: str) -> bool:
    """True if ``text`` mentions any symbol (i.e. is not a pure literal)."""
    for token in _tokenize(text):
        if token in ("%hi", "%lo", "."):
            continue
        if re.match(r"[A-Za-z_$]", token[0]) or (
            token[0] == "." and len(token) > 1
        ):
            return True
    return False
