"""The axis registry and multi-dimensional design spaces.

An :class:`Axis` is one named hardware parameter the exploration can
sweep -- how to apply a value to a priced :class:`~repro.hw.config.HwConfig`,
how to label it inside a configuration name, and which values a default
sweep uses.  A :class:`DesignSpace` is an ordered selection of axes with
value lists; its cartesian product yields the candidate platforms
(:class:`SweepConfig`) a sweep runs every workload on.

The registry is extensible: anything that can be expressed as a
transformation of ``HwConfig`` (clock, cost tables, core parameters,
static power, ...) can be registered as a new axis with
:func:`register_axis` and immediately swept via ``DesignSpace.from_spec``
or the ``repro dse --axes`` CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Callable, Sequence

from repro.hw.config import HwConfig, ScaledDynTable
from repro.hw.timing import cycle_table_with_wait_states


@dataclass(frozen=True)
class AxisLowering:
    """Per-value cost-model effects of one axis, for the streamed fast path.

    Aligned with the axis' value list; only the fields the axis touches
    are set.  ``dyn_scales``/``clock_hz`` describe a DVFS-style axis
    (dynamic energy, trap energy and static power scale; the clock
    retimes), ``cycle_tables`` replaces the cycle table per value,
    ``nwindows``/``has_fpu`` adjust the core, and an instance with no
    fields set declares the axis NFP-inert (``block_size``).  Each
    table derivation must match the axis' ``apply`` bit-for-bit -- the
    streamed-vs-materialized byte-identity tests enforce it.
    """

    dyn_scales: tuple[float, ...] | None = None
    clock_hz: tuple[float, ...] | None = None
    cycle_tables: tuple | None = None
    nwindows: tuple[int, ...] | None = None
    has_fpu: tuple[bool, ...] | None = None


@dataclass(frozen=True)
class Axis:
    """One sweepable hardware parameter.

    Attributes
    ----------
    name:
        Registry key (``clock_mhz``, ``fpu``, ...).
    values:
        Default sweep values, in sweep order.
    apply:
        ``(hw, value) -> hw`` transformation (must be pure).
    label:
        ``value -> str`` fragment used in generated configuration names.
    parse:
        ``str -> value`` parser for CLI-provided value lists.
    doc:
        One-line description shown in help/reports.
    lower:
        Optional ``(base_hw, values) -> AxisLowering`` hook.  When every
        axis of a space provides one, the streamed sweep prices the
        cartesian product from factored per-axis tables instead of
        applying ``apply`` per config (:func:`repro.dse.engine.sweep_streamed`).
    refine:
        Optional ``(a, b) -> mid | None`` midpoint hook between two
        swept values; axes with one are eligible for the adaptive
        refinement pass (``repro dse --refine``).  ``None`` (the hook
        result) means no value lies strictly between ``a`` and ``b``.
    """

    name: str
    values: tuple
    apply: Callable[[HwConfig, object], HwConfig]
    label: Callable[[object], str]
    parse: Callable[[str], object]
    doc: str = ""
    lower: Callable[[HwConfig, tuple], AxisLowering] | None = None
    refine: Callable[[object, object], object | None] | None = None


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on", "fpu"):
        return True
    if lowered in ("0", "false", "no", "off", "nofpu"):
        return False
    raise ValueError(f"not a boolean axis value: {text!r}")


#: The paper's synthesis frequency; voltage scaling is normalised to it.
BASE_CLOCK_MHZ = 50.0

#: Derived cost-table memo: ``(kind, id(base), param) -> (base, table)``.
#: Applying the same axis value to the same base table yields the *same
#: object*, so batch evaluation dedupes rows by identity and million-
#: config iteration never rebuilds a table it has already derived.  The
#: stored base reference keeps the id from being recycled; the memo is
#: cleared (not evicted piecemeal) if it ever grows degenerate.
_DERIVED_TABLES: dict[tuple, tuple] = {}


def _derived_table(kind: str, base, param, build):
    key = (kind, id(base), param)
    hit = _DERIVED_TABLES.get(key)
    if hit is not None and hit[0] is base:
        return hit[1]
    if len(_DERIVED_TABLES) > 65536:
        _DERIVED_TABLES.clear()
    table = build()
    _DERIVED_TABLES[key] = (base, table)
    return table


def _clock_scale(mhz: float) -> float:
    """The ``V^2`` energy/power factor of clocking at ``mhz`` (1.0 at base)."""
    voltage = 0.7 + 0.3 * (mhz / BASE_CLOCK_MHZ)
    return voltage * voltage


def _apply_clock(hw: HwConfig, mhz) -> HwConfig:
    """Clock the platform at ``mhz``, with first-order voltage scaling.

    Timing closure at a higher frequency needs a higher supply voltage
    (affine V-f approximation, ``V/V0 = 0.7 + 0.3 f/f0``); dynamic
    energy per instruction and static power both scale with ``V^2``.  At
    the 50 MHz baseline the factors are exactly 1.0, so the axis leaves
    the paper's platform bit-identical.  This is what makes the clock a
    genuine design axis: raising it buys time but costs dynamic energy,
    lowering it saves dynamic energy but pays static leakage for longer.
    """
    mhz = float(mhz)
    scale = _clock_scale(mhz)
    dyn = _derived_table(
        "dyn", hw.dyn_energy_nj, scale,
        lambda: ScaledDynTable(hw.dyn_energy_nj, scale))
    return replace(
        hw, clock_hz=mhz * 1e6,
        static_power_w=hw.static_power_w * scale,
        window_trap_energy_nj=hw.window_trap_energy_nj * scale,
        dyn_energy_nj=dyn)


def _apply_fpu(hw: HwConfig, present) -> HwConfig:
    return replace(hw, core=replace(hw.core, has_fpu=bool(present)))


def _apply_nwindows(hw: HwConfig, nwindows) -> HwConfig:
    return replace(hw, core=replace(hw.core, nwindows=int(nwindows)))


def _apply_wait_states(hw: HwConfig, wait_states) -> HwConfig:
    ws = int(wait_states)
    table = _derived_table(
        "cycle", hw.cycle_table, ws,
        lambda: MappingProxyType(
            cycle_table_with_wait_states(hw.cycle_table, ws)))
    return replace(hw, cycle_table=table)


def _apply_block_size(hw: HwConfig, block_size) -> HwConfig:
    return replace(hw, core=replace(hw.core, block_size=int(block_size)))


# -- streamed-sweep lowering hooks (must mirror the apply functions) ---------

def _lower_clock(hw: HwConfig, values: tuple) -> AxisLowering:
    mhzs = [float(v) for v in values]
    return AxisLowering(
        dyn_scales=tuple(_clock_scale(mhz) for mhz in mhzs),
        clock_hz=tuple(mhz * 1e6 for mhz in mhzs))


def _lower_fpu(hw: HwConfig, values: tuple) -> AxisLowering:
    return AxisLowering(has_fpu=tuple(bool(v) for v in values))


def _lower_nwindows(hw: HwConfig, values: tuple) -> AxisLowering:
    return AxisLowering(nwindows=tuple(int(v) for v in values))


def _lower_wait_states(hw: HwConfig, values: tuple) -> AxisLowering:
    return AxisLowering(cycle_tables=tuple(
        _apply_wait_states(hw, v).cycle_table for v in values))


def _lower_block_size(hw: HwConfig, values: tuple) -> AxisLowering:
    return AxisLowering()   # simulator knob: NFPs and area are invariant


def _refine_float(a, b):
    """Float midpoint, or None when the interval is empty."""
    a, b = float(a), float(b)
    mid = (a + b) / 2.0
    return mid if min(a, b) < mid < max(a, b) else None


def _refine_int(a, b):
    """Integer midpoint strictly between ``a`` and ``b``, or None."""
    lo, hi = sorted((int(a), int(b)))
    mid = (lo + hi) // 2
    return mid if lo < mid < hi else None


AXES: dict[str, Axis] = {}


def register_axis(axis: Axis) -> Axis:
    """Add ``axis`` to the registry (later registrations may override)."""
    AXES[axis.name] = axis
    return axis


def get_axis(name: str) -> Axis:
    try:
        return AXES[name]
    except KeyError:
        raise ValueError(f"unknown design-space axis {name!r}; "
                         f"available: {sorted(AXES)}") from None


register_axis(Axis(
    name="clock_mhz", values=(25.0, 50.0, 80.0),
    apply=_apply_clock, label=lambda v: f"clk{v:g}", parse=float,
    doc="core clock frequency in MHz (time vs static energy)",
    lower=_lower_clock, refine=_refine_float))
register_axis(Axis(
    name="fpu", values=(False, True),
    apply=_apply_fpu, label=lambda v: "fpu" if v else "nofpu",
    parse=_parse_bool,
    doc="FPU presence (hard-float builds vs soft-float, Table IV)",
    lower=_lower_fpu))
register_axis(Axis(
    name="nwindows", values=(4, 8, 16),
    apply=_apply_nwindows, label=lambda v: f"w{v}", parse=int,
    doc="register windows (area vs window-trap overhead; 16 windows are "
        "over-provisioned for call-shallow kernels and come out "
        "Pareto-dominated)",
    lower=_lower_nwindows, refine=_refine_int))
register_axis(Axis(
    name="wait_states", values=(0, 2),
    apply=_apply_wait_states, label=lambda v: f"ws{v}", parse=int,
    doc="memory wait states per bus access (area vs memory latency)",
    lower=_lower_wait_states, refine=_refine_int))
register_axis(Axis(
    name="block_size", values=(8, 32),
    apply=_apply_block_size, label=lambda v: f"bs{v}", parse=int,
    doc="superblock fusion cap (simulator knob; NFPs are invariant)",
    lower=_lower_block_size))

#: The stock sweep: 3 x 2 x 3 x 2 = 36 candidate platforms.
DEFAULT_AXIS_NAMES = ("clock_mhz", "fpu", "nwindows", "wait_states")


@dataclass(frozen=True)
class SweepConfig:
    """One fully-applied candidate platform of a sweep."""

    name: str
    axis_values: tuple[tuple[str, object], ...]
    hw: HwConfig

    def value(self, axis_name: str, default=None):
        """The value this configuration holds on ``axis_name``."""
        for name, value in self.axis_values:
            if name == axis_name:
                return value
        return default


@dataclass(frozen=True)
class DesignSpace:
    """An ordered selection of axes with their sweep values."""

    axes: tuple[tuple[str, tuple], ...]

    def __post_init__(self) -> None:
        seen = set()
        for name, values in self.axes:
            get_axis(name)  # must exist
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            if name in seen:
                raise ValueError(f"axis {name!r} listed twice")
            seen.add(name)

    @classmethod
    def default(cls) -> "DesignSpace":
        """The stock multi-dimensional space (see :data:`DEFAULT_AXIS_NAMES`)."""
        return cls(tuple((name, get_axis(name).values)
                         for name in DEFAULT_AXIS_NAMES))

    @classmethod
    def single(cls, name: str, values: Sequence | None = None) -> "DesignSpace":
        """A one-axis space (used by presets such as the Table IV FPU sweep)."""
        axis = get_axis(name)
        return cls(((name, tuple(values if values is not None
                                 else axis.values)),))

    @classmethod
    def from_spec(cls, spec: str) -> "DesignSpace":
        """Parse ``"clock_mhz=25:50,fpu,nwindows=4:8"`` into a space.

        Comma-separated axis entries; each is either a bare registered
        axis name (its default values) or ``name=v1:v2:...`` with values
        parsed by the axis' own parser.
        """
        axes = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, eq, values_text = entry.partition("=")
            axis = get_axis(name.strip())
            if eq:
                values = tuple(axis.parse(v) for v in values_text.split(":"))
            else:
                values = axis.values
            axes.append((axis.name, values))
        if not axes:
            raise ValueError(f"empty design-space spec {spec!r}")
        return cls(tuple(axes))

    @property
    def size(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def configs(self, base: HwConfig | None = None) -> tuple[SweepConfig, ...]:
        """Every candidate platform, in deterministic product order."""
        return tuple(self.iter_configs(base))

    def iter_configs(self, base: HwConfig | None = None):
        """Candidate platforms one at a time, in the same product order.

        The streaming counterpart of :meth:`configs`: nothing is
        materialized, and axis applications are shared across product
        prefixes (the first axis applies once per value, not once per
        config) -- with the axes' derived-table memoization this makes
        iteration over million-config spaces cheap enough to price.
        """
        base = base if base is not None else HwConfig()
        axes = [(get_axis(name), values) for name, values in self.axes]
        names = self.axis_names

        def rec(i: int, hw: HwConfig, labels: tuple, combo: tuple):
            if i == len(axes):
                name = "-".join(labels)
                yield SweepConfig(
                    name=name,
                    axis_values=tuple(zip(names, combo)),
                    hw=replace(hw, name=name))
                return
            axis, values = axes[i]
            for value in values:
                yield from rec(i + 1, axis.apply(hw, value),
                               labels + (axis.label(value),),
                               combo + (value,))

        yield from rec(0, base, (), ())

    def config_for(self, combo: Sequence,
                   base: HwConfig | None = None) -> SweepConfig:
        """Build the single candidate holding ``combo``'s per-axis values.

        ``combo`` is aligned with :attr:`axes`; the values need not lie
        on the swept grids (the refinement pass evaluates midpoints this
        way), only in each axis' domain.
        """
        base = base if base is not None else HwConfig()
        if len(combo) != len(self.axes):
            raise ValueError(
                f"combo has {len(combo)} values for {len(self.axes)} axes")
        hw = base
        labels = []
        for (name, _), value in zip(self.axes, combo):
            axis = get_axis(name)
            hw = axis.apply(hw, value)
            labels.append(axis.label(value))
        name = "-".join(labels)
        return SweepConfig(
            name=name,
            axis_values=tuple(zip(self.axis_names, tuple(combo))),
            hw=replace(hw, name=name))
