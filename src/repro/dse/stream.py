"""The vectorized fast path of the streamed sweep (numpy only).

:func:`fast_sweep` prices a cartesian design space in flat index space:
every axis contributes small per-value cost tables (its
:class:`~repro.dse.axes.AxisLowering`), a chunk of configurations is
just ``arange(start, stop)`` decomposed into per-axis indices, and the
NFP combine is a handful of table gathers plus the exact expressions of
:meth:`repro.nfp.linear.BatchNfpEngine._evaluate_scalar` -- so a
million-config space never materializes a single ``HwConfig``.

Bit-compatibility is the design constraint, not an afterthought:

- cycle dot products are computed per distinct cycle table with
  :func:`repro.nfp.linear.cycle_dot` (exact integers) and combined in
  int64, so cycles and times are bit-identical to the per-point path;
- energy dot products reduce each build's *base* dynamic-energy row
  exactly once (:func:`repro.nfp.linear.energy_dots`) and rescale the
  four dots per DVFS value -- the same ``scale * dot`` the batch engine
  computes for a :class:`~repro.hw.config.ScaledDynTable` -- and the
  per-config combine mirrors the batch engine's expression order, so
  streamed and materialized reports come out byte-identical.

The streaming reduction keeps, per (workload, area) group, only the
mutually non-dominated ``(time, energy)`` entries as sorted arrays; a
chunk is folded in with one sort + vectorized dominance marking, and
:meth:`_Store.finalize` resolves cross-area dominance against a
cumulative staircase envelope -- the array twin of
:class:`repro.dse.pareto.ParetoAccumulator`, equal by construction (and
by the property tests).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.dse.axes import DesignSpace, get_axis
from repro.dse.engine import (
    AGGREGATE,
    DsePoint,
    WorkloadFront,
    _PointStream,
)
from repro.dse.workload import WorkloadPair
from repro.hw.area import memctrl_les, synthesize
from repro.hw.config import HwConfig
from repro.nfp.linear import ProfileVectors, cycle_dot, energy_dots


def fast_sweep(np, space: DesignSpace, pairs: Sequence[WorkloadPair],
               vectors: dict[tuple[str, str], ProfileVectors],
               base: HwConfig, *, chunk: int = 65536):
    """A :class:`_FastSweep` over ``space``, or None when not lowerable.

    The fast path declines (returning None, so the engine falls back to
    the generic chunked path with identical results) when an axis has
    no lowering hook, when two axes claim the same cost-model field, or
    when a cycle dot product overflows int64.
    """
    try:
        return _FastSweep(np, space, pairs, vectors, base, chunk)
    except _NotLowerable:
        return None
    except OverflowError:
        return None            # cycle dots past int64: generic path prices it


class _NotLowerable(Exception):
    """The space cannot be priced from factored per-axis tables."""


def _merge(np, held, cand):
    """Fold candidate entries into a group's 2-D non-dominated arrays.

    One lexicographic sort of old + new entries by ``(time, energy,
    seq)``, then vectorized strict-dominance marking: an entry loses
    iff a strictly-faster entry is no worse on energy (prefix minimum
    over earlier time runs) or an equally-fast one is strictly better
    (its run's first, i.e. minimal, energy).  Exact objective ties all
    survive, matching :func:`repro.dse.pareto.pareto_front`.
    """
    if held is None:
        merged = cand
    else:
        merged = {k: np.concatenate((held[k], cand[k])) for k in cand}
    order = np.lexsort((merged["seq"], merged["e"], merged["t"]))
    t = merged["t"][order]
    e = merged["e"][order]
    n = t.size
    tchange = np.empty(n, dtype=bool)
    tchange[0] = True
    np.not_equal(t[1:], t[:-1], out=tchange[1:])
    run_id = np.cumsum(tchange) - 1
    starts = np.flatnonzero(tchange)
    prefix = np.minimum.accumulate(e)
    prev = np.empty(starts.size, dtype=np.float64)
    prev[0] = np.inf
    prev[1:] = prefix[starts[1:] - 1]
    cover = prev[run_id]        # best energy at strictly smaller time
    first = e[starts][run_id]   # best energy at exactly this time
    kept = order[~((cover <= e) | (e > first))]
    return {k: v[kept] for k, v in merged.items()}


def _corners(np, t, e):
    """Strictly-improving corners of a time-sorted point set.

    The returned ``(t, e)`` pair is the pointwise-minimum staircase of
    the input: t ascending, e strictly decreasing.  Looking up the last
    corner with ``t' <= t`` therefore yields the best energy seen at
    any time ``<= t``.
    """
    if not e.size:
        return t, e
    prefix = np.minimum.accumulate(e)
    prev = np.empty(e.size, dtype=np.float64)
    prev[0] = np.inf
    prev[1:] = prefix[:-1]
    corner = e < prev
    return t[corner], e[corner]


def _knee_index(np, t, e, area) -> int:
    """Vectorized :func:`repro.dse.pareto.knee_point` over front arrays.

    Same normalisation, same accumulation order over ``(time, energy,
    area)``, same first-minimum tie-break -- bit-equal to the scalar
    implementation on the same front.
    """
    dist = np.zeros(t.size, dtype=np.float64)
    for arr in (t, e, area.astype(np.float64)):
        low = arr.min()
        span = arr.max() - low
        if span > 0:
            scaled = (arr - low) / span
            dist = dist + scaled * scaled
    return int(np.argmin(np.sqrt(dist)))


class _Store:
    """Per-workload streaming state over column arrays.

    ``groups`` maps an area value to the mutually 2-D non-dominated
    ``(time, energy)`` entries seen so far; ``best`` tracks
    per-objective running minima with the flat sequence number as
    tie-break.  New chunk entries accumulate in a per-group pending
    buffer and fold in only once they outweigh the held front
    (dominance filtering is order-free, so deferred folds keep the
    exact set); each entry is re-sorted O(log) times instead of once
    per chunk, and memory stays bounded by held + pending, both
    O(front + chunk).
    """

    __slots__ = ("np", "workload", "groups", "pending", "best", "count")

    # only what dominance needs travels through the merges; cycles and
    # fpu are recomputed from the flat seq for the few entries that
    # materialize into points (_FastSweep._reprice)
    _COLS = ("t", "e", "seq")

    def __init__(self, np, workload: str):
        self.np = np
        self.workload = workload
        self.groups: dict[int, dict] = {}
        self.pending: dict[int, list] = {}  # area -> unfolded chunk slices
        self.best: dict[str, tuple] = {}   # objective -> (value, seq, comp)
        self.count = 0

    def offer(self, cols: dict, grouping) -> None:
        np = self.np
        self.count += cols["t"].size
        for objective, arr in (("time_s", cols["t"]),
                               ("energy_j", cols["e"]),
                               ("area_les", cols["area"])):
            i = int(np.argmin(arr))     # first minimum = smallest seq
            value = arr[i].item()
            seq = int(cols["seq"][i])
            held = self.best.get(objective)
            if held is None or (value, seq) < (held[0], held[1]):
                self.best[objective] = (value, seq, _comp(cols, i))
        for area_value, sel in grouping:
            queue = self.pending.setdefault(area_value, [])
            queue.append({k: cols[k][sel] for k in self._COLS})
            held = self.groups.get(area_value)
            if held is None or (sum(c["t"].size for c in queue)
                                >= held["t"].size):
                self._fold(area_value)

    def _fold(self, area_value: int) -> None:
        queue = self.pending.get(area_value)
        if not queue:
            return
        np = self.np
        cand = (queue[0] if len(queue) == 1 else
                {k: np.concatenate([c[k] for c in queue]) for k in self._COLS})
        self.pending[area_value] = []
        self.groups[area_value] = _merge(
            np, self.groups.get(area_value), cand)

    def stored(self) -> int:
        """Entries currently held (the bounded-memory figure)."""
        return (sum(g["t"].size for g in self.groups.values())
                + sum(c["t"].size for q in self.pending.values()
                      for c in q))

    def finalize(self) -> dict:
        """The exact front as seq-sorted column arrays (incl. ``area``).

        Ascending area groups are filtered against the cumulative
        staircase envelope of all smaller-area entries (ties included:
        the smaller area is strictly better), exactly like
        :meth:`repro.dse.pareto.ParetoAccumulator.front`.
        """
        np = self.np
        for area_value in list(self.pending):
            self._fold(area_value)
        parts = []
        env_t = env_e = None
        for area_value in sorted(self.groups):
            group = self.groups[area_value]
            if env_t is not None and env_t.size:
                pos = np.searchsorted(env_t, group["t"], side="right") - 1
                covered = np.where(pos >= 0,
                                   env_e[np.maximum(pos, 0)], np.inf)
                keep = ~(covered <= group["e"])
                part = {k: v[keep] for k, v in group.items()}
            else:
                part = dict(group)
            part["area"] = np.full(part["t"].size, area_value,
                                   dtype=np.int64)
            parts.append(part)
            gt, ge = group["t"], group["e"]
            if env_t is None:
                st, se = gt, ge
            else:
                # both inputs are time-sorted (the envelope by
                # construction, the group by _merge), so one O(n)
                # two-array merge replaces a full sort; the order of
                # equal-time entries cannot change the pointwise
                # prefix-min envelope
                n = env_t.size + gt.size
                st = np.empty(n, dtype=np.float64)
                se = np.empty(n, dtype=np.float64)
                at = np.arange(env_t.size) + np.searchsorted(
                    gt, env_t, side="left")
                bt = np.arange(gt.size) + np.searchsorted(
                    env_t, gt, side="right")
                st[at] = env_t
                st[bt] = gt
                se[at] = env_e
                se[bt] = ge
            env_t, env_e = _corners(np, st, se)
        out = {k: np.concatenate([p[k] for p in parts])
               for k in parts[0]}
        order = np.argsort(out["seq"], kind="stable")
        return {k: v[order] for k, v in out.items()}


def _comp(cols: dict, i: int) -> tuple:
    """One entry's compact ``(seq, t, e, area, cycles, fpu)`` scalars."""
    return (int(cols["seq"][i]), float(cols["t"][i]), float(cols["e"][i]),
            int(cols["area"][i]), int(cols["cycles"][i]),
            bool(cols["fpu"][i]))


class _FastSweep:
    """The planned fast path: factored tables + chunked flat iteration."""

    def __init__(self, np, space: DesignSpace,
                 pairs: Sequence[WorkloadPair],
                 vectors: dict[tuple[str, str], ProfileVectors],
                 base: HwConfig, chunk: int):
        self.np = np
        self.space = space
        self.pairs = list(pairs)
        self.base = base
        self.chunk = max(1, chunk)
        self.size = space.size

        # -- axis geometry ---------------------------------------------------
        self.names = space.axis_names
        self.values = [tuple(values) for _, values in space.axes]
        self.labels = [tuple(get_axis(name).label(v) for v in values)
                       for (name, _), values in zip(space.axes, self.values)]
        self.nvals = [len(v) for v in self.values]
        strides = [1] * len(self.nvals)
        for j in range(len(self.nvals) - 2, -1, -1):
            strides[j] = strides[j + 1] * self.nvals[j + 1]
        self.strides = strides

        # -- role assignment from the axes' lowering hooks -------------------
        scale_axis = chz_axis = ws_axis = nw_axis = fpu_axis = None
        scales = clocks = cycle_tables = nw_values = fpu_values = None
        for j, (name, values) in enumerate(space.axes):
            axis = get_axis(name)
            if axis.lower is None:
                raise _NotLowerable(name)
            low = axis.lower(base, tuple(values))
            for field, held in (("dyn_scales", scales),
                                ("clock_hz", clocks),
                                ("cycle_tables", cycle_tables),
                                ("nwindows", nw_values),
                                ("has_fpu", fpu_values)):
                got = getattr(low, field)
                if got is None:
                    continue
                if held is not None or len(got) != len(values):
                    raise _NotLowerable(name)   # double claim / bad hook
            if low.dyn_scales is not None:
                scale_axis, scales = j, low.dyn_scales
            if low.clock_hz is not None:
                chz_axis, clocks = j, low.clock_hz
            if low.cycle_tables is not None:
                ws_axis, cycle_tables = j, low.cycle_tables
            if low.nwindows is not None:
                nw_axis, nw_values = j, low.nwindows
            if low.has_fpu is not None:
                fpu_axis, fpu_values = j, low.has_fpu
        self.axis_of = {"scale": scale_axis, "chz": chz_axis, "ws": ws_axis,
                        "nw": nw_axis, "fpu": fpu_axis}
        scales = scales if scales is not None else (1.0,)
        clocks = clocks if clocks is not None else (base.clock_hz,)
        cycle_tables = (cycle_tables if cycle_tables is not None
                        else (base.cycle_table,))
        nw_values = (nw_values if nw_values is not None
                     else (base.core.nwindows,))
        self.fpu_values = (tuple(fpu_values) if fpu_values is not None
                           else (base.core.has_fpu,))
        builds = sorted(set(self.fpu_values))

        # memory-interface area keys off the axis *named* wait_states,
        # exactly like the materialized _config_area_les
        self.mem_axis = None
        mem_values = (0,)
        for j, name in enumerate(self.names):
            if name == "wait_states":
                self.mem_axis = j
                mem_values = self.values[j]

        # -- per-value cost tables -------------------------------------------
        # scale-indexed scalars (DVFS axis): identical derivations to
        # _apply_clock, so every float matches the materialized path
        self.TRNJ = np.array([base.window_trap_energy_nj * s for s in scales],
                             dtype=np.float64)
        self.STATIC = np.array([base.static_power_w * s for s in scales],
                               dtype=np.float64)
        self.CYCSEC = np.array([1.0 / hz for hz in clocks], dtype=np.float64)
        self.AMP = base.jitter_amplitude
        self.UD = base.untaken_branch_discount
        self.EXTRA = base.untaken_branch_energy_factor - 1.0
        self.TRAP_CYC = base.window_trap_cycles

        self.MEM = np.array([memctrl_les(int(v)) for v in mem_values],
                            dtype=np.int64)
        self.CORE = np.array(
            [[synthesize(replace(base.core, nwindows=int(nw),
                                 has_fpu=bool(f))).total_les
              for f in self.fpu_values]
             for nw in nw_values], dtype=np.int64)

        # per-(workload, build) profile tables
        self.keys = [(pair.name, "float" if f else "fixed")
                     for pair in self.pairs for f in builds]
        self.RET: dict[tuple[str, str], int] = {}
        self.E: dict[tuple[str, str], object] = {}
        self.CYC: dict[tuple[str, str], object] = {}
        self.TRAPS: dict[tuple[str, str], object] = {}
        self.TRJC: dict[tuple[str, str], object] = {}
        self.TU: dict[tuple[str, str], int] = {}
        self.REFUND: dict[tuple[str, str], int] = {}
        basis = None
        base_dyn = None
        for key in self.keys:
            pv = vectors[key]
            if basis is None:
                basis = pv.basis
                base_dyn = [base.dyn_energy_nj[m] for m in basis]
            self.RET[key] = pv.retired
            self.TU[key] = pv.total_untaken
            self.REFUND[key] = pv.div_refund
            # one exact base-row reduction per build, rescaled per DVFS
            # value: the same ``scale * dot`` a BatchNfpEngine computes
            # for a ScaledDynTable, so every float matches the
            # materialized and generic paths bit for bit (a 1.0 scale
            # multiplies through unchanged under IEEE-754)
            base_dots = np.asarray(energy_dots(tuple(base_dyn), pv),
                                   dtype=np.float64)
            self.E[key] = (np.asarray(scales, dtype=np.float64)[:, None]
                           * base_dots[None, :])
            # raises OverflowError past int64 -> fast_sweep declines
            self.CYC[key] = np.array(
                [cycle_dot(tuple(table[m] for m in basis), pv)
                 for table in cycle_tables], dtype=np.int64)
            win = [pv.window_at(int(nw)) for nw in nw_values]
            self.TRAPS[key] = np.array([s + f for s, f, _ in win],
                                       dtype=np.int64)
            self.TRJC[key] = np.array([j for _, _, j in win],
                                      dtype=np.float64)
        self.AGG_RET = {
            "float" if f else "fixed":
                sum(self.RET[(pair.name, "float" if f else "fixed")]
                    for pair in self.pairs)
            for f in builds}

        self.stores = {name: _Store(np, name) for name in
                       [pair.name for pair in self.pairs] + [AGGREGATE]}

    # -- execution -----------------------------------------------------------

    def reset(self) -> None:
        """Fresh stores; the cost tables stay.

        A shard worker keeps one :class:`_FastSweep` per sweep context
        and prices several disjoint flat ranges through it, so the
        table construction above runs once per worker while the
        streaming state starts clean for every range.
        """
        self.stores = {name: _Store(self.np, name) for name in
                       [pair.name for pair in self.pairs] + [AGGREGATE]}

    def _axis_index(self, flat, role: str):
        """Per-config value index on the role's axis, or None when fixed."""
        j = self.axis_of[role]
        if j is None:
            return None
        return ((flat // self.strides[j]) % self.nvals[j]).astype(self.np.intp)

    def _evaluate_build(self, key, s_idx, c_idx, w_idx, n_idx):
        """One (workload, build) NFP combine over a chunk, in index space.

        The expressions mirror BatchNfpEngine._evaluate_scalar exactly
        (same grouping, same operand order), so every float matches the
        generic and materialized paths bit for bit.
        """
        edots = (self.E[key][s_idx] if s_idx is not None
                 else self.E[key][0])
        e1, e2, e3, e4 = (edots[..., 0], edots[..., 1],
                          edots[..., 2], edots[..., 3])
        cyc = self.CYC[key][w_idx] if w_idx is not None else self.CYC[key][0]
        traps = (self.TRAPS[key][n_idx] if n_idx is not None
                 else self.TRAPS[key][0])
        trapjc = (self.TRJC[key][n_idx] if n_idx is not None
                  else self.TRJC[key][0])
        trnj = self.TRNJ[s_idx] if s_idx is not None else self.TRNJ[0]
        static = self.STATIC[s_idx] if s_idx is not None else self.STATIC[0]
        cycsec = self.CYCSEC[c_idx] if c_idx is not None else self.CYCSEC[0]
        amp = self.AMP
        cycles = (cyc - self.TU[key] * self.UD - self.REFUND[key]
                  + traps * self.TRAP_CYC)
        dyn = ((e1 + amp * e2) + self.EXTRA * (e3 + amp * e4)
               + trnj * (traps + amp * trapjc))
        time_s = cycles.astype(self.np.float64) * cycsec
        energy = dyn * 1e-9 + static * time_s
        return time_s, energy, cycles

    def run(self, start: int = 0, stop: int | None = None) -> None:
        """Price flat indices ``[start, stop)`` chunk by chunk into the
        stores (the whole space by default; a contiguous shard range
        when the sharded sweep prices this space across workers)."""
        np = self.np
        stop = self.size if stop is None else min(stop, self.size)
        for cstart in range(start, stop, self.chunk):
            cstop = min(stop, cstart + self.chunk)
            flat = np.arange(cstart, cstop, dtype=np.int64)
            n = flat.size
            s_idx = self._axis_index(flat, "scale")
            c_idx = self._axis_index(flat, "chz")
            w_idx = self._axis_index(flat, "ws")
            n_idx = self._axis_index(flat, "nw")
            f_idx = self._axis_index(flat, "fpu")

            if f_idx is not None:
                fpu = np.asarray(self.fpu_values, dtype=bool)[f_idx]
            else:
                fpu = np.broadcast_to(np.asarray(self.fpu_values[0]), (n,))
            nw_i = n_idx if n_idx is not None else 0
            fpu_i = f_idx if f_idx is not None else 0
            area = self.CORE[nw_i, fpu_i]
            if self.mem_axis is not None:
                j = self.mem_axis
                m_idx = ((flat // self.strides[j])
                         % self.nvals[j]).astype(np.intp)
                area = area + self.MEM[m_idx]
            else:
                area = area + self.MEM[0]
            area = np.broadcast_to(np.asarray(area, dtype=np.int64), (n,))

            # one stable area grouping, shared by every store's fold
            order = np.argsort(area, kind="stable")
            sorted_area = area[order]
            bounds = np.flatnonzero(np.concatenate(
                ([True], sorted_area[1:] != sorted_area[:-1])))
            ends = np.concatenate((bounds[1:], [n]))
            grouping = [(int(sorted_area[b]), order[b:e])
                        for b, e in zip(bounds, ends)]

            builds = sorted(set(bool(v) for v in self.fpu_values))
            agg = None
            for pair in self.pairs:
                per_build = {}
                for f in builds:
                    key = (pair.name, "float" if f else "fixed")
                    per_build[f] = self._evaluate_build(
                        key, s_idx, c_idx, w_idx, n_idx)
                if len(per_build) == 2:
                    tf, ef, cf = per_build[True]
                    tx, ex, cx = per_build[False]
                    t = np.where(fpu, tf, tx)
                    e = np.where(fpu, ef, ex)
                    cycles = np.where(fpu, cf, cx)
                else:
                    t, e, cycles = per_build[builds[0]]
                cols = _chunk_cols(np, n, flat, t, e, area, cycles, fpu)
                self.stores[pair.name].offer(cols, grouping)
                if agg is None:
                    agg = (t, e, cycles)
                else:
                    # left-to-right, exactly like sum() over points
                    agg = (agg[0] + t, agg[1] + e, agg[2] + cycles)
            cols = _chunk_cols(np, n, flat, agg[0], agg[1], area,
                               agg[2], fpu)
            self.stores[AGGREGATE].offer(cols, grouping)

    # -- result extraction ---------------------------------------------------

    def _point(self, workload: str, comp: tuple) -> DsePoint:
        """Reconstruct the DsePoint of one stored entry from its flat seq."""
        seq, time_s, energy_j, area_les, cycles, fpu = comp
        indices = [(seq // self.strides[j]) % self.nvals[j]
                   for j in range(len(self.nvals))]
        build = "float" if fpu else "fixed"
        retired = (self.AGG_RET[build] if workload == AGGREGATE
                   else self.RET[(workload, build)])
        return DsePoint(
            config="-".join(self.labels[j][i]
                            for j, i in enumerate(indices)),
            axis_values=tuple(
                (name, self.values[j][i])
                for j, (name, i) in enumerate(zip(self.names, indices))),
            workload=workload,
            build=build,
            time_s=time_s,
            energy_j=energy_j,
            area_les=area_les,
            retired=retired,
            cycles=cycles,
        )

    def _reprice(self, workload: str, flat):
        """Vectorized ``(cycles, fpu)`` of flat indices, from scratch.

        The stores only carry what dominance needs (time, energy, seq);
        the cycle counts and build flags of the few entries that become
        :class:`DsePoint` objects are recomputed here through the exact
        expressions of :meth:`_evaluate_build` -- integer cycle math,
        so the result is identical to what the chunk pass produced.
        """
        np = self.np
        s_idx = self._axis_index(flat, "scale")
        c_idx = self._axis_index(flat, "chz")
        w_idx = self._axis_index(flat, "ws")
        n_idx = self._axis_index(flat, "nw")
        f_idx = self._axis_index(flat, "fpu")
        if f_idx is not None:
            fpu = np.asarray(self.fpu_values, dtype=bool)[f_idx]
        else:
            fpu = np.broadcast_to(np.asarray(self.fpu_values[0]),
                                  (flat.size,))
        builds = sorted(set(bool(v) for v in self.fpu_values))
        pairs = (self.pairs if workload == AGGREGATE
                 else [p for p in self.pairs if p.name == workload])
        total = None
        for pair in pairs:
            per_build = {}
            for f in builds:
                key = (pair.name, "float" if f else "fixed")
                per_build[f] = self._evaluate_build(
                    key, s_idx, c_idx, w_idx, n_idx)[2]
            if len(per_build) == 2:
                cycles = np.where(fpu, per_build[True], per_build[False])
            else:
                cycles = per_build[builds[0]]
            total = cycles if total is None else total + cycles
        return np.broadcast_to(np.asarray(total, dtype=np.int64),
                               (flat.size,)), fpu

    def _fin_comps(self, workload: str, fin: dict, idxs) -> list[tuple]:
        """Full comp tuples for selected finalized-front row indices."""
        np = self.np
        sel = np.asarray(list(idxs), dtype=np.int64)
        cycles, fpu = self._reprice(workload, fin["seq"][sel])
        return [(int(fin["seq"][i]), float(fin["t"][i]), float(fin["e"][i]),
                 int(fin["area"][i]), int(cycles[k]), bool(fpu[k]))
                for k, i in enumerate(sel)]

    def workload_front(self, workload: str,
                       front_cap: int | None) -> WorkloadFront:
        """Finalize one stream straight into a WorkloadFront."""
        store = self.stores[workload]
        fin = store.finalize()
        front_size = int(fin["t"].size)
        knee_i = _knee_index(self.np, fin["t"], fin["e"], fin["area"])
        limit = (front_size if front_cap is None
                 else min(front_cap, front_size))
        comps = self._fin_comps(workload, fin, [*range(limit), knee_i])
        best = {objective: self._point(workload, comp)
                for objective, (_, _, comp) in store.best.items()}
        return WorkloadFront(
            workload=workload,
            points=store.count,
            front_size=front_size,
            front=tuple(self._point(workload, comp)
                        for comp in comps[:limit]),
            knee=self._point(workload, comps[limit]),
            best_time=best["time_s"],
            best_energy=best["energy_j"],
            best_area=best["area_les"])

    def point_stream(self, workload: str) -> _PointStream:
        """Convert one stream into the point-based form refinement extends.

        Seeds a ParetoAccumulator with the exact front (in seq order) --
        sufficient, since any point dominated by a discarded entry is,
        by transitivity, dominated by a front member.
        """
        stream = _PointStream(workload)
        store = self.stores[workload]
        fin = store.finalize()
        for comp in self._fin_comps(workload, fin, range(fin["t"].size)):
            stream.acc.add(self._point(workload, comp))
        stream.count = store.count
        stream.best = {
            objective: (value, seq, self._point(workload, comp))
            for objective, (value, seq, comp) in store.best.items()}
        return stream


def _chunk_cols(np, n: int, flat, t, e, area, cycles, fpu) -> dict:
    """Normalize chunk columns to shape ``(n,)`` (scalars broadcast)."""
    return {
        "t": np.broadcast_to(np.asarray(t, dtype=np.float64), (n,)),
        "e": np.broadcast_to(np.asarray(e, dtype=np.float64), (n,)),
        "seq": flat,
        "cycles": np.broadcast_to(np.asarray(cycles, dtype=np.int64), (n,)),
        "fpu": np.broadcast_to(np.asarray(fpu, dtype=bool), (n,)),
        "area": area,
    }
