"""Canned design spaces: the paper's experiments as engine presets.

The FPU question of Section VI.D ("is the FPU worth its chip area?",
Table IV) is the original one-axis exploration; here it is expressed as
a single-axis :class:`~repro.dse.axes.DesignSpace` swept on the
estimation path, which is exactly what the pre-engine
``repro.nfp.dse.explore_fpu`` did -- the numbers are bit-identical.
"""

from __future__ import annotations

from typing import Sequence

from repro.dse.axes import DesignSpace, SweepConfig
from repro.dse.engine import DseGrid, sweep_estimated
from repro.dse.workload import WorkloadPair

#: Configuration names the FPU preset generates (fpu axis labels).
FPU_CONFIG = "fpu"
NOFPU_CONFIG = "nofpu"


def fpu_design_space() -> DesignSpace:
    """The Table IV space: one axis, FPU present or absent."""
    return DesignSpace.single("fpu", (True, False))


def explore_fpu_grid(estimator_fpu, estimator_nofpu,
                     workloads: Sequence[WorkloadPair],
                     budget: int) -> DseGrid:
    """Sweep the FPU axis on the estimation path (the Table IV preset).

    ``estimator_fpu``/``estimator_nofpu`` are the calibrated
    :class:`~repro.nfp.estimator.NFPEstimator` instances for the two
    platforms; each candidate runs the build matching its FPU bit, on the
    matching estimator -- the historical ``explore_fpu`` behaviour.
    """
    def estimator_for(config: SweepConfig):
        return estimator_fpu if config.hw.core.has_fpu else estimator_nofpu

    return sweep_estimated(fpu_design_space(), workloads, budget=budget,
                           estimator_for=estimator_for)
