"""Workloads as the design-space exploration consumes them.

A hardware configuration without an FPU cannot run hard-float code, so
every workload travels as a :class:`WorkloadPair` -- the same kernel in
its hard-float and soft-float builds -- and the sweep engine picks the
build that matches each candidate platform (:meth:`WorkloadPair.build_for`).

This module is the canonical home of :class:`WorkloadPair`;
:mod:`repro.nfp.dse` re-exports it for backwards compatibility.  Pairs
come from the workload registry: :func:`resolve_pairs` turns a
``repro dse --workloads`` filter (presets, families, name globs) into
the compiled pair list a sweep consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.vm.config import CoreConfig


@dataclass(frozen=True)
class WorkloadPair:
    """One workload in its two builds (hard-float and soft-float)."""

    name: str
    float_program: Program
    fixed_program: Program

    def build_for(self, core: CoreConfig) -> tuple[str, Program]:
        """The ``(tag, program)`` build that runs on ``core``."""
        if core.has_fpu:
            return "float", self.float_program
        return "fixed", self.fixed_program


@dataclass(frozen=True)
class PipelineProgram:
    """One build of a composed pipeline: weighted stage invocations.

    ``invocations`` holds ``(program, frames)`` in chain order -- each
    program is one (stage, frame class) invocation run as an independent
    standalone program, and ``frames`` is how many frames of the stream
    execute it.  The engine prices this as the exact sum of the
    per-invocation runs (:func:`repro.nfp.linear.compose_profiles`);
    nothing ever simulates the concatenated stream end to end except the
    parity oracle in the tests.
    """

    invocations: tuple[tuple[Program, int], ...]


@dataclass(frozen=True)
class PipelinePair:
    """A pipeline workload in its two builds (drop-in for WorkloadPair).

    ``build_for`` returns a :class:`PipelineProgram` instead of a single
    :class:`Program`; the sweep engine branches on that type in the one
    place it turns jobs into simulation tasks.
    """

    name: str
    float_invocations: tuple[tuple[Program, int], ...]
    fixed_invocations: tuple[tuple[Program, int], ...]

    def build_for(self, core: CoreConfig) -> tuple[str, PipelineProgram]:
        """The ``(tag, composed program)`` build that runs on ``core``."""
        if core.has_fpu:
            return "float", PipelineProgram(self.float_invocations)
        return "fixed", PipelineProgram(self.fixed_invocations)


def pipeline_parts(program: Program | PipelineProgram
                   ) -> tuple[tuple[Program, int], ...]:
    """``(program, weight)`` parts of one build, uniformly.

    A plain program is one part of weight 1; a composed pipeline is its
    weighted invocation list.  The one isinstance branch the sweep
    engine needs: everything downstream works on weighted part lists.
    """
    if isinstance(program, PipelineProgram):
        return program.invocations
    return ((program, 1),)


def resolve_pairs(workloads: str | None, scale) -> list[WorkloadPair]:
    """Pairs for a ``--workloads`` filter (default: the Table III preset).

    ``workloads`` is a comma-separated registry filter -- preset names,
    families, or globs over workload names (``img:*``); ``None`` selects
    the paper's evaluated set.  See :func:`repro.workloads.select`.
    """
    # deferred: the registry sits above this module (it compiles pairs)
    from repro.workloads import select_pairs
    return select_pairs(workloads if workloads else "table3", scale)
