"""Process-parallel streamed sweeps: shard, price, merge exactly.

The flat cartesian index space ``[0, N)`` is split into contiguous
shard ranges; each shard is priced by a worker process running the
exact serial machinery (the vectorized fast path when it applies, the
generic :class:`~repro.nfp.linear.BatchNfpEngine` chunk loop when it
declines) and ships back only its compact per-workload reduction:
survivor objective columns plus *global* flat sequence numbers, the
per-objective minima and the offer count -- never raw points.  The
parent folds the shard fronts through the fast path's vectorized
staircase machinery (:func:`_merge_front_columns`; the
:class:`~repro.dse.pareto.ParetoAccumulator` twin when numpy is
absent).  Pareto reduction is associative -- ``front(A | B) ==
front(front(A) | front(B))``, because a point dominated within its
shard is dominated globally -- so the merged front is *exactly* the
serial front; the few sequence numbers
that materialize into :class:`~repro.dse.engine.DsePoint` objects are
re-priced through the same batch evaluator the serial generic path
uses, and the result feeds the same summary / refinement / report code
as ``--shards 1``, so every text/csv/json report is byte-identical.

Shard tasks run through the resilient pool
(:class:`~repro.runner.resilience.ResilientExecutor` via
:meth:`~repro.runner.pool.ExperimentRunner.run_raw`), so retries,
stall watchdogs, pool rebuilds, the serial downgrade and deterministic
chaos injection all apply unchanged.  The profile count vectors and
the design space a worker needs are published once per sweep in
:data:`_CONTEXTS` and inherited by forked pool workers -- tasks carry
only a content digest.  When the platform spawns instead of forking,
the pickled context (profile count vectors included) travels once
through ``multiprocessing.shared_memory`` and is attached, unpickled
and cached once per worker, with an inline-payload fallback when no
shared-memory segment can be created -- either way shard startup cost
is O(1) per worker, not per task.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.dse.axes import DesignSpace
from repro.dse.engine import (
    AGGREGATE,
    DsePoint,
    StreamSummary,
    WorkloadFront,
    _PointStream,
    _priced_points,
    _refine_pass,
)
from repro.dse.pareto import ParetoAccumulator, knee_point
from repro.dse.workload import WorkloadPair
from repro.hw.config import HwConfig

if TYPE_CHECKING:   # import cycle: repro.nfp's package init reaches back here
    from repro.nfp.linear import ProfileVectors
from repro.runner import ExperimentRunner
from repro.runner.resilience import TaskFailure, is_failure
from repro.runner.tasks import SCHEMA_VERSION

#: A shard must be worth a process round-trip: in auto mode each extra
#: worker has to bring at least one default chunk of configurations,
#: otherwise fork + merge overhead outweighs the pricing and serial
#: wins (tiny grids stay on the ``--shards 1`` path).
MIN_SHARD_CONFIGS = 65536


def resolve_shards(shards: int | None, size: int) -> int:
    """The effective shard count for a space of ``size`` configurations.

    An explicit request is honoured (clamped so no shard is empty); in
    auto mode (``None``) the count derives from the worker budget
    (``REPRO_WORKERS`` via :func:`~repro.runner.pool.default_workers`)
    but never exceeds one shard per :data:`MIN_SHARD_CONFIGS`
    configurations, so small grids keep today's serial path.
    """
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return max(1, min(shards, size))
    from repro.runner.pool import default_workers
    return max(1, min(default_workers(), size // MIN_SHARD_CONFIGS))


@dataclass(frozen=True)
class ShardContext:
    """Everything a worker needs to price any flat range of one sweep."""

    space: DesignSpace
    base: HwConfig
    pair_names: tuple[str, ...]
    vectors: dict[tuple[str, str], ProfileVectors]
    chunk: int


@dataclass(frozen=True)
class ShardTask:
    """One contiguous flat range ``[start, stop)`` of a published sweep.

    Dispatched by :func:`repro.runner.tasks.run_task` on its ``mode``,
    so the resilient executor treats it exactly like a simulation task
    (chaos faults, retries, terminal :class:`TaskFailure` records).
    """

    digest: str                     #: content digest of the ShardContext
    start: int
    stop: int
    transport: tuple | None = None  #: None: fork-inherited registry only
    mode: str = "shard"


@dataclass(frozen=True)
class _NamedPair:
    """A workload stand-in: shard pricing only ever reads ``pair.name``
    (programs were already profiled in the parent), so workers never
    deserialize program images."""

    name: str


#: Parent-published contexts, inherited by forked pool workers.
_CONTEXTS: dict[str, ShardContext] = {}
#: Per-process pricers (tables built once per worker per context).
_PRICERS: dict[str, "_ShardPricer"] = {}


def publish_context(ctx: ShardContext) -> tuple[str, bytes]:
    """Register ``ctx`` for fork inheritance; returns (digest, pickle)."""
    blob = pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    _CONTEXTS[digest] = ctx
    return digest, blob


def unpublish_context(digest: str) -> None:
    _CONTEXTS.pop(digest, None)
    _PRICERS.pop(digest, None)


def shard_task_key(digest: str, start: int, stop: int) -> str:
    """Deterministic task key (retry backoff + chaos rolls hang off it)."""
    blob = json.dumps({"v": SCHEMA_VERSION, "mode": "shard",
                       "context": digest, "start": start, "stop": stop},
                      sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- context transport for non-fork platforms ---------------------------------

def _shm_export(blob: bytes):
    """``(segment, transport)`` with ``blob`` in shared memory, or None."""
    try:
        from multiprocessing import shared_memory
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(1, len(blob)))
        segment.buf[:len(blob)] = blob
        return segment, ("shm", segment.name, len(blob))
    except (ImportError, OSError):
        return None


def _shm_read(name: str, size: int) -> bytes:
    from multiprocessing import shared_memory
    segment = shared_memory.SharedMemory(name=name)
    try:
        return bytes(segment.buf[:size])
    finally:
        segment.close()


def _load_context(transport: tuple | None) -> ShardContext:
    if transport is None:
        raise RuntimeError(
            "shard context is not published in this process and the task "
            "carries no transport")
    kind = transport[0]
    if kind == "shm":
        blob = _shm_read(transport[1], transport[2])
    else:
        blob = transport[1]
    return pickle.loads(blob)


# -- worker side --------------------------------------------------------------

def run_shard_task(task: ShardTask) -> dict:
    """Pool-worker entry: price one flat range of the published sweep."""
    pricer = _PRICERS.get(task.digest)
    if pricer is None:
        ctx = _CONTEXTS.get(task.digest)
        if ctx is None:
            ctx = _CONTEXTS[task.digest] = _load_context(task.transport)
        pricer = _PRICERS[task.digest] = _ShardPricer(ctx)
    return pricer.price(task.start, task.stop)


class _ShardPricer:
    """Prices flat ranges of one context; tables built once per worker."""

    def __init__(self, ctx: ShardContext):
        self.ctx = ctx
        from repro.nfp.linear import numpy_or_none   # deferred, see above
        self.pairs = [_NamedPair(name) for name in ctx.pair_names]
        self.fast = None
        np = numpy_or_none()
        if np is not None:
            from repro.dse.stream import fast_sweep
            self.fast = fast_sweep(np, ctx.space, self.pairs, ctx.vectors,
                                   ctx.base, chunk=ctx.chunk)
        self.strides = _strides(ctx.space)

    def price(self, start: int, stop: int) -> dict:
        if self.fast is not None:
            self.fast.reset()
            self.fast.run(start, stop)
            shard = {workload: _export_store(store)
                     for workload, store in self.fast.stores.items()}
        else:
            shard = self._price_generic(start, stop)
        return {"shard": shard}

    def _price_generic(self, start: int, stop: int) -> dict:
        """The declined-lowering twin: explicit configs, same bits."""
        from repro.dse.engine import _price_configs
        ctx = self.ctx
        streams = {name: _PointStream(name)
                   for name in list(ctx.pair_names) + [AGGREGATE]}
        chunk = max(1, ctx.chunk)
        for cstart in range(start, stop, chunk):
            cstop = min(stop, cstart + chunk)
            configs = [ctx.space.config_for(
                _combo_at(ctx.space, self.strides, flat), ctx.base)
                for flat in range(cstart, cstop)]
            _price_configs(configs, self.pairs, ctx.vectors, cstart, streams)
        out = {}
        for name, stream in streams.items():
            entries = stream.acc.front_entries()
            out[name] = {
                "count": stream.count,
                "best": {objective: [value, seq] for objective,
                         (value, seq, _point) in stream.best.items()},
                "front": {
                    "t": [point.time_s for _, point in entries],
                    "e": [point.energy_j for _, point in entries],
                    "area": [point.area_les for _, point in entries],
                    # one accumulator offer per config in flat order, so
                    # the local arrival index is the global offset
                    "seq": [start + local for local, _ in entries],
                },
            }
        return out


def _export_store(store) -> dict:
    """One fast-path store as front columns (global seqs, exact floats).

    The columns stay numpy arrays: they pickle as flat binary buffers
    (fronts over near-continuous axes reach 10^5..10^6 survivors, and
    a per-element ``tolist`` round-trip would dominate the shard's
    wall time), and the parent-side merge consumes arrays directly.
    """
    fin = store.finalize()
    return {
        "count": int(store.count),
        "best": {objective: [value, seq] for objective,
                 (value, seq, _comp) in store.best.items()},
        "front": {k: fin[k] for k in ("t", "e", "area", "seq")},
    }


# -- flat-index geometry ------------------------------------------------------

def _strides(space: DesignSpace) -> list[int]:
    """Row-major strides of the cartesian space (last axis fastest),
    matching both ``DesignSpace.iter_configs`` order and the fast
    path's decomposition."""
    nvals = [len(values) for _, values in space.axes]
    strides = [1] * len(nvals)
    for j in range(len(nvals) - 2, -1, -1):
        strides[j] = strides[j + 1] * nvals[j + 1]
    return strides


def _combo_at(space: DesignSpace, strides: Sequence[int],
              flat: int) -> tuple:
    """The axis-value combination at flat index ``flat``."""
    return tuple(values[(flat // stride) % len(values)]
                 for (_, values), stride in zip(space.axes, strides))


# -- parent-side merge --------------------------------------------------------

def _entry_objectives(entry: tuple) -> tuple[float, float, float]:
    """``(seq, (t, e, area))`` -> the minimised objective vector."""
    t, e, area = entry[1]
    return (t, e, float(area))


def merge_front_entries(entry_lists: Sequence[Sequence[tuple]]) -> list:
    """Exact global front of per-shard fronts, in global seq order.

    Each inner list holds one shard's survivors as ``(seq, (t, e,
    area))`` with globally unique seqs.  Dominance is resolved through
    the same :class:`ParetoAccumulator` staircases the serial paths
    use, fed in ascending seq order so arrival-order tie semantics
    (exact duplicates all survive) match the serial sweep exactly --
    the shard-split property test pins this against the single-pass
    front for arbitrary splits.

    This is the reference merge (and the pure-python fallback):
    production-sized fronts go through the vectorized column twin
    (:func:`_merge_front_columns`) instead, whose equality to this
    definition the property tests also pin.
    """
    acc = ParetoAccumulator(key=_entry_objectives)
    for entry in sorted((entry for entries in entry_lists
                         for entry in entries), key=lambda e: e[0]):
        acc.add(entry)
    return acc.front()


def _merge_front_columns(shard_fronts: Sequence[dict]) -> dict:
    """Exact merged front of per-shard column fronts, seq-sorted.

    Vectorized through the fast path's :class:`~repro.dse.stream._Store`
    when numpy is available: each shard's survivors are injected as
    pre-grouped pending slices and one ``finalize`` resolves dominance
    with array sorts -- the accumulator twin, equal by construction
    (fronts over near-continuous axes hold 10^5..10^6 survivors, where
    a per-entry staircase insert loop would go quadratic).  Returns
    numpy column arrays on that path (a per-element list round-trip
    over such fronts would rival the merge itself); the pure-python
    fallback returns plain-list columns.  Consumers go through
    :func:`_seq_ints` where python ints are required.
    """
    from repro.nfp.linear import numpy_or_none   # deferred, see above
    np = numpy_or_none()
    if np is None:
        entries = merge_front_entries([
            list(zip(front["seq"],
                     zip(front["t"], front["e"], front["area"])))
            for front in shard_fronts])
        return {
            "t": [obj[0] for _, obj in entries],
            "e": [obj[1] for _, obj in entries],
            "area": [obj[2] for _, obj in entries],
            "seq": [seq for seq, _ in entries],
        }
    from repro.dse.stream import _Store
    store = _Store(np, "merge")
    for front in shard_fronts:
        area = np.asarray(front["area"], dtype=np.int64)
        if not area.size:
            continue
        cols = {"t": np.asarray(front["t"], dtype=np.float64),
                "e": np.asarray(front["e"], dtype=np.float64),
                "seq": np.asarray(front["seq"], dtype=np.int64)}
        order = np.argsort(area, kind="stable")
        sorted_area = area[order]
        bounds = np.flatnonzero(np.concatenate(
            ([True], sorted_area[1:] != sorted_area[:-1])))
        ends = np.concatenate((bounds[1:], [area.size]))
        for b, e in zip(bounds, ends):
            sel = order[b:e]
            store.pending.setdefault(int(sorted_area[b]), []).append(
                {k: v[sel] for k, v in cols.items()})
    if not store.pending:
        return {"t": np.zeros(0), "e": np.zeros(0),
                "area": np.zeros(0, dtype=np.int64),
                "seq": np.zeros(0, dtype=np.int64)}
    return store.finalize()


def _seq_ints(seqs) -> list[int]:
    """Plain-int list view of a merged ``seq`` column (array or list)."""
    return seqs.tolist() if hasattr(seqs, "tolist") else list(seqs)


def _front_knee_seq(front: dict) -> int:
    """The knee's flat seq over merged front columns.

    Vectorized through :func:`~repro.dse.stream._knee_index` when
    numpy is available -- documented bit-equal to the scalar
    :func:`knee_point` on the same front, which is the fallback.
    """
    from repro.nfp.linear import numpy_or_none   # deferred, see above
    np = numpy_or_none()
    if np is not None:
        from repro.dse.stream import _knee_index
        i = _knee_index(np, np.asarray(front["t"], dtype=np.float64),
                        np.asarray(front["e"], dtype=np.float64),
                        np.asarray(front["area"], dtype=np.int64))
        return int(front["seq"][i])
    entries = list(zip(front["seq"],
                       zip(front["t"], front["e"], front["area"])))
    return knee_point(entries, key=_entry_objectives)[0]


def _merge_payloads(payloads: Sequence[dict]) -> dict[str, dict]:
    """Fold shard payloads into per-workload count/best/front state."""
    counts: dict[str, int] = {}
    bests: dict[str, dict[str, tuple]] = {}
    fronts: dict[str, list[dict]] = {}
    for payload in payloads:
        for workload, data in payload["shard"].items():
            counts[workload] = counts.get(workload, 0) + data["count"]
            best = bests.setdefault(workload, {})
            for objective, (value, seq) in data["best"].items():
                held = best.get(objective)
                if held is None or (value, seq) < held:
                    best[objective] = (value, seq)
            fronts.setdefault(workload, []).append(data["front"])
    return {workload: {
                "count": counts[workload],
                "best": bests[workload],
                "front": _merge_front_columns(fronts[workload]),
            } for workload in counts}


def _materialize(space: DesignSpace, pairs: Sequence[WorkloadPair],
                 vectors: dict, base: HwConfig,
                 seqs: Sequence[int]) -> dict[tuple[int, str], DsePoint]:
    """``(seq, workload) -> DsePoint`` for the flat indices in ``seqs``.

    Reconstructs each configuration from its flat index (identical
    naming and axis values to ``iter_configs``) and prices the batch
    through the exact generic evaluator, so materialized points carry
    the same bits as every serial path.
    """
    seqs = sorted(set(seqs))
    if not seqs:
        return {}
    strides = _strides(space)
    configs = [space.config_for(_combo_at(space, strides, seq), base)
               for seq in seqs]
    points: dict[tuple[int, str], DsePoint] = {}
    for i, workload, point in _priced_points(configs, pairs, vectors, 0):
        points[(seqs[i], workload)] = point
    return points


# -- orchestration ------------------------------------------------------------

def sweep_shards(space: DesignSpace, pairs: Sequence[WorkloadPair],
                 vectors: dict, base: HwConfig, runner: ExperimentRunner,
                 *, chunk: int, shards: int, refine: int,
                 front_cap: int | None) -> StreamSummary:
    """The sharded body of :func:`~repro.dse.engine.sweep_streamed`.

    Profiles were already collected by the caller; this prices the
    space across ``shards`` pool tasks, merges the shard fronts
    exactly, and finishes (materialization, knee, refinement, summary)
    identically to the serial path.
    """
    size = space.size
    ctx = ShardContext(space=space, base=base,
                       pair_names=tuple(pair.name for pair in pairs),
                       vectors=dict(vectors), chunk=chunk)
    digest, blob = publish_context(ctx)
    segment = transport = None
    if multiprocessing.get_start_method() != "fork":
        exported = _shm_export(blob)
        if exported is not None:
            segment, transport = exported
        else:
            transport = ("pickle", blob)
    bounds = [size * i // shards for i in range(shards + 1)]
    tasks = [ShardTask(digest=digest, start=lo, stop=hi,
                       transport=transport)
             for lo, hi in zip(bounds, bounds[1:]) if hi > lo]
    keys = [shard_task_key(digest, task.start, task.stop) for task in tasks]
    try:
        payloads = runner.run_raw(tasks, keys)
    finally:
        unpublish_context(digest)
        if segment is not None:
            segment.close()
            segment.unlink()
    for task, payload in zip(tasks, payloads):
        if is_failure(payload):
            failure = TaskFailure.from_payload(payload)
            raise RuntimeError(
                f"shard [{task.start}, {task.stop}) failed after "
                f"{failure.attempts} attempts: {failure.error}")
    merged = _merge_payloads(payloads)
    workload_names = [pair.name for pair in pairs]

    if not refine:
        # mirror the serial fast path: only the capped front, the knee
        # and the per-objective winners ever materialize into points
        need: set[int] = set()
        knee_seqs: dict[str, int] = {}
        limits: dict[str, int] = {}
        for workload in workload_names + [AGGREGATE]:
            slot = merged[workload]
            seqs = slot["front"]["seq"]
            limit = (len(seqs) if front_cap is None
                     else min(front_cap, len(seqs)))
            limits[workload] = limit
            knee_seqs[workload] = _front_knee_seq(slot["front"])
            need.update(_seq_ints(seqs[:limit]))
            need.add(knee_seqs[workload])
            need.update(seq for _, seq in slot["best"].values())
        points = _materialize(space, pairs, vectors, base, sorted(need))

        def build(workload: str) -> WorkloadFront:
            slot = merged[workload]
            seqs = slot["front"]["seq"]
            best = {objective: points[(seq, workload)]
                    for objective, (_, seq) in slot["best"].items()}
            return WorkloadFront(
                workload=workload,
                points=slot["count"],
                front_size=len(seqs),
                front=tuple(points[(seq, workload)]
                            for seq in _seq_ints(seqs[:limits[workload]])),
                knee=points[(knee_seqs[workload], workload)],
                best_time=best["time_s"],
                best_energy=best["energy_j"],
                best_area=best["area_les"])

        return StreamSummary(
            axis_names=space.axis_names,
            workloads=tuple(workload_names),
            configs=size,
            space_size=size,
            refined=0,
            front_cap=front_cap,
            aggregate=build(AGGREGATE),
            per_workload=tuple(build(name) for name in workload_names),
        )

    # refinement extends point streams, so seed them with the exact
    # merged fronts (sufficient by transitivity: anything dominated by
    # a discarded entry is dominated by a front member), exactly like
    # the serial fast path's point_stream conversion
    need = set()
    for workload in workload_names + [AGGREGATE]:
        slot = merged[workload]
        need.update(_seq_ints(slot["front"]["seq"]))
        need.update(seq for _, seq in slot["best"].values())
    points = _materialize(space, pairs, vectors, base, sorted(need))
    streams: dict[str, _PointStream] = {}
    for workload in workload_names + [AGGREGATE]:
        slot = merged[workload]
        stream = _PointStream(workload)
        for seq in _seq_ints(slot["front"]["seq"]):
            stream.acc.add(points[(seq, workload)])
        stream.count = slot["count"]
        stream.best = {
            objective: (value, seq, points[(seq, workload)])
            for objective, (value, seq) in slot["best"].items()}
        streams[workload] = stream
    refined = _refine_pass(space, pairs, vectors, base, streams,
                           rounds=refine, start_seq=size)
    return StreamSummary(
        axis_names=space.axis_names,
        workloads=tuple(workload_names),
        configs=size + refined,
        space_size=size,
        refined=refined,
        front_cap=front_cap,
        aggregate=streams[AGGREGATE].finalize(front_cap),
        per_workload=tuple(streams[name].finalize(front_cap)
                           for name in workload_names),
    )
