"""Multi-dimensional hardware design-space exploration.

The NFP model exists to answer design questions; this package turns the
reproduction into the exploration tool the paper motivates.  A
:class:`DesignSpace` (an ordered selection of registered axes -- clock
frequency, FPU presence, register windows, memory wait states, ...) is
swept across the workload suite through the cached parallel
:class:`~repro.runner.ExperimentRunner`; the resulting :class:`DseGrid`
is classified into Pareto fronts over (time, energy, area) and rendered
as text, CSV or JSON (:class:`SweepReport`).

Entry points::

    python -m repro dse --scale smoke              # stock 24-config sweep
    python -m repro dse --axes clock_mhz,fpu       # custom space
"""

from repro.dse.axes import (
    AXES,
    DEFAULT_AXIS_NAMES,
    Axis,
    AxisLowering,
    DesignSpace,
    SweepConfig,
    get_axis,
    register_axis,
)
from repro.dse.engine import (
    AGGREGATE,
    OBJECTIVES,
    DseGrid,
    DsePoint,
    FailedCell,
    StreamSummary,
    SweepInterrupted,
    WorkloadFront,
    sweep,
    sweep_checkpointed,
    sweep_estimated,
    sweep_profiled,
    sweep_streamed,
)
from repro.dse.pareto import (
    ParetoAccumulator,
    classify,
    dominates,
    knee_point,
    pareto_front,
)
from repro.dse.presets import explore_fpu_grid, fpu_design_space
from repro.dse.report import StreamReport, SweepReport
from repro.dse.workload import WorkloadPair, resolve_pairs

__all__ = [
    "AGGREGATE",
    "AXES",
    "Axis",
    "AxisLowering",
    "DEFAULT_AXIS_NAMES",
    "DesignSpace",
    "DseGrid",
    "DsePoint",
    "FailedCell",
    "OBJECTIVES",
    "ParetoAccumulator",
    "StreamReport",
    "StreamSummary",
    "SweepConfig",
    "SweepInterrupted",
    "SweepReport",
    "WorkloadFront",
    "WorkloadPair",
    "classify",
    "dominates",
    "explore_fpu_grid",
    "fpu_design_space",
    "get_axis",
    "knee_point",
    "pareto_front",
    "register_axis",
    "resolve_pairs",
    "sweep",
    "sweep_checkpointed",
    "sweep_estimated",
    "sweep_profiled",
    "sweep_streamed",
]
