"""Pareto dominance over non-functional objective vectors.

All objectives are minimised (time, energy, area).  The helpers are
deliberately generic -- they act on items through a ``key`` function that
returns an objective tuple -- so per-workload fronts, aggregate fronts
and tests all share one dominance definition.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Callable, Sequence, TypeVar

Item = TypeVar("Item")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere.

    Dominance is irreflexive and antisymmetric: no vector dominates
    itself, and ``dominates(a, b)`` and ``dominates(b, a)`` can never both
    hold (the property tests pin this down).
    """
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def pareto_front(items: Sequence[Item],
                 key: Callable[[Item], Sequence[float]] = lambda it: it
                 ) -> list[Item]:
    """The non-dominated subset of ``items``, in original order.

    Items with identical objective vectors do not dominate each other, so
    exact ties all stay on the front (the sweep's ``block_size`` axis
    produces such ties by design).
    """
    return [item for item, on_front in zip(items, classify(items, key))
            if on_front]


def knee_point(items: Sequence[Item],
               key: Callable[[Item], Sequence[float]] = lambda it: it
               ) -> Item:
    """The balanced pick: minimal normalised distance to the ideal point.

    Each objective is scaled to ``[0, 1]`` over ``items`` (constant
    objectives contribute zero) and the item closest to the all-zero
    ideal in Euclidean distance wins; ties break to the earliest item,
    keeping the choice deterministic.
    """
    if not items:
        raise ValueError("knee_point of an empty set")
    objectives = [tuple(key(item)) for item in items]
    dims = len(objectives[0])
    lows = [min(obj[d] for obj in objectives) for d in range(dims)]
    highs = [max(obj[d] for obj in objectives) for d in range(dims)]
    best_index = 0
    best_dist = math.inf
    for i, obj in enumerate(objectives):
        dist = 0.0
        for d in range(dims):
            span = highs[d] - lows[d]
            if span > 0:
                scaled = (obj[d] - lows[d]) / span
                dist += scaled * scaled
        dist = math.sqrt(dist)
        if dist < best_dist:
            best_dist = dist
            best_index = i
    return items[best_index]


def classify(items: Sequence[Item],
             key: Callable[[Item], Sequence[float]] = lambda it: it
             ) -> list[bool]:
    """Per-item non-dominated flags (aligned with ``items``).

    For the 2- and 3-objective vectors the sweep produces this runs in
    O(n log n) through the :class:`ParetoAccumulator` staircases instead
    of the O(n^2) pairwise definition; exact ties keep their flags (tied
    vectors never dominate each other), and the property tests pin the
    equivalence against the quadratic definition.  Other objective
    arities fall back to the pairwise scan.
    """
    objectives = [tuple(key(item)) for item in items]
    if not objectives:
        return []
    dims = len(objectives[0])
    if dims not in (2, 3) or any(len(obj) != dims for obj in objectives):
        return _classify_quadratic(objectives)
    acc = ParetoAccumulator()
    for obj in objectives:
        acc.add(obj)
    on_front = bytearray(len(objectives))
    for seq, _ in acc.front_entries():
        on_front[seq] = 1
    return [bool(flag) for flag in on_front]


def _classify_quadratic(objectives: list[tuple]) -> list[bool]:
    """The pairwise O(n^2) dominance scan (reference definition)."""
    return [not any(dominates(objectives[j], objectives[i])
                    for j in range(len(objectives)) if j != i)
            for i in range(len(objectives))]


def _envelope_insert(xs: list, ys: list, x, y) -> None:
    """Insert ``(x, y)`` into a lower-left staircase envelope.

    ``xs`` strictly increasing, ``ys`` strictly decreasing; after the
    insert, ``ys[bisect_right(xs, q) - 1]`` is ``min(y' : x' <= q)`` for
    any query ``q`` -- the structure the streaming cross-group filter
    queries in logarithmic time.
    """
    pos = bisect_right(xs, x) - 1
    if pos >= 0 and ys[pos] <= y:
        return                      # an existing corner already covers it
    lo = bisect_left(xs, x)
    hi = lo
    while hi < len(xs) and ys[hi] >= y:
        hi += 1
    if hi > lo:
        del xs[lo:hi]
        del ys[lo:hi]
    xs.insert(lo, x)
    ys.insert(lo, y)


class ParetoAccumulator:
    """Streaming Pareto front: add points one by one, bounded memory.

    The online counterpart of :func:`pareto_front` for 2- or 3-objective
    minimisation.  Points are grouped by their objective tail (for the
    sweep's ``(time, energy, area)`` vectors: by area, which takes few
    distinct values across a grid); each group maintains its 2-D
    non-dominated set as a sorted staircase, so an arriving point costs
    one binary search plus amortised O(1) removals -- never a pass over
    everything seen.  Memory holds only the union of per-group 2-D
    fronts (a superset of the true front, far below the full grid).

    :meth:`front` resolves cross-group dominance exactly (ascending
    tails against a cumulative staircase envelope) and returns survivors
    in arrival order -- element-for-element equal to
    ``pareto_front(all_points_in_arrival_order)``, including duplicate
    and tied vectors (the property tests pin the equivalence down).
    """

    __slots__ = ("_key", "_groups", "_seen", "_stored", "_resolved")

    def __init__(self, key: Callable[[Item], Sequence[float]] = lambda it: it):
        self._key = key
        # tail -> [xs, ys, payload-lists]; staircase per tail value
        self._groups: dict[tuple, list] = {}
        self._seen = 0
        self._stored = 0
        # cached front_entries(); a False add leaves the staircases
        # untouched (the point is definitively off the front), so only
        # accepted adds invalidate -- the refinement loop's knee reads
        # between rejected offers then cost nothing
        self._resolved: list[tuple[int, Item]] | None = []

    def __len__(self) -> int:
        """Entries currently stored (the bounded-memory figure)."""
        return self._stored

    @property
    def seen(self) -> int:
        """Points offered so far (stored or rejected)."""
        return self._seen

    def add(self, item: Item) -> bool:
        """Offer one point; False when already dominated within its group.

        A False return is definitive (the point is not on the front); a
        True return is provisional -- a later arrival or a smaller-tail
        group may still dominate it, which :meth:`front` resolves.
        """
        obj = tuple(self._key(item))
        if len(obj) not in (2, 3):
            raise ValueError(
                f"ParetoAccumulator supports 2 or 3 objectives, got {obj!r}")
        seq = self._seen
        self._seen += 1
        a, b, tail = obj[0], obj[1], obj[2:]
        group = self._groups.get(tail)
        if group is None:
            self._groups[tail] = [[a], [b], [[(seq, item)]]]
            self._stored += 1
            self._resolved = None
            return True
        xs, ys, payloads = group
        pos = bisect_right(xs, a) - 1
        if pos >= 0:
            y = ys[pos]
            if y < b or (y == b and xs[pos] < a):
                return False        # dominated inside its own group
            if y == b and xs[pos] == a:
                payloads[pos].append((seq, item))   # exact tie: both stay
                self._stored += 1
                self._resolved = None
                return True
        lo = bisect_left(xs, a)
        hi = lo
        # corners at x >= a with y >= b are strictly dominated by (a, b)
        # (the exact-tie corner was handled above, so strictness holds)
        while hi < len(xs) and ys[hi] >= b:
            self._stored -= len(payloads[hi])
            hi += 1
        if hi > lo:
            del xs[lo:hi]
            del ys[lo:hi]
            del payloads[lo:hi]
        xs.insert(lo, a)
        ys.insert(lo, b)
        payloads.insert(lo, [(seq, item)])
        self._stored += 1
        self._resolved = None
        return True

    def front_entries(self) -> list[tuple[int, Item]]:
        """Exact front as ``(arrival_seq, item)`` pairs, arrival order.

        The sequence numbers are the 0-based offer order (:meth:`add`
        call order), which is what the sharded sweep shifts into global
        flat-index space before merging shard fronts.
        """
        if self._resolved is None:
            survivors: list[tuple[int, Item]] = []
            xs_c: list = []     # cumulative envelope over smaller tails
            ys_c: list = []
            for tail in sorted(self._groups):
                xs, ys, payloads = self._groups[tail]
                for x, y, plist in zip(xs, ys, payloads):
                    # a smaller tail dominates on any (x', y') <= (x, y),
                    # ties included (the tail itself is strictly better)
                    pos = bisect_right(xs_c, x) - 1
                    if pos >= 0 and ys_c[pos] <= y:
                        continue
                    survivors.extend(plist)
                for x, y in zip(xs, ys):
                    _envelope_insert(xs_c, ys_c, x, y)
            survivors.sort(key=lambda entry: entry[0])
            self._resolved = survivors
        return list(self._resolved)

    def front(self) -> list[Item]:
        """The exact non-dominated set of everything added, arrival order."""
        return [item for _, item in self.front_entries()]

    def knee(self) -> Item:
        """The balanced pick over the current front (see :func:`knee_point`)."""
        return knee_point(self.front(), self._key)
