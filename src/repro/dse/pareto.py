"""Pareto dominance over non-functional objective vectors.

All objectives are minimised (time, energy, area).  The helpers are
deliberately generic -- they act on items through a ``key`` function that
returns an objective tuple -- so per-workload fronts, aggregate fronts
and tests all share one dominance definition.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

Item = TypeVar("Item")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere.

    Dominance is irreflexive and antisymmetric: no vector dominates
    itself, and ``dominates(a, b)`` and ``dominates(b, a)`` can never both
    hold (the property tests pin this down).
    """
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def pareto_front(items: Sequence[Item],
                 key: Callable[[Item], Sequence[float]] = lambda it: it
                 ) -> list[Item]:
    """The non-dominated subset of ``items``, in original order.

    Items with identical objective vectors do not dominate each other, so
    exact ties all stay on the front (the sweep's ``block_size`` axis
    produces such ties by design).
    """
    return [item for item, on_front in zip(items, classify(items, key))
            if on_front]


def knee_point(items: Sequence[Item],
               key: Callable[[Item], Sequence[float]] = lambda it: it
               ) -> Item:
    """The balanced pick: minimal normalised distance to the ideal point.

    Each objective is scaled to ``[0, 1]`` over ``items`` (constant
    objectives contribute zero) and the item closest to the all-zero
    ideal in Euclidean distance wins; ties break to the earliest item,
    keeping the choice deterministic.
    """
    if not items:
        raise ValueError("knee_point of an empty set")
    objectives = [tuple(key(item)) for item in items]
    dims = len(objectives[0])
    lows = [min(obj[d] for obj in objectives) for d in range(dims)]
    highs = [max(obj[d] for obj in objectives) for d in range(dims)]
    best_index = 0
    best_dist = math.inf
    for i, obj in enumerate(objectives):
        dist = 0.0
        for d in range(dims):
            span = highs[d] - lows[d]
            if span > 0:
                scaled = (obj[d] - lows[d]) / span
                dist += scaled * scaled
        dist = math.sqrt(dist)
        if dist < best_dist:
            best_dist = dist
            best_index = i
    return items[best_index]


def classify(items: Sequence[Item],
             key: Callable[[Item], Sequence[float]] = lambda it: it
             ) -> list[bool]:
    """Per-item non-dominated flags (aligned with ``items``)."""
    objectives = [tuple(key(item)) for item in items]
    return [not any(dominates(objectives[j], objectives[i])
                    for j in range(len(items)) if j != i)
            for i in range(len(items))]
