"""The sweep engine: design space x workload suite -> objective grid.

Every ``(candidate platform, workload)`` point is one deterministic
metered simulation, expressed as a :class:`~repro.runner.tasks.SimTask`
and submitted to the PR-2 :class:`~repro.runner.ExperimentRunner` in a
single batch -- so a sweep is parallel across worker processes, content-
addressed in the on-disk result cache (a re-run or an overlapping later
sweep only computes what it has never seen), and bit-reproducible: the
grid is built purely from the deterministic ``true_*`` accumulator
totals, never from the stateful instrument model, so warm, cold, serial
and parallel sweeps produce identical floats.

The estimation-based variant (:func:`sweep_estimated`) runs the paper's
fast Eq.-1 path instead of the metered testbed; it exists for presets
such as the Table IV FPU exploration (:mod:`repro.dse.presets`).

Sweeps are fault-tolerant: a grid cell whose task retries ran out
becomes a :class:`FailedCell` on :attr:`DseGrid.failures` (excluded
from Pareto structure, marked in reports) instead of aborting the
campaign, and :func:`sweep_checkpointed` persists completed cells
through a :class:`~repro.runner.resilience.SweepCheckpoint` after every
chunk, so an interrupted ``repro dse`` resumes from its last checkpoint
(:class:`SweepInterrupted` carries the partial grid out of a
``KeyboardInterrupt``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.dse.axes import DesignSpace, SweepConfig
from repro.dse.pareto import classify, knee_point, pareto_front
from repro.dse.workload import WorkloadPair
from repro.hw.area import memctrl_les, synthesize
from repro.hw.config import HwConfig
from repro.runner import ExperimentRunner
from repro.runner.resilience import (
    SweepCheckpoint,
    TaskFailure,
    is_failure,
    log_event,
)
from repro.runner.tasks import SimTask, raw_from_payload

#: Objective names, in the order :attr:`DsePoint.objectives` reports them.
OBJECTIVES = ("time_s", "energy_j", "area_les")

#: Workload label of per-configuration aggregate points.
AGGREGATE = "*"


@dataclass(frozen=True)
class DsePoint:
    """One evaluated (configuration, workload) grid point."""

    config: str
    axis_values: tuple[tuple[str, object], ...]
    workload: str
    build: str
    time_s: float
    energy_j: float
    area_les: int
    retired: int
    cycles: int | None = None  #: None on the estimation path (no cycle sim)

    @property
    def objectives(self) -> tuple[float, float, float]:
        """The minimised objective vector ``(time, energy, area)``."""
        return (self.time_s, self.energy_j, float(self.area_les))

    def value(self, axis_name: str, default=None):
        for name, value in self.axis_values:
            if name == axis_name:
                return value
        return default


@dataclass(frozen=True)
class FailedCell:
    """One grid cell whose task retries ran out (kept out of Pareto)."""

    config: str
    workload: str
    build: str
    attempts: int
    error: str


class SweepInterrupted(KeyboardInterrupt):
    """A sweep was interrupted; carries the partial grid built so far."""

    def __init__(self, grid: "DseGrid", completed: int, total: int):
        super().__init__(f"sweep interrupted at {completed}/{total} cells")
        self.grid = grid
        self.completed = completed
        self.total = total


@dataclass(frozen=True)
class DseGrid:
    """The full sweep result: every point, in deterministic order.

    ``failures`` records cells that never produced a result (attempt
    budget exhausted); they are excluded from points, aggregates and
    Pareto views, and rendered as explicitly failed by the report.
    """

    points: tuple[DsePoint, ...]
    failures: tuple[FailedCell, ...] = ()

    def workloads(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.workload)
        return tuple(seen)

    def configs(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.config)
        return tuple(seen)

    def axis_names(self) -> tuple[str, ...]:
        if not self.points:
            return ()
        return tuple(name for name, _ in self.points[0].axis_values)

    def select(self, workload: str | None = None,
               config: str | None = None) -> tuple[DsePoint, ...]:
        return tuple(p for p in self.points
                     if (workload is None or p.workload == workload)
                     and (config is None or p.config == config))

    def point(self, config: str, workload: str) -> DsePoint:
        for p in self.points:
            if p.config == config and p.workload == workload:
                return p
        raise KeyError((config, workload))

    def aggregate(self) -> tuple[DsePoint, ...]:
        """Per-configuration totals across the whole workload suite.

        Time, energy and retired counts sum over workloads (every
        configuration runs the full suite, so the sums are comparable);
        area is a property of the configuration itself.  Configurations
        with failed cells cover less of the suite, so their sums would
        not be comparable -- they are left out of the aggregate (and the
        report marks them).
        """
        expected = len(self.workloads())
        out = []
        for config in self.configs():
            points = self.select(config=config)
            if len(points) != expected:
                continue
            cycles: int | None = None
            if all(p.cycles is not None for p in points):
                cycles = sum(p.cycles for p in points)
            out.append(DsePoint(
                config=config,
                axis_values=points[0].axis_values,
                workload=AGGREGATE,
                build=points[0].build,
                time_s=sum(p.time_s for p in points),
                energy_j=sum(p.energy_j for p in points),
                area_les=points[0].area_les,
                retired=sum(p.retired for p in points),
                cycles=cycles,
            ))
        return tuple(out)

    # -- Pareto views --------------------------------------------------------

    def front(self, workload: str | None = None) -> tuple[DsePoint, ...]:
        """Non-dominated configurations for ``workload`` (or the aggregate)."""
        points = (self.aggregate() if workload is None
                  else self.select(workload=workload))
        return tuple(pareto_front(points, key=lambda p: p.objectives))

    def knee(self, workload: str | None = None) -> DsePoint:
        """The balanced front pick for ``workload`` (or the aggregate)."""
        front = self.front(workload)
        return knee_point(front, key=lambda p: p.objectives)

    def dominated_flags(self, workload: str | None = None
                        ) -> tuple[tuple[DsePoint, bool], ...]:
        """``(point, on_front)`` pairs for ``workload`` (or the aggregate)."""
        points = (self.aggregate() if workload is None
                  else self.select(workload=workload))
        flags = classify(points, key=lambda p: p.objectives)
        return tuple(zip(points, flags))


def _config_area_les(config: SweepConfig) -> int:
    """Synthesis area of one candidate: core components + memory interface."""
    core_les = synthesize(config.hw.core, name=config.name).total_les
    return core_les + memctrl_les(int(config.value("wait_states", 0)))


def _grid_jobs(configs: Sequence[SweepConfig],
               pairs: Sequence[WorkloadPair]
               ) -> list[tuple[SweepConfig, WorkloadPair, str, object]]:
    jobs = []
    for config in configs:
        for pair in pairs:
            build, program = pair.build_for(config.hw.core)
            jobs.append((config, pair, build, program))
    return jobs


def _grid_from_jobs(jobs: Sequence[tuple[SweepConfig, WorkloadPair, str,
                                         object]],
                    nfps: Sequence[tuple[float, float, int, int | None]
                                   | TaskFailure]
                    ) -> DseGrid:
    """Assemble the grid from per-job ``(time, energy, retired, cycles)``.

    The single construction point shared by the metered, profiled and
    checkpointed sweeps, so the paths cannot drift apart structurally --
    only the NFP source differs.  A :class:`TaskFailure` in an NFP slot
    becomes a :class:`FailedCell` instead of a point.
    """
    points = []
    failures = []
    for (config, pair, build, _), nfp in zip(jobs, nfps):
        if isinstance(nfp, TaskFailure):
            failures.append(FailedCell(
                config=config.name, workload=pair.name, build=build,
                attempts=nfp.attempts, error=nfp.error))
            continue
        time_s, energy_j, retired, cycles = nfp
        points.append(DsePoint(
            config=config.name,
            axis_values=config.axis_values,
            workload=pair.name,
            build=build,
            time_s=time_s,
            energy_j=energy_j,
            area_les=_config_area_les(config),
            retired=retired,
            cycles=cycles,
        ))
    return DseGrid(points=tuple(points), failures=tuple(failures))


def _job_nfps(jobs: Sequence[tuple[SweepConfig, WorkloadPair, str, object]],
              *, budget: int, runner: ExperimentRunner,
              profile: bool) -> list[tuple[float, float, int, int | None]
                                    | TaskFailure]:
    """Per-job deterministic NFPs -- the one place both sweep paths
    actually execute anything.  Failed tasks surface as
    :class:`TaskFailure` records in their slots, never as exceptions."""
    if profile:
        # deferred: repro.dse.evaluate reaches repro.nfp, whose package
        # import reaches back into this module through the presets
        from repro.dse.evaluate import profiled_points
        out: list[tuple[float, float, int, int | None] | TaskFailure] = []
        for nfp in profiled_points(
                [(config.hw, program) for config, _, _, program in jobs],
                budget=budget, runner=runner):
            if isinstance(nfp, TaskFailure):
                out.append(nfp)
            else:
                out.append((nfp.time_s, nfp.energy_j, nfp.retired,
                            nfp.cycles))
        return out
    tasks = [SimTask(mode="metered", program=program, budget=budget,
                     hw=config.hw)
             for config, _, _, program in jobs]
    out = []
    for payload in runner.run_tasks(tasks):
        if is_failure(payload):
            out.append(TaskFailure.from_payload(payload))
        else:
            raw = raw_from_payload(payload)
            out.append((raw.true_time_s, raw.true_energy_j,
                        raw.sim.retired, raw.cycles))
    return out


def sweep(space: DesignSpace | Sequence[SweepConfig],
          pairs: Sequence[WorkloadPair], *,
          budget: int,
          runner: ExperimentRunner | None = None,
          base: HwConfig | None = None) -> DseGrid:
    """Measure every (configuration, workload) point on the metered testbed.

    All points are submitted to ``runner`` as one batch of metered
    :class:`SimTask`s: duplicates dedupe, cached results are read back,
    and the misses fan out across the worker pool.  The grid holds the
    deterministic accumulator totals only, so two sweeps of the same
    space are bit-identical regardless of cache state or parallelism.
    """
    configs = (space.configs(base) if isinstance(space, DesignSpace)
               else tuple(space))
    runner = runner if runner is not None else ExperimentRunner()
    jobs = _grid_jobs(configs, pairs)
    return _grid_from_jobs(jobs, _job_nfps(jobs, budget=budget,
                                           runner=runner, profile=False))


def sweep_profiled(space: DesignSpace | Sequence[SweepConfig],
                   pairs: Sequence[WorkloadPair], *,
                   budget: int,
                   runner: ExperimentRunner | None = None,
                   base: HwConfig | None = None) -> DseGrid:
    """Profile once per workload build, evaluate every config linearly.

    The profile-once twin of :func:`sweep`: instead of one metered
    simulation per grid point, each distinct workload build is profiled
    once (parallel, content-cached) and every candidate platform is then
    priced by the linear evaluator (:mod:`repro.dse.evaluate`) -- the
    sweep's cost drops from ``O(configs x workloads)`` simulations to
    ``O(workloads)`` simulations plus ``O(configs x workloads)`` dot
    products.  Retired counts and cycles are bit-identical to
    :func:`sweep`; times are bit-identical (same integer cycles, same
    conversion) and energies agree to the metered accumulator's own
    float-rounding drift (<= 1e-12 relative across the smoke suite; the
    drift grows as the square root of the retired count, see
    :mod:`repro.nfp.linear`).  Self-modifying workloads fall back to
    metered simulation per point, so the grid is always exact.
    """
    configs = (space.configs(base) if isinstance(space, DesignSpace)
               else tuple(space))
    runner = runner if runner is not None else ExperimentRunner()
    jobs = _grid_jobs(configs, pairs)
    return _grid_from_jobs(jobs, _job_nfps(jobs, budget=budget,
                                           runner=runner, profile=True))


def _cell_key(config: SweepConfig, pair: WorkloadPair) -> str:
    return f"{config.name}\t{pair.name}"


def _cell_to_json(nfp) -> list | dict:
    if isinstance(nfp, TaskFailure):
        return {"failed": {"key": nfp.key, "mode": nfp.mode,
                           "attempts": nfp.attempts, "error": nfp.error}}
    return list(nfp)


def _cell_from_json(cell) -> tuple | TaskFailure:
    if isinstance(cell, dict):
        return TaskFailure(**cell["failed"])
    time_s, energy_j, retired, cycles = cell
    return (time_s, energy_j, retired, cycles)


def sweep_checkpointed(space: DesignSpace | Sequence[SweepConfig],
                       pairs: Sequence[WorkloadPair], *,
                       budget: int,
                       runner: ExperimentRunner | None = None,
                       base: HwConfig | None = None,
                       profile: bool = False,
                       checkpoint: SweepCheckpoint | None = None,
                       chunk: int = 32) -> DseGrid:
    """:func:`sweep`/:func:`sweep_profiled` with periodic checkpoints.

    The grid is computed in chunks of ``chunk`` cells; after each chunk
    the completed cells' deterministic NFPs are flushed into
    ``checkpoint`` (atomic JSON; floats round-trip exactly), so a
    re-opened checkpoint resumes with only the missing cells and the
    resumed report is byte-identical to an uninterrupted run.  A
    ``KeyboardInterrupt`` flushes the checkpoint and re-raises as
    :class:`SweepInterrupted` carrying the partial grid, with no cell
    half-recorded.  With ``checkpoint=None`` the chunked execution (and
    the partial grid on interrupt) remains; only persistence is off.
    """
    configs = (space.configs(base) if isinstance(space, DesignSpace)
               else tuple(space))
    runner = runner if runner is not None else ExperimentRunner()
    jobs = _grid_jobs(configs, pairs)
    cells = checkpoint.cells if checkpoint is not None else {}
    keys = [_cell_key(config, pair) for config, pair, _, _ in jobs]
    missing = [i for i, key in enumerate(keys) if key not in cells]
    try:
        for start in range(0, len(missing), max(1, chunk)):
            ids = missing[start:start + max(1, chunk)]
            nfps = _job_nfps([jobs[i] for i in ids], budget=budget,
                             runner=runner, profile=profile)
            for i, nfp in zip(ids, nfps):
                cells[keys[i]] = _cell_to_json(nfp)
            if checkpoint is not None:
                checkpoint.flush(total=len(jobs))
    except KeyboardInterrupt:
        if checkpoint is not None:
            checkpoint.flush(total=len(jobs))
        done = [i for i, key in enumerate(keys) if key in cells]
        grid = _grid_from_jobs(
            [jobs[i] for i in done],
            [_cell_from_json(cells[keys[i]]) for i in done])
        log_event("interrupted", completed=len(done), total=len(jobs))
        raise SweepInterrupted(grid, completed=len(done),
                               total=len(jobs)) from None
    return _grid_from_jobs(jobs, [_cell_from_json(cells[key])
                                  for key in keys])


def sweep_estimated(space: DesignSpace | Sequence[SweepConfig],
                    pairs: Sequence[WorkloadPair], *,
                    budget: int,
                    estimator_for: Callable[[SweepConfig], object],
                    base: HwConfig | None = None) -> DseGrid:
    """Estimate every grid point with the mechanistic model (Eq. 1).

    ``estimator_for`` maps a candidate configuration to the
    :class:`~repro.nfp.estimator.NFPEstimator` calibrated for it; the
    estimator's own functional core runs the simulation, exactly as the
    pre-engine Table IV code path did, so presets built on this function
    reproduce their historical numbers bit-for-bit.
    """
    configs = (space.configs(base) if isinstance(space, DesignSpace)
               else tuple(space))
    points = []
    for config in configs:
        estimator = estimator_for(config)
        for pair in pairs:
            build, program = pair.build_for(config.hw.core)
            report = estimator.estimate_program(
                program, kernel_name=f"{pair.name}-{build}",
                max_instructions=budget)
            points.append(DsePoint(
                config=config.name,
                axis_values=config.axis_values,
                workload=pair.name,
                build=build,
                time_s=report.time_s,
                energy_j=report.energy_j,
                area_les=_config_area_les(config),
                retired=report.sim.retired,
                cycles=None,
            ))
    return DseGrid(points=tuple(points))
