"""The sweep engine: design space x workload suite -> objective grid.

Every ``(candidate platform, workload)`` point is one deterministic
metered simulation, expressed as a :class:`~repro.runner.tasks.SimTask`
and submitted to the PR-2 :class:`~repro.runner.ExperimentRunner` in a
single batch -- so a sweep is parallel across worker processes, content-
addressed in the on-disk result cache (a re-run or an overlapping later
sweep only computes what it has never seen), and bit-reproducible: the
grid is built purely from the deterministic ``true_*`` accumulator
totals, never from the stateful instrument model, so warm, cold, serial
and parallel sweeps produce identical floats.

The estimation-based variant (:func:`sweep_estimated`) runs the paper's
fast Eq.-1 path instead of the metered testbed; it exists for presets
such as the Table IV FPU exploration (:mod:`repro.dse.presets`).

Sweeps are fault-tolerant: a grid cell whose task retries ran out
becomes a :class:`FailedCell` on :attr:`DseGrid.failures` (excluded
from Pareto structure, marked in reports) instead of aborting the
campaign, and :func:`sweep_checkpointed` persists completed cells
through a :class:`~repro.runner.resilience.SweepCheckpoint` after every
chunk, so an interrupted ``repro dse`` resumes from its last checkpoint
(:class:`SweepInterrupted` carries the partial grid out of a
``KeyboardInterrupt``).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Sequence

from repro.dse.axes import DesignSpace, SweepConfig, get_axis
from repro.dse.pareto import (
    ParetoAccumulator,
    classify,
    knee_point,
    pareto_front,
)
from repro.dse.workload import PipelineProgram, WorkloadPair, pipeline_parts
from repro.hw.area import memctrl_les, synthesize
from repro.hw.config import HwConfig
from repro.runner import ExperimentRunner

if TYPE_CHECKING:   # import cycle: repro.nfp's package init reaches back here
    from repro.nfp.linear import ProfileVectors
from repro.runner.resilience import (
    SweepCheckpoint,
    TaskFailure,
    UsageError,
    is_failure,
    log_event,
)
from repro.runner.tasks import SimTask, raw_from_payload

#: Objective names, in the order :attr:`DsePoint.objectives` reports them.
OBJECTIVES = ("time_s", "energy_j", "area_les")

#: Workload label of per-configuration aggregate points.
AGGREGATE = "*"


@dataclass(frozen=True)
class DsePoint:
    """One evaluated (configuration, workload) grid point."""

    config: str
    axis_values: tuple[tuple[str, object], ...]
    workload: str
    build: str
    time_s: float
    energy_j: float
    area_les: int
    retired: int
    cycles: int | None = None  #: None on the estimation path (no cycle sim)

    @property
    def objectives(self) -> tuple[float, float, float]:
        """The minimised objective vector ``(time, energy, area)``."""
        return (self.time_s, self.energy_j, float(self.area_les))

    def value(self, axis_name: str, default=None):
        for name, value in self.axis_values:
            if name == axis_name:
                return value
        return default


@dataclass(frozen=True)
class FailedCell:
    """One grid cell whose task retries ran out (kept out of Pareto)."""

    config: str
    workload: str
    build: str
    attempts: int
    error: str


class SweepInterrupted(KeyboardInterrupt):
    """A sweep was interrupted; carries the partial grid built so far."""

    def __init__(self, grid: "DseGrid", completed: int, total: int):
        super().__init__(f"sweep interrupted at {completed}/{total} cells")
        self.grid = grid
        self.completed = completed
        self.total = total


@dataclass(frozen=True)
class DseGrid:
    """The full sweep result: every point, in deterministic order.

    ``failures`` records cells that never produced a result (attempt
    budget exhausted); they are excluded from points, aggregates and
    Pareto views, and rendered as explicitly failed by the report.
    """

    points: tuple[DsePoint, ...]
    failures: tuple[FailedCell, ...] = ()

    def workloads(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.workload)
        return tuple(seen)

    def configs(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.config)
        return tuple(seen)

    def axis_names(self) -> tuple[str, ...]:
        if not self.points:
            return ()
        return tuple(name for name, _ in self.points[0].axis_values)

    def select(self, workload: str | None = None,
               config: str | None = None) -> tuple[DsePoint, ...]:
        return tuple(p for p in self.points
                     if (workload is None or p.workload == workload)
                     and (config is None or p.config == config))

    def point(self, config: str, workload: str) -> DsePoint:
        for p in self.points:
            if p.config == config and p.workload == workload:
                return p
        raise KeyError((config, workload))

    def aggregate(self) -> tuple[DsePoint, ...]:
        """Per-configuration totals across the whole workload suite.

        Time, energy and retired counts sum over workloads (every
        configuration runs the full suite, so the sums are comparable);
        area is a property of the configuration itself.  Configurations
        with failed cells cover less of the suite, so their sums would
        not be comparable -- they are left out of the aggregate (and the
        report marks them).
        """
        expected = len(self.workloads())
        out = []
        for config in self.configs():
            points = self.select(config=config)
            if len(points) != expected:
                continue
            cycles: int | None = None
            if all(p.cycles is not None for p in points):
                cycles = sum(p.cycles for p in points)
            out.append(DsePoint(
                config=config,
                axis_values=points[0].axis_values,
                workload=AGGREGATE,
                build=points[0].build,
                time_s=sum(p.time_s for p in points),
                energy_j=sum(p.energy_j for p in points),
                area_les=points[0].area_les,
                retired=sum(p.retired for p in points),
                cycles=cycles,
            ))
        return tuple(out)

    # -- Pareto views --------------------------------------------------------

    def front(self, workload: str | None = None) -> tuple[DsePoint, ...]:
        """Non-dominated configurations for ``workload`` (or the aggregate)."""
        points = (self.aggregate() if workload is None
                  else self.select(workload=workload))
        return tuple(pareto_front(points, key=lambda p: p.objectives))

    def knee(self, workload: str | None = None) -> DsePoint:
        """The balanced front pick for ``workload`` (or the aggregate)."""
        front = self.front(workload)
        return knee_point(front, key=lambda p: p.objectives)

    def dominated_flags(self, workload: str | None = None
                        ) -> tuple[tuple[DsePoint, bool], ...]:
        """``(point, on_front)`` pairs for ``workload`` (or the aggregate)."""
        points = (self.aggregate() if workload is None
                  else self.select(workload=workload))
        flags = classify(points, key=lambda p: p.objectives)
        return tuple(zip(points, flags))


def config_area_les(config: SweepConfig) -> int:
    """Synthesis area of one candidate: core components + memory interface."""
    core_les = synthesize(config.hw.core, name=config.name).total_les
    return core_les + memctrl_les(int(config.value("wait_states", 0)))


#: Historical private name (pre-serving-layer callers import it).
_config_area_les = config_area_les


def _grid_jobs(configs: Sequence[SweepConfig],
               pairs: Sequence[WorkloadPair]
               ) -> list[tuple[SweepConfig, WorkloadPair, str, object]]:
    jobs = []
    for config in configs:
        for pair in pairs:
            build, program = pair.build_for(config.hw.core)
            jobs.append((config, pair, build, program))
    return jobs


def _grid_from_jobs(jobs: Sequence[tuple[SweepConfig, WorkloadPair, str,
                                         object]],
                    nfps: Sequence[tuple[float, float, int, int | None]
                                   | TaskFailure]
                    ) -> DseGrid:
    """Assemble the grid from per-job ``(time, energy, retired, cycles)``.

    The single construction point shared by the metered, profiled and
    checkpointed sweeps, so the paths cannot drift apart structurally --
    only the NFP source differs.  A :class:`TaskFailure` in an NFP slot
    becomes a :class:`FailedCell` instead of a point.
    """
    points = []
    failures = []
    for (config, pair, build, _), nfp in zip(jobs, nfps):
        if isinstance(nfp, TaskFailure):
            failures.append(FailedCell(
                config=config.name, workload=pair.name, build=build,
                attempts=nfp.attempts, error=nfp.error))
            continue
        time_s, energy_j, retired, cycles = nfp
        points.append(DsePoint(
            config=config.name,
            axis_values=config.axis_values,
            workload=pair.name,
            build=build,
            time_s=time_s,
            energy_j=energy_j,
            area_les=config_area_les(config),
            retired=retired,
            cycles=cycles,
        ))
    return DseGrid(points=tuple(points), failures=tuple(failures))


def _job_nfps(jobs: Sequence[tuple[SweepConfig, WorkloadPair, str, object]],
              *, budget: int, runner: ExperimentRunner,
              profile: bool) -> list[tuple[float, float, int, int | None]
                                    | TaskFailure]:
    """Per-job deterministic NFPs -- the one place both sweep paths
    actually execute anything.  Failed tasks surface as
    :class:`TaskFailure` records in their slots, never as exceptions."""
    if profile:
        # deferred: repro.dse.evaluate reaches repro.nfp, whose package
        # import reaches back into this module through the presets
        from repro.dse.evaluate import profiled_points
        out: list[tuple[float, float, int, int | None] | TaskFailure] = []
        for nfp in profiled_points(
                [(config.hw, program) for config, _, _, program in jobs],
                budget=budget, runner=runner):
            if isinstance(nfp, TaskFailure):
                out.append(nfp)
            else:
                out.append((nfp.time_s, nfp.energy_j, nfp.retired,
                            nfp.cycles))
        return out
    # the metered path prices a job part by part: a plain program is
    # one part, a composed pipeline one metered run per invocation,
    # combined exactly (weighted integer cycle sums; see
    # :func:`repro.dse.evaluate.metered_parts_nfp`) -- the oracle the
    # composed profile path is tested bit-identical against
    from repro.dse.evaluate import metered_parts_nfp   # deferred, as above
    tasks = []
    slices = []
    for config, _, _, program in jobs:
        parts = pipeline_parts(program)
        start = len(tasks)
        for part_program, _ in parts:
            tasks.append(SimTask(mode="metered", program=part_program,
                                 budget=budget, hw=config.hw))
        slices.append((config.hw, parts, start, len(tasks)))
    payloads = runner.run_tasks(tasks)
    out = []
    for hw, parts, start, stop in slices:
        nfp = metered_parts_nfp(hw, parts, payloads[start:stop])
        if isinstance(nfp, TaskFailure):
            out.append(nfp)
        else:
            out.append((nfp.time_s, nfp.energy_j, nfp.retired, nfp.cycles))
    return out


def sweep(space: DesignSpace | Sequence[SweepConfig],
          pairs: Sequence[WorkloadPair], *,
          budget: int,
          runner: ExperimentRunner | None = None,
          base: HwConfig | None = None) -> DseGrid:
    """Measure every (configuration, workload) point on the metered testbed.

    All points are submitted to ``runner`` as one batch of metered
    :class:`SimTask`s: duplicates dedupe, cached results are read back,
    and the misses fan out across the worker pool.  The grid holds the
    deterministic accumulator totals only, so two sweeps of the same
    space are bit-identical regardless of cache state or parallelism.
    """
    configs = (space.configs(base) if isinstance(space, DesignSpace)
               else tuple(space))
    runner = runner if runner is not None else ExperimentRunner()
    jobs = _grid_jobs(configs, pairs)
    return _grid_from_jobs(jobs, _job_nfps(jobs, budget=budget,
                                           runner=runner, profile=False))


def sweep_profiled(space: DesignSpace | Sequence[SweepConfig],
                   pairs: Sequence[WorkloadPair], *,
                   budget: int,
                   runner: ExperimentRunner | None = None,
                   base: HwConfig | None = None) -> DseGrid:
    """Profile once per workload build, evaluate every config linearly.

    The profile-once twin of :func:`sweep`: instead of one metered
    simulation per grid point, each distinct workload build is profiled
    once (parallel, content-cached) and every candidate platform is then
    priced by the linear evaluator (:mod:`repro.dse.evaluate`) -- the
    sweep's cost drops from ``O(configs x workloads)`` simulations to
    ``O(workloads)`` simulations plus ``O(configs x workloads)`` dot
    products.  Retired counts and cycles are bit-identical to
    :func:`sweep`; times are bit-identical (same integer cycles, same
    conversion) and energies agree to the metered accumulator's own
    float-rounding drift (<= 1e-12 relative across the smoke suite; the
    drift grows as the square root of the retired count, see
    :mod:`repro.nfp.linear`).  Self-modifying workloads fall back to
    metered simulation per point, so the grid is always exact.
    """
    configs = (space.configs(base) if isinstance(space, DesignSpace)
               else tuple(space))
    runner = runner if runner is not None else ExperimentRunner()
    jobs = _grid_jobs(configs, pairs)
    return _grid_from_jobs(jobs, _job_nfps(jobs, budget=budget,
                                           runner=runner, profile=True))


def _cell_key(config: SweepConfig, pair: WorkloadPair) -> str:
    return f"{config.name}\t{pair.name}"


def _cell_to_json(nfp) -> list | dict:
    if isinstance(nfp, TaskFailure):
        return {"failed": {"key": nfp.key, "mode": nfp.mode,
                           "attempts": nfp.attempts, "error": nfp.error}}
    return list(nfp)


def _cell_from_json(cell) -> tuple | TaskFailure:
    if isinstance(cell, dict):
        return TaskFailure(**cell["failed"])
    time_s, energy_j, retired, cycles = cell
    return (time_s, energy_j, retired, cycles)


def sweep_checkpointed(space: DesignSpace | Sequence[SweepConfig],
                       pairs: Sequence[WorkloadPair], *,
                       budget: int,
                       runner: ExperimentRunner | None = None,
                       base: HwConfig | None = None,
                       profile: bool = False,
                       checkpoint: SweepCheckpoint | None = None,
                       chunk: int = 32) -> DseGrid:
    """:func:`sweep`/:func:`sweep_profiled` with periodic checkpoints.

    The grid is computed in chunks of ``chunk`` cells; after each chunk
    the completed cells' deterministic NFPs are flushed into
    ``checkpoint`` (atomic JSON; floats round-trip exactly), so a
    re-opened checkpoint resumes with only the missing cells and the
    resumed report is byte-identical to an uninterrupted run.  A
    ``KeyboardInterrupt`` flushes the checkpoint and re-raises as
    :class:`SweepInterrupted` carrying the partial grid, with no cell
    half-recorded.  With ``checkpoint=None`` the chunked execution (and
    the partial grid on interrupt) remains; only persistence is off.
    """
    configs = (space.configs(base) if isinstance(space, DesignSpace)
               else tuple(space))
    runner = runner if runner is not None else ExperimentRunner()
    jobs = _grid_jobs(configs, pairs)
    cells = checkpoint.cells if checkpoint is not None else {}
    keys = [_cell_key(config, pair) for config, pair, _, _ in jobs]
    missing = [i for i, key in enumerate(keys) if key not in cells]
    try:
        for start in range(0, len(missing), max(1, chunk)):
            ids = missing[start:start + max(1, chunk)]
            nfps = _job_nfps([jobs[i] for i in ids], budget=budget,
                             runner=runner, profile=profile)
            for i, nfp in zip(ids, nfps):
                cells[keys[i]] = _cell_to_json(nfp)
            if checkpoint is not None:
                checkpoint.flush(total=len(jobs))
    except KeyboardInterrupt:
        if checkpoint is not None:
            checkpoint.flush(total=len(jobs))
        done = [i for i, key in enumerate(keys) if key in cells]
        grid = _grid_from_jobs(
            [jobs[i] for i in done],
            [_cell_from_json(cells[keys[i]]) for i in done])
        log_event("interrupted", completed=len(done), total=len(jobs))
        raise SweepInterrupted(grid, completed=len(done),
                               total=len(jobs)) from None
    return _grid_from_jobs(jobs, [_cell_from_json(cells[key])
                                  for key in keys])


# -- streaming sweeps --------------------------------------------------------

@dataclass(frozen=True)
class WorkloadFront:
    """Streaming-sweep summary of one workload (or the aggregate).

    ``front`` holds the first ``front_cap`` front members in arrival
    (= flat configuration) order; ``front_size`` is always the exact
    count, so a capped summary still reports how much was truncated.
    """

    workload: str
    points: int                     #: configurations offered to this stream
    front_size: int                 #: exact non-dominated count
    front: tuple[DsePoint, ...]     #: materialized members (maybe capped)
    knee: DsePoint
    best_time: DsePoint
    best_energy: DsePoint
    best_area: DsePoint


@dataclass(frozen=True)
class StreamSummary:
    """Everything a streamed sweep retains: fronts, knees, per-objective
    winners -- never the grid.

    :meth:`from_grid` derives the identical structure from a materialized
    :class:`DseGrid`, which is what the byte-identity tests (and the CI
    streamed-vs-materialized check) compare reports through.
    """

    axis_names: tuple[str, ...]
    workloads: tuple[str, ...]
    configs: int                    #: configurations priced (incl. refined)
    space_size: int                 #: cartesian size of the base space
    refined: int                    #: refinement configurations on top
    front_cap: int | None
    aggregate: WorkloadFront
    per_workload: tuple[WorkloadFront, ...]

    @classmethod
    def from_grid(cls, grid: DseGrid,
                  front_cap: int | None = None) -> "StreamSummary":
        """The summary a streamed sweep of the same space would produce.

        Only defined for complete grids: the streamed path has no
        failure slots (a profile that cannot be priced raises), so a
        grid with failures has no streamed twin.
        """
        if grid.failures:
            raise ValueError("a grid with failed cells has no streamed twin")
        key = (lambda p: p.objectives)

        def build(workload: str) -> WorkloadFront:
            points = (grid.aggregate() if workload == AGGREGATE
                      else grid.select(workload=workload))
            front = pareto_front(points, key=key)
            best = {}
            for objective in OBJECTIVES:
                index = min(range(len(points)),
                            key=lambda i: (getattr(points[i], objective), i))
                best[objective] = points[index]
            return WorkloadFront(
                workload=workload, points=len(points), front_size=len(front),
                front=tuple(front if front_cap is None else front[:front_cap]),
                knee=knee_point(front, key=key),
                best_time=best["time_s"], best_energy=best["energy_j"],
                best_area=best["area_les"])

        configs = len(grid.configs())
        return cls(
            axis_names=grid.axis_names(),
            workloads=grid.workloads(),
            configs=configs,
            space_size=configs,
            refined=0,
            front_cap=front_cap,
            aggregate=build(AGGREGATE),
            per_workload=tuple(build(w) for w in grid.workloads()),
        )


class _PointStream:
    """Mutable per-workload streaming state: online front + running minima."""

    __slots__ = ("workload", "acc", "best", "count")

    def __init__(self, workload: str):
        self.workload = workload
        self.acc = ParetoAccumulator(key=lambda p: p.objectives)
        self.best: dict[str, tuple] = {}   # objective -> (value, seq, point)
        self.count = 0

    def offer(self, seq: int, point: DsePoint) -> None:
        self.count += 1
        self.acc.add(point)
        for objective in OBJECTIVES:
            value = getattr(point, objective)
            held = self.best.get(objective)
            if held is None or (value, seq) < (held[0], held[1]):
                self.best[objective] = (value, seq, point)

    def finalize(self, front_cap: int | None) -> WorkloadFront:
        front = self.acc.front()
        return WorkloadFront(
            workload=self.workload, points=self.count,
            front_size=len(front),
            front=tuple(front if front_cap is None else front[:front_cap]),
            knee=knee_point(front, key=lambda p: p.objectives),
            best_time=self.best["time_s"][2],
            best_energy=self.best["energy_j"][2],
            best_area=self.best["area_les"][2])


def stream_profiles(pairs: Sequence[WorkloadPair], fpu_builds: Sequence[bool],
                    *, budget: int, runner: ExperimentRunner,
                    base: HwConfig) -> dict[tuple[str, str], ProfileVectors]:
    """One lowered profile per (workload, build) -- or an exception.

    A composed pipeline pair profiles each weighted invocation and
    lowers the exact composition
    (:func:`repro.nfp.linear.compose_profiles`), so downstream pricing
    never distinguishes pipelines from plain workloads.

    The streamed path has no per-cell failure slots: a profile whose
    retries ran out raises, and an unclean (self-modifying) profile has
    no linear pricing at all, so it raises a :class:`UsageError`
    pointing at the materialized ``--profile`` sweep, whose per-point
    metered fallback handles it exactly.

    Also the evaluation server's cold-fill entry point: one (workload,
    build) pair profiled through the resilient cached runner yields the
    lowered vectors the server keeps hot, with exactly the failure
    semantics above (re-entrant: no module or engine state is touched).
    """
    from repro.dse.evaluate import (   # deferred, see _job_nfps
        composed_vectors,
        profile_task,
    )
    from repro.nfp.linear import ExecutionProfile
    entries = []   # (name, build, [(flat task index, weight), ...])
    tasks = []
    owners = []    # flat task index -> (name, build)
    for pair in pairs:
        for fpu in fpu_builds:
            core = replace(base.core, has_fpu=fpu)
            build, program = pair.build_for(core)
            part_ids = []
            for part_program, count in pipeline_parts(program):
                part_ids.append((len(tasks), count))
                tasks.append(profile_task(part_program, budget, core))
                owners.append((pair.name, build))
            entries.append((pair.name, build, part_ids))
    flat_profiles: list[ExecutionProfile] = []
    for (name, build), payload in zip(owners, runner.run_tasks(tasks)):
        if is_failure(payload):
            failure = TaskFailure.from_payload(payload)
            raise RuntimeError(
                f"profiling {name!r} ({build}) failed after "
                f"{failure.attempts} attempts: {failure.error}")
        profile = ExecutionProfile.from_payload(payload["profile"])
        if not profile.clean:
            raise UsageError(
                f"workload {name!r} ({build}) is self-modifying; the "
                f"streamed sweep has no metered fallback -- run the "
                f"materialized profiled sweep instead")
        flat_profiles.append(profile)
    vectors: dict[tuple[str, str], ProfileVectors] = {}
    for name, build, part_ids in entries:
        vectors[(name, build)] = composed_vectors(
            [(flat_profiles[i], count) for i, count in part_ids])
    return vectors


def _priced_points(configs: Sequence[SweepConfig],
                   pairs: Sequence[WorkloadPair],
                   vectors: dict[tuple[str, str], ProfileVectors],
                   start_seq: int):
    """Yield ``(seq, workload, point)`` for a batch of explicit configs.

    The generic batch evaluator (also the refinement pass' and the
    shard materializer's pricer): one :class:`BatchNfpEngine` over the
    batch, one evaluation per (workload, build) actually present, then
    per-config assembly in flat order -- workloads first, the
    left-to-right aggregate last.  Point construction matches
    :func:`_grid_from_jobs` / :meth:`DseGrid.aggregate` field for field
    -- the byte-identity tests compare entire reports through it.
    """
    from repro.nfp.linear import BatchNfpEngine   # deferred, see _job_nfps
    engine = BatchNfpEngine([config.hw for config in configs])
    builds = sorted({config.hw.core.has_fpu for config in configs})
    priced: dict[tuple[str, str], list] = {}
    for pair in pairs:
        for fpu in builds:
            build = "float" if fpu else "fixed"
            priced[(pair.name, build)] = engine.evaluate(
                vectors[(pair.name, build)])
    for i, config in enumerate(configs):
        seq = start_seq + i
        area = config_area_les(config)
        build = "float" if config.hw.core.has_fpu else "fixed"
        agg_time: float = 0
        agg_energy: float = 0
        agg_retired = 0
        agg_cycles = 0
        for pair in pairs:
            nfp = priced[(pair.name, build)][i]
            yield seq, pair.name, DsePoint(
                config=config.name, axis_values=config.axis_values,
                workload=pair.name, build=build,
                time_s=nfp.true_time_s, energy_j=nfp.true_energy_j,
                area_les=area, retired=nfp.retired, cycles=nfp.cycles)
            agg_time = agg_time + nfp.true_time_s
            agg_energy = agg_energy + nfp.true_energy_j
            agg_retired += nfp.retired
            agg_cycles += nfp.cycles
        yield seq, AGGREGATE, DsePoint(
            config=config.name, axis_values=config.axis_values,
            workload=AGGREGATE, build=build,
            time_s=agg_time, energy_j=agg_energy,
            area_les=area, retired=agg_retired, cycles=agg_cycles)


def _price_configs(configs: Sequence[SweepConfig],
                   pairs: Sequence[WorkloadPair],
                   vectors: dict[tuple[str, str], ProfileVectors],
                   start_seq: int,
                   streams: dict[str, _PointStream]) -> None:
    """Price a batch of explicit configs and stream the points out."""
    for seq, workload, point in _priced_points(configs, pairs, vectors,
                                               start_seq):
        streams[workload].offer(seq, point)


def _refine_pass(space: DesignSpace,
                 pairs: Sequence[WorkloadPair],
                 vectors: dict[tuple[str, str], ProfileVectors],
                 base: HwConfig,
                 streams: dict[str, _PointStream],
                 *, rounds: int, start_seq: int) -> int:
    """Adaptive coordinate refinement around the streaming aggregate knee.

    Each round reads the current aggregate knee, proposes the midpoint
    between the knee's value and its nearest known neighbours on every
    refinable axis (``Axis.refine``), prices the off-grid candidates
    through the same batch pricer, and feeds them into the streaming
    fronts.  Stops early when no axis can refine further or the knee
    configuration is unchanged by a round, so the pass is deterministic:
    same space, same workloads, same rounds -> same candidates in the
    same order.  Returns the number of refinement configs priced.
    """
    refinable = [i for i, (name, _) in enumerate(space.axes)
                 if get_axis(name).refine is not None]
    if not refinable or rounds <= 0:
        return 0
    known: dict[int, list] = {
        i: sorted(set(space.axes[i][1])) for i in refinable}
    seen_combos = set()
    seq = start_seq
    for _ in range(rounds):
        knee = streams[AGGREGATE].acc.knee()
        candidates = []
        knee_combo = tuple(knee.value(name) for name, _ in space.axes)
        for i in refinable:
            axis = get_axis(space.axes[i][0])
            values = known[i]
            value = knee_combo[i]
            pos = bisect_left(values, value)
            below = values[pos - 1] if pos > 0 else None
            if pos < len(values) and values[pos] == value:
                above = values[pos + 1] if pos + 1 < len(values) else None
            else:
                above = values[pos] if pos < len(values) else None
            for lo, hi in ((below, value), (value, above)):
                if lo is None or hi is None:
                    continue
                mid = axis.refine(lo, hi)
                if mid is None or mid in values:
                    continue
                combo = knee_combo[:i] + (mid,) + knee_combo[i + 1:]
                if combo not in seen_combos:
                    seen_combos.add(combo)
                    candidates.append((i, mid, combo))
        if not candidates:
            break
        configs = [space.config_for(combo, base)
                   for _, _, combo in candidates]
        _price_configs(configs, pairs, vectors, seq, streams)
        seq += len(configs)
        for i, mid, _ in candidates:
            insort(known[i], mid)
        new_knee = streams[AGGREGATE].acc.knee()
        if new_knee.config == knee.config:
            break
    return seq - start_seq


def sweep_streamed(space: DesignSpace,
                   pairs: Sequence[WorkloadPair], *,
                   budget: int,
                   runner: ExperimentRunner | None = None,
                   base: HwConfig | None = None,
                   chunk: int = 65536,
                   refine: int = 0,
                   front_cap: int | None = None,
                   shards: int | None = None) -> StreamSummary:
    """Generate-price-reduce: sweep a space without materializing it.

    The streaming counterpart of :func:`sweep_profiled`: each distinct
    workload build is profiled once, then the cartesian product is
    priced in bounded-memory chunks and reduced on the fly into online
    Pareto fronts (:class:`~repro.dse.pareto.ParetoAccumulator`),
    per-objective minima and knees -- the full grid never exists, so
    million-config spaces fit in memory proportional to the front plus
    one chunk.  Results are byte-identical to
    ``StreamSummary.from_grid(sweep_profiled(...))`` at equal
    ``front_cap`` (the property tests and the CI check enforce it).

    When numpy is available and every axis provides a lowering hook
    (all stock axes do), pricing runs on the factored fast path
    (:mod:`repro.dse.stream`): per-axis cost tables combined in flat
    index space, ~10^6 configs x the smoke suite in seconds.  Otherwise
    the generic chunked path prices through :class:`BatchNfpEngine`
    with the same bits.

    ``refine`` adds that many adaptive coordinate-refinement rounds
    around the streaming aggregate knee (:func:`_refine_pass`); refined
    candidates are off-grid, so a refined summary is a superset of the
    base space's.  ``front_cap`` bounds how many front members are
    *materialized* as points per workload (fronts over near-continuous
    axes can approach the grid in size); counts, knees and minima are
    always exact.

    ``shards`` splits the flat index space into that many contiguous
    ranges priced in parallel worker processes, with the shard fronts
    merged exactly in the parent (:mod:`repro.dse.shard`) -- Pareto
    reduction is associative, so the summary (and every report built
    from it) is byte-identical to ``shards=1``.  ``None`` picks a
    count from the worker budget but keeps small spaces serial; ``1``
    is today's in-process path.
    """
    from repro.nfp.linear import numpy_or_none   # deferred, see _job_nfps
    pairs = list(pairs)
    if not pairs:
        raise ValueError("sweep_streamed needs at least one workload pair")
    runner = runner if runner is not None else ExperimentRunner()
    base = base if base is not None else HwConfig()
    fpu_axis_values = None
    for name, values in space.axes:
        if name == "fpu":
            fpu_axis_values = values
    fpu_builds = (sorted({bool(v) for v in fpu_axis_values})
                  if fpu_axis_values is not None
                  else [base.core.has_fpu])
    vectors = stream_profiles(pairs, fpu_builds, budget=budget,
                              runner=runner, base=base)

    # deferred: the shard module imports back into this one
    from repro.dse.shard import resolve_shards, sweep_shards
    n_shards = resolve_shards(shards, space.size)
    if n_shards > 1:
        return sweep_shards(space, pairs, vectors, base, runner,
                            chunk=chunk, shards=n_shards,
                            refine=refine, front_cap=front_cap)

    np = numpy_or_none()
    fast = None
    if np is not None:
        from repro.dse import stream as _stream   # deferred: optional numpy
        fast = _stream.fast_sweep(np, space, pairs, vectors, base,
                                  chunk=chunk)
    workload_names = [pair.name for pair in pairs]
    if fast is not None:
        fast.run()
        if not refine:
            return StreamSummary(
                axis_names=space.axis_names,
                workloads=tuple(workload_names),
                configs=space.size,
                space_size=space.size,
                refined=0,
                front_cap=front_cap,
                aggregate=fast.workload_front(AGGREGATE, front_cap),
                per_workload=tuple(fast.workload_front(name, front_cap)
                                   for name in workload_names),
            )
        streams = {name: fast.point_stream(name)
                   for name in workload_names + [AGGREGATE]}
    else:
        streams = {name: _PointStream(name)
                   for name in workload_names + [AGGREGATE]}
        buffer: list[SweepConfig] = []
        seq = 0
        for config in space.iter_configs(base):
            buffer.append(config)
            if len(buffer) >= max(1, chunk):
                _price_configs(buffer, pairs, vectors, seq, streams)
                seq += len(buffer)
                buffer.clear()
        if buffer:
            _price_configs(buffer, pairs, vectors, seq, streams)

    refined = _refine_pass(space, pairs, vectors, base, streams,
                           rounds=refine, start_seq=space.size)
    return StreamSummary(
        axis_names=space.axis_names,
        workloads=tuple(workload_names),
        configs=space.size + refined,
        space_size=space.size,
        refined=refined,
        front_cap=front_cap,
        aggregate=streams[AGGREGATE].finalize(front_cap),
        per_workload=tuple(streams[name].finalize(front_cap)
                           for name in workload_names),
    )


def sweep_estimated(space: DesignSpace | Sequence[SweepConfig],
                    pairs: Sequence[WorkloadPair], *,
                    budget: int,
                    estimator_for: Callable[[SweepConfig], object],
                    base: HwConfig | None = None) -> DseGrid:
    """Estimate every grid point with the mechanistic model (Eq. 1).

    ``estimator_for`` maps a candidate configuration to the
    :class:`~repro.nfp.estimator.NFPEstimator` calibrated for it; the
    estimator's own functional core runs the simulation, exactly as the
    pre-engine Table IV code path did, so presets built on this function
    reproduce their historical numbers bit-for-bit.
    """
    configs = (space.configs(base) if isinstance(space, DesignSpace)
               else tuple(space))
    points = []
    for config in configs:
        estimator = estimator_for(config)
        for pair in pairs:
            build, program = pair.build_for(config.hw.core)
            if isinstance(program, PipelineProgram):
                raise UsageError(
                    f"pipeline workload {pair.name!r} has no estimation "
                    f"path; use the profiled, streamed or metered sweep")
            report = estimator.estimate_program(
                program, kernel_name=f"{pair.name}-{build}",
                max_instructions=budget)
            points.append(DsePoint(
                config=config.name,
                axis_values=config.axis_values,
                workload=pair.name,
                build=build,
                time_s=report.time_s,
                energy_j=report.energy_j,
                area_les=config_area_les(config),
                retired=report.sim.retired,
                cycles=None,
            ))
    return DseGrid(points=tuple(points))
