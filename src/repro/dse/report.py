"""Sweep reporting: Pareto classification rendered as text, CSV or JSON.

The report is a pure function of the grid, so a warm re-run of a sweep
renders byte-identical output -- the property the determinism tests (and
the CI gate) lean on.  Failed cells (:attr:`DseGrid.failures`) are
rendered explicitly in every format -- a partial report after an
exhausted attempt budget (or an interrupt) marks exactly what is
missing instead of silently shrinking the grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.engine import AGGREGATE, DseGrid, DsePoint
from repro.experiments.render import csv_table, fmt_si, json_blob, text_table

#: Renderers accepted by :meth:`SweepReport.render`.
FORMATS = ("text", "csv", "json")


def _point_row(point: DsePoint, on_front: bool, knee: bool) -> list:
    marker = "front" if on_front else "dominated"
    if knee:
        marker = "front+knee"
    return [point.config,
            *[value for _, value in point.axis_values],
            fmt_si(point.time_s, "s"), fmt_si(point.energy_j, "J"),
            point.area_les, marker]


@dataclass(frozen=True)
class SweepReport:
    """Pareto-classified view of one sweep grid."""

    grid: DseGrid
    title: str = "design-space exploration"

    # -- text ---------------------------------------------------------------

    def render(self, fmt: str = "text") -> str:
        if fmt == "text":
            return self.to_text()
        if fmt == "csv":
            return self.to_csv()
        if fmt == "json":
            return self.to_json()
        raise ValueError(f"unknown format {fmt!r}; available: {FORMATS}")

    def to_text(self) -> str:
        grid = self.grid
        axis_names = grid.axis_names()
        aggregate = grid.dominated_flags()
        out = []
        if aggregate:
            knee = grid.knee()
            headers = ("config", *axis_names, "time", "energy", "area LEs",
                       "pareto")
            rows = [_point_row(point, on_front,
                               point.config == knee.config)
                    for point, on_front in aggregate]
            n_front = sum(1 for _, on_front in aggregate if on_front)
            out.append(text_table(
                headers, rows,
                title=f"{self.title}: {len(grid.configs())} configs x "
                      f"{len(grid.workloads())} workloads "
                      f"({len(grid.points)} points), objectives "
                      f"(time, energy, area), aggregate over workloads"))
            out.append(f"aggregate Pareto front: {n_front} of "
                       f"{len(aggregate)} configs; knee: {knee.config}")
        else:
            out.append(f"{self.title}: no complete configurations to "
                       f"aggregate ({len(grid.points)} points, "
                       f"{len(grid.failures)} failed cells)")
        front_rows = []
        for workload in grid.workloads():
            points = grid.select(workload=workload)
            front = grid.front(workload)
            best_time = min(points, key=lambda p: (p.time_s, p.config))
            best_energy = min(points, key=lambda p: (p.energy_j, p.config))
            best_area = min(points, key=lambda p: (p.area_les, p.config))
            front_rows.append((
                workload, f"{len(front)}/{len(points)}",
                grid.knee(workload).config, best_time.config,
                best_energy.config, best_area.config))
        if front_rows:
            out.append(text_table(
                ("workload", "front", "knee", "min time", "min energy",
                 "min area"), front_rows,
                title="per-workload Pareto fronts and per-objective "
                      "winners"))
        if grid.failures:
            out.append(text_table(
                ("config", "workload", "build", "attempts", "error"),
                [(f.config, f.workload, f.build, f.attempts,
                  f.error[:48]) for f in grid.failures],
                title=f"failed cells: {len(grid.failures)} of "
                      f"{len(grid.points) + len(grid.failures)} "
                      f"(attempt budget exhausted; excluded from "
                      f"Pareto structure)"))
        return "\n".join(out)

    # -- csv ----------------------------------------------------------------

    def to_csv(self) -> str:
        """Every grid point plus the aggregate rows, one record each."""
        grid = self.grid
        axis_names = grid.axis_names()
        front_by_workload = {
            workload: {p.config for p in grid.front(workload)}
            for workload in grid.workloads()}
        aggregate_front = {p.config for p in grid.front()}
        headers = ("config", *axis_names, "workload", "build", "time_s",
                   "energy_j", "area_les", "cycles", "retired", "on_front")
        rows = []
        for point in grid.points:
            rows.append([
                point.config, *[v for _, v in point.axis_values],
                point.workload, point.build, point.time_s, point.energy_j,
                point.area_les,
                "" if point.cycles is None else point.cycles,
                point.retired,
                int(point.config in front_by_workload[point.workload])])
        for point in grid.aggregate():
            rows.append([
                point.config, *[v for _, v in point.axis_values],
                AGGREGATE, point.build, point.time_s, point.energy_j,
                point.area_les,
                "" if point.cycles is None else point.cycles,
                point.retired, int(point.config in aggregate_front)])
        for cell in grid.failures:
            rows.append([
                cell.config, *[""] * len(axis_names), cell.workload,
                cell.build, "", "", "", "", "", "failed"])
        return csv_table(headers, rows)

    # -- json ---------------------------------------------------------------

    def to_json(self) -> str:
        grid = self.grid
        aggregate = grid.aggregate()

        def point_obj(point: DsePoint) -> dict:
            return {
                "config": point.config,
                "axes": dict(point.axis_values),
                "workload": point.workload,
                "build": point.build,
                "time_s": point.time_s,
                "energy_j": point.energy_j,
                "area_les": point.area_les,
                "cycles": point.cycles,
                "retired": point.retired,
            }

        return json_blob({
            "title": self.title,
            "axes": list(grid.axis_names()),
            "configs": list(grid.configs()),
            "workloads": list(grid.workloads()),
            "points": [point_obj(p) for p in grid.points],
            "aggregate": [point_obj(p) for p in aggregate],
            "pareto": {
                "aggregate_front": [p.config for p in grid.front()]
                if aggregate else [],
                "knee": grid.knee().config if aggregate else None,
                "per_workload": {
                    workload: {
                        "front": [p.config for p in grid.front(workload)],
                        "knee": grid.knee(workload).config,
                    } for workload in grid.workloads()},
            },
            "failures": [{
                "config": cell.config,
                "workload": cell.workload,
                "build": cell.build,
                "attempts": cell.attempts,
                "error": cell.error,
            } for cell in grid.failures],
        })
