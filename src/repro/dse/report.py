"""Sweep reporting: Pareto classification rendered as text, CSV or JSON.

The report is a pure function of the grid, so a warm re-run of a sweep
renders byte-identical output -- the property the determinism tests (and
the CI gate) lean on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.engine import AGGREGATE, DseGrid, DsePoint
from repro.experiments.render import csv_table, fmt_si, json_blob, text_table

#: Renderers accepted by :meth:`SweepReport.render`.
FORMATS = ("text", "csv", "json")


def _point_row(point: DsePoint, on_front: bool, knee: bool) -> list:
    marker = "front" if on_front else "dominated"
    if knee:
        marker = "front+knee"
    return [point.config,
            *[value for _, value in point.axis_values],
            fmt_si(point.time_s, "s"), fmt_si(point.energy_j, "J"),
            point.area_les, marker]


@dataclass(frozen=True)
class SweepReport:
    """Pareto-classified view of one sweep grid."""

    grid: DseGrid
    title: str = "design-space exploration"

    # -- text ---------------------------------------------------------------

    def render(self, fmt: str = "text") -> str:
        if fmt == "text":
            return self.to_text()
        if fmt == "csv":
            return self.to_csv()
        if fmt == "json":
            return self.to_json()
        raise ValueError(f"unknown format {fmt!r}; available: {FORMATS}")

    def to_text(self) -> str:
        grid = self.grid
        axis_names = grid.axis_names()
        aggregate = grid.dominated_flags()
        knee = grid.knee()
        headers = ("config", *axis_names, "time", "energy", "area LEs",
                   "pareto")
        rows = [_point_row(point, on_front, point.config == knee.config)
                for point, on_front in aggregate]
        n_front = sum(1 for _, on_front in aggregate if on_front)
        out = [text_table(
            headers, rows,
            title=f"{self.title}: {len(grid.configs())} configs x "
                  f"{len(grid.workloads())} workloads "
                  f"({len(grid.points)} points), objectives "
                  f"(time, energy, area), aggregate over workloads")]
        out.append(f"aggregate Pareto front: {n_front} of "
                   f"{len(aggregate)} configs; knee: {knee.config}")
        front_rows = []
        for workload in grid.workloads():
            points = grid.select(workload=workload)
            front = grid.front(workload)
            best_time = min(points, key=lambda p: (p.time_s, p.config))
            best_energy = min(points, key=lambda p: (p.energy_j, p.config))
            best_area = min(points, key=lambda p: (p.area_les, p.config))
            front_rows.append((
                workload, f"{len(front)}/{len(points)}",
                grid.knee(workload).config, best_time.config,
                best_energy.config, best_area.config))
        out.append(text_table(
            ("workload", "front", "knee", "min time", "min energy",
             "min area"), front_rows,
            title="per-workload Pareto fronts and per-objective winners"))
        return "\n".join(out)

    # -- csv ----------------------------------------------------------------

    def to_csv(self) -> str:
        """Every grid point plus the aggregate rows, one record each."""
        grid = self.grid
        axis_names = grid.axis_names()
        front_by_workload = {
            workload: {p.config for p in grid.front(workload)}
            for workload in grid.workloads()}
        aggregate_front = {p.config for p in grid.front()}
        headers = ("config", *axis_names, "workload", "build", "time_s",
                   "energy_j", "area_les", "cycles", "retired", "on_front")
        rows = []
        for point in grid.points:
            rows.append([
                point.config, *[v for _, v in point.axis_values],
                point.workload, point.build, point.time_s, point.energy_j,
                point.area_les,
                "" if point.cycles is None else point.cycles,
                point.retired,
                int(point.config in front_by_workload[point.workload])])
        for point in grid.aggregate():
            rows.append([
                point.config, *[v for _, v in point.axis_values],
                AGGREGATE, point.build, point.time_s, point.energy_j,
                point.area_les,
                "" if point.cycles is None else point.cycles,
                point.retired, int(point.config in aggregate_front)])
        return csv_table(headers, rows)

    # -- json ---------------------------------------------------------------

    def to_json(self) -> str:
        grid = self.grid
        knee = grid.knee()

        def point_obj(point: DsePoint) -> dict:
            return {
                "config": point.config,
                "axes": dict(point.axis_values),
                "workload": point.workload,
                "build": point.build,
                "time_s": point.time_s,
                "energy_j": point.energy_j,
                "area_les": point.area_les,
                "cycles": point.cycles,
                "retired": point.retired,
            }

        return json_blob({
            "title": self.title,
            "axes": list(grid.axis_names()),
            "configs": list(grid.configs()),
            "workloads": list(grid.workloads()),
            "points": [point_obj(p) for p in grid.points],
            "aggregate": [point_obj(p) for p in grid.aggregate()],
            "pareto": {
                "aggregate_front": [p.config for p in grid.front()],
                "knee": knee.config,
                "per_workload": {
                    workload: {
                        "front": [p.config for p in grid.front(workload)],
                        "knee": grid.knee(workload).config,
                    } for workload in grid.workloads()},
            },
        })
