"""Sweep reporting: Pareto classification rendered as text, CSV or JSON.

The report is a pure function of the grid, so a warm re-run of a sweep
renders byte-identical output -- the property the determinism tests (and
the CI gate) lean on.  Failed cells (:attr:`DseGrid.failures`) are
rendered explicitly in every format -- a partial report after an
exhausted attempt budget (or an interrupt) marks exactly what is
missing instead of silently shrinking the grid.

The Pareto structure (aggregate points, fronts, knees) is computed once
per report (:attr:`SweepReport._analysis`) and shared by all three
renderers, so rendering every format prices the grid's dominance
exactly once.  :class:`StreamReport` is the same idea over a streamed
:class:`~repro.dse.engine.StreamSummary` -- a pure function of the
summary, so a streamed sweep and ``StreamSummary.from_grid`` of its
materialized twin render byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.dse.engine import (
    AGGREGATE,
    OBJECTIVES,
    DseGrid,
    DsePoint,
    StreamSummary,
    WorkloadFront,
)
from repro.dse.pareto import classify, knee_point
from repro.experiments.render import csv_table, fmt_si, json_blob, text_table

#: Renderers accepted by :meth:`SweepReport.render`.
FORMATS = ("text", "csv", "json")


def _point_row(point: DsePoint, on_front: bool, knee: bool) -> list:
    marker = "front" if on_front else "dominated"
    if knee:
        marker = "front+knee"
    return [point.config,
            *[value for _, value in point.axis_values],
            fmt_si(point.time_s, "s"), fmt_si(point.energy_j, "J"),
            point.area_les, marker]


def _point_obj(point: DsePoint) -> dict:
    return {
        "config": point.config,
        "axes": dict(point.axis_values),
        "workload": point.workload,
        "build": point.build,
        "time_s": point.time_s,
        "energy_j": point.energy_j,
        "area_les": point.area_les,
        "cycles": point.cycles,
        "retired": point.retired,
    }


_KEY = (lambda p: p.objectives)


@dataclass(frozen=True)
class _GridAnalysis:
    """The Pareto structure of one grid, computed once per report."""

    aggregate: tuple[DsePoint, ...]
    aggregate_flags: tuple[tuple[DsePoint, bool], ...]
    aggregate_front: tuple[DsePoint, ...]
    aggregate_knee: DsePoint | None
    workload_points: dict[str, tuple[DsePoint, ...]]
    workload_fronts: dict[str, tuple[DsePoint, ...]]
    workload_knees: dict[str, DsePoint]

    @classmethod
    def of(cls, grid: DseGrid) -> "_GridAnalysis":
        aggregate = grid.aggregate()
        flags = tuple(zip(aggregate, classify(aggregate, key=_KEY)))
        front = tuple(p for p, on_front in flags if on_front)
        workload_points = {}
        workload_fronts = {}
        workload_knees = {}
        for workload in grid.workloads():
            points = grid.select(workload=workload)
            workload_points[workload] = points
            wfront = tuple(
                p for p, on_front
                in zip(points, classify(points, key=_KEY)) if on_front)
            workload_fronts[workload] = wfront
            workload_knees[workload] = knee_point(wfront, key=_KEY)
        return cls(
            aggregate=aggregate,
            aggregate_flags=flags,
            aggregate_front=front,
            aggregate_knee=(knee_point(front, key=_KEY)
                            if front else None),
            workload_points=workload_points,
            workload_fronts=workload_fronts,
            workload_knees=workload_knees,
        )


@dataclass(frozen=True)
class SweepReport:
    """Pareto-classified view of one sweep grid."""

    grid: DseGrid
    title: str = "design-space exploration"

    @cached_property
    def _analysis(self) -> _GridAnalysis:
        """Aggregates, fronts and knees -- shared by every renderer."""
        return _GridAnalysis.of(self.grid)

    # -- text ---------------------------------------------------------------

    def render(self, fmt: str = "text") -> str:
        if fmt == "text":
            return self.to_text()
        if fmt == "csv":
            return self.to_csv()
        if fmt == "json":
            return self.to_json()
        raise ValueError(f"unknown format {fmt!r}; available: {FORMATS}")

    def to_text(self) -> str:
        grid = self.grid
        analysis = self._analysis
        axis_names = grid.axis_names()
        aggregate = analysis.aggregate_flags
        out = []
        if aggregate:
            knee = analysis.aggregate_knee
            headers = ("config", *axis_names, "time", "energy", "area LEs",
                       "pareto")
            rows = [_point_row(point, on_front,
                               point.config == knee.config)
                    for point, on_front in aggregate]
            n_front = len(analysis.aggregate_front)
            out.append(text_table(
                headers, rows,
                title=f"{self.title}: {len(grid.configs())} configs x "
                      f"{len(grid.workloads())} workloads "
                      f"({len(grid.points)} points), objectives "
                      f"(time, energy, area), aggregate over workloads"))
            out.append(f"aggregate Pareto front: {n_front} of "
                       f"{len(aggregate)} configs; knee: {knee.config}")
        else:
            out.append(f"{self.title}: no complete configurations to "
                       f"aggregate ({len(grid.points)} points, "
                       f"{len(grid.failures)} failed cells)")
        front_rows = []
        for workload in grid.workloads():
            points = analysis.workload_points[workload]
            front = analysis.workload_fronts[workload]
            best_time = min(points, key=lambda p: (p.time_s, p.config))
            best_energy = min(points, key=lambda p: (p.energy_j, p.config))
            best_area = min(points, key=lambda p: (p.area_les, p.config))
            front_rows.append((
                workload, f"{len(front)}/{len(points)}",
                analysis.workload_knees[workload].config, best_time.config,
                best_energy.config, best_area.config))
        if front_rows:
            out.append(text_table(
                ("workload", "front", "knee", "min time", "min energy",
                 "min area"), front_rows,
                title="per-workload Pareto fronts and per-objective "
                      "winners"))
        if grid.failures:
            out.append(text_table(
                ("config", "workload", "build", "attempts", "error"),
                [(f.config, f.workload, f.build, f.attempts,
                  f.error[:48]) for f in grid.failures],
                title=f"failed cells: {len(grid.failures)} of "
                      f"{len(grid.points) + len(grid.failures)} "
                      f"(attempt budget exhausted; excluded from "
                      f"Pareto structure)"))
        return "\n".join(out)

    # -- csv ----------------------------------------------------------------

    def to_csv(self) -> str:
        """Every grid point plus the aggregate rows, one record each."""
        grid = self.grid
        analysis = self._analysis
        axis_names = grid.axis_names()
        front_by_workload = {
            workload: {p.config for p in analysis.workload_fronts[workload]}
            for workload in grid.workloads()}
        aggregate_front = {p.config for p in analysis.aggregate_front}
        headers = ("config", *axis_names, "workload", "build", "time_s",
                   "energy_j", "area_les", "cycles", "retired", "on_front")
        rows = []
        for point in grid.points:
            rows.append([
                point.config, *[v for _, v in point.axis_values],
                point.workload, point.build, point.time_s, point.energy_j,
                point.area_les,
                "" if point.cycles is None else point.cycles,
                point.retired,
                int(point.config in front_by_workload[point.workload])])
        for point in analysis.aggregate:
            rows.append([
                point.config, *[v for _, v in point.axis_values],
                AGGREGATE, point.build, point.time_s, point.energy_j,
                point.area_les,
                "" if point.cycles is None else point.cycles,
                point.retired, int(point.config in aggregate_front)])
        for cell in grid.failures:
            rows.append([
                cell.config, *[""] * len(axis_names), cell.workload,
                cell.build, "", "", "", "", "", "failed"])
        return csv_table(headers, rows)

    # -- json ---------------------------------------------------------------

    def to_json(self) -> str:
        grid = self.grid
        analysis = self._analysis
        aggregate = analysis.aggregate
        return json_blob({
            "title": self.title,
            "axes": list(grid.axis_names()),
            "configs": list(grid.configs()),
            "workloads": list(grid.workloads()),
            "points": [_point_obj(p) for p in grid.points],
            "aggregate": [_point_obj(p) for p in aggregate],
            "pareto": {
                "aggregate_front": [p.config
                                    for p in analysis.aggregate_front]
                if aggregate else [],
                "knee": (analysis.aggregate_knee.config
                         if aggregate else None),
                "per_workload": {
                    workload: {
                        "front": [p.config for p in
                                  analysis.workload_fronts[workload]],
                        "knee": analysis.workload_knees[workload].config,
                    } for workload in grid.workloads()},
            },
            "failures": [{
                "config": cell.config,
                "workload": cell.workload,
                "build": cell.build,
                "attempts": cell.attempts,
                "error": cell.error,
            } for cell in grid.failures],
        })


@dataclass(frozen=True)
class StreamReport:
    """A streamed sweep's summary rendered as text, CSV or JSON.

    A pure function of the :class:`StreamSummary`, which is all the
    streamed sweep ever retains: the reports show fronts, knees and
    per-objective winners, never the full grid.  At equal ``front_cap``
    a streamed summary and ``StreamSummary.from_grid`` of its
    materialized twin render byte-identical output in every format --
    the streamed-vs-materialized CI check compares exactly this.
    """

    summary: StreamSummary
    title: str = "design-space exploration (streamed)"

    def render(self, fmt: str = "text") -> str:
        if fmt == "text":
            return self.to_text()
        if fmt == "csv":
            return self.to_csv()
        if fmt == "json":
            return self.to_json()
        raise ValueError(f"unknown format {fmt!r}; available: {FORMATS}")

    def to_text(self) -> str:
        summary = self.summary
        aggregate = summary.aggregate
        out = []
        headline = (f"{self.title}: {summary.configs} configs x "
                    f"{len(summary.workloads)} workloads streamed "
                    f"({summary.configs * len(summary.workloads)} points "
                    f"priced), objectives (time, energy, area)")
        if summary.refined:
            headline += (f"; {summary.refined} adaptive refinement configs "
                         f"beyond the {summary.space_size}-config grid")
        rows = [_point_row(point, True,
                           point.config == aggregate.knee.config)
                for point in aggregate.front]
        out.append(text_table(
            ("config", *summary.axis_names, "time", "energy", "area LEs",
             "pareto"), rows, title=headline))
        out.append(f"aggregate Pareto front: {aggregate.front_size} of "
                   f"{aggregate.points} configs; knee: "
                   f"{aggregate.knee.config}")
        if aggregate.front_size > len(aggregate.front):
            out.append(f"... {aggregate.front_size - len(aggregate.front)} "
                       f"more aggregate front members "
                       f"(front_cap={summary.front_cap})")
        front_rows = [
            (wf.workload, f"{wf.front_size}/{wf.points}", wf.knee.config,
             wf.best_time.config, wf.best_energy.config,
             wf.best_area.config)
            for wf in summary.per_workload]
        out.append(text_table(
            ("workload", "front", "knee", "min time", "min energy",
             "min area"), front_rows,
            title="per-workload Pareto fronts and per-objective winners"))
        return "\n".join(out)

    def to_csv(self) -> str:
        """Front members and per-objective winners, one record each."""
        summary = self.summary
        headers = ("config", *summary.axis_names, "workload", "build",
                   "time_s", "energy_j", "area_les", "cycles", "retired",
                   "role")
        rows = []

        def point_row(point: DsePoint, role: str) -> list:
            return [point.config, *[v for _, v in point.axis_values],
                    point.workload, point.build, point.time_s,
                    point.energy_j, point.area_les,
                    "" if point.cycles is None else point.cycles,
                    point.retired, role]

        for wf in (*summary.per_workload, summary.aggregate):
            for point in wf.front:
                rows.append(point_row(
                    point, "front+knee" if point.config == wf.knee.config
                    else "front"))
            rows.append(point_row(wf.best_time, "min_time"))
            rows.append(point_row(wf.best_energy, "min_energy"))
            rows.append(point_row(wf.best_area, "min_area"))
        return csv_table(headers, rows)

    def to_json(self) -> str:
        summary = self.summary

        def front_obj(wf: WorkloadFront) -> dict:
            return {
                "workload": wf.workload,
                "points": wf.points,
                "front_size": wf.front_size,
                "front": [_point_obj(p) for p in wf.front],
                "knee": _point_obj(wf.knee),
                "best": {
                    "time_s": _point_obj(wf.best_time),
                    "energy_j": _point_obj(wf.best_energy),
                    "area_les": _point_obj(wf.best_area),
                },
            }

        return json_blob({
            "title": self.title,
            "axes": list(summary.axis_names),
            "workloads": list(summary.workloads),
            "configs": summary.configs,
            "space_size": summary.space_size,
            "refined": summary.refined,
            "front_cap": summary.front_cap,
            "objectives": list(OBJECTIVES),
            "aggregate": front_obj(summary.aggregate),
            "per_workload": [front_obj(wf)
                             for wf in summary.per_workload],
        })
