"""Profile-once evaluation of sweep grids.

The metered sweep pays one instrumented simulation per (configuration,
workload) point even though every configuration executes the same
instruction stream; this module implements the profile-once alternative:

1. every distinct ``(program, functional-core essentials)`` of the grid
   is profiled exactly once (``profile`` :class:`~repro.runner.tasks.SimTask`
   through the shared cached/parallel runner -- a 36-config sweep over
   6 workload pairs needs 12 profiled runs instead of 216 metered ones);
2. every grid point is then priced by the batch linear evaluator
   (:class:`repro.nfp.linear.BatchNfpEngine`): per profile, all of its
   configurations lower to a deduplicated cost-row matrix and each
   point is one constant-size combine over exact dot products -- the
   same bits the streamed sweep (:func:`repro.dse.engine.sweep_streamed`)
   produces, which is what makes streamed and materialized reports
   byte-identical.

Integer counters and cycles are bit-identical to the metered sweep;
dynamic energy agrees to the metered accumulator's own float-rounding
drift (``<= 1e-12`` relative across the smoke suite; grows as the
square root of the retired count, see :mod:`repro.nfp.linear`).
Profiles of runs that wrote into their own code (self-modifying
kernels) are flagged unclean and their grid points transparently fall
back to full metered simulation, point by point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.asm.program import Program
from repro.hw.config import HwConfig
from repro.nfp.linear import (
    BatchNfpEngine,
    ExecutionProfile,
    ProfileVectors,
    lower_profile,
)
from repro.runner import ExperimentRunner
from repro.runner.resilience import TaskFailure, is_failure, log_event
from repro.runner.tasks import SimTask, raw_from_payload, task_key
from repro.vm.config import CoreConfig


@dataclass(frozen=True)
class PointNfp:
    """The NFPs of one evaluated grid point (profile or fallback path)."""

    time_s: float
    energy_j: float
    cycles: int
    retired: int
    profiled: bool  #: False when the point fell back to full simulation


def profile_core(core: CoreConfig) -> CoreConfig:
    """The canonical functional core a profile of ``core`` is keyed by.

    Only parameters that influence the *functional* execution survive:
    FPU presence (build selection / fp-disabled traps) and the RAM
    geometry (addresses and stack placement feed the data-dependent
    energy hash).  Window count and block sizes are architecturally
    invariant, so normalising them lets every configuration of a sweep
    share one profile per workload build.  ``metered_blocks_enabled``
    is preserved: it selects profile-fused blocks vs per-instruction
    observation (the ``--no-metered-blocks`` A/B knob), which record
    identical profiles but are worth keying apart, exactly like the
    metered path.
    """
    return CoreConfig(has_fpu=core.has_fpu, ram_size=core.ram_size,
                      ram_base=core.ram_base,
                      stack_reserve=core.stack_reserve,
                      metered_blocks_enabled=core.metered_blocks_enabled)


def profile_task(program: Program, budget: int,
                 core: CoreConfig) -> SimTask:
    """The profile task pricing any configuration over ``core``'s stream."""
    return SimTask(mode="profile", program=program, budget=budget,
                   core=profile_core(core))


def profiled_points(items: Sequence[tuple[HwConfig, Program]], *,
                    budget: int,
                    runner: ExperimentRunner
                    ) -> list[PointNfp | TaskFailure]:
    """Evaluate every ``(configuration, program)`` grid point.

    One batch of deduplicating profile tasks (the runner's content
    addressing collapses the grid onto its distinct workload builds),
    one linear evaluation per point, and -- only where a profile came
    back unclean *or never came back at all* -- one batch of exact
    metered fallback simulations.  A grid point whose profile *and*
    metered fallback both exhausted their retries surfaces as the
    fallback's :class:`~repro.runner.resilience.TaskFailure` in its
    slot; nothing here raises for a failed task.
    """
    tasks = [profile_task(program, budget, hw.core)
             for hw, program in items]
    keys = [task_key(task) for task in tasks]
    payloads = runner.run_tasks(tasks)
    profiles: dict[str, ExecutionProfile] = {}
    for key, payload in zip(keys, payloads):
        if key not in profiles and not is_failure(payload):
            profiles[key] = ExecutionProfile.from_payload(payload["profile"])

    # fallback: self-modifying workloads (unclean profiles) and points
    # whose profile task failed outright are re-simulated per point on
    # the metered path (bit-identical to the plain metered sweep, and
    # shared with it through the result cache)
    dirty = [i for i, key in enumerate(keys)
             if key not in profiles or not profiles[key].clean]
    failed_profiles = sum(1 for key in set(keys) if key not in profiles)
    if failed_profiles:
        log_event("profile-fallback", profiles=failed_profiles,
                  points=sum(1 for key in keys if key not in profiles))
    fallback: dict[int, dict] = {}
    if dirty:
        mtasks = [SimTask(mode="metered", program=items[i][1],
                          budget=budget, hw=items[i][0]) for i in dirty]
        for i, payload in zip(dirty, runner.run_tasks(mtasks)):
            fallback[i] = payload

    # clean points are priced in one batch per distinct profile: the
    # configurations lower to a deduplicated cost-row matrix and every
    # point is a constant-size combine (cycles/time bit-identical to
    # the per-point engine; energy within its ~1-ulp regrouping, and
    # bit-identical to the streamed sweep, which prices the same way)
    clean: dict[str, list[int]] = {}
    for i, key in enumerate(keys):
        if i not in fallback:
            clean.setdefault(key, []).append(i)
    linear: dict[int, PointNfp] = {}
    vectors: dict[str, ProfileVectors] = {}
    for key, indices in clean.items():
        if key not in vectors:
            vectors[key] = lower_profile(profiles[key])
        engine = BatchNfpEngine([items[i][0] for i in indices])
        for i, nfp in zip(indices, engine.evaluate(vectors[key])):
            linear[i] = PointNfp(
                time_s=nfp.true_time_s, energy_j=nfp.true_energy_j,
                cycles=nfp.cycles, retired=nfp.retired, profiled=True)

    points: list[PointNfp | TaskFailure] = []
    for i in range(len(items)):
        payload = fallback.get(i)
        if payload is not None:
            if is_failure(payload):
                points.append(TaskFailure.from_payload(payload))
                continue
            raw = raw_from_payload(payload)
            points.append(PointNfp(
                time_s=raw.true_time_s, energy_j=raw.true_energy_j,
                cycles=raw.cycles, retired=raw.sim.retired,
                profiled=False))
            continue
        points.append(linear[i])
    return points
