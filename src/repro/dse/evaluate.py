"""Profile-once evaluation of sweep grids.

The metered sweep pays one instrumented simulation per (configuration,
workload) point even though every configuration executes the same
instruction stream; this module implements the profile-once alternative:

1. every distinct ``(program, functional-core essentials)`` of the grid
   is profiled exactly once (``profile`` :class:`~repro.runner.tasks.SimTask`
   through the shared cached/parallel runner -- a 36-config sweep over
   6 workload pairs needs 12 profiled runs instead of 216 metered ones);
2. every grid point is then priced by the batch linear evaluator
   (:class:`repro.nfp.linear.BatchNfpEngine`): per profile, all of its
   configurations lower to a deduplicated cost-row matrix and each
   point is one constant-size combine over exact dot products -- the
   same bits the streamed sweep (:func:`repro.dse.engine.sweep_streamed`)
   produces, which is what makes streamed and materialized reports
   byte-identical.

Integer counters and cycles are bit-identical to the metered sweep;
dynamic energy agrees to the metered accumulator's own float-rounding
drift (``<= 1e-12`` relative across the smoke suite; grows as the
square root of the retired count, see :mod:`repro.nfp.linear`).
Profiles of runs that wrote into their own code (self-modifying
kernels) are flagged unclean and their grid points transparently fall
back to full metered simulation, point by point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.asm.program import Program
from repro.dse.workload import pipeline_parts
from repro.hw.config import HwConfig
from repro.nfp.linear import (
    BatchNfpEngine,
    ExecutionProfile,
    ProfileVectors,
    compose_profiles,
    lower_profile,
)
from repro.runner import ExperimentRunner
from repro.runner.resilience import TaskFailure, is_failure, log_event
from repro.runner.tasks import SimTask, raw_from_payload, task_key
from repro.vm.config import CoreConfig


@dataclass(frozen=True)
class PointNfp:
    """The NFPs of one evaluated grid point (profile or fallback path)."""

    time_s: float
    energy_j: float
    cycles: int
    retired: int
    profiled: bool  #: False when the point fell back to full simulation


def profile_core(core: CoreConfig) -> CoreConfig:
    """The canonical functional core a profile of ``core`` is keyed by.

    Only parameters that influence the *functional* execution survive:
    FPU presence (build selection / fp-disabled traps) and the RAM
    geometry (addresses and stack placement feed the data-dependent
    energy hash).  Window count and block sizes are architecturally
    invariant, so normalising them lets every configuration of a sweep
    share one profile per workload build.  ``metered_blocks_enabled``
    is preserved: it selects profile-fused blocks vs per-instruction
    observation (the ``--no-metered-blocks`` A/B knob), which record
    identical profiles but are worth keying apart, exactly like the
    metered path.
    """
    return CoreConfig(has_fpu=core.has_fpu, ram_size=core.ram_size,
                      ram_base=core.ram_base,
                      stack_reserve=core.stack_reserve,
                      metered_blocks_enabled=core.metered_blocks_enabled)


def profile_task(program: Program, budget: int,
                 core: CoreConfig) -> SimTask:
    """The profile task pricing any configuration over ``core``'s stream."""
    return SimTask(mode="profile", program=program, budget=budget,
                   core=profile_core(core))


def composed_vectors(parts: Sequence[tuple[ExecutionProfile, int]]
                     ) -> ProfileVectors:
    """Lowered vectors of a weighted profile list (one part: passthrough).

    The single-part unweighted case lowers the profile directly -- the
    historical plain-workload path, preserved bit-for-bit -- and a real
    composition prices through
    :func:`repro.nfp.linear.compose_profiles`, so one composed vector
    set stands for the whole frame stream.
    """
    if len(parts) == 1 and parts[0][1] == 1:
        return lower_profile(parts[0][0])
    return lower_profile(compose_profiles(parts))


def metered_parts_nfp(hw: HwConfig,
                      parts: Sequence[tuple[Program, int]],
                      payloads: Sequence[dict]) -> PointNfp | TaskFailure:
    """Combine per-part metered payloads into one exact point.

    The metered twin of profile composition, and the reason metered and
    composed pipeline sweeps stay *bit-identical* in cycles and time:
    total cycles are the exact integer sum of weighted per-invocation
    cycles, and total time is ``cycles * cycle_seconds`` -- the very
    expression the linear evaluator (and :class:`~repro.hw.board.Board`
    itself) applies to the same integer.  Dynamic energy sums the
    weighted per-invocation nanojoule totals through ``math.fsum``
    (exact summation; <= 1e-12 relative of the composed-profile
    energy), and static energy is priced over the total time.  The
    single-part unweighted case reproduces the raw payload unchanged.
    A failed part payload surfaces as its :class:`TaskFailure`.
    """
    for payload in payloads:
        if is_failure(payload):
            return TaskFailure.from_payload(payload)
    raws = [raw_from_payload(payload) for payload in payloads]
    if len(parts) == 1 and parts[0][1] == 1:
        raw = raws[0]
        return PointNfp(
            time_s=raw.true_time_s, energy_j=raw.true_energy_j,
            cycles=raw.cycles, retired=raw.sim.retired, profiled=False)
    cycles = sum(count * raw.cycles
                 for (_, count), raw in zip(parts, raws))
    retired = sum(count * raw.sim.retired
                  for (_, count), raw in zip(parts, raws))
    time_s = cycles * hw.cycle_seconds
    dyn_nj = math.fsum(count * raw.dyn_energy_nj
                       for (_, count), raw in zip(parts, raws))
    return PointNfp(
        time_s=time_s,
        energy_j=dyn_nj * 1e-9 + hw.static_power_w * time_s,
        cycles=cycles, retired=retired, profiled=False)


def profiled_points(items: Sequence[tuple[HwConfig, object]], *,
                    budget: int,
                    runner: ExperimentRunner
                    ) -> list[PointNfp | TaskFailure]:
    """Evaluate every ``(configuration, program)`` grid point.

    ``items`` may mix plain :class:`Program` grid points with composed
    :class:`~repro.dse.workload.PipelineProgram` points; each point is
    a weighted part list (:func:`~repro.dse.workload.pipeline_parts`),
    plain programs being the one-part case.

    One batch of deduplicating profile tasks over all parts (the
    runner's content addressing collapses the grid onto its distinct
    invocation builds), one linear evaluation per point over its
    composed vectors, and -- only where a part profile came back
    unclean *or never came back at all* -- one batch of exact metered
    fallback simulations, combined per point by
    :func:`metered_parts_nfp`.  A grid point whose profile *and*
    metered fallback both exhausted their retries surfaces as the
    fallback's :class:`~repro.runner.resilience.TaskFailure` in its
    slot; nothing here raises for a failed task.
    """
    parts_per_item = [pipeline_parts(program) for _, program in items]
    tasks = []
    for (hw, _), parts in zip(items, parts_per_item):
        for program, _ in parts:
            tasks.append(profile_task(program, budget, hw.core))
    keys = [task_key(task) for task in tasks]
    payloads = runner.run_tasks(tasks)
    profiles: dict[str, ExecutionProfile] = {}
    for key, payload in zip(keys, payloads):
        if key not in profiles and not is_failure(payload):
            profiles[key] = ExecutionProfile.from_payload(payload["profile"])

    # per-item composition keys: ((part task key, weight), ...) -- two
    # grid points share pricing iff they price the same weighted parts
    item_keys: list[tuple[tuple[str, int], ...]] = []
    pos = 0
    for parts in parts_per_item:
        item_keys.append(tuple(
            (keys[pos + j], count) for j, (_, count) in enumerate(parts)))
        pos += len(parts)

    # fallback: self-modifying workloads (unclean profiles) and points
    # whose profile task failed outright are re-simulated on the
    # metered path (bit-identical to the plain metered sweep, and
    # shared with it through the result cache); a pipeline point
    # re-simulates its invocations and combines them exactly
    dirty = [i for i, ikeys in enumerate(item_keys)
             if any(key not in profiles or not profiles[key].clean
                    for key, _ in ikeys)]
    failed_profiles = sum(1 for key in set(keys) if key not in profiles)
    if failed_profiles:
        log_event("profile-fallback", profiles=failed_profiles,
                  points=sum(1 for key in keys if key not in profiles))
    fallback: dict[int, PointNfp | TaskFailure] = {}
    if dirty:
        mtasks = []
        slices = []
        for i in dirty:
            start = len(mtasks)
            for program, _ in parts_per_item[i]:
                mtasks.append(SimTask(mode="metered", program=program,
                                      budget=budget, hw=items[i][0]))
            slices.append((i, start, len(mtasks)))
        mpayloads = runner.run_tasks(mtasks)
        for i, start, stop in slices:
            fallback[i] = metered_parts_nfp(
                items[i][0], parts_per_item[i], mpayloads[start:stop])

    # clean points are priced in one batch per distinct composition:
    # the configurations lower to a deduplicated cost-row matrix and
    # every point is a constant-size combine (cycles/time bit-identical
    # to the per-point engine; energy within its ~1-ulp regrouping, and
    # bit-identical to the streamed sweep, which prices the same way)
    clean: dict[tuple, list[int]] = {}
    for i, ikeys in enumerate(item_keys):
        if i not in fallback:
            clean.setdefault(ikeys, []).append(i)
    linear: dict[int, PointNfp] = {}
    vectors: dict[tuple, ProfileVectors] = {}
    for ikeys, indices in clean.items():
        if ikeys not in vectors:
            vectors[ikeys] = composed_vectors(
                [(profiles[key], count) for key, count in ikeys])
        engine = BatchNfpEngine([items[i][0] for i in indices])
        for i, nfp in zip(indices, engine.evaluate(vectors[ikeys])):
            linear[i] = PointNfp(
                time_s=nfp.true_time_s, energy_j=nfp.true_energy_j,
                cycles=nfp.cycles, retired=nfp.retired, profiled=True)

    return [fallback.get(i, linear.get(i)) for i in range(len(items))]
