"""The HEVC-lite evaluation stream set (the paper's 36 bitstreams).

36 = 4 coding configurations (intra, lowdelay, lowdelay P, randomaccess)
x 3 visual qualities (QP 10, 32, 45) x 3 input raw sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.codecs.hevclite.encoder import CONFIGS, EncodeResult, encode
from repro.codecs.hevclite.sequences import SEQUENCE_NAMES, make_sequence

QPS = (10, 32, 45)


@dataclass(frozen=True)
class StreamSpec:
    """Identity of one evaluation bitstream."""

    config: str
    qp: int
    sequence: str
    width: int = 16
    height: int = 16
    frames: int = 3

    @property
    def name(self) -> str:
        return f"{self.sequence}_{self.config}_qp{self.qp}"


def stream_specs(width: int = 16, height: int = 16,
                 frames: int = 3) -> list[StreamSpec]:
    """All 36 stream specs in deterministic order."""
    return [
        StreamSpec(config=config, qp=qp, sequence=seq,
                   width=width, height=height, frames=frames)
        for config in CONFIGS
        for qp in QPS
        for seq in SEQUENCE_NAMES
    ]


@lru_cache(maxsize=None)
def encode_spec(spec: StreamSpec) -> EncodeResult:
    """Encode (and cache) the bitstream for ``spec``."""
    frames = make_sequence(spec.sequence, spec.width, spec.height,
                           spec.frames)
    return encode(frames, spec.qp, spec.config)
