"""Intra and inter prediction for 8x8 blocks.

Intra predicts from *reconstructed* neighbours of the current frame (as
in HEVC); inter performs full-pel motion compensation from reference
frames with edge clamping.  Prediction modes:

====  =========  =============================================
code  name       rule
====  =========  =============================================
0     DC         mean of available top/left neighbours
1     VERTICAL   copy the top neighbour row
2     HORIZONTAL copy the left neighbour column
3     AVERAGE    per-pixel mean of modes 1 and 2 (planar-lite)
4     INTER      one motion vector (P, and B list-0)
5     INTER_BI   two motion vectors, averaged
====  =========  =============================================
"""

from __future__ import annotations

from repro.codecs.hevclite.tables import BLOCK

MODE_DC = 0
MODE_VER = 1
MODE_HOR = 2
MODE_AVG = 3
MODE_INTER = 4
MODE_INTER_BI = 5

Frame = list[list[int]]


def intra_neighbours(frame: Frame, bx: int, by: int,
                     width: int, height: int) -> tuple[list[int] | None,
                                                       list[int] | None]:
    """Top row and left column of reconstructed neighbours (None if off-frame)."""
    top = None
    left = None
    if by > 0:
        top = [frame[by - 1][bx + x] for x in range(BLOCK)]
    if bx > 0:
        left = [frame[by + y][bx - 1] for y in range(BLOCK)]
    return top, left


def intra_predict(mode: int, top: list[int] | None,
                  left: list[int] | None) -> list[list[int]]:
    """Build the 8x8 intra prediction block."""
    n = BLOCK
    if mode == MODE_DC:
        if top and left:
            dc = (sum(top) + sum(left) + n) >> 4
        elif top:
            dc = (sum(top) + (n >> 1)) >> 3
        elif left:
            dc = (sum(left) + (n >> 1)) >> 3
        else:
            dc = 128
        return [[dc] * n for _ in range(n)]
    top = top or [128] * n
    left = left or [128] * n
    if mode == MODE_VER:
        return [list(top) for _ in range(n)]
    if mode == MODE_HOR:
        return [[left[y]] * n for y in range(n)]
    if mode == MODE_AVG:
        return [[(top[x] + left[y] + 1) >> 1 for x in range(n)]
                for y in range(n)]
    raise ValueError(f"not an intra mode: {mode}")


def motion_compensate(ref: Frame, bx: int, by: int, mvx: int, mvy: int,
                      width: int, height: int) -> list[list[int]]:
    """Full-pel motion compensation with edge clamping."""
    n = BLOCK
    out = [[0] * n for _ in range(n)]
    for y in range(n):
        sy = min(max(by + y + mvy, 0), height - 1)
        row = ref[sy]
        for x in range(n):
            sx = min(max(bx + x + mvx, 0), width - 1)
            out[y][x] = row[sx]
    return out


def average_blocks(a: list[list[int]], b: list[list[int]]) -> list[list[int]]:
    """Bi-prediction averaging with rounding."""
    return [[(a[y][x] + b[y][x] + 1) >> 1 for x in range(BLOCK)]
            for y in range(BLOCK)]
