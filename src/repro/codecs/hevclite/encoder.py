"""HEVC-lite encoder (host-side; produces the bitstreams the kernels decode).

A closed-loop block-based hybrid encoder: intra prediction from
reconstructed neighbours, full-pel motion-compensated inter prediction,
HEVC-style 8x8 integer transform + quantisation, exp-Golomb entropy
coding.  The encoder reconstructs exactly like the decoder, so decoder
output can be verified against ``encode(...).recon``.

Coding configurations (the paper's four):

==============  =================  =================================
id              frame types        notes
==============  =================  =================================
intra           I I I ...          no temporal prediction
lowdelay_p      I P P ...          one past reference
lowdelay        I P B2 ...         B2 = two *past* references
randomaccess    I P I P ...        periodic intra refresh
==============  =================  =================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.codecs.hevclite.bitstream import BitWriter
from repro.codecs.hevclite.predict import (
    MODE_AVG,
    MODE_DC,
    MODE_HOR,
    MODE_INTER,
    MODE_INTER_BI,
    MODE_VER,
    average_blocks,
    intra_neighbours,
    intra_predict,
    motion_compensate,
)
from repro.codecs.hevclite.tables import BLOCK, ZIGZAG8
from repro.codecs.hevclite.transform import (
    dequantize,
    forward_transform,
    inverse_transform,
    quantize,
)

MAGIC = 0x48564C31  # "HVL1"

FRAME_I = 0
FRAME_P = 1
FRAME_B_PAST = 2
FRAME_B_BI = 3

CONFIGS = ("intra", "lowdelay_p", "lowdelay", "randomaccess")

_SEARCH_RANGE = 4

Frame = list[list[int]]


@dataclass
class EncodeResult:
    """Encoder output: the bitstream plus its own reconstruction."""

    bitstream: bytes
    recon: list[Frame]
    frame_types: list[int]
    qp: int
    config: str


def frame_types_for(config: str, num_frames: int) -> list[int]:
    """Frame-type schedule of a coding configuration."""
    if config == "intra":
        return [FRAME_I] * num_frames
    if config == "lowdelay_p":
        return [FRAME_I] + [FRAME_P] * (num_frames - 1)
    if config == "lowdelay":
        types = [FRAME_I]
        for i in range(1, num_frames):
            types.append(FRAME_P if i == 1 else FRAME_B_PAST)
        return types
    if config == "randomaccess":
        return [FRAME_I if i % 2 == 0 else FRAME_P for i in range(num_frames)]
    raise ValueError(f"unknown config {config!r}; available: {CONFIGS}")


def _sad(a: Frame, b: list[list[int]], bx: int, by: int) -> int:
    total = 0
    for y in range(BLOCK):
        row = a[by + y]
        prow = b[y]
        for x in range(BLOCK):
            total += abs(row[bx + x] - prow[x])
    return total


def _search_motion(orig: Frame, ref: Frame, bx: int, by: int,
                   width: int, height: int) -> tuple[int, int, int]:
    """Exhaustive full-pel search; returns (mvx, mvy, sad)."""
    best = (0, 0, _sad(orig, motion_compensate(ref, bx, by, 0, 0,
                                               width, height), bx, by))
    for mvy in range(-_SEARCH_RANGE, _SEARCH_RANGE + 1):
        for mvx in range(-_SEARCH_RANGE, _SEARCH_RANGE + 1):
            if mvx == 0 and mvy == 0:
                continue
            pred = motion_compensate(ref, bx, by, mvx, mvy, width, height)
            sad = _sad(orig, pred, bx, by)
            # small motion cost keeps vectors compact, as real encoders do
            sad += 2 * (abs(mvx) + abs(mvy))
            if sad < best[2]:
                best = (mvx, mvy, sad)
    return best


def encode(frames: list[Frame], qp: int, config: str) -> EncodeResult:
    """Encode ``frames`` at ``qp`` under coding configuration ``config``."""
    if not frames:
        raise ValueError("need at least one frame")
    height = len(frames[0])
    width = len(frames[0][0])
    if width % BLOCK or height % BLOCK:
        raise ValueError(f"dimensions {width}x{height} not multiples of 8")
    types = frame_types_for(config, len(frames))

    writer = BitWriter()
    writer.put_bits(MAGIC, 32)
    writer.put_bits(width, 16)
    writer.put_bits(height, 16)
    writer.put_bits(len(frames), 8)
    writer.put_bits(qp, 8)
    writer.put_bits(CONFIGS.index(config), 8)
    writer.put_bits(0, 8)

    recon_frames: list[Frame] = []
    for index, (orig, ftype) in enumerate(zip(frames, types)):
        writer.put_bits(ftype, 8)
        ref0 = recon_frames[-1] if recon_frames else None
        ref1 = recon_frames[-2] if len(recon_frames) >= 2 else ref0
        recon = [[0] * width for _ in range(height)]
        for by in range(0, height, BLOCK):
            for bx in range(0, width, BLOCK):
                _encode_block(writer, orig, recon, ref0, ref1, ftype,
                              bx, by, width, height, qp)
        recon_frames.append(recon)

    return EncodeResult(bitstream=writer.flush(), recon=recon_frames,
                        frame_types=types, qp=qp, config=config)


def _encode_block(writer: BitWriter, orig: Frame, recon: Frame,
                  ref0: Frame | None, ref1: Frame | None, ftype: int,
                  bx: int, by: int, width: int, height: int, qp: int) -> None:
    top, left = intra_neighbours(recon, bx, by, width, height)
    candidates: list[tuple[int, int, tuple, list[list[int]]]] = []
    for mode in (MODE_DC, MODE_VER, MODE_HOR, MODE_AVG):
        pred = intra_predict(mode, top, left)
        candidates.append((_sad(orig, pred, bx, by) + 4, mode, (), pred))
    if ftype != FRAME_I and ref0 is not None:
        mvx, mvy, sad = _search_motion(orig, ref0, bx, by, width, height)
        pred = motion_compensate(ref0, bx, by, mvx, mvy, width, height)
        candidates.append((sad, MODE_INTER, (mvx, mvy), pred))
        if ftype in (FRAME_B_PAST, FRAME_B_BI) and ref1 is not None:
            mvx1, mvy1, _ = _search_motion(orig, ref1, bx, by, width, height)
            pred1 = motion_compensate(ref1, bx, by, mvx1, mvy1,
                                      width, height)
            bi = average_blocks(pred, pred1)
            sad_bi = _sad(orig, bi, bx, by) + 8
            candidates.append((sad_bi, MODE_INTER_BI,
                               (mvx, mvy, mvx1, mvy1), bi))
    _, mode, mvs, pred = min(candidates, key=lambda c: (c[0], c[1]))

    residual = [[orig[by + y][bx + x] - pred[y][x] for x in range(BLOCK)]
                for y in range(BLOCK)]
    levels = quantize(forward_transform(residual), qp)

    writer.put_ue(mode)
    for mv in mvs:
        writer.put_se(mv)
    scan = [levels[idx // 8][idx % 8] for idx in ZIGZAG8]
    nonzero = [(pos, lvl) for pos, lvl in enumerate(scan) if lvl]
    writer.put_ue(len(nonzero))
    prev_end = 0
    for pos, lvl in nonzero:
        writer.put_ue(pos - prev_end)
        writer.put_se(lvl)
        prev_end = pos + 1

    rec_res = inverse_transform(dequantize(levels, qp))
    for y in range(BLOCK):
        for x in range(BLOCK):
            value = pred[y][x] + rec_res[y][x]
            recon[by + y][bx + x] = 0 if value < 0 else (
                255 if value > 255 else value)


def pack_header_info(bitstream: bytes) -> tuple[int, int, int, int, int]:
    """Parse (width, height, frames, qp, config_id) from a stream header."""
    magic, width, height, nframes, qp, cfg, _ = struct.unpack(
        ">IHHBBBB", bitstream[:12])
    if magic != MAGIC:
        raise ValueError(f"bad magic 0x{magic:08x}")
    return width, height, nframes, qp, cfg
