"""Reference HEVC-lite decoder (host-side mirror of the kernel decoder).

Every integer operation here has an identical counterpart in
:mod:`repro.codecs.hevclite.kernel`; the double-precision statistics
bookkeeping (activity and deviation accumulators -- the HM reference
software's 'few floating point operations' the paper mentions) is likewise
replicated operation-for-operation, so reference and simulated decoders
print identical numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codecs.hevclite.bitstream import BitReader
from repro.codecs.hevclite.encoder import (
    FRAME_B_BI,
    FRAME_B_PAST,
    FRAME_I,
    FRAME_P,
    MAGIC,
)
from repro.codecs.hevclite.predict import (
    MODE_INTER,
    MODE_INTER_BI,
    average_blocks,
    intra_neighbours,
    intra_predict,
    motion_compensate,
)
from repro.codecs.hevclite.tables import BLOCK, ZIGZAG8, rd_lambda
from repro.codecs.hevclite.transform import dequantize_level, inverse_transform

#: number of repetitions of the per-block FP statistics loop; calibrated so
#: the soft-float build's overhead matches the HEVC row of Table IV (the
#: paper's full-scale HM decoder does proportionally more double-precision
#: bookkeeping than a 16x16 three-frame stream would -- this compensates).
DEFAULT_FP_ROUNDS = 5

Frame = list[list[int]]


@dataclass
class DecodeResult:
    """Decoder output: frames, rolling checksum and FP statistics."""

    frames: list[Frame]
    checksum: int
    activity_stat: int  # truncated double accumulator (as printed)
    deviation_stat: int
    console: str

    def console_lines(self) -> list[str]:
        return self.console.strip().splitlines()


def decode(bitstream: bytes, fp_rounds: int = DEFAULT_FP_ROUNDS) -> DecodeResult:
    """Decode a HEVC-lite stream; mirrors the kernel bit-for-bit."""
    reader = BitReader(bitstream)
    magic = reader.get_bits(32)
    if magic != MAGIC:
        raise ValueError(f"bad magic 0x{magic:08x}")
    width = reader.get_bits(16)
    height = reader.get_bits(16)
    nframes = reader.get_bits(8)
    qp = reader.get_bits(8)
    reader.get_bits(8)  # config id (informative)
    reader.get_bits(8)  # reserved

    lam = rd_lambda(qp)
    checksum = 0
    act = 0.0
    dev = 0.0
    frames: list[Frame] = []
    prev: Frame | None = None
    prev2: Frame | None = None

    for _ in range(nframes):
        ftype = reader.get_bits(8)
        if ftype not in (FRAME_I, FRAME_P, FRAME_B_PAST, FRAME_B_BI):
            raise ValueError(f"bad frame type {ftype}")
        recon: Frame = [[0] * width for _ in range(height)]
        for by in range(0, height, BLOCK):
            for bx in range(0, width, BLOCK):
                act, dev = _decode_block(reader, recon, prev, prev2, ftype,
                                         bx, by, width, height, qp, lam,
                                         fp_rounds, act, dev)
        for row in recon:
            for pix in row:
                checksum = (checksum * 31 + pix) & 0xFFFFFFFF
        prev2 = prev
        prev = recon
        frames.append(recon)

    act_print = _trunc_u32(act)
    dev_print = _trunc_u32(dev)
    console = f"{checksum}\n{act_print}\n{dev_print}\n"
    return DecodeResult(frames=frames, checksum=checksum,
                        activity_stat=act_print, deviation_stat=dev_print,
                        console=console)


def _trunc_u32(value: float) -> int:
    """fdtoi semantics (truncate, saturate) then reinterpret as u32."""
    if math.isnan(value):
        return 0
    if value >= 2147483648.0:
        return 0x7FFFFFFF
    if value < -2147483648.0:
        return 0x80000000
    return int(value) & 0xFFFFFFFF


def _decode_block(reader: BitReader, recon: Frame, prev: Frame | None,
                  prev2: Frame | None, ftype: int, bx: int, by: int,
                  width: int, height: int, qp: int, lam: float,
                  fp_rounds: int, act: float, dev: float):
    mode = reader.get_ue()
    if mode == MODE_INTER:
        mvx = reader.get_se()
        mvy = reader.get_se()
        if prev is None:
            raise ValueError("inter block without a reference frame")
        pred = motion_compensate(prev, bx, by, mvx, mvy, width, height)
    elif mode == MODE_INTER_BI:
        mvx = reader.get_se()
        mvy = reader.get_se()
        mvx1 = reader.get_se()
        mvy1 = reader.get_se()
        if prev is None:
            raise ValueError("bi block without reference frames")
        ref1 = prev2 if prev2 is not None else prev
        pred = average_blocks(
            motion_compensate(prev, bx, by, mvx, mvy, width, height),
            motion_compensate(ref1, bx, by, mvx1, mvy1, width, height))
    elif mode <= 3:
        top, left = intra_neighbours(recon, bx, by, width, height)
        pred = intra_predict(mode, top, left)
    else:
        raise ValueError(f"bad block mode {mode}")

    coeffs = [[0] * BLOCK for _ in range(BLOCK)]
    nnz = reader.get_ue()
    if nnz > 64:
        raise ValueError(f"bad coefficient count {nnz}")
    pos = 0
    for _ in range(nnz):
        pos += reader.get_ue()
        if pos >= 64:
            raise ValueError("coefficient scan overflow")
        level = reader.get_se()
        idx = ZIGZAG8[pos]
        coeffs[idx // 8][idx % 8] = dequantize_level(level, qp)
        pos += 1

    residual = inverse_transform(coeffs)
    sum_abs = 0
    sum_pix = 0
    for y in range(BLOCK):
        for x in range(BLOCK):
            value = pred[y][x] + residual[y][x]
            value = 0 if value < 0 else (255 if value > 255 else value)
            recon[by + y][bx + x] = value
            res = residual[y][x]
            sum_abs += -res if res < 0 else res
            sum_pix += value

    # HM-style double-precision bookkeeping (the paper's 'few FP ops').
    # The kernel repeats this loop identically; see DESIGN.md.
    for r in range(fp_rounds):
        s1 = float(sum_abs + r)
        a = math.sqrt(s1 * 0.015625)  # /64.0
        act = act + a * lam
        mean = float(sum_pix) * 0.015625
        d = mean - 128.0
        dev = dev + d * d
    return act, dev
