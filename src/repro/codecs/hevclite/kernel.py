"""The HEVC-lite decoder as a bare-metal kernel-IR program.

Mirrors :mod:`repro.codecs.hevclite.decoder_ref` operation-for-operation:
exp-Golomb parsing, intra/inter prediction, dequantisation, the 8x8
inverse core transform, reconstruction clipping, the rolling checksum and
the double-precision statistics loop.  The builder embeds one encoded
bitstream; stream geometry and QP-derived constants are compile-time
(like cross-compiling HM for one input, as the paper's bare-metal kernels
do -- 'we included in- and output streams directly into the kernel').

The kernel prints three numbers (checksum, activity stat, deviation stat)
that must match the reference decoder exactly, in both hard-float and
soft-float builds.
"""

from __future__ import annotations

from repro.codecs.hevclite.decoder_ref import DEFAULT_FP_ROUNDS
from repro.codecs.hevclite.encoder import MAGIC, pack_header_info
from repro.codecs.hevclite.tables import (
    BLOCK,
    INV_QUANT_SCALES,
    T8,
    ZIGZAG8,
    rd_lambda,
)
from repro.kir import F64, I32, U32, Module

_MODE_INTER = 4
_MODE_INTER_BI = 5


def build_decoder_module(bitstream: bytes,
                         fp_rounds: int = DEFAULT_FP_ROUNDS,
                         name: str = "hevcdec") -> Module:
    """Build the decoder kernel for one embedded bitstream."""
    width, height, nframes, qp, _cfg = pack_header_info(bitstream)
    per, rem = qp // 6, qp % 6
    scale = INV_QUANT_SCALES[rem] << per
    lam = rd_lambda(qp)

    m = Module(name)
    m.global_bytes("bs", bitstream + b"\x00" * 4, align=4)
    m.global_words("t8", [v & 0xFFFFFFFF for row in T8 for v in row])
    m.global_words("zz", list(ZIGZAG8))
    fsize = width * height
    for buf in ("fcur", "fprev", "fprev2"):
        m.global_zeros(buf, fsize, align=4)
    for buf in ("coef", "tmpb", "predb", "pred2", "resid"):
        m.global_zeros(buf, 64 * 4, align=4)
    m.global_zeros("brpos", 4, align=4)
    m.global_zeros("st_act", 8, align=8)
    m.global_zeros("st_dev", 8, align=8)

    _build_bitreader(m)
    _build_clip16(m)
    _build_dequant(m, scale)
    _build_itransform(m)
    _build_intra(m, width, height)
    _build_mc(m, width, height)
    _build_decode_block(m, width, height, lam, fp_rounds)
    _build_main(m, width, height, nframes, qp)
    return m


def _build_bitreader(m: Module) -> None:
    bs = m.addr_of("bs")
    brpos = m.addr_of("brpos")

    f = m.function("br_bit", ret=I32)
    pos = f.local(I32, "pos", init=f.load(brpos))
    byte = f.local(I32, "byte", init=f.load_u8(bs + (pos >> 3)))
    f.store(brpos, pos + 1)
    shift = f.local(I32, "shift", init=7 - (pos & 7))
    f.ret((byte >> shift) & 1)

    f = m.function("br_bits", [("n", I32)], ret=I32)
    n = f.params[0]
    value = f.local(I32, "value", init=0)
    with f.for_range("i", 0, n):
        f.assign(value, (value << 1) | f.call("br_bit"))
    f.ret(value)

    f = m.function("br_ue", ret=I32)
    zeros = f.local(I32, "zeros", init=0)
    with f.while_(f.call("br_bit") == 0):
        f.assign(zeros, zeros + 1)
        with f.if_(zeros > 32):
            f.sys_exit(2)  # malformed stream
    value = f.local(I32, "uval", init=1)
    with f.for_range("i", 0, zeros):
        f.assign(value, (value << 1) | f.call("br_bit"))
    f.ret(value - 1)

    f = m.function("br_se", ret=I32)
    mapped = f.local(I32, "mapped", init=f.call("br_ue"))
    with f.if_((mapped & 1) != 0) as c:
        f.ret((mapped + 1) >> 1)
    with c.else_():
        f.ret(0 - (mapped >> 1))


def _build_clip16(m: Module) -> None:
    f = m.function("clip16", [("v", I32)], ret=I32)
    v = f.params[0]
    with f.if_(v > 32767):
        f.ret(32767)
    with f.if_(v < -32768):
        f.ret(-32768)
    f.ret(v)


def _build_dequant(m: Module, scale: int) -> None:
    f = m.function("dequant", [("level", I32)], ret=I32)
    level = f.params[0]
    f.ret(f.call("clip16", (level * scale + 32) >> 6))


def _build_itransform(m: Module) -> None:
    """coef[] -> resid[] via the two-stage inverse core transform."""
    t8 = m.addr_of("t8")
    coef = m.addr_of("coef")
    tmpb = m.addr_of("tmpb")
    resid = m.addr_of("resid")
    f = m.function("itransform", ret=None)
    acc = f.local(I32, "acc")
    with f.for_range("i", 0, BLOCK) as i:
        with f.for_range("j", 0, BLOCK) as j:
            f.assign(acc, 64)
            with f.for_range("k", 0, BLOCK) as k:
                f.assign(acc, acc + f.load(t8 + ((k * 8 + i) << 2))
                         * f.load(coef + ((k * 8 + j) << 2)))
            f.store(tmpb + ((i * 8 + j) << 2),
                    f.call("clip16", acc >> 7))
    with f.for_range("i2", 0, BLOCK) as i2:
        with f.for_range("j2", 0, BLOCK) as j2:
            f.assign(acc, 2048)
            with f.for_range("k2", 0, BLOCK) as k2:
                f.assign(acc, acc + f.load(t8 + ((k2 * 8 + j2) << 2))
                         * f.load(tmpb + ((i2 * 8 + k2) << 2)))
            f.store(resid + ((i2 * 8 + j2) << 2),
                    f.call("clip16", acc >> 12))
    f.ret()


def _build_intra(m: Module, width: int, height: int) -> None:
    """``intra_pred(mode, bx, by)`` fills predb from fcur neighbours."""
    fcur = m.addr_of("fcur")
    predb = m.addr_of("predb")
    f = m.function("intra_pred", [("mode", I32), ("bx", I32), ("by", I32)],
                   ret=None)
    mode, bx, by = f.params
    has_top = f.local(I32, "has_top", init=by > 0)
    has_left = f.local(I32, "has_left", init=bx > 0)
    toprow = f.local(I32, "toprow", init=(by - 1) * width + bx)
    leftcol = f.local(I32, "leftcol", init=by * width + bx - 1)

    with f.if_(mode == 0) as cdc:  # DC
        dc = f.local(I32, "dc", init=128)
        total = f.local(I32, "total", init=0)
        with f.if_((has_top != 0) & (has_left != 0)) as cboth:
            with f.for_range("i", 0, BLOCK) as i:
                f.assign(total, total + f.load_u8(fcur + toprow + i)
                         + f.load_u8(fcur + leftcol + i * width))
            f.assign(dc, (total + BLOCK) >> 4)
        with cboth.else_():
            with f.if_(has_top != 0) as ctop:
                with f.for_range("i2", 0, BLOCK) as i2:
                    f.assign(total, total + f.load_u8(fcur + toprow + i2))
                f.assign(dc, (total + (BLOCK >> 1)) >> 3)
            with ctop.else_():
                with f.if_(has_left != 0):
                    with f.for_range("i3", 0, BLOCK) as i3:
                        f.assign(total, total
                                 + f.load_u8(fcur + leftcol + i3 * width))
                    f.assign(dc, (total + (BLOCK >> 1)) >> 3)
        with f.for_range("p", 0, 64) as p:
            f.store(predb + (p << 2), dc)
        f.ret()
    topv = f.local(I32, "topv")
    leftv = f.local(I32, "leftv")
    with f.for_range("y", 0, BLOCK) as y:
        f.assign(leftv, 128)
        with f.if_(has_left != 0):
            f.assign(leftv, f.load_u8(fcur + leftcol + y * width))
        with f.for_range("x", 0, BLOCK) as x:
            f.assign(topv, 128)
            with f.if_(has_top != 0):
                f.assign(topv, f.load_u8(fcur + toprow + x))
            dst = f.local(I32, "dst", init=(y * 8 + x) << 2)
            with f.if_(mode == 1) as c1:        # VERTICAL
                f.store(predb + dst, topv)
            with c1.else_():
                with f.if_(mode == 2) as c2:    # HORIZONTAL
                    f.store(predb + dst, leftv)
                with c2.else_():                # AVERAGE
                    f.store(predb + dst, (topv + leftv + 1) >> 1)
    f.ret()


def _build_mc(m: Module, width: int, height: int) -> None:
    """``mc(refbase, bx, by, mvx, mvy, dstbase)``: clamped full-pel MC."""
    f = m.function("mc", [("refbase", U32), ("bx", I32), ("by", I32),
                          ("mvx", I32), ("mvy", I32)], ret=None)
    refbase, bx, by, mvx, mvy = f.params
    predb = m.addr_of("predb")
    sy = f.local(I32, "sy")
    sx = f.local(I32, "sx")
    with f.for_range("y", 0, BLOCK) as y:
        f.assign(sy, by + y + mvy)
        with f.if_(sy < 0):
            f.assign(sy, 0)
        with f.if_(sy > height - 1):
            f.assign(sy, height - 1)
        with f.for_range("x", 0, BLOCK) as x:
            f.assign(sx, bx + x + mvx)
            with f.if_(sx < 0):
                f.assign(sx, 0)
            with f.if_(sx > width - 1):
                f.assign(sx, width - 1)
            f.store(predb + ((y * 8 + x) << 2),
                    f.load_u8(refbase + sy * width + sx))
    f.ret()


def _build_decode_block(m: Module, width: int, height: int, lam: float,
                        fp_rounds: int) -> None:
    fcur = m.addr_of("fcur")
    fprev = m.addr_of("fprev")
    fprev2 = m.addr_of("fprev2")
    coef = m.addr_of("coef")
    predb = m.addr_of("predb")
    pred2 = m.addr_of("pred2")
    resid = m.addr_of("resid")
    zz = m.addr_of("zz")
    st_act = m.addr_of("st_act")
    st_dev = m.addr_of("st_dev")

    f = m.function("decode_block", [("ftype", I32), ("bx", I32), ("by", I32)],
                   ret=None)
    ftype, bx, by = f.params
    mode = f.local(I32, "mode", init=f.call("br_ue"))
    mvx = f.local(I32, "mvx")
    mvy = f.local(I32, "mvy")

    with f.if_(mode == _MODE_INTER) as cinter:
        f.assign(mvx, f.call("br_se"))
        f.assign(mvy, f.call("br_se"))
        f.call_stat("mc", fprev, bx, by, mvx, mvy)
    with cinter.else_():
        with f.if_(mode == _MODE_INTER_BI) as cbi:
            f.assign(mvx, f.call("br_se"))
            f.assign(mvy, f.call("br_se"))
            f.call_stat("mc", fprev, bx, by, mvx, mvy)
            # stash list-0 prediction, then predict list 1 over it
            with f.for_range("s", 0, 64) as s:
                f.store(pred2 + (s << 2), f.load(predb + (s << 2)))
            f.assign(mvx, f.call("br_se"))
            f.assign(mvy, f.call("br_se"))
            f.call_stat("mc", fprev2, bx, by, mvx, mvy)
            with f.for_range("s2", 0, 64) as s2:
                off = f.local(I32, "off", init=s2 << 2)
                f.store(predb + off,
                        (f.load(pred2 + off) + f.load(predb + off) + 1) >> 1)
        with cbi.else_():
            with f.if_(mode > 3):
                f.sys_exit(3)  # bad mode
            f.call_stat("intra_pred", mode, bx, by)

    with f.for_range("c", 0, 64) as c:
        f.store(coef + (c << 2), 0)
    nnz = f.local(I32, "nnz", init=f.call("br_ue"))
    with f.if_(nnz > 64):
        f.sys_exit(4)
    pos = f.local(I32, "pos", init=0)
    with f.for_range("nz", 0, nnz):
        f.assign(pos, pos + f.call("br_ue"))
        with f.if_(pos >= 64):
            f.sys_exit(5)
        level = f.local(I32, "level", init=f.call("br_se"))
        idx = f.local(I32, "idx", init=f.load(zz + (pos << 2)))
        f.store(coef + (idx << 2), f.call("dequant", level))
        f.assign(pos, pos + 1)

    f.call_stat("itransform")

    sum_abs = f.local(I32, "sum_abs", init=0)
    sum_pix = f.local(I32, "sum_pix", init=0)
    value = f.local(I32, "value")
    res = f.local(I32, "res")
    with f.for_range("y", 0, BLOCK) as y:
        rowoff = f.local(I32, "rowoff", init=(by + y) * width + bx)
        with f.for_range("x", 0, BLOCK) as x:
            boff = f.local(I32, "boff", init=(y * 8 + x) << 2)
            f.assign(res, f.load(resid + boff))
            f.assign(value, f.load(predb + boff) + res)
            with f.if_(value < 0):
                f.assign(value, 0)
            with f.if_(value > 255):
                f.assign(value, 255)
            f.store8(fcur + rowoff + x, value)
            with f.if_(res < 0) as cneg:
                f.assign(sum_abs, sum_abs - res)
            with cneg.else_():
                f.assign(sum_abs, sum_abs + res)
            f.assign(sum_pix, sum_pix + value)

    # HM-style double-precision bookkeeping; identical to decoder_ref.
    act = f.local(F64, "act")
    dev = f.local(F64, "dev")
    s1 = f.local(F64, "s1")
    a = f.local(F64, "a")
    mean = f.local(F64, "mean")
    d = f.local(F64, "d")
    f.assign(act, f.loadf(st_act))
    f.assign(dev, f.loadf(st_dev))
    with f.for_range("r", 0, fp_rounds) as r:
        f.assign(s1, f.itod(sum_abs + r))
        f.assign(a, f.fsqrt(s1 * f.f64const(0.015625)))
        f.assign(act, act + a * f.f64const(lam))
        f.assign(mean, f.itod(sum_pix) * f.f64const(0.015625))
        f.assign(d, mean - f.f64const(128.0))
        f.assign(dev, dev + d * d)
    f.storef(st_act, act)
    f.storef(st_dev, dev)
    f.ret()


def _build_main(m: Module, width: int, height: int, nframes: int,
                qp: int) -> None:
    fcur = m.addr_of("fcur")
    fprev = m.addr_of("fprev")
    fprev2 = m.addr_of("fprev2")
    st_act = m.addr_of("st_act")
    st_dev = m.addr_of("st_dev")
    fsize = width * height

    f = m.function("main", ret=I32)
    f.store(m.addr_of("brpos"), 0)
    # header: verify what the encoder wrote (bad streams exit non-zero)
    with f.if_(f.call("br_bits", 32) != MAGIC):
        f.sys_exit(10)
    with f.if_(f.call("br_bits", 16) != width):
        f.sys_exit(11)
    with f.if_(f.call("br_bits", 16) != height):
        f.sys_exit(11)
    with f.if_(f.call("br_bits", 8) != nframes):
        f.sys_exit(12)
    with f.if_(f.call("br_bits", 8) != qp):
        f.sys_exit(13)
    f.call_stat("br_bits", 8)  # config id (informative)
    f.call_stat("br_bits", 8)  # reserved

    h = f.local(U32, "h", init=0)
    ftype = f.local(I32, "ftype")
    with f.for_range("fr", 0, nframes):
        f.assign(ftype, f.call("br_bits", 8))
        with f.if_(ftype > 3):
            f.sys_exit(14)
        with f.for_range("by", 0, height // BLOCK) as by:
            with f.for_range("bx", 0, width // BLOCK) as bx:
                f.call_stat("decode_block", ftype, bx * BLOCK, by * BLOCK)
        with f.for_range("p", 0, fsize) as p:
            f.assign(h, h * 31 + f.load_u8(fcur + p))
        # reference rotation: prev -> prev2, cur -> prev
        with f.for_range("p2", 0, fsize) as p2:
            f.store8(fprev2 + p2, f.load_u8(fprev + p2))
            f.store8(fprev + p2, f.load_u8(fcur + p2))
    f.sys_write_u32(h)
    f.sys_write_u32(f.dtoi(f.loadf(st_act)))
    f.sys_write_u32(f.dtoi(f.loadf(st_dev)))
    f.ret(0)
