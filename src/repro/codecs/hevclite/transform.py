"""HEVC-style 8x8 integer transform and quantisation (pure integer)."""

from __future__ import annotations

from repro.codecs.hevclite.tables import (
    BLOCK,
    DEQUANT_SHIFT,
    FWD_SHIFT1,
    FWD_SHIFT2,
    INV_QUANT_SCALES,
    INV_SHIFT1,
    INV_SHIFT2,
    QUANT_SCALES,
    T8,
    qp_per_rem,
)

Matrix = list[list[int]]


def _clip16(value: int) -> int:
    if value > 32767:
        return 32767
    if value < -32768:
        return -32768
    return value


def forward_transform(residual: Matrix) -> Matrix:
    """Forward 8x8 core transform (encoder side)."""
    n = BLOCK
    tmp = [[0] * n for _ in range(n)]
    add1 = 1 << (FWD_SHIFT1 - 1)
    for i in range(n):
        for j in range(n):
            acc = sum(T8[i][k] * residual[k][j] for k in range(n))
            tmp[i][j] = (acc + add1) >> FWD_SHIFT1
    out = [[0] * n for _ in range(n)]
    add2 = 1 << (FWD_SHIFT2 - 1)
    for i in range(n):
        for j in range(n):
            acc = sum(tmp[i][k] * T8[j][k] for k in range(n))
            out[i][j] = (acc + add2) >> FWD_SHIFT2
    return out


def inverse_transform(coeffs: Matrix) -> Matrix:
    """Inverse 8x8 core transform; the kernel implements the identical
    arithmetic (same shifts, same 16-bit clipping points)."""
    n = BLOCK
    tmp = [[0] * n for _ in range(n)]
    add1 = 1 << (INV_SHIFT1 - 1)
    for i in range(n):
        for j in range(n):
            acc = sum(T8[k][i] * coeffs[k][j] for k in range(n))
            tmp[i][j] = _clip16((acc + add1) >> INV_SHIFT1)
    out = [[0] * n for _ in range(n)]
    add2 = 1 << (INV_SHIFT2 - 1)
    for i in range(n):
        for j in range(n):
            acc = sum(T8[k][j] * tmp[i][k] for k in range(n))
            out[i][j] = _clip16((acc + add2) >> INV_SHIFT2)
    return out


def quantize(coeffs: Matrix, qp: int) -> Matrix:
    """Forward quantisation (encoder side; HEVC scales, 1/3 offset)."""
    per, rem = qp_per_rem(qp)
    scale = QUANT_SCALES[rem]
    qbits = 14 + per
    offset = (1 << qbits) // 3
    out = [[0] * BLOCK for _ in range(BLOCK)]
    for y in range(BLOCK):
        for x in range(BLOCK):
            c = coeffs[y][x]
            mag = (abs(c) * scale + offset) >> qbits
            out[y][x] = -mag if c < 0 else mag
    return out


def dequantize_level(level: int, qp: int) -> int:
    """Dequantise one level (shared scalar used by ref and kernel)."""
    per, rem = qp_per_rem(qp)
    scale = INV_QUANT_SCALES[rem] << per
    return _clip16((level * scale + (1 << (DEQUANT_SHIFT - 1))) >> DEQUANT_SHIFT)


def dequantize(levels: Matrix, qp: int) -> Matrix:
    """Dequantise a whole block."""
    return [[dequantize_level(levels[y][x], qp) for x in range(BLOCK)]
            for y in range(BLOCK)]
