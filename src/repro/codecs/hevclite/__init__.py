"""HEVC-lite: the video-decoding workload of the evaluation (Section VI.A).

A complete small hybrid video codec standing in for HM-11.0:

* :mod:`~repro.codecs.hevclite.encoder` -- host-side closed-loop encoder;
* :mod:`~repro.codecs.hevclite.decoder_ref` -- host-side reference decoder;
* :mod:`~repro.codecs.hevclite.kernel` -- the decoder as a bare-metal
  kernel-IR program for the simulated LEON3;
* :mod:`~repro.codecs.hevclite.streams` -- the 36-bitstream evaluation set
  (4 configurations x 3 QPs x 3 sequences).
"""

from repro.codecs.hevclite.decoder_ref import DecodeResult, decode
from repro.codecs.hevclite.encoder import (
    CONFIGS,
    EncodeResult,
    encode,
    frame_types_for,
)
from repro.codecs.hevclite.kernel import build_decoder_module
from repro.codecs.hevclite.sequences import SEQUENCE_NAMES, make_sequence
from repro.codecs.hevclite.streams import (
    QPS,
    StreamSpec,
    encode_spec,
    stream_specs,
)

__all__ = [
    "CONFIGS",
    "DecodeResult",
    "EncodeResult",
    "QPS",
    "SEQUENCE_NAMES",
    "StreamSpec",
    "build_decoder_module",
    "decode",
    "encode",
    "encode_spec",
    "frame_types_for",
    "make_sequence",
    "stream_specs",
]
