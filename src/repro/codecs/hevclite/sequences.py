"""Synthetic raw video sequences (the paper's three input sequences)."""

from __future__ import annotations

import math

SEQUENCE_NAMES = ("gradient_pan", "blocks_bounce", "texture_noise")

Frame = list[list[int]]


def _lcg(seed: int):
    state = (seed * 1664525 + 1013904223) & 0xFFFFFFFF

    def rand() -> int:
        nonlocal state
        state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
        return state >> 16

    return rand


def make_sequence(name: str, width: int = 16, height: int = 16,
                  frames: int = 3) -> list[Frame]:
    """Generate a deterministic raw sequence by name."""
    if name == "gradient_pan":
        return _gradient_pan(width, height, frames)
    if name == "blocks_bounce":
        return _blocks_bounce(width, height, frames)
    if name == "texture_noise":
        return _texture_noise(width, height, frames)
    raise ValueError(f"unknown sequence {name!r}; "
                     f"available: {SEQUENCE_NAMES}")


def _gradient_pan(width: int, height: int, frames: int) -> list[Frame]:
    """A smooth diagonal gradient panning one pixel per frame."""
    out = []
    for t in range(frames):
        frame = [[max(0, min(255, 40 + 6 * ((x + 2 * t) % width)
                             + 5 * ((y + t) % height)))
                  for x in range(width)] for y in range(height)]
        out.append(frame)
    return out


def _blocks_bounce(width: int, height: int, frames: int) -> list[Frame]:
    """A bright square moving over a dark background (sharp edges)."""
    out = []
    for t in range(frames):
        frame = [[48] * width for _ in range(height)]
        bs = max(4, width // 4)
        x0 = (2 + 3 * t) % (width - bs)
        y0 = (1 + 2 * t) % (height - bs)
        for y in range(y0, y0 + bs):
            for x in range(x0, x0 + bs):
                frame[y][x] = 220
        # a static mid-grey stripe for intra modes to chew on
        for y in range(height):
            frame[y][width - 2] = 128
        out.append(frame)
    return out


def _texture_noise(width: int, height: int, frames: int) -> list[Frame]:
    """Sinusoidal texture plus correlated noise, drifting slowly."""
    rand = _lcg(97)
    base = [[(rand() % 33) - 16 for _ in range(width)] for _ in range(height)]
    out = []
    for t in range(frames):
        frame = []
        for y in range(height):
            row = []
            for x in range(width):
                v = 128 + 36 * math.sin(0.8 * (x + t) + 0.3 * y) \
                    + base[y][(x + t) % width]
                row.append(max(0, min(255, int(round(v)))))
            frame.append(row)
        out.append(frame)
    return out
