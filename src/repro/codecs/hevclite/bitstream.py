"""Bit-level I/O with exponential-Golomb codes (the HEVC entropy layer)."""

from __future__ import annotations


class BitWriter:
    """MSB-first bit writer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nbits = 0

    def put_bit(self, bit: int) -> None:
        self._acc = (self._acc << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._bytes.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def put_bits(self, value: int, count: int) -> None:
        for shift in range(count - 1, -1, -1):
            self.put_bit((value >> shift) & 1)

    def put_ue(self, value: int) -> None:
        """Unsigned exponential-Golomb."""
        if value < 0:
            raise ValueError(f"ue(v) needs a non-negative value: {value}")
        value += 1
        nbits = value.bit_length()
        self.put_bits(0, nbits - 1)
        self.put_bits(value, nbits)

    def put_se(self, value: int) -> None:
        """Signed exponential-Golomb (0, 1, -1, 2, -2, ...)."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.put_ue(mapped)

    def flush(self) -> bytes:
        """Pad with zero bits to a byte boundary and return the stream."""
        while self._nbits:
            self.put_bit(0)
        return bytes(self._bytes)


class BitReader:
    """MSB-first bit reader (mirrors the kernel's reader exactly)."""

    def __init__(self, data: bytes):
        self._data = data
        self.pos = 0  # bit position

    def get_bit(self) -> int:
        byte = self._data[self.pos >> 3]
        bit = (byte >> (7 - (self.pos & 7))) & 1
        self.pos += 1
        return bit

    def get_bits(self, count: int) -> int:
        value = 0
        for _ in range(count):
            value = (value << 1) | self.get_bit()
        return value

    def get_ue(self) -> int:
        zeros = 0
        while self.get_bit() == 0:
            zeros += 1
            if zeros > 32:
                raise ValueError("malformed exp-Golomb code")
        value = 1
        for _ in range(zeros):
            value = (value << 1) | self.get_bit()
        return value - 1

    def get_se(self) -> int:
        mapped = self.get_ue()
        if mapped & 1:
            return (mapped + 1) >> 1
        return -(mapped >> 1)

    @property
    def byte_pos(self) -> int:
        return (self.pos + 7) >> 3
