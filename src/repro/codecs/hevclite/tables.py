"""Constant tables of the HEVC-lite codec.

The 8x8 core transform matrix and the quantisation scales are HEVC's own
(H.265 spec tables); the zigzag scan and the rate-distortion lambda follow
the HM reference software conventions.
"""

from __future__ import annotations

#: HEVC 8x8 core transform matrix (rows are basis vectors).
T8: tuple[tuple[int, ...], ...] = (
    (64, 64, 64, 64, 64, 64, 64, 64),
    (89, 75, 50, 18, -18, -50, -75, -89),
    (83, 36, -36, -83, -83, -36, 36, 83),
    (75, -18, -89, -50, 50, 89, 18, -75),
    (64, -64, -64, 64, 64, -64, -64, 64),
    (50, -89, 18, 75, -75, -18, 89, -50),
    (36, -83, 83, -36, -36, 83, -83, 36),
    (18, -50, 75, -89, 89, -75, 50, -18),
)

#: Forward quantisation scales, indexed by qp % 6 (HEVC quantScales).
QUANT_SCALES: tuple[int, ...] = (26214, 23302, 20560, 18396, 16384, 14564)

#: Inverse quantisation scales, indexed by qp % 6 (HEVC invQuantScales).
INV_QUANT_SCALES: tuple[int, ...] = (40, 45, 51, 57, 64, 72)

#: Diagonal zigzag scan order for an 8x8 block (raster indices).
ZIGZAG8: tuple[int, ...] = tuple(
    y * 8 + x
    for s in range(15)
    for y, x in sorted(
        ((yy, s - yy) for yy in range(max(0, s - 7), min(8, s + 1))),
        key=lambda p: p[0] if s % 2 else -p[0],
    )
)

BLOCK = 8
BITDEPTH = 8

#: forward transform shifts for 8x8 / 8-bit (HEVC: log2N + BD - 9, log2N + 6)
FWD_SHIFT1 = 2
FWD_SHIFT2 = 9
#: inverse transform shifts (HEVC: 7 and 12 for 8-bit)
INV_SHIFT1 = 7
INV_SHIFT2 = 12
#: dequantisation shift for 8x8 / 8-bit (HEVC: BD + log2N - 5)
DEQUANT_SHIFT = 6


def qp_per_rem(qp: int) -> tuple[int, int]:
    """Split a QP (0..51) into (qp // 6, qp % 6)."""
    if not 0 <= qp <= 51:
        raise ValueError(f"QP out of range: {qp}")
    return qp // 6, qp % 6


def rd_lambda(qp: int) -> float:
    """HM-style rate-distortion lambda, used by the decoder's double-
    precision statistics bookkeeping (the paper's 'few FP operations')."""
    return 0.85 * 2.0 ** ((qp - 12) / 3.0)
