"""Video codec substrates used as estimation workloads."""
