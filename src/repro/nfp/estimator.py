"""High-level estimation API: kernel in, time/energy estimate out.

This is the workflow of the paper's Fig. 1 "Our Work" box: run the kernel
on the fast instruction-accurate simulator (which costs barely more than a
purely functional run), read the per-category counters, and apply the
mechanistic model.  No cycle-accurate simulation is involved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.nfp.model import Estimate, MechanisticModel
from repro.vm.config import CoreConfig
from repro.vm.cpu import DEFAULT_BUDGET
from repro.vm.simulator import SimulationResult, Simulator


@dataclass
class EstimationReport:
    """Result of estimating one kernel."""

    kernel: str
    estimate: Estimate
    sim: SimulationResult

    @property
    def time_s(self) -> float:
        return self.estimate.time_s

    @property
    def energy_j(self) -> float:
        return self.estimate.energy_j

    @property
    def counts(self) -> dict[str, int]:
        return self.sim.category_counts


class NFPEstimator:
    """Estimates non-functional properties of kernels with Eq. 1.

    Parameters
    ----------
    model:
        The mechanistic model (usually from
        :meth:`repro.nfp.calibration.CalibrationResult.to_model`).
    core:
        Functional core configuration for the virtual platform; must match
        the hardware the model was calibrated for (in particular FPU
        presence, or FP kernels will trap).
    """

    def __init__(self, model: MechanisticModel, core: CoreConfig | None = None):
        self.model = model
        self.core = core or CoreConfig()

    def estimate_program(self, program: Program, kernel_name: str = "kernel",
                         max_instructions: int = DEFAULT_BUDGET
                         ) -> EstimationReport:
        """Simulate ``program`` on the ISS and apply the model."""
        sim_result = Simulator(program, self.core).run(
            max_instructions=max_instructions)
        return self.report_from_result(sim_result, kernel_name=kernel_name)

    def report_from_result(self, sim_result: SimulationResult,
                           kernel_name: str = "kernel") -> EstimationReport:
        """Apply the model to an already-simulated run's counts.

        Every loop of the simulator -- fast blocks, stepping, metered
        blocks -- retires bit-identical category counts, so a cached or
        testbed-metered run can stand in for a fresh ISS run here.
        """
        estimate = self.model.estimate(sim_result.counts_vector)
        return EstimationReport(kernel=kernel_name, estimate=estimate,
                                sim=sim_result)

    def estimate_counts(self, counts: dict[str, int]) -> Estimate:
        """Apply the model to externally obtained category counts."""
        return self.model.estimate_from_mapping(counts)
