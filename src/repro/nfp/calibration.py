"""Specific-cost calibration via reference/test kernel pairs (Section V).

For every instruction category a *reference kernel* (an empty ``for``
loop) and a *test kernel* (the same loop stuffed with ``unroll`` copies of
a representative instruction of the category) are generated, assembled and
measured on the testbed board.  Eq. 2 then yields the specific values::

    e_c = (E_test - E_ref) / n_test      t_c = (T_test - T_ref) / n_test

with ``n_test = iterations * unroll``.

As the paper notes, the loop context is unrealistically regular, so the
raw values are *checked for consistency and manually adapted, if
necessary*; :meth:`Calibrator.calibrate` performs the automatic part of
that step (clamping non-physical negatives, flagging suspicious values)
and :func:`blend_with_mix` implements the mix-weighted refinement used
when a category's members differ strongly (e.g. integer divide vs. add).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm import assemble
from repro.hw.board import Board, Measurement
from repro.isa.categories import (
    CATEGORY_IDS,
    category_index,
)
from repro.nfp.model import MechanisticModel, SpecificCosts

_DATA_SECTION = """
    .data
    .align 8
cal_fpa:    .word 0x3FFD0000, 0          ! 1.8125
cal_fpb:    .word 0x40020000, 0          ! 2.25
cal_buf:
    .word 0x00000000, 0xFFFFFFFF, 0xA5A5A5A5, 0x5A5A5A5A
    .word 0x12345678, 0x9ABCDEF0, 0x0F0F0F0F, 0xF0F0F0F0
    .word 0x00FF00FF, 0xFF00FF00, 0x31415926, 0x27182818
    .word 0x55555555, 0xAAAAAAAA, 0x13579BDF, 0x2468ACE0
"""

_PREAMBLE = """
    set cal_buf, %o1
    set cal_fpa, %o2
    lddf [%o2], %f0
    set cal_fpb, %o2
    lddf [%o2], %f2
    mov 5, %g2
    mov 9, %g3
    mov 14, %g4
"""


def _body_lines(category_id: str, unroll: int, fpu: bool) -> list[str]:
    """The ``unroll`` test instructions placed inside the loop."""
    lines: list[str] = []
    if category_id == "int_arith":
        regs = ["%g2", "%g3", "%g4"]
        for i in range(unroll):
            a, b, d = (regs[i % 3], regs[(i + 1) % 3], regs[(i + 2) % 3])
            lines.append(f"    add {a}, {b}, {d}")
    elif category_id == "jump":
        for i in range(unroll):
            lines.append(f"    ba,a cal_j{i}")
            lines.append("    nop            ! annulled, never retires")
            lines.append(f"cal_j{i}:")
    elif category_id == "mem_load":
        for i in range(unroll):
            lines.append(f"    ld [%o1 + {(i % 16) * 4}], %g2")
    elif category_id == "mem_store":
        srcs = ["%g2", "%g3", "%g4"]
        for i in range(unroll):
            lines.append(f"    st {srcs[i % 3]}, [%o1 + {(i % 16) * 4}]")
    elif category_id == "nop":
        lines.extend(["    nop"] * unroll)
    elif category_id == "other":
        for i in range(unroll):
            lines.append("    rd %y, %g2" if i % 2 == 0 else "    wr %g3, 0, %y")
    elif category_id == "fpu_arith":
        for i in range(unroll):
            lines.append("    faddd %f0, %f2, %f4" if i % 2 == 0
                         else "    fsubd %f4, %f2, %f6")
    elif category_id == "fpu_div":
        lines.extend(["    fdivd %f0, %f2, %f4"] * unroll)
    elif category_id == "fpu_sqrt":
        lines.extend(["    fsqrtd %f0, %f4"] * unroll)
    else:
        raise ValueError(f"unknown category {category_id!r}")
    if category_id.startswith("fpu") and not fpu:
        raise ValueError(f"category {category_id!r} needs an FPU board")
    return lines


_INT_PREAMBLE = """
    set cal_buf, %o1
    mov 5, %g2
    mov 9, %g3
    mov 14, %g4
"""


def _kernel_source(iterations: int, body: list[str],
                   needs_fpu_preamble: bool) -> str:
    # FP register loads only appear when the category exercises the FPU, so
    # the same pair also assembles for boards synthesised without one.
    preamble = _PREAMBLE if needs_fpu_preamble else _INT_PREAMBLE
    body_text = "\n".join(body)
    return f"""
    .text
_start:
{preamble}
    set {iterations}, %o0
cal_loop:
{body_text}
    subcc %o0, 1, %o0
    bne cal_loop
    nop
    mov 0, %o0
    mov 0, %g1
    ta 5
{_DATA_SECTION}
"""


@dataclass(frozen=True)
class KernelPair:
    """Table II: a reference kernel and a test kernel for one category."""

    category_id: str
    reference_source: str
    test_source: str
    n_test: int


def make_kernel_pair(category_id: str, iterations: int = 20000,
                     unroll: int = 32, fpu: bool = True) -> KernelPair:
    """Generate the Table-II kernel pair for ``category_id``."""
    if iterations <= 0 or unroll <= 0:
        raise ValueError("iterations and unroll must be positive")
    body = _body_lines(category_id, unroll, fpu)
    uses_fpu = category_id.startswith("fpu")
    return KernelPair(
        category_id=category_id,
        reference_source=_kernel_source(iterations, [], uses_fpu),
        test_source=_kernel_source(iterations, body, uses_fpu),
        n_test=iterations * unroll,
    )


@dataclass
class CategoryCalibration:
    """Raw calibration record for one category."""

    category_id: str
    time_ns: float
    energy_nj: float
    n_test: int
    reference: Measurement
    test: Measurement
    adapted: bool = False


@dataclass
class CalibrationResult:
    """Full calibration outcome: Table I plus provenance."""

    board_name: str
    iterations: int
    unroll: int
    records: dict[str, CategoryCalibration]
    warnings: list[str] = field(default_factory=list)

    def specific_costs(self) -> SpecificCosts:
        time_ns = {}
        energy_nj = {}
        for cid in CATEGORY_IDS:
            record = self.records.get(cid)
            time_ns[cid] = record.time_ns if record else 0.0
            energy_nj[cid] = record.energy_nj if record else 0.0
        return SpecificCosts.from_mappings(time_ns, energy_nj)

    def to_model(self, name: str | None = None) -> MechanisticModel:
        return MechanisticModel(
            self.specific_costs(),
            name=name or f"calibrated@{self.board_name}")

    def table1_rows(self) -> list[tuple[str, float, float]]:
        """(category, t_c ns, e_c nJ) rows for rendering Table I."""
        return [(cid, rec.time_ns, rec.energy_nj)
                for cid, rec in self.records.items()]


class Calibrator:
    """Runs the Section-V measurement procedure on a board.

    Parameters
    ----------
    board:
        The testbed to measure on.  FP categories are skipped (with a
        warning) when the board's core has no FPU.
    iterations, unroll:
        Loop trip count and in-loop copies of the test instruction;
        ``n_test = iterations * unroll`` instructions are averaged.
    runner:
        Optional :class:`~repro.runner.ExperimentRunner`: the category
        kernel simulations are then prefetched as one batch (parallel
        workers, shared result cache) while the instrument readings stay
        sequential in category order, so the calibrated constants are
        bit-identical with or without it.
    """

    def __init__(self, board: Board, iterations: int = 20000,
                 unroll: int = 32, max_instructions: int = 400_000_000,
                 runner=None):
        self.board = board
        self.iterations = iterations
        self.unroll = unroll
        self.max_instructions = max_instructions
        self.runner = runner

    def _measure(self, program) -> Measurement:
        if self.runner is not None:
            raw = self.runner.metered_raw(program, self.board.config,
                                          self.max_instructions)
            return self.board.reading(raw)
        return self.board.measure(program,
                                  max_instructions=self.max_instructions)

    def _record(self, pair: KernelPair, ref: Measurement,
                test: Measurement) -> CategoryCalibration:
        """Eq. 2 on one measured kernel pair."""
        time_ns = (test.time_s - ref.time_s) / pair.n_test * 1e9
        energy_nj = (test.energy_j - ref.energy_j) / pair.n_test * 1e9
        return CategoryCalibration(
            category_id=pair.category_id,
            time_ns=time_ns,
            energy_nj=energy_nj,
            n_test=pair.n_test,
            reference=ref,
            test=test,
        )

    def calibrate_category(self, category_id: str) -> CategoryCalibration:
        """Measure one category's kernel pair and apply Eq. 2."""
        pair = make_kernel_pair(category_id, self.iterations, self.unroll,
                                fpu=self.board.config.core.has_fpu)
        ref = self._measure(assemble(pair.reference_source))
        test = self._measure(assemble(pair.test_source))
        return self._record(pair, ref, test)

    def calibrate(self, categories: list[str] | None = None) -> CalibrationResult:
        """Calibrate all (or the given) categories; see module docstring."""
        selected = categories or list(CATEGORY_IDS)
        jobs = []
        warnings: list[str] = []
        has_fpu = self.board.config.core.has_fpu
        for cid in selected:
            category_index(cid)  # validates the id
            if cid.startswith("fpu") and not has_fpu:
                warnings.append(
                    f"{cid}: skipped (board {self.board.config.name!r} "
                    f"has no FPU)")
                continue
            pair = make_kernel_pair(cid, self.iterations, self.unroll,
                                    fpu=has_fpu)
            jobs.append((pair, assemble(pair.reference_source),
                         assemble(pair.test_source)))
        if self.runner is not None and jobs:
            from repro.runner import SimTask
            self.runner.run_tasks([
                SimTask(mode="metered", program=program,
                        budget=self.max_instructions,
                        hw=self.board.config)
                for _, ref, test in jobs for program in (ref, test)])
        records: dict[str, CategoryCalibration] = {}
        for pair, ref_program, test_program in jobs:
            record = self._record(pair, self._measure(ref_program),
                                  self._measure(test_program))
            self._consistency_adapt(record, warnings)
            records[pair.category_id] = record
        return CalibrationResult(
            board_name=self.board.config.name,
            iterations=self.iterations,
            unroll=self.unroll,
            records=records,
            warnings=warnings,
        )

    @staticmethod
    def _consistency_adapt(record: CategoryCalibration,
                           warnings: list[str]) -> None:
        """The paper's "checked for consistency and manually adapted"."""
        if record.time_ns <= 0:
            warnings.append(
                f"{record.category_id}: non-physical specific time "
                f"{record.time_ns:.2f} ns clamped")
            record.time_ns = 1.0
            record.adapted = True
        if record.energy_nj <= 0:
            warnings.append(
                f"{record.category_id}: non-physical specific energy "
                f"{record.energy_nj:.2f} nJ clamped")
            record.energy_nj = 0.5
            record.adapted = True


def blend_with_mix(base: SpecificCosts, category_id: str,
                   member_costs: dict[str, tuple[float, float]],
                   mix: dict[str, float]) -> SpecificCosts:
    """Mix-weighted refinement of one category's constants.

    ``member_costs`` maps member mnemonics to their individually calibrated
    ``(time_ns, energy_nj)``; ``mix`` gives the expected relative frequency
    of each member in real workloads.  The category constant becomes the
    mix-weighted mean -- this is the systematic version of the paper's
    manual adaptation and is exercised by the ablation benchmarks.
    """
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("mix weights must sum to a positive value")
    t = sum(member_costs[m][0] * w for m, w in mix.items()) / total
    e = sum(member_costs[m][1] * w for m, w in mix.items()) / total
    idx = category_index(category_id)
    time_ns = list(base.time_ns)
    energy_nj = list(base.energy_nj)
    time_ns[idx] = t
    energy_nj[idx] = e
    return SpecificCosts(tuple(time_ns), tuple(energy_nj))
