"""Design-space exploration: is the FPU worth its chip area? (Section VI.D)

The model's first application in the paper: simulate a workload compiled
*with* FP instructions on a core with FPU and compiled *soft-float* on a
core without, compare estimated time/energy, and weigh the savings against
the synthesis area increase (Table IV).

Since the generalized exploration engine landed (:mod:`repro.dse`), this
module is a thin preset over it: :func:`explore_fpu` sweeps the one-axis
FPU design space on the estimation path
(:func:`repro.dse.presets.explore_fpu_grid`) and reshapes the grid into
the classic Table IV report.  The numbers are bit-identical to the
pre-engine implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dse.presets import FPU_CONFIG, NOFPU_CONFIG, explore_fpu_grid
from repro.dse.workload import WorkloadPair
from repro.hw.area import fpu_area_increase
from repro.nfp.estimator import NFPEstimator
from repro.vm.config import CoreConfig
from repro.vm.cpu import DEFAULT_BUDGET

__all__ = ["WorkloadPair", "DseRow", "DseReport", "explore_fpu"]


@dataclass(frozen=True)
class DseRow:
    """Table IV row for one workload: relative change when adding an FPU."""

    workload: str
    energy_change: float
    time_change: float
    float_energy_j: float
    fixed_energy_j: float
    float_time_s: float
    fixed_time_s: float

    @property
    def energy_change_percent(self) -> float:
        return 100.0 * self.energy_change

    @property
    def time_change_percent(self) -> float:
        return 100.0 * self.time_change


@dataclass(frozen=True)
class DseReport:
    """Full Table IV: per-workload changes plus the area cost."""

    rows: tuple[DseRow, ...]
    area_increase: float

    @property
    def area_increase_percent(self) -> float:
        return 100.0 * self.area_increase

    def row(self, workload: str) -> DseRow:
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)


def explore_fpu(estimator_fpu: NFPEstimator, estimator_nofpu: NFPEstimator,
                workloads: Sequence[WorkloadPair],
                max_instructions: int = DEFAULT_BUDGET) -> DseReport:
    """Run the Table-IV experiment over ``workloads``.

    Each workload's ``float`` build is estimated on the FPU platform and
    its ``fixed`` build on the FPU-less platform; the reported change is
    ``(float - fixed) / fixed``, i.e. what introducing an FPU changes.
    """
    grid = explore_fpu_grid(estimator_fpu, estimator_nofpu, workloads,
                            budget=max_instructions)
    rows = []
    for pair in workloads:
        with_fpu = grid.point(FPU_CONFIG, pair.name)
        without_fpu = grid.point(NOFPU_CONFIG, pair.name)
        rows.append(DseRow(
            workload=pair.name,
            energy_change=(with_fpu.energy_j - without_fpu.energy_j)
            / without_fpu.energy_j,
            time_change=(with_fpu.time_s - without_fpu.time_s)
            / without_fpu.time_s,
            float_energy_j=with_fpu.energy_j,
            fixed_energy_j=without_fpu.energy_j,
            float_time_s=with_fpu.time_s,
            fixed_time_s=without_fpu.time_s,
        ))
    return DseReport(rows=tuple(rows),
                     area_increase=fpu_area_increase(CoreConfig()))
