"""Estimation-error metrics (Section VI.C, Eq. 3 and Table III)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def relative_error(estimated: float, measured: float) -> float:
    """Eq. 3: signed relative estimation error ``(x_hat - x) / x``."""
    if measured == 0:
        raise ValueError("measured value is zero; relative error undefined")
    return (estimated - measured) / measured


@dataclass(frozen=True)
class ErrorSummary:
    """Mean and maximum absolute relative error over a kernel set."""

    mean_abs: float
    max_abs: float
    count: int

    @property
    def mean_abs_percent(self) -> float:
        return 100.0 * self.mean_abs

    @property
    def max_abs_percent(self) -> float:
        return 100.0 * self.max_abs


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Table-III aggregation of per-kernel signed errors."""
    if not errors:
        raise ValueError("no errors to summarise")
    magnitudes = [abs(e) for e in errors]
    max_abs = max(magnitudes)
    # fsum + clamp: naive summation can round the mean one ulp above the
    # maximum for tiny same-magnitude inputs, violating mean <= max.
    mean_abs = min(math.fsum(magnitudes) / len(magnitudes), max_abs)
    return ErrorSummary(
        mean_abs=mean_abs,
        max_abs=max_abs,
        count=len(magnitudes),
    )


@dataclass(frozen=True)
class KernelError:
    """Per-kernel estimation record feeding Table III."""

    kernel: str
    estimated_time_s: float
    measured_time_s: float
    estimated_energy_j: float
    measured_energy_j: float

    @property
    def time_error(self) -> float:
        return relative_error(self.estimated_time_s, self.measured_time_s)

    @property
    def energy_error(self) -> float:
        return relative_error(self.estimated_energy_j, self.measured_energy_j)


def table3(records: Sequence[KernelError]) -> dict[str, ErrorSummary]:
    """Aggregate per-kernel records into the two Table-III columns."""
    return {
        "energy": summarize_errors([r.energy_error for r in records]),
        "time": summarize_errors([r.time_error for r in records]),
    }
