"""Linear NFP evaluation: price any hardware config from one profile.

This is Eq. 1 taken to its logical end.  A profiled run
(:class:`repro.vm.profiler.ProfileMeter`) captures the execution counts
the retire-cost algebra of :class:`repro.hw.board.CostMeter` consumes;
:class:`LinearNfpEngine` then reproduces the metered accumulation for an
arbitrary :class:`~repro.hw.config.HwConfig` as dot products against
config-derived cost vectors:

``cycles``
    ``sum(count[m] * cycle_table[m]) - untaken * discount - div_refund
    + traps(nwindows) * trap_cycles`` -- pure integer arithmetic, so the
    result is *bit-identical* to the metered run's accumulator.  The
    cycle table itself already encodes the wait-state axis, the window
    axis enters through the depth histograms, and the clock only scales
    the time conversion.

``dynamic energy``
    Every metered retire adds ``dyn[m] * (1 + amp * (idx/32768 - 1))``.
    Summed per mnemonic this is ``dyn[m] * (count[m] + amp * J[m])``
    with ``J[m] = (jsum[m] - count[m] * 2**15) * 2**-15`` recovered
    *exactly* from the profile's integer index sums; untaken branches
    contribute an extra ``(factor - 1)`` share and window traps an
    extra ``trap_nj`` share.  The per-mnemonic terms are combined with
    ``math.fsum``, so the only deviation from the metered run is the
    metered run's own float-accumulation drift -- a random walk that
    grows roughly with the square root of the retired count (measured
    <= 1e-12 relative across the stock smoke sweep at ~2e6 retires per
    point; budget the tolerance accordingly for much longer runs).  The
    DVFS axis scales ``dyn`` uniformly and drops straight through.

The evaluator is deterministic and order-independent (integer sums plus
a correctly-rounded float sum), so warm-cache, cold-cache and parallel
evaluations of the same profile are byte-identical.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.hw.config import HwConfig, ScaledDynTable
from repro.vm.blocks import FLAG_BRANCH

#: Exact scale of the centred jitter index: ``idx * 2**-15 - 1``.
_SCALE = 2.0 ** -15


def numpy_or_none():
    """The ``numpy`` module when importable and not disabled, else ``None``.

    ``REPRO_NUMPY=0`` (or ``off``/``no``/``false``) forces the pure-python
    path even where numpy is installed -- the knob the fallback tests use
    to cover both paths in one environment.  The batch evaluator is
    *bit-identical* either way (see :class:`BatchNfpEngine`), so the knob
    changes throughput, never results.
    """
    if os.environ.get("REPRO_NUMPY", "").strip().lower() in (
            "0", "off", "no", "false"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        return None
    return numpy


@dataclass(frozen=True)
class ExecutionProfile:
    """One run's config-independent cost basis (see ``ProfileMeter``).

    ``mnemonics`` maps each retired mnemonic to
    ``(count, jsum, untaken_count, untaken_jsum)``; the site and depth
    tables carry the branch/divide/window detail described in
    :mod:`repro.vm.profiler`.  Instances are plain data: they travel as
    JSON payloads through the result cache and worker pool.
    """

    retired: int
    clean: bool
    mnemonics: Mapping[str, tuple[int, int, int, int]]
    branch_sites: Mapping[int, tuple[int, int]]
    div_sites: Mapping[int, tuple[int, int]]
    save_depths: Mapping[int, tuple[int, int]]
    restore_depths: Mapping[int, tuple[int, int]]

    @classmethod
    def from_payload(cls, data: dict) -> "ExecutionProfile":
        """Rebuild a profile from its JSON payload (cache/pool format)."""
        from repro.vm.profiler import PROFILE_VERSION
        version = data.get("version")
        if version != PROFILE_VERSION:
            # belt and braces behind the task-schema key: a structure
            # change must never be deserialised as the current one
            raise ValueError(
                f"execution-profile payload version {version!r} does not "
                f"match PROFILE_VERSION {PROFILE_VERSION}")

        def intkeys(table: dict) -> dict[int, tuple[int, ...]]:
            return {int(k): tuple(v) for k, v in table.items()}

        return cls(
            retired=data["retired"],
            clean=bool(data["clean"]),
            mnemonics={m: tuple(v) for m, v in data["mnemonics"].items()},
            branch_sites=intkeys(data["branch_sites"]),
            div_sites=intkeys(data["div_sites"]),
            save_depths=intkeys(data["save_depths"]),
            restore_depths=intkeys(data["restore_depths"]),
        )

    @property
    def div_refund_cycles(self) -> int:
        """Total divide bit-length cycle refund (config-independent)."""
        return sum(cell[1] for cell in self.div_sites.values())

    def window_events(self, nwindows: int) -> tuple[int, int, int]:
        """``(spills, fills, trap index sum)`` under ``nwindows`` windows.

        A save spills iff its post-increment depth is ``>= nwindows - 1``
        and a restore fills symmetrically (pre-decrement depth) -- the
        morpher's exact trap conditions applied to the recorded depth
        histogram, so any candidate window count is priced from one run.
        """
        spills = fills = jsum = 0
        for depth, (count, j) in self.save_depths.items():
            if depth >= nwindows - 1:
                spills += count
                jsum += j
        for depth, (count, j) in self.restore_depths.items():
            if depth >= nwindows - 1:
                fills += count
                jsum += j
        return spills, fills, jsum


# -- profile algebra ----------------------------------------------------------
#
# Every field of an ExecutionProfile is an integer count or an integer
# sum of integers, so profiles form a commutative monoid under pointwise
# addition and composition is *exact*: the profile of "run A, then run B
# as an independent program" is ``add_profiles(A, B)`` with no rounding
# anywhere.  This is what lets a many-frame image pipeline be priced as
# ``sum_c count_c * sum_s profile(stage s, frame class c)`` instead of
# one simulation of the whole frame stream per configuration
# (:mod:`repro.workloads.pipeline`).

#: Site keys are program counters (32-bit); composed stages are rebased
#: into disjoint key windows of this span (:func:`offset_sites`) so
#: same-pc sites of *different* stage programs never alias in the
#: composed site tables.
SITE_SPAN = 1 << 32

_IDENTITY_PROFILE: "ExecutionProfile | None" = None


def identity_profile() -> ExecutionProfile:
    """The empty profile: the neutral element of :func:`add_profiles`."""
    global _IDENTITY_PROFILE
    if _IDENTITY_PROFILE is None:
        _IDENTITY_PROFILE = ExecutionProfile(
            retired=0, clean=True, mnemonics={}, branch_sites={},
            div_sites={}, save_depths={}, restore_depths={})
    return _IDENTITY_PROFILE


def _merge_cells(tables) -> dict:
    out: dict = {}
    for table in tables:
        for key, cell in table.items():
            held = out.get(key)
            out[key] = (tuple(cell) if held is None
                        else tuple(a + b for a, b in zip(held, cell)))
    return out


def add_profiles(*profiles: ExecutionProfile) -> ExecutionProfile:
    """Pointwise sum of profiles: the profile of the concatenated runs.

    Exact by construction (integers only).  Associative and commutative;
    :func:`identity_profile` is the neutral element.  Site tables merge
    *by key addition* -- two profiles recorded from the same program add
    their per-site counts, which is what ``scale_profile(p, n) ==``
    n-fold ``add_profiles(p, ...)`` requires.  Composing *different*
    programs must first rebase their site keys apart with
    :func:`offset_sites` (or use :func:`compose_profiles`).  ``clean``
    is the conjunction: one self-modifying part poisons the composite.
    """
    if not profiles:
        return identity_profile()
    if len(profiles) == 1:
        return profiles[0]
    return ExecutionProfile(
        retired=sum(p.retired for p in profiles),
        clean=all(p.clean for p in profiles),
        mnemonics=_merge_cells(p.mnemonics for p in profiles),
        branch_sites=_merge_cells(p.branch_sites for p in profiles),
        div_sites=_merge_cells(p.div_sites for p in profiles),
        save_depths=_merge_cells(p.save_depths for p in profiles),
        restore_depths=_merge_cells(p.restore_depths for p in profiles),
    )


def scale_profile(profile: ExecutionProfile, n: int) -> ExecutionProfile:
    """``n`` back-to-back runs of the same program: every count times n.

    Equals the n-fold :func:`add_profiles` of ``profile`` with itself
    (``n = 0`` yields :func:`identity_profile`), but in O(profile) --
    pricing 1000 identical frames costs the same as pricing one.
    """
    if n < 0:
        raise ValueError(f"cannot scale a profile by {n} (< 0) runs")
    if n == 0:
        return identity_profile()
    if n == 1:
        return profile

    def scaled(table):
        return {key: tuple(v * n for v in cell)
                for key, cell in table.items()}

    return ExecutionProfile(
        retired=profile.retired * n,
        clean=profile.clean,
        mnemonics=scaled(profile.mnemonics),
        branch_sites=scaled(profile.branch_sites),
        div_sites=scaled(profile.div_sites),
        save_depths=scaled(profile.save_depths),
        restore_depths=scaled(profile.restore_depths),
    )


def offset_sites(profile: ExecutionProfile, offset: int) -> ExecutionProfile:
    """Rebase the branch/div site keys by ``+offset`` (disambiguation).

    Site keys only ever group counts (the evaluator sums over them), so
    rebasing changes no NFP; it exists so :func:`add_profiles` over
    *different* programs keeps their same-pc sites apart.  Depth
    histograms are keyed by window depth, a physical quantity shared
    across programs, and are deliberately left alone.
    """
    if offset == 0:
        return profile
    return ExecutionProfile(
        retired=profile.retired,
        clean=profile.clean,
        mnemonics=profile.mnemonics,
        branch_sites={pc + offset: cell
                      for pc, cell in profile.branch_sites.items()},
        div_sites={pc + offset: cell
                   for pc, cell in profile.div_sites.items()},
        save_depths=profile.save_depths,
        restore_depths=profile.restore_depths,
    )


def compose_profiles(parts: Sequence[tuple["ExecutionProfile", int]]
                     ) -> ExecutionProfile:
    """``sum_i count_i * profile_i`` across distinct programs, exactly.

    The pipeline composition primitive: each part is one (stage, frame
    class) invocation profile with its frame count; parts are rebased
    into disjoint :data:`SITE_SPAN` site-key windows by position, then
    scaled and summed.  All integer, so the composed profile prices
    cycles/retired bit-identically to metering every invocation.
    """
    return add_profiles(*(
        scale_profile(offset_sites(profile, i * SITE_SPAN), count)
        for i, (profile, count) in enumerate(parts)))


@dataclass(frozen=True)
class LinearNfp:
    """NFPs of one (profile, configuration) point, metered-equivalent."""

    cycles: int
    dyn_energy_nj: float
    true_time_s: float
    true_energy_j: float
    spills: int
    fills: int
    retired: int


def _jit_sum(amp: float, count: int, jsum: int) -> float:
    """``sum(1 + amp * (idx/32768 - 1))`` over retires, exactly.

    ``jsum - count * 2**15`` is the integer sum of centred indices; the
    power-of-two scale makes the float conversion exact for any run that
    fits a double's mantissa (2**38 retires).
    """
    return count + amp * ((jsum - (count << 15)) * _SCALE)


def canonical_basis() -> tuple[str, ...]:
    """The canonical mnemonic basis of the batch evaluator.

    Every implemented instruction, sorted -- the flat index space both
    profile count vectors (:func:`lower_profile`) and config cost rows
    (:class:`BatchNfpEngine`) are expressed in.  Mnemonics a profile
    never retired carry zero counts and contribute exact zeros to every
    dot product, so the dense basis changes no result.
    """
    global _BASIS
    if _BASIS is None:
        from repro.vm.blocks import cost_flags
        _BASIS = tuple(sorted(cost_flags()))
    return _BASIS


_BASIS: tuple[str, ...] | None = None


@dataclass(frozen=True)
class ProfileVectors:
    """An :class:`ExecutionProfile` lowered onto the canonical basis.

    Flat per-mnemonic vectors plus window-threshold suffix tables: the
    profile side of the batch dot products.  ``jcent`` holds the exact
    centred jitter sums ``(jsum - count * 2**15) * 2**-15`` (a double
    holds them exactly, see :func:`_jit_sum`); the ``u*`` vectors are
    masked to branch mnemonics, everything else is zero.  The window
    tables are suffix sums of the depth histograms indexed by the trap
    threshold ``t = nwindows - 1`` (clipped), so any window count is a
    table lookup.
    """

    basis: tuple[str, ...]
    counts: tuple[int, ...]
    fcounts: tuple[float, ...]
    jcent: tuple[float, ...]
    ucounts: tuple[float, ...]
    ujcent: tuple[float, ...]
    total_untaken: int
    div_refund: int
    retired: int
    clean: bool
    spills_at: tuple[int, ...]
    fills_at: tuple[int, ...]
    trapjc_at: tuple[float, ...]   #: centred trap jitter sum per threshold

    def window_at(self, nwindows: int) -> tuple[int, int, float]:
        """``(spills, fills, centred trap jitter)`` under ``nwindows``."""
        t = nwindows - 1
        last = len(self.spills_at) - 1
        if t > last:
            t = last
        elif t < 0:
            t = 0
        return self.spills_at[t], self.fills_at[t], self.trapjc_at[t]


def _suffix_tables(profile: ExecutionProfile) -> tuple[
        tuple[int, ...], tuple[int, ...], tuple[float, ...]]:
    """Window-event suffix sums, one slot per trap threshold.

    Slot ``t`` equals ``profile.window_events(t + 1)`` recomputed as
    integer suffix sums; one slot past the deepest recorded depth is
    all-zero and absorbs every larger window count.
    """
    depths = list(profile.save_depths) + list(profile.restore_depths)
    top = max(depths, default=-1) + 2   # one all-zero slot past the max
    saves = [0] * top
    savej = [0] * top
    rests = [0] * top
    restj = [0] * top
    for depth, (count, j) in profile.save_depths.items():
        if depth >= 0:
            saves[depth] += count
            savej[depth] += j
    for depth, (count, j) in profile.restore_depths.items():
        if depth >= 0:
            rests[depth] += count
            restj[depth] += j
    spills_at = [0] * top
    fills_at = [0] * top
    trapjc_at = [0.0] * top
    run_s = run_f = run_j = 0
    for t in range(top - 1, -1, -1):
        run_s += saves[t]
        run_f += rests[t]
        run_j += savej[t] + restj[t]
        spills_at[t] = run_s
        fills_at[t] = run_f
        traps = run_s + run_f
        trapjc_at[t] = (run_j - (traps << 15)) * _SCALE
    return tuple(spills_at), tuple(fills_at), tuple(trapjc_at)


def lower_profile(profile: ExecutionProfile,
                  basis: tuple[str, ...] | None = None) -> ProfileVectors:
    """Lower ``profile`` to flat vectors over ``basis`` (canonical default)."""
    from repro.vm.blocks import cost_flags
    basis = basis or canonical_basis()
    flags = cost_flags()
    index = {m: i for i, m in enumerate(basis)}
    n = len(basis)
    counts = [0] * n
    jcent = [0.0] * n
    ucounts = [0.0] * n
    ujcent = [0.0] * n
    total_untaken = 0
    for m, (count, jsum, uc, uj) in profile.mnemonics.items():
        i = index.get(m)
        if i is None:
            raise ValueError(
                f"profile mnemonic {m!r} is outside the evaluation basis")
        counts[i] = count
        jcent[i] = (jsum - (count << 15)) * _SCALE
        if flags.get(m) == FLAG_BRANCH and uc:
            ucounts[i] = float(uc)
            ujcent[i] = (uj - (uc << 15)) * _SCALE
            total_untaken += uc
    spills_at, fills_at, trapjc_at = _suffix_tables(profile)
    return ProfileVectors(
        basis=basis,
        counts=tuple(counts),
        fcounts=tuple(float(c) for c in counts),
        jcent=tuple(jcent),
        ucounts=tuple(ucounts),
        ujcent=tuple(ujcent),
        total_untaken=total_untaken,
        div_refund=profile.div_refund_cycles,
        retired=profile.retired,
        clean=profile.clean,
        spills_at=spills_at,
        fills_at=fills_at,
        trapjc_at=trapjc_at,
    )


def _pad(table: Sequence, length: int, zero) -> list:
    """Extend a window suffix table to ``length`` slots.

    Every table ends in an all-zero slot absorbing all deeper
    thresholds, so padding with zeros is exact.
    """
    return list(table) + [zero] * (length - len(table))


def add_vectors(*vectors: ProfileVectors) -> ProfileVectors:
    """:func:`add_profiles`, on lowered vectors.

    Bit-identical to ``lower_profile(add_profiles(...))`` of the source
    profiles: the integer vectors add exactly, and the ``jcent``-style
    floats are dyadic rationals on the shared ``2**-15`` grid, so their
    float sums are exact too (for any run that fits a double's
    mantissa, the same bound the scalar evaluator documents).  Useful
    when only lowered vectors are at hand (the server's hot tier);
    engine-side composition goes through :func:`compose_profiles`.
    """
    if not vectors:
        return lower_profile(identity_profile())
    if len(vectors) == 1:
        return vectors[0]
    basis = vectors[0].basis
    for v in vectors[1:]:
        if v.basis != basis:
            raise ValueError("cannot add vectors over different bases")
    n = len(basis)
    counts = [sum(v.counts[i] for v in vectors) for i in range(n)]
    top = max(len(v.spills_at) for v in vectors)
    return ProfileVectors(
        basis=basis,
        counts=tuple(counts),
        fcounts=tuple(float(c) for c in counts),
        jcent=tuple(sum(v.jcent[i] for v in vectors) for i in range(n)),
        ucounts=tuple(sum(v.ucounts[i] for v in vectors) for i in range(n)),
        ujcent=tuple(sum(v.ujcent[i] for v in vectors) for i in range(n)),
        total_untaken=sum(v.total_untaken for v in vectors),
        div_refund=sum(v.div_refund for v in vectors),
        retired=sum(v.retired for v in vectors),
        clean=all(v.clean for v in vectors),
        spills_at=tuple(sum(col) for col in zip(
            *(_pad(v.spills_at, top, 0) for v in vectors))),
        fills_at=tuple(sum(col) for col in zip(
            *(_pad(v.fills_at, top, 0) for v in vectors))),
        trapjc_at=tuple(sum(col) for col in zip(
            *(_pad(v.trapjc_at, top, 0.0) for v in vectors))),
    )


def scale_vectors(vectors: ProfileVectors, n: int) -> ProfileVectors:
    """:func:`scale_profile`, on lowered vectors (same exactness)."""
    if n < 0:
        raise ValueError(f"cannot scale vectors by {n} (< 0) runs")
    if n == 0:
        return lower_profile(identity_profile())
    if n == 1:
        return vectors
    counts = tuple(c * n for c in vectors.counts)
    return ProfileVectors(
        basis=vectors.basis,
        counts=counts,
        fcounts=tuple(float(c) for c in counts),
        jcent=tuple(j * n for j in vectors.jcent),
        ucounts=tuple(u * n for u in vectors.ucounts),
        ujcent=tuple(u * n for u in vectors.ujcent),
        total_untaken=vectors.total_untaken * n,
        div_refund=vectors.div_refund * n,
        retired=vectors.retired * n,
        clean=vectors.clean,
        spills_at=tuple(s * n for s in vectors.spills_at),
        fills_at=tuple(s * n for s in vectors.fills_at),
        trapjc_at=tuple(t * n for t in vectors.trapjc_at),
    )


def cycle_dot(cycle_row: Sequence[int], vectors: ProfileVectors) -> int:
    """Exact integer base-cycle dot product of one config row."""
    total = 0
    for base, count in zip(cycle_row, vectors.counts):
        if count:
            total += base * count
    return total


def energy_dots(dyn_row: Sequence[float],
                vectors: ProfileVectors) -> tuple[float, float, float, float]:
    """The four exact energy dot products of one dynamic-energy row.

    ``(sum dyn*count, sum dyn*jcent, sum dyn*ucount, sum dyn*ujcent)``,
    each a correctly-rounded :func:`math.fsum` -- independent of batch
    composition and identical between the numpy and pure paths, which is
    what makes streamed and materialized sweeps byte-identical.
    """
    e1 = math.fsum(map(lambda d, c: d * c, dyn_row, vectors.fcounts))
    e2 = math.fsum(map(lambda d, c: d * c, dyn_row, vectors.jcent))
    e3 = math.fsum(map(lambda d, c: d * c, dyn_row, vectors.ucounts))
    e4 = math.fsum(map(lambda d, c: d * c, dyn_row, vectors.ujcent))
    return e1, e2, e3, e4


class LinearNfpEngine:
    """Per-configuration cost vectors, applied to profiles as dot products.

    Build one engine per candidate :class:`HwConfig` and call
    :meth:`evaluate` for every workload profile -- the sweep's hot loop
    is a few dozen multiply-adds per point instead of a simulation.
    """

    __slots__ = ("hw", "table", "amp", "untaken_discount", "untaken_extra",
                 "trap_cycles", "trap_nj", "cycle_seconds", "static_power_w",
                 "nwindows")

    def __init__(self, hw: HwConfig):
        self.hw = hw
        self.table = hw.cost_table
        self.amp = hw.jitter_amplitude
        self.untaken_discount = hw.untaken_branch_discount
        #: untaken retires already contribute ``dyn * S`` through the
        #: total accumulators; only the ``(factor - 1)`` share is extra
        self.untaken_extra = hw.untaken_branch_energy_factor - 1.0
        self.trap_cycles = hw.window_trap_cycles
        self.trap_nj = hw.window_trap_energy_nj
        self.cycle_seconds = hw.cycle_seconds
        self.static_power_w = hw.static_power_w
        self.nwindows = hw.core.nwindows

    def evaluate(self, profile: ExecutionProfile) -> LinearNfp:
        """Price ``profile`` under this engine's configuration."""
        table = self.table
        amp = self.amp
        cycles = 0
        terms: list[float] = []
        # sorted: the term order is canonical regardless of payload
        # round-trips (fsum is order-independent anyway; belt and braces)
        for m in sorted(profile.mnemonics):
            count, jsum, uc, uj = profile.mnemonics[m]
            base, dyn, flag = table[m]
            cycles += count * base
            terms.append(dyn * _jit_sum(amp, count, jsum))
            if flag == FLAG_BRANCH and uc:
                cycles -= uc * self.untaken_discount
                terms.append(dyn * self.untaken_extra
                             * _jit_sum(amp, uc, uj))
        cycles -= profile.div_refund_cycles
        spills, fills, trap_jsum = profile.window_events(self.nwindows)
        traps = spills + fills
        if traps:
            cycles += traps * self.trap_cycles
            terms.append(self.trap_nj * _jit_sum(amp, traps, trap_jsum))
        dyn_energy_nj = math.fsum(terms)
        # exactly the expressions of Board.measure_raw, applied to the
        # bit-identical cycle count
        true_time_s = cycles * self.cycle_seconds
        true_energy_j = (dyn_energy_nj * 1e-9
                         + self.static_power_w * true_time_s)
        return LinearNfp(
            cycles=cycles,
            dyn_energy_nj=dyn_energy_nj,
            true_time_s=true_time_s,
            true_energy_j=true_energy_j,
            spills=spills,
            fills=fills,
            retired=profile.retired,
        )


def evaluate_batch(hws: Sequence[HwConfig], vectors: ProfileVectors,
                   basis: tuple[str, ...] | None = None) -> list["LinearNfp"]:
    """Price ``hws`` against one lowered profile in a single pass.

    A re-entrant module-level convenience over :class:`BatchNfpEngine`
    (build, evaluate, discard): no engine or module state survives the
    call, so concurrent callers -- the evaluation server's coalesced
    price batches run this from worker threads -- never share mutable
    state.  Results are the engine's bits exactly.
    """
    return BatchNfpEngine(hws, basis).evaluate(vectors)


class BatchNfpEngine:
    """Price N configurations against one profile in a single pass.

    The batch counterpart of :class:`LinearNfpEngine`: the configs lower
    to an (N x K) cost-table structure over :func:`canonical_basis` with
    *rows deduplicated by table identity* -- a sweep whose axes derive
    tables from shared bases (the stock clock/wait-state axes memoize
    them) prices each distinct row once and each config is then a
    constant-size combine.  Worst case (every table distinct) the row
    pass is the full matrix product, computed with exact reductions:

    - cycle rows: pure-integer dot products, so ``cycles``/``time`` are
      bit-identical to :class:`LinearNfpEngine` and the metered run;
    - energy rows: four correctly-rounded ``fsum`` dots per row
      (:func:`energy_dots`), combined per config in a fixed expression
      order.  A :class:`~repro.hw.config.ScaledDynTable` (the DVFS
      axis' derived tables) contributes its *base* row's dots rescaled
      by one IEEE multiply, so a dense clock sweep reduces one row
      exactly instead of one per clock value.  The combine (and the
      scale factoring) regroups the per-point engine's single fsum, so
      energy agrees to a few ulp (well inside the documented 1e-12
      relative envelope); results are independent of how a batch is
      composed and identical between the numpy and pure-python combine
      (same expressions, same IEEE-754 double semantics).

    numpy (when importable and ``REPRO_NUMPY`` does not disable it, see
    :func:`numpy_or_none`) vectorizes only the per-config combine; small
    batches use the scalar loop.  Both paths return the same bits.
    """

    #: below this batch size the scalar combine wins over array set-up
    _VECTOR_MIN = 64

    __slots__ = ("hws", "basis", "_rows", "_np")

    def __init__(self, hws: Sequence[HwConfig],
                 basis: tuple[str, ...] | None = None):
        self.hws = tuple(hws)
        self.basis = basis or canonical_basis()
        self._np = numpy_or_none()
        # dedupe cost rows by table identity; the tuples keep the source
        # mappings alive so ids cannot be recycled mid-batch.  A
        # ScaledDynTable contributes its *base* row plus a (row, scale)
        # spec -- a dense DVFS sweep reduces one base row exactly and
        # rescales the dots per distinct scale
        cyc_rows: list[tuple] = []      # (source table, row)
        dyn_rows: list[tuple] = []
        dyn_specs: list[tuple] = []     # (source table, row index, scale)
        cyc_index: dict[int, int] = {}
        dyn_index: dict[int, int] = {}
        spec_index: dict[int, int] = {}
        per_hw: list[tuple[int, int]] = []
        for hw in self.hws:
            ct, dt = hw.cycle_table, hw.dyn_energy_nj
            ci = cyc_index.get(id(ct))
            if ci is None or cyc_rows[ci][0] is not ct:
                ci = len(cyc_rows)
                cyc_rows.append((ct, tuple(ct[m] for m in self.basis)))
                cyc_index[id(ct)] = ci
            si = spec_index.get(id(dt))
            if si is None or dyn_specs[si][0] is not dt:
                if isinstance(dt, ScaledDynTable):
                    base, scale = dt.base, dt.scale
                else:
                    base, scale = dt, 1.0
                di = dyn_index.get(id(base))
                if di is None or dyn_rows[di][0] is not base:
                    di = len(dyn_rows)
                    dyn_rows.append((base, tuple(base[m]
                                                 for m in self.basis)))
                    dyn_index[id(base)] = di
                si = len(dyn_specs)
                dyn_specs.append((dt, di, scale))
                spec_index[id(dt)] = si
            per_hw.append((ci, si))
        self._rows = (tuple(r for _, r in cyc_rows),
                      tuple(r for _, r in dyn_rows),
                      tuple((di, scale) for _, di, scale in dyn_specs),
                      tuple(per_hw))

    def evaluate(self, vectors: ProfileVectors) -> list[LinearNfp]:
        """Price ``vectors`` under every config, in construction order."""
        cyc_rows, dyn_rows, dyn_specs, per_hw = self._rows
        cyc_dots = [cycle_dot(row, vectors) for row in cyc_rows]
        base_dots = [energy_dots(row, vectors) for row in dyn_rows]
        # one IEEE multiply per dot: bit-equal to the streamed tables
        dots = [base_dots[di] if scale == 1.0
                else tuple(scale * d for d in base_dots[di])
                for di, scale in dyn_specs]
        np = self._np
        if np is not None and len(self.hws) >= self._VECTOR_MIN:
            try:
                return self._evaluate_vector(np, vectors, cyc_dots, dots)
            except OverflowError:
                # a cycle dot outside int64 (astronomical budgets):
                # python's arbitrary-precision path still prices it
                pass
        return self._evaluate_scalar(vectors, cyc_dots, dots)

    def _evaluate_scalar(self, vectors, cyc_dots, dots) -> list[LinearNfp]:
        out = []
        tu = vectors.total_untaken
        refund = vectors.div_refund
        retired = vectors.retired
        cyc_rows, dyn_rows, dyn_specs, per_hw = self._rows
        for hw, (ci, di) in zip(self.hws, per_hw):
            amp = hw.jitter_amplitude
            spills, fills, trapjc = vectors.window_at(hw.core.nwindows)
            traps = spills + fills
            cycles = (cyc_dots[ci] - tu * hw.untaken_branch_discount
                      - refund + traps * hw.window_trap_cycles)
            e1, e2, e3, e4 = dots[di]
            extra = hw.untaken_branch_energy_factor - 1.0
            dyn_energy_nj = ((e1 + amp * e2) + extra * (e3 + amp * e4)
                             + hw.window_trap_energy_nj
                             * (traps + amp * trapjc))
            true_time_s = cycles * hw.cycle_seconds
            true_energy_j = (dyn_energy_nj * 1e-9
                             + hw.static_power_w * true_time_s)
            out.append(LinearNfp(
                cycles=cycles, dyn_energy_nj=dyn_energy_nj,
                true_time_s=true_time_s, true_energy_j=true_energy_j,
                spills=spills, fills=fills, retired=retired))
        return out

    def _evaluate_vector(self, np, vectors, cyc_dots, dots) -> list[LinearNfp]:
        cyc_rows, dyn_rows, dyn_specs, per_hw = self._rows
        hws = self.hws
        n = len(hws)
        ci = np.fromiter((c for c, _ in per_hw), dtype=np.intp, count=n)
        di = np.fromiter((d for _, d in per_hw), dtype=np.intp, count=n)
        # raises OverflowError past int64, caught by evaluate()
        cdot = np.array(cyc_dots, dtype=np.int64)[ci]
        edots = np.array(dots, dtype=np.float64)[di]
        amp = np.fromiter((hw.jitter_amplitude for hw in hws),
                          dtype=np.float64, count=n)
        ud = np.fromiter((hw.untaken_branch_discount for hw in hws),
                         dtype=np.int64, count=n)
        extra = np.fromiter(
            (hw.untaken_branch_energy_factor - 1.0 for hw in hws),
            dtype=np.float64, count=n)
        trap_cyc = np.fromiter((hw.window_trap_cycles for hw in hws),
                               dtype=np.int64, count=n)
        trap_nj = np.fromiter((hw.window_trap_energy_nj for hw in hws),
                              dtype=np.float64, count=n)
        cycsec = np.fromiter((hw.cycle_seconds for hw in hws),
                             dtype=np.float64, count=n)
        static = np.fromiter((hw.static_power_w for hw in hws),
                             dtype=np.float64, count=n)
        win = [vectors.window_at(hw.core.nwindows) for hw in hws]
        spills = np.fromiter((w[0] for w in win), dtype=np.int64, count=n)
        fills = np.fromiter((w[1] for w in win), dtype=np.int64, count=n)
        trapjc = np.fromiter((w[2] for w in win), dtype=np.float64, count=n)
        traps = spills + fills
        cycles = (cdot - ud * vectors.total_untaken - vectors.div_refund
                  + traps * trap_cyc)
        e1, e2, e3, e4 = (edots[:, 0], edots[:, 1], edots[:, 2], edots[:, 3])
        dyn = ((e1 + amp * e2) + extra * (e3 + amp * e4)
               + trap_nj * (traps + amp * trapjc))
        time_s = cycles.astype(np.float64) * cycsec
        energy = dyn * 1e-9 + static * time_s
        retired = vectors.retired
        return [LinearNfp(
            cycles=int(cycles[i]), dyn_energy_nj=float(dyn[i]),
            true_time_s=float(time_s[i]), true_energy_j=float(energy[i]),
            spills=int(spills[i]), fills=int(fills[i]), retired=retired)
            for i in range(n)]
