"""Linear NFP evaluation: price any hardware config from one profile.

This is Eq. 1 taken to its logical end.  A profiled run
(:class:`repro.vm.profiler.ProfileMeter`) captures the execution counts
the retire-cost algebra of :class:`repro.hw.board.CostMeter` consumes;
:class:`LinearNfpEngine` then reproduces the metered accumulation for an
arbitrary :class:`~repro.hw.config.HwConfig` as dot products against
config-derived cost vectors:

``cycles``
    ``sum(count[m] * cycle_table[m]) - untaken * discount - div_refund
    + traps(nwindows) * trap_cycles`` -- pure integer arithmetic, so the
    result is *bit-identical* to the metered run's accumulator.  The
    cycle table itself already encodes the wait-state axis, the window
    axis enters through the depth histograms, and the clock only scales
    the time conversion.

``dynamic energy``
    Every metered retire adds ``dyn[m] * (1 + amp * (idx/32768 - 1))``.
    Summed per mnemonic this is ``dyn[m] * (count[m] + amp * J[m])``
    with ``J[m] = (jsum[m] - count[m] * 2**15) * 2**-15`` recovered
    *exactly* from the profile's integer index sums; untaken branches
    contribute an extra ``(factor - 1)`` share and window traps an
    extra ``trap_nj`` share.  The per-mnemonic terms are combined with
    ``math.fsum``, so the only deviation from the metered run is the
    metered run's own float-accumulation drift -- a random walk that
    grows roughly with the square root of the retired count (measured
    <= 1e-12 relative across the stock smoke sweep at ~2e6 retires per
    point; budget the tolerance accordingly for much longer runs).  The
    DVFS axis scales ``dyn`` uniformly and drops straight through.

The evaluator is deterministic and order-independent (integer sums plus
a correctly-rounded float sum), so warm-cache, cold-cache and parallel
evaluations of the same profile are byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.hw.config import HwConfig
from repro.vm.blocks import FLAG_BRANCH

#: Exact scale of the centred jitter index: ``idx * 2**-15 - 1``.
_SCALE = 2.0 ** -15


@dataclass(frozen=True)
class ExecutionProfile:
    """One run's config-independent cost basis (see ``ProfileMeter``).

    ``mnemonics`` maps each retired mnemonic to
    ``(count, jsum, untaken_count, untaken_jsum)``; the site and depth
    tables carry the branch/divide/window detail described in
    :mod:`repro.vm.profiler`.  Instances are plain data: they travel as
    JSON payloads through the result cache and worker pool.
    """

    retired: int
    clean: bool
    mnemonics: Mapping[str, tuple[int, int, int, int]]
    branch_sites: Mapping[int, tuple[int, int]]
    div_sites: Mapping[int, tuple[int, int]]
    save_depths: Mapping[int, tuple[int, int]]
    restore_depths: Mapping[int, tuple[int, int]]
    #: entry pc -> (executions, length, ((category, count), ...)) --
    #: dispatch-path diagnostics, unused by the evaluator.
    blocks: Mapping[int, tuple]

    @classmethod
    def from_payload(cls, data: dict) -> "ExecutionProfile":
        """Rebuild a profile from its JSON payload (cache/pool format)."""
        from repro.vm.profiler import PROFILE_VERSION
        version = data.get("version")
        if version != PROFILE_VERSION:
            # belt and braces behind the task-schema key: a structure
            # change must never be deserialised as the current one
            raise ValueError(
                f"execution-profile payload version {version!r} does not "
                f"match PROFILE_VERSION {PROFILE_VERSION}")

        def intkeys(table: dict) -> dict[int, tuple[int, ...]]:
            return {int(k): tuple(v) for k, v in table.items()}

        return cls(
            retired=data["retired"],
            clean=bool(data["clean"]),
            mnemonics={m: tuple(v) for m, v in data["mnemonics"].items()},
            branch_sites=intkeys(data["branch_sites"]),
            div_sites=intkeys(data["div_sites"]),
            save_depths=intkeys(data["save_depths"]),
            restore_depths=intkeys(data["restore_depths"]),
            blocks={int(pc): (count, length,
                              tuple((cat, n) for cat, n in cats))
                    for pc, (count, length, cats)
                    in data.get("blocks", {}).items()},
        )

    @property
    def div_refund_cycles(self) -> int:
        """Total divide bit-length cycle refund (config-independent)."""
        return sum(cell[1] for cell in self.div_sites.values())

    def window_events(self, nwindows: int) -> tuple[int, int, int]:
        """``(spills, fills, trap index sum)`` under ``nwindows`` windows.

        A save spills iff its post-increment depth is ``>= nwindows - 1``
        and a restore fills symmetrically (pre-decrement depth) -- the
        morpher's exact trap conditions applied to the recorded depth
        histogram, so any candidate window count is priced from one run.
        """
        spills = fills = jsum = 0
        for depth, (count, j) in self.save_depths.items():
            if depth >= nwindows - 1:
                spills += count
                jsum += j
        for depth, (count, j) in self.restore_depths.items():
            if depth >= nwindows - 1:
                fills += count
                jsum += j
        return spills, fills, jsum


@dataclass(frozen=True)
class LinearNfp:
    """NFPs of one (profile, configuration) point, metered-equivalent."""

    cycles: int
    dyn_energy_nj: float
    true_time_s: float
    true_energy_j: float
    spills: int
    fills: int
    retired: int


def _jit_sum(amp: float, count: int, jsum: int) -> float:
    """``sum(1 + amp * (idx/32768 - 1))`` over retires, exactly.

    ``jsum - count * 2**15`` is the integer sum of centred indices; the
    power-of-two scale makes the float conversion exact for any run that
    fits a double's mantissa (2**38 retires).
    """
    return count + amp * ((jsum - (count << 15)) * _SCALE)


class LinearNfpEngine:
    """Per-configuration cost vectors, applied to profiles as dot products.

    Build one engine per candidate :class:`HwConfig` and call
    :meth:`evaluate` for every workload profile -- the sweep's hot loop
    is a few dozen multiply-adds per point instead of a simulation.
    """

    __slots__ = ("hw", "table", "amp", "untaken_discount", "untaken_extra",
                 "trap_cycles", "trap_nj", "cycle_seconds", "static_power_w",
                 "nwindows")

    def __init__(self, hw: HwConfig):
        self.hw = hw
        self.table = hw.cost_table
        self.amp = hw.jitter_amplitude
        self.untaken_discount = hw.untaken_branch_discount
        #: untaken retires already contribute ``dyn * S`` through the
        #: total accumulators; only the ``(factor - 1)`` share is extra
        self.untaken_extra = hw.untaken_branch_energy_factor - 1.0
        self.trap_cycles = hw.window_trap_cycles
        self.trap_nj = hw.window_trap_energy_nj
        self.cycle_seconds = hw.cycle_seconds
        self.static_power_w = hw.static_power_w
        self.nwindows = hw.core.nwindows

    def evaluate(self, profile: ExecutionProfile) -> LinearNfp:
        """Price ``profile`` under this engine's configuration."""
        table = self.table
        amp = self.amp
        cycles = 0
        terms: list[float] = []
        # sorted: the term order is canonical regardless of payload
        # round-trips (fsum is order-independent anyway; belt and braces)
        for m in sorted(profile.mnemonics):
            count, jsum, uc, uj = profile.mnemonics[m]
            base, dyn, flag = table[m]
            cycles += count * base
            terms.append(dyn * _jit_sum(amp, count, jsum))
            if flag == FLAG_BRANCH and uc:
                cycles -= uc * self.untaken_discount
                terms.append(dyn * self.untaken_extra
                             * _jit_sum(amp, uc, uj))
        cycles -= profile.div_refund_cycles
        spills, fills, trap_jsum = profile.window_events(self.nwindows)
        traps = spills + fills
        if traps:
            cycles += traps * self.trap_cycles
            terms.append(self.trap_nj * _jit_sum(amp, traps, trap_jsum))
        dyn_energy_nj = math.fsum(terms)
        # exactly the expressions of Board.measure_raw, applied to the
        # bit-identical cycle count
        true_time_s = cycles * self.cycle_seconds
        true_energy_j = (dyn_energy_nj * 1e-9
                         + self.static_power_w * true_time_s)
        return LinearNfp(
            cycles=cycles,
            dyn_energy_nj=dyn_energy_nj,
            true_time_s=true_time_s,
            true_energy_j=true_energy_j,
            spills=spills,
            fills=fills,
            retired=profile.retired,
        )
