"""The mechanistic estimation model (Section IV, Eq. 1).

Given per-category instruction counts ``n_c`` from the ISS and specific
costs ``(t_c, e_c)`` from calibration, the model estimates::

    T_hat = sum_c t_c * n_c        E_hat = sum_c e_c * n_c

:data:`PAPER_TABLE1` reproduces the constants the paper reports for its
50 MHz cacheless LEON3; calibrated models for this reproduction's testbed
come from :mod:`repro.nfp.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.isa.categories import CATEGORY_IDS, CATEGORY_NAMES, NUM_CATEGORIES


@dataclass(frozen=True)
class SpecificCosts:
    """Per-category specific time (ns) and energy (nJ), Table-I order."""

    time_ns: tuple[float, ...]
    energy_nj: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.time_ns) != NUM_CATEGORIES:
            raise ValueError(
                f"need {NUM_CATEGORIES} specific times, got {len(self.time_ns)}")
        if len(self.energy_nj) != NUM_CATEGORIES:
            raise ValueError(
                f"need {NUM_CATEGORIES} specific energies, "
                f"got {len(self.energy_nj)}")

    @classmethod
    def from_mappings(cls, time_ns: Mapping[str, float],
                      energy_nj: Mapping[str, float]) -> "SpecificCosts":
        """Build from ``category_id -> value`` mappings."""
        return cls(
            time_ns=tuple(float(time_ns[cid]) for cid in CATEGORY_IDS),
            energy_nj=tuple(float(energy_nj[cid]) for cid in CATEGORY_IDS),
        )

    def as_rows(self) -> list[tuple[str, float, float]]:
        """Table-I rows: (category name, t_c ns, e_c nJ)."""
        return [(CATEGORY_NAMES[i], self.time_ns[i], self.energy_nj[i])
                for i in range(NUM_CATEGORIES)]


@dataclass(frozen=True)
class Estimate:
    """One model output: estimated totals plus per-category breakdown."""

    time_s: float
    energy_j: float
    time_breakdown_s: tuple[float, ...]
    energy_breakdown_j: tuple[float, ...]

    def breakdown_by_category(self) -> list[tuple[str, float, float]]:
        """(category name, seconds, joules) rows, Table-I order."""
        return [(CATEGORY_NAMES[i], self.time_breakdown_s[i],
                 self.energy_breakdown_j[i]) for i in range(NUM_CATEGORIES)]


class MechanisticModel:
    """Eq. 1 evaluator bound to one set of specific costs.

    Parameters
    ----------
    costs:
        Specific per-category times/energies.
    name:
        Identifier used in reports (e.g. ``"calibrated@leon3-fpu"``).
    """

    def __init__(self, costs: SpecificCosts, name: str = "mechanistic"):
        self.costs = costs
        self.name = name

    def estimate(self, counts: Sequence[int]) -> Estimate:
        """Apply Eq. 1 to a count vector in Table-I category order."""
        if len(counts) != NUM_CATEGORIES:
            raise ValueError(
                f"need {NUM_CATEGORIES} counts, got {len(counts)}")
        t = self.costs.time_ns
        e = self.costs.energy_nj
        time_parts = tuple(t[i] * counts[i] * 1e-9
                           for i in range(NUM_CATEGORIES))
        energy_parts = tuple(e[i] * counts[i] * 1e-9
                             for i in range(NUM_CATEGORIES))
        return Estimate(
            time_s=sum(time_parts),
            energy_j=sum(energy_parts),
            time_breakdown_s=time_parts,
            energy_breakdown_j=energy_parts,
        )

    def estimate_from_mapping(self, counts: Mapping[str, int]) -> Estimate:
        """Apply Eq. 1 to a ``category_id -> count`` mapping."""
        return self.estimate([counts.get(cid, 0) for cid in CATEGORY_IDS])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MechanisticModel({self.name!r})"


def _costs(values: Iterable[float]) -> tuple[float, ...]:
    return tuple(float(v) for v in values)


#: The specific costs the paper reports (Table I) for its LEON3 testbed.
PAPER_TABLE1 = MechanisticModel(
    SpecificCosts(
        time_ns=_costs((45, 238, 700, 376, 46, 41, 46, 431, 612)),
        energy_nj=_costs((15, 76, 229, 166, 13, 13, 14, 431, 88)),
    ),
    name="paper-table1",
)
