"""Non-functional-property estimation: the paper's primary contribution.

Workflow::

    board  = Board(leon3_fpu())                        # the testbed
    model  = Calibrator(board).calibrate().to_model()  # Table I via Eq. 2
    nfp    = NFPEstimator(model)                       # Eq. 1
    report = nfp.estimate_program(kernel)              # T_hat, E_hat
"""

from repro.isa.categories import (
    CATEGORY_IDS,
    CATEGORY_NAMES,
    NUM_CATEGORIES,
    category_index,
    category_name,
)
from repro.nfp.calibration import (
    CalibrationResult,
    Calibrator,
    CategoryCalibration,
    KernelPair,
    blend_with_mix,
    make_kernel_pair,
)
from repro.nfp.dse import DseReport, DseRow, WorkloadPair, explore_fpu
from repro.nfp.estimator import EstimationReport, NFPEstimator
from repro.nfp.linear import ExecutionProfile, LinearNfp, LinearNfpEngine
from repro.nfp.metrics import (
    ErrorSummary,
    KernelError,
    relative_error,
    summarize_errors,
    table3,
)
from repro.nfp.model import (
    PAPER_TABLE1,
    Estimate,
    MechanisticModel,
    SpecificCosts,
)

__all__ = [
    "CATEGORY_IDS",
    "CATEGORY_NAMES",
    "CalibrationResult",
    "Calibrator",
    "CategoryCalibration",
    "DseReport",
    "DseRow",
    "ErrorSummary",
    "Estimate",
    "EstimationReport",
    "ExecutionProfile",
    "KernelError",
    "KernelPair",
    "LinearNfp",
    "LinearNfpEngine",
    "MechanisticModel",
    "NFPEstimator",
    "NUM_CATEGORIES",
    "PAPER_TABLE1",
    "SpecificCosts",
    "WorkloadPair",
    "blend_with_mix",
    "category_index",
    "category_name",
    "explore_fpu",
    "make_kernel_pair",
    "relative_error",
    "summarize_errors",
    "table3",
]
