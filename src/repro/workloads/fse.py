"""The FSE workload family, registered per test image.

Each spec wraps :func:`repro.fse.kernel.build_fse_kernel` for one of the
24 deterministic test pictures; the golden oracle is the host-side
reference reconstruction (:mod:`repro.fse.reference`) -- the kernel
prints the rolling checksum of its reconstruction, which must match the
reference in both the hard- and soft-float builds.
"""

from __future__ import annotations

from repro.experiments.scale import Scale
from repro.fse import reference as ref
from repro.fse.images import NUM_TEST_IMAGES, test_case
from repro.fse.kernel import build_fse_kernel
from repro.fse.params import FseParams
from repro.kir import Module
from repro.workloads.registry import workload


def _scale_key(scale: Scale) -> tuple:
    return (scale.fse_size, scale.fse_params.block,
            scale.fse_params.iterations)


def _golden(index: int, scale: Scale) -> str:
    image, mask = test_case(index, scale.fse_size)
    params = FseParams(block=scale.fse_params.block,
                       iterations=scale.fse_params.iterations)
    return f"{ref.checksum(ref.reconstruct(image, mask, params))}\n"


def _register(index: int) -> None:
    @workload(f"fse:{index:02d}", "fse",
              scale_key=_scale_key,
              golden=lambda scale: _golden(index, scale),
              in_scale=lambda scale: index in scale.fse_indices,
              tags=("float", "fft", "extrapolation"))
    def _build(scale: Scale, index: int = index) -> Module:
        params = FseParams(block=scale.fse_params.block,
                           iterations=scale.fse_params.iterations)
        return build_fse_kernel(index, params, size=scale.fse_size)


for _index in range(NUM_TEST_IMAGES):
    _register(_index)
