"""The image-processing workload family (filter + statistics kernels).

Seven bare-metal kernels written against the kernel-IR builder, spanning
the classic embedded image pipeline: 3x3 convolutions (Sobel gradient,
unsharp mask), a separable Gaussian blur, a 3x3 median filter, a 256-bin
histogram with min/max/mean/stddev, an integral image with ROI sums and
centre of mass, and a bilinear 2x downscale.  Each is parameterized by
``Scale.image_size``, compiled in both float ABIs, and prints a rolling
digest of its output that must match the host-side reference
(:mod:`repro.workloads.imaging_ref`) bit-for-bit -- the mixed
integer/double arithmetic makes the family a genuine third column next
to FSE (FP-dominated) and HEVC-lite (integer-dominated) in the FPU
trade-off experiments.

Every kernel follows the same shape: operate on an embedded
deterministic test picture, fold the output stream into
``h = h * 31 + value (mod 2**32)``, print ``h`` and exit 0.
"""

from __future__ import annotations

from repro.experiments.scale import Scale
from repro.kir import F64, I32, U32, Module
from repro.workloads.imaging_ref import (
    GAUSS_W,
    IMAGE_INDEX,
    REFERENCES,
    SHARPEN_ALPHA,
    roi_boxes,
    source_image,
)
from repro.workloads.registry import workload

#: the median-of-9 compare-exchange network (19 exchanges); after
#: applying it to v0..v8 the median sits in v4
MEDIAN9_NETWORK = (
    (1, 2), (4, 5), (7, 8), (0, 1), (3, 4), (6, 7), (1, 2), (4, 5),
    (7, 8), (0, 3), (5, 8), (4, 7), (3, 6), (1, 4), (2, 5), (4, 7),
    (4, 2), (6, 4), (4, 2),
)


def _new_module(kernel: str, size: int) -> Module:
    m = Module(f"img_{kernel}_{size}")
    flat = bytes(p for row in source_image(kernel, size)
                 for p in row)
    m.global_bytes("img", flat, align=4)
    return m


def _fold(f, h, value) -> None:
    """``h = h * 31 + value`` (u32 wrap-around)."""
    f.assign(h, h * 31 + value)


def _digest_u8_buffer(f, m, h, buf_name: str, count: int) -> None:
    buf = m.addr_of(buf_name)
    with f.for_range("di", 0, count) as di:
        _fold(f, h, f.load_u8(buf + di))


def _finish(f, h) -> None:
    f.sys_write_u32(h)
    f.ret(0)


def _build_sobel(size: int) -> Module:
    m = _new_module("sobel3x3", size)
    img = m.addr_of("img")
    m.global_zeros("out", size * size, align=4)
    out = m.addr_of("out")
    f = m.function("main", ret=I32)
    mag = f.local(I32, "mag")
    with f.for_range("y", 1, size - 1) as y:
        with f.for_range("x", 1, size - 1) as x:
            off = f.local(I32, "off", init=y * size + x)
            nw = f.local(I32, "nw", init=f.load_u8(img + off - size - 1))
            no = f.local(I32, "no", init=f.load_u8(img + off - size))
            ne = f.local(I32, "ne", init=f.load_u8(img + off - size + 1))
            we = f.local(I32, "we", init=f.load_u8(img + off - 1))
            ea = f.local(I32, "ea", init=f.load_u8(img + off + 1))
            sw = f.local(I32, "sw", init=f.load_u8(img + off + size - 1))
            so = f.local(I32, "so", init=f.load_u8(img + off + size))
            se = f.local(I32, "se", init=f.load_u8(img + off + size + 1))
            gx = f.local(I32, "gx", init=ne + 2 * ea + se - nw - 2 * we - sw)
            gy = f.local(I32, "gy", init=sw + 2 * so + se - nw - 2 * no - ne)
            f.assign(mag, f.dtoi(f.fsqrt(f.itod(gx * gx + gy * gy))
                                 + f.f64const(0.5)))
            with f.if_(mag > 255):
                f.assign(mag, 255)
            f.store8(out + off, mag)
    h = f.local(U32, "h", init=0)
    _digest_u8_buffer(f, m, h, "out", size * size)
    _finish(f, h)
    return m


def _build_sharpen(size: int) -> Module:
    m = _new_module("sharpen3x3", size)
    img = m.addr_of("img")
    # the output starts as a copy of the input (borders pass through)
    m.global_bytes("out", bytes(p for row in source_image("sharpen3x3", size)
                                for p in row), align=4)
    out = m.addr_of("out")
    f = m.function("main", ret=I32)
    v = f.local(F64, "v")
    pix = f.local(I32, "pix")
    with f.for_range("y", 1, size - 1) as y:
        with f.for_range("x", 1, size - 1) as x:
            off = f.local(I32, "off", init=y * size + x)
            c = f.local(I32, "c", init=f.load_u8(img + off))
            lap = f.local(I32, "lap", init=(
                4 * c - f.load_u8(img + off - size)
                - f.load_u8(img + off + size)
                - f.load_u8(img + off - 1) - f.load_u8(img + off + 1)))
            f.assign(v, f.itod(c) + f.f64const(SHARPEN_ALPHA) * f.itod(lap))
            with f.if_(v < f.f64const(0.0)) as cneg:
                f.assign(pix, 0)
            with cneg.else_():
                with f.if_(v > f.f64const(255.0)) as cbig:
                    f.assign(pix, 255)
                with cbig.else_():
                    f.assign(pix, f.dtoi(v + f.f64const(0.5)))
            f.store8(out + off, pix)
    h = f.local(U32, "h", init=0)
    _digest_u8_buffer(f, m, h, "out", size * size)
    _finish(f, h)
    return m


def _build_gauss(size: int) -> Module:
    m = _new_module("gauss5x5", size)
    img = m.addr_of("img")
    m.global_f64s("w5", list(GAUSS_W))
    w5 = m.addr_of("w5")
    m.global_zeros("tmp", size * size * 8, align=8)
    tmp = m.addr_of("tmp")
    f = m.function("main", ret=I32)
    h = f.local(U32, "h", init=0)
    acc = f.local(F64, "acc")
    # horizontal pass: clamp-to-edge taps into the f64 working buffer
    with f.for_range("y", 0, size) as y:
        with f.for_range("x", 0, size) as x:
            f.assign(acc, f.f64const(0.0))
            with f.for_range("k", 0, 5) as k:
                xi = f.local(I32, "xi", init=x + k - 2)
                with f.if_(xi < 0):
                    f.assign(xi, 0)
                with f.if_(xi > size - 1):
                    f.assign(xi, size - 1)
                f.assign(acc, acc + f.loadf(w5 + (k << 3))
                         * f.itod(f.load_u8(img + y * size + xi)))
            f.storef(tmp + ((y * size + x) << 3), acc)
    # vertical pass folds straight into the digest (row-major order)
    with f.for_range("vy", 0, size) as vy:
        with f.for_range("vx", 0, size) as vx:
            f.assign(acc, f.f64const(0.0))
            with f.for_range("vk", 0, 5) as vk:
                yi = f.local(I32, "yi", init=vy + vk - 2)
                with f.if_(yi < 0):
                    f.assign(yi, 0)
                with f.if_(yi > size - 1):
                    f.assign(yi, size - 1)
                f.assign(acc, acc + f.loadf(w5 + (vk << 3))
                         * f.loadf(tmp + ((yi * size + vx) << 3)))
            _fold(f, h, f.dtoi(acc + f.f64const(0.5)))
    _finish(f, h)
    return m


def _build_median(size: int) -> Module:
    m = _new_module("median3x3", size)
    img = m.addr_of("img")
    m.global_bytes("out", bytes(p for row in source_image("median3x3", size)
                                for p in row), align=4)
    out = m.addr_of("out")
    f = m.function("main", ret=I32)
    v = [f.local(I32, f"v{i}") for i in range(9)]
    t = f.local(I32, "t")
    with f.for_range("y", 1, size - 1) as y:
        with f.for_range("x", 1, size - 1) as x:
            off = f.local(I32, "off", init=y * size + x)
            for i, (dy, dx) in enumerate((dy, dx) for dy in (-1, 0, 1)
                                         for dx in (-1, 0, 1)):
                f.assign(v[i], f.load_u8(img + off + dy * size + dx))
            for a, b in MEDIAN9_NETWORK:
                with f.if_(v[a] > v[b]):
                    f.assign(t, v[a])
                    f.assign(v[a], v[b])
                    f.assign(v[b], t)
            f.store8(out + off, v[4])
    h = f.local(U32, "h", init=0)
    _digest_u8_buffer(f, m, h, "out", size * size)
    # f64 mean of the filtered picture, folded in scaled by 16
    total = f.local(F64, "total", init=f.f64const(0.0))
    with f.for_range("mi", 0, size * size) as mi:
        f.assign(total, total + f.itod(f.load_u8(out + mi)))
    _fold(f, h, f.dtoi(total / f.f64const(float(size * size))
                       * f.f64const(16.0)))
    _finish(f, h)
    return m


def _build_histstats(size: int) -> Module:
    m = _new_module("histstats", size)
    img = m.addr_of("img")
    m.global_zeros("hist", 256 * 4, align=4)
    hist = m.addr_of("hist")
    f = m.function("main", ret=I32)
    mn = f.local(I32, "mn", init=255)
    mx = f.local(I32, "mx", init=0)
    fsum = f.local(F64, "fsum", init=f.f64const(0.0))
    fsq = f.local(F64, "fsq", init=f.f64const(0.0))
    fv = f.local(F64, "fv")
    with f.for_range("i", 0, size * size) as i:
        pv = f.local(I32, "pv", init=f.load_u8(img + i))
        slot = f.local(U32, "slot", init=hist + (pv << 2))
        f.store(slot, f.load(slot) + 1)
        with f.if_(pv < mn):
            f.assign(mn, pv)
        with f.if_(pv > mx):
            f.assign(mx, pv)
        f.assign(fv, f.itod(pv))
        f.assign(fsum, fsum + fv)
        f.assign(fsq, fsq + fv * fv)
    n = f.local(F64, "n", init=f.f64const(float(size * size)))
    mean = f.local(F64, "mean", init=fsum / n)
    var = f.local(F64, "var", init=fsq / n - mean * mean)
    with f.if_(var < f.f64const(0.0)):
        f.assign(var, f.f64const(0.0))
    sd = f.local(F64, "sd", init=f.fsqrt(var))
    h = f.local(U32, "h", init=0)
    with f.for_range("b", 0, 256) as b:
        _fold(f, h, f.load(hist + (b << 2)))
    _fold(f, h, mn)
    _fold(f, h, mx)
    _fold(f, h, f.dtoi(mean * f.f64const(1000.0)))
    _fold(f, h, f.dtoi(sd * f.f64const(1000.0)))
    _finish(f, h)
    return m


def _build_integral(size: int) -> Module:
    m = _new_module("integral", size)
    img = m.addr_of("img")
    m.global_zeros("ii", size * size * 4, align=4)
    ii = m.addr_of("ii")
    f = m.function("main", ret=I32)
    with f.for_range("y", 0, size) as y:
        rs = f.local(I32, "rs", init=0)
        with f.for_range("x", 0, size) as x:
            off = f.local(I32, "off", init=y * size + x)
            f.assign(rs, rs + f.load_u8(img + off))
            above = f.local(I32, "above", init=0)
            with f.if_(y > 0):
                f.assign(above, f.load(ii + ((off - size) << 2)))
            f.store(ii + (off << 2), rs + above)
    h = f.local(U32, "h", init=0)
    with f.for_range("di", 0, size * size) as di:
        _fold(f, h, f.load(ii + (di << 2)))
    # ROI sums via the four-corner trick (boxes are compile-time)
    for x0, y0, x1, y1 in roi_boxes(size):
        def corner(cy: int, cx: int):
            return f.load(ii + ((cy * size + cx) << 2))
        _fold(f, h, corner(y1 - 1, x1 - 1) - corner(y1 - 1, x0 - 1)
              - corner(y0 - 1, x1 - 1) + corner(y0 - 1, x0 - 1))
    # centre of mass in f64 (per-axis first moments over total mass)
    cx = f.local(F64, "cx", init=f.f64const(0.0))
    cy = f.local(F64, "cy", init=f.f64const(0.0))
    ct = f.local(F64, "ct", init=f.f64const(0.0))
    fv = f.local(F64, "fv")
    with f.for_range("my", 0, size) as my:
        with f.for_range("mx", 0, size) as mx:
            f.assign(fv, f.itod(f.load_u8(img + my * size + mx)))
            f.assign(cx, cx + f.itod(mx) * fv)
            f.assign(cy, cy + f.itod(my) * fv)
            f.assign(ct, ct + fv)
    _fold(f, h, f.dtoi(cx / ct * f.f64const(100.0)))
    _fold(f, h, f.dtoi(cy / ct * f.f64const(100.0)))
    _finish(f, h)
    return m


def _build_downscale(size: int) -> Module:
    m = _new_module("downscale2x", size)
    img = m.addr_of("img")
    half = size // 2
    f = m.function("main", ret=I32)
    h = f.local(U32, "h", init=0)
    with f.for_range("y", 0, half) as y:
        with f.for_range("x", 0, half) as x:
            off = f.local(I32, "off", init=(y * size + x) * 2)
            s4 = f.local(I32, "s4", init=(
                f.load_u8(img + off) + f.load_u8(img + off + 1)
                + f.load_u8(img + off + size)
                + f.load_u8(img + off + size + 1)))
            _fold(f, h, f.dtoi(f.f64const(0.25) * f.itod(s4)
                               + f.f64const(0.5)))
    _finish(f, h)
    return m


_BUILDERS = {
    "sobel3x3": (_build_sobel, ("conv", "gradient", "float")),
    "sharpen3x3": (_build_sharpen, ("conv", "enhance", "float")),
    "gauss5x5": (_build_gauss, ("conv", "separable", "float")),
    "median3x3": (_build_median, ("rank", "denoise", "integer")),
    "histstats": (_build_histstats, ("statistics", "histogram", "float")),
    "integral": (_build_integral, ("statistics", "roi", "float")),
    "downscale2x": (_build_downscale, ("resample", "float")),
}

assert set(_BUILDERS) == set(IMAGE_INDEX) == set(REFERENCES)


def _register(kernel: str) -> None:
    builder, tags = _BUILDERS[kernel]

    @workload(f"img:{kernel}", "img",
              scale_key=lambda scale: (scale.image_size,),
              golden=lambda scale: REFERENCES[kernel](scale.image_size),
              tags=tags)
    def _build(scale: Scale, builder=builder) -> Module:
        return builder(scale.image_size)


for _kernel in _BUILDERS:
    _register(_kernel)
