"""Workloads as a first-class, pluggable layer.

The registry (:mod:`repro.workloads.registry`) is the single source of
truth for every kernel the reproduction can evaluate; the family modules
(:mod:`~repro.workloads.fse`, :mod:`~repro.workloads.hevc`,
:mod:`~repro.workloads.imaging`) register their specs on import.  See
README "Workload catalogue" for the full table and the guide to adding
a workload.
"""

from repro.workloads.registry import (
    ABIS,
    PRESETS,
    WorkloadSpec,
    build_cache_size,
    clear_build_cache,
    ensure_builtin,
    families,
    get_spec,
    register,
    select,
    select_pairs,
    specs,
    workload,
)

__all__ = [
    "ABIS",
    "PRESETS",
    "WorkloadSpec",
    "build_cache_size",
    "clear_build_cache",
    "ensure_builtin",
    "families",
    "get_spec",
    "register",
    "select",
    "select_pairs",
    "specs",
    "workload",
]
