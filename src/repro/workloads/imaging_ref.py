"""Host-side reference for the imaging workload family.

Every kernel in :mod:`repro.workloads.imaging` has its counterpart here,
mirrored operation-for-operation -- the same visit order, the same
double-precision accumulation order, the same truncations -- so the
reference digest and both ABI builds of the simulated kernel print the
same number bit-for-bit (Python floats are IEEE doubles, exactly like
the simulated FPU and the bit-exact soft-float runtime).

Each function returns the expected console output of the kernel: the
decimal rolling digest (``h = h * 31 + value`` over the kernel's output
stream, modulo 2**32) plus newline.
"""

from __future__ import annotations

import math

from repro.fse.images import make_image

MASK32 = 0xFFFFFFFF

#: source picture per kernel (diverse content, all deterministic)
IMAGE_INDEX = {
    "sobel3x3": 2,
    "sharpen3x3": 3,
    "gauss5x5": 5,
    "median3x3": 7,
    "histstats": 11,
    "integral": 13,
    "downscale2x": 17,
}

#: separable 5-tap binomial kernel (all exact binary fractions)
GAUSS_W = (1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16)

#: unsharp coefficient of the sharpen kernel
SHARPEN_ALPHA = 0.6

#: inclusive-exclusive ROI boxes of the integral kernel, for side n:
#: four quadrants (inset one pixel so every corner lookup is in range)
#: plus the centre box
def roi_boxes(n: int) -> list[tuple[int, int, int, int]]:
    q = n // 2
    return [(1, 1, q, q), (q, 1, n - 1, q),
            (1, q, q, n - 1), (q, q, n - 1, n - 1),
            (2, 2, n - 2, n - 2)]


def source_image(kernel: str, size: int) -> list[list[int]]:
    """The deterministic input picture of ``kernel`` at ``size``."""
    return make_image(IMAGE_INDEX[kernel], size)


def _digest(values) -> int:
    h = 0
    for v in values:
        h = (h * 31 + v) & MASK32
    return h


def _console(h: int) -> str:
    return f"{h}\n"


def sobel3x3(size: int) -> str:
    """Gradient magnitude: |G| = round(sqrt(gx^2 + gy^2)), clamp 255."""
    p = source_image("sobel3x3", size)
    out = [[0] * size for _ in range(size)]
    for y in range(1, size - 1):
        for x in range(1, size - 1):
            gx = (p[y - 1][x + 1] + 2 * p[y][x + 1] + p[y + 1][x + 1]
                  - p[y - 1][x - 1] - 2 * p[y][x - 1] - p[y + 1][x - 1])
            gy = (p[y + 1][x - 1] + 2 * p[y + 1][x] + p[y + 1][x + 1]
                  - p[y - 1][x - 1] - 2 * p[y - 1][x] - p[y - 1][x + 1])
            mag = int(math.sqrt(float(gx * gx + gy * gy)) + 0.5)
            out[y][x] = min(mag, 255)
    return _console(_digest(v for row in out for v in row))


def sharpen3x3(size: int) -> str:
    """Unsharp mask: c + alpha * (4c - n - s - e - w), clamped."""
    p = source_image("sharpen3x3", size)
    out = [row[:] for row in p]
    for y in range(1, size - 1):
        for x in range(1, size - 1):
            lap = (4 * p[y][x] - p[y - 1][x] - p[y + 1][x]
                   - p[y][x - 1] - p[y][x + 1])
            v = float(p[y][x]) + SHARPEN_ALPHA * float(lap)
            if v < 0.0:
                out[y][x] = 0
            elif v > 255.0:
                out[y][x] = 255
            else:
                out[y][x] = int(v + 0.5)
    return _console(_digest(v for row in out for v in row))


def gauss5x5(size: int) -> str:
    """Separable 5x5 binomial blur with clamp-to-edge borders."""
    p = source_image("gauss5x5", size)
    tmp = [[0.0] * size for _ in range(size)]
    for y in range(size):
        for x in range(size):
            acc = 0.0
            for k in range(5):
                xi = x + k - 2
                if xi < 0:
                    xi = 0
                if xi > size - 1:
                    xi = size - 1
                acc = acc + GAUSS_W[k] * float(p[y][xi])
            tmp[y][x] = acc
    out = [[0] * size for _ in range(size)]
    for y in range(size):
        for x in range(size):
            acc = 0.0
            for k in range(5):
                yi = y + k - 2
                if yi < 0:
                    yi = 0
                if yi > size - 1:
                    yi = size - 1
                acc = acc + GAUSS_W[k] * tmp[yi][x]
            out[y][x] = int(acc + 0.5)
    return _console(_digest(v for row in out for v in row))


def median3x3(size: int) -> str:
    """3x3 median filter plus the f64 mean of the filtered picture."""
    p = source_image("median3x3", size)
    out = [row[:] for row in p]
    for y in range(1, size - 1):
        for x in range(1, size - 1):
            window = sorted(p[y + dy][x + dx]
                            for dy in (-1, 0, 1) for dx in (-1, 0, 1))
            out[y][x] = window[4]
    h = _digest(v for row in out for v in row)
    total = 0.0
    for row in out:
        for v in row:
            total = total + float(v)
    mean = total / float(size * size)
    h = (h * 31 + int(mean * 16.0)) & MASK32
    return _console(h)


def histstats(size: int) -> str:
    """256-bin histogram + min/max/mean/stddev over the picture."""
    p = source_image("histstats", size)
    hist = [0] * 256
    mn, mx = 255, 0
    fsum = 0.0
    fsq = 0.0
    for y in range(size):
        for x in range(size):
            v = p[y][x]
            hist[v] += 1
            if v < mn:
                mn = v
            if v > mx:
                mx = v
            fv = float(v)
            fsum = fsum + fv
            fsq = fsq + fv * fv
    n = float(size * size)
    mean = fsum / n
    var = fsq / n - mean * mean
    if var < 0.0:
        var = 0.0
    sd = math.sqrt(var)
    h = _digest(hist)
    for v in (mn, mx, int(mean * 1000.0), int(sd * 1000.0)):
        h = (h * 31 + v) & MASK32
    return _console(h)


def integral(size: int) -> str:
    """Integral image, ROI sums over it, and the f64 centre of mass."""
    p = source_image("integral", size)
    ii = [[0] * size for _ in range(size)]
    for y in range(size):
        rs = 0
        for x in range(size):
            rs += p[y][x]
            ii[y][x] = rs + (ii[y - 1][x] if y > 0 else 0)
    h = _digest(v for row in ii for v in row)
    for x0, y0, x1, y1 in roi_boxes(size):
        s = (ii[y1 - 1][x1 - 1] - ii[y1 - 1][x0 - 1]
             - ii[y0 - 1][x1 - 1] + ii[y0 - 1][x0 - 1])
        h = (h * 31 + s) & MASK32
    cx = 0.0
    cy = 0.0
    ct = 0.0
    for y in range(size):
        for x in range(size):
            fv = float(p[y][x])
            cx = cx + float(x) * fv
            cy = cy + float(y) * fv
            ct = ct + fv
    h = (h * 31 + int((cx / ct) * 100.0)) & MASK32
    h = (h * 31 + int((cy / ct) * 100.0)) & MASK32
    return _console(h)


def downscale2x(size: int) -> str:
    """Bilinear 2x downscale (2x2 box average, rounded)."""
    p = source_image("downscale2x", size)
    half = size // 2
    h = 0
    for y in range(half):
        for x in range(half):
            s4 = (p[2 * y][2 * x] + p[2 * y][2 * x + 1]
                  + p[2 * y + 1][2 * x] + p[2 * y + 1][2 * x + 1])
            v = int(0.25 * float(s4) + 0.5)
            h = (h * 31 + v) & MASK32
    return _console(h)


#: kernel name -> reference oracle
REFERENCES = {
    "sobel3x3": sobel3x3,
    "sharpen3x3": sharpen3x3,
    "gauss5x5": gauss5x5,
    "median3x3": median3x3,
    "histstats": histstats,
    "integral": integral,
    "downscale2x": downscale2x,
}
