"""The declarative workload registry.

Every workload the experiments evaluate is described exactly once as a
:class:`WorkloadSpec`: a scale-aware kernel-IR builder, the scale fields
the build depends on (the build-cache key), a golden-output oracle for
self-checking, and the membership predicate that ties the workload into
the named experiment scales.  Specs are registered with the
:func:`workload` decorator at import of their family module
(:mod:`repro.workloads.fse`, :mod:`repro.workloads.hevc`,
:mod:`repro.workloads.imaging`); everything downstream -- the Table III
kernel set, the Table IV / Figure 4 pair lists, the DSE sweeps and the
``repro workloads`` CLI -- resolves workloads through this module, so
adding a scenario to the whole reproduction is one new builder function
in one file.

Selection supports named presets (``table3`` is the paper's evaluated
set), family names (``fse``/``hevc``/``img``) and shell-style globs over
workload names (``img:*``, ``fse:0?``), comma-combinable: the
``repro dse --workloads`` flag feeds straight into :func:`select`.

Compiled programs are memoised in a single registry-level build cache
keyed by ``(workload name, float ABI, the spec's scale fields)`` --
two scales that agree on the fields a builder actually reads share one
build.  :func:`clear_build_cache` drops it (tests use this to assert
cold-build behaviour); the cache only ever holds one entry per distinct
key, so its size is bounded by the registry itself.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.asm.program import Program
from repro.dse.workload import WorkloadPair
from repro.experiments.scale import Scale, iter_scales
from repro.kir import Module, compile_module

#: the two float ABIs every workload compiles under
ABIS = ("hard", "soft")

#: preset name -> the families it spans, in suite order.  ``table3`` is
#: the paper's evaluated set (FSE + HEVC-lite, exactly the pre-registry
#: suite); ``imaging`` is the PR-5 image-processing kernel family.  The
#: ``all`` preset is resolved dynamically by :func:`select` to every
#: registered family, so user-registered families are included too.
PRESETS: dict[str, tuple[str, ...]] = {
    "table3": ("fse", "hevc"),
    "imaging": ("img",),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: how to build it, check it, and scale it.

    Attributes
    ----------
    name:
        Registry key, ``family:kernel`` (``fse:00``, ``img:sobel3x3``).
    family:
        Workload family (groups Table IV rows, selection, rendering).
    build_module:
        ``scale -> kir Module``; compiled per ABI by :meth:`program`.
    scale_key:
        ``scale -> tuple`` of the scale fields the build depends on
        (the build-cache key; scales agreeing on it share builds).
    golden:
        ``scale -> str`` expected console output of a correct run, from
        an independent host-side reference (both ABI builds must match
        it bit-for-bit).
    in_scale:
        ``scale -> bool``: is this workload part of the scale's suite?
    tags:
        Free-form labels (``float``, ``conv``, ``statistics``, ...).
    """

    name: str
    family: str
    build_module: Callable[[Scale], Module]
    scale_key: Callable[[Scale], tuple]
    golden: Callable[[Scale], str]
    in_scale: Callable[[Scale], bool] = lambda scale: True
    tags: frozenset[str] = field(default_factory=frozenset)

    def program(self, abi: str, scale: Scale) -> Program:
        """The compiled program for ``abi`` at ``scale`` (build-cached)."""
        if abi not in ABIS:
            raise ValueError(f"unknown float ABI {abi!r}; expected "
                             f"one of {ABIS}")
        key = (self.name, abi, self.scale_key(scale))
        program = _BUILD_CACHE.get(key)
        if program is None:
            program = compile_module(self.build_module(scale), float_abi=abi)
            _BUILD_CACHE[key] = program
        return program

    def pair(self, scale: Scale) -> WorkloadPair:
        """Both builds of the workload, as the DSE engine consumes them."""
        return WorkloadPair(name=self.name,
                            float_program=self.program("hard", scale),
                            fixed_program=self.program("soft", scale))

    def scales(self) -> tuple[str, ...]:
        """Names of the registered scales whose suite includes this spec."""
        return tuple(s.name for s in iter_scales() if self.in_scale(s))


_REGISTRY: dict[str, WorkloadSpec] = {}
_BUILD_CACHE: dict[tuple, Program] = {}
_BUILTIN_LOADED = False


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add ``spec`` to the registry (duplicate names are an error)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"workload {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def workload(name: str, family: str, *,
             scale_key: Callable[[Scale], tuple],
             golden: Callable[[Scale], str],
             in_scale: Callable[[Scale], bool] = lambda scale: True,
             tags: Iterable[str] = ()) -> Callable:
    """Decorator registering a ``scale -> Module`` builder as a workload."""
    def decorate(build_module: Callable[[Scale], Module]):
        register(WorkloadSpec(
            name=name, family=family, build_module=build_module,
            scale_key=scale_key, golden=golden, in_scale=in_scale,
            tags=frozenset(tags)))
        return build_module
    return decorate


def ensure_builtin() -> None:
    """Import the built-in family modules (idempotent)."""
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    # registration order defines suite order: fse, hevc, imaging, pipeline
    # (the table3 preset must enumerate exactly like the pre-registry
    # workload lists did).  Each family imports atomically: on failure
    # its partial registrations are rolled back and the error re-raised,
    # so the next call retries that family (Python drops failed modules
    # from sys.modules) instead of serving -- or tripping over -- a
    # half-registered one.
    import importlib
    import sys
    for module in ("fse", "hevc", "imaging", "pipeline"):
        qualified = f"repro.workloads.{module}"
        if qualified in sys.modules:
            continue
        before = set(_REGISTRY)
        try:
            importlib.import_module(qualified)
        except BaseException:
            for name in set(_REGISTRY) - before:
                del _REGISTRY[name]
            raise
    _BUILTIN_LOADED = True


def get_spec(name: str) -> WorkloadSpec:
    """Look up one workload by exact name."""
    ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; try "
                         f"'repro workloads list'") from None


def specs(family: str | None = None,
          scale: Scale | None = None) -> tuple[WorkloadSpec, ...]:
    """Registered specs in registration order, optionally filtered."""
    ensure_builtin()
    out = []
    for spec in _REGISTRY.values():
        if family is not None and spec.family != family:
            continue
        if scale is not None and not spec.in_scale(scale):
            continue
        out.append(spec)
    return tuple(out)


def families() -> tuple[str, ...]:
    """Registered family names, in registration order."""
    ensure_builtin()
    seen: dict[str, None] = {}
    for spec in _REGISTRY.values():
        seen.setdefault(spec.family)
    return tuple(seen)


def select(patterns: str | Sequence[str],
           scale: Scale | None = None) -> tuple[WorkloadSpec, ...]:
    """Resolve a workload filter to specs, in registry order per pattern.

    ``patterns`` is a comma-separated string (or sequence) where each
    item is a preset name (``table3``, or ``all`` for every registered
    family), a family name (``img``) or an fnmatch glob over workload
    names (``img:*``, ``fse:00``).  Items
    accumulate left to right; duplicates keep their first position.  An
    item matching nothing raises ``ValueError`` -- a filter that
    silently selects an empty suite would render an empty report.
    """
    ensure_builtin()
    if isinstance(patterns, str):
        patterns = [p.strip() for p in patterns.split(",")]
    patterns = [p for p in patterns if p]
    if not patterns:
        raise ValueError("empty workload filter")
    chosen: dict[str, WorkloadSpec] = {}
    for pattern in patterns:
        if pattern == "all":
            matched = list(specs())
        elif pattern in PRESETS:
            matched = [s for fam in PRESETS[pattern] for s in specs(fam)]
        elif pattern in families():
            matched = list(specs(pattern))
        else:
            matched = [s for s in specs()
                       if fnmatch.fnmatchcase(s.name, pattern)]
        if scale is not None:
            matched = [s for s in matched if s.in_scale(scale)]
        if not matched:
            raise ValueError(
                f"workload filter {pattern!r} matches nothing"
                + (f" at scale {scale.name!r}" if scale is not None else ""))
        for spec in matched:
            chosen.setdefault(spec.name, spec)
    return tuple(chosen.values())


def select_pairs(patterns: str | Sequence[str],
                 scale: Scale) -> list[WorkloadPair]:
    """:func:`select`, resolved to compiled float/fixed program pairs."""
    return [spec.pair(scale) for spec in select(patterns, scale)]


def clear_build_cache() -> None:
    """Drop every memoised program build (test isolation hook)."""
    _BUILD_CACHE.clear()


def build_cache_size() -> int:
    """Number of memoised program builds (diagnostics/tests)."""
    return len(_BUILD_CACHE)
