"""The HEVC-lite workload family, registered per evaluation bitstream.

Each spec embeds one of the 36 encoded streams (4 configurations x 3
QPs x 3 sequences) into the bare-metal decoder kernel; the golden oracle
is the host-side reference decoder (:mod:`repro.codecs.hevclite
.decoder_ref`), whose console output (checksum + the two FP statistics)
both ABI builds must reproduce exactly.  Stream geometry is fixed, so
the builds are scale-independent (``scale_key`` is empty): every scale
shares one build per stream and ABI.
"""

from __future__ import annotations

from functools import lru_cache

from repro.codecs.hevclite import (
    build_decoder_module,
    encode_spec,
    stream_specs,
)
from repro.codecs.hevclite.decoder_ref import decode
from repro.experiments.scale import Scale
from repro.kir import Module
from repro.workloads.registry import workload


@lru_cache(maxsize=None)
def _golden(stream_index: int) -> str:
    spec = stream_specs()[stream_index]
    return decode(encode_spec(spec).bitstream).console


def _register(stream_index: int) -> None:
    spec = stream_specs()[stream_index]

    @workload(f"hevc:{spec.name}", "hevc",
              scale_key=lambda scale: (),
              golden=lambda scale: _golden(stream_index),
              in_scale=lambda scale: stream_index in scale.hevc_indices,
              tags=("video", "decode", spec.config, f"qp{spec.qp}"))
    def _build(scale: Scale, stream_index: int = stream_index) -> Module:
        del scale  # stream geometry is fixed; scale picks the subset only
        spec = stream_specs()[stream_index]
        return build_decoder_module(encode_spec(spec).bitstream,
                                    name=f"hevc_{spec.name}")


for _index in range(len(stream_specs())):
    _register(_index)
