"""Declarative frame-stream pipelines priced by profile composition.

ROADMAP item 3: image processing in the field is a *stream* of frames
through a chain of kernels (XFEL-style: background subtraction, a
data-dependent acceptance threshold, denoise, edge extraction, feature
statistics), not a single kernel invocation.  Simulating a 1000-frame
stream per candidate platform would undo everything the profile-once
path bought, so pipelines here are priced by **exact profile algebra**
(:mod:`repro.nfp.linear`) instead:

* every (stage, frame class) *invocation* is an independent standalone
  program -- the stage kernel with its concrete input frame embedded --
  profiled (or metered) exactly once;
* the stream is partitioned into **frame classes** by content: frames
  of a class are identical, so they take the same branches, including
  the early-exit threshold whose cost is data-dependent.  Each class
  contributes ``count_c`` frames and a chain prefix (the stages it
  actually reaches);
* the pipeline NFP is ``sum_c count_c * sum_s NFP(stage s, class c)``
  -- computed by :func:`repro.nfp.linear.compose_profiles` over the
  per-invocation profiles, bit-identical in cycles/retired to metering
  every invocation of the stream (the tests' oracle) because profiles
  are all-integer and every invocation runs as its own program.

The composition contract, and its limits: a stage invocation must be a
*self-contained program* -- it starts at base window depth and returns
to it (every program run starts a fresh simulator), exits cleanly, and
must not self-modify (unclean profiles poison the composite).  Stage
cost may depend on frame *content* but not on cross-frame state: a
stage carrying state between frames would break the class partition.
Within those rules the composition is exact -- there is no "small
interaction term" to tolerate.

Pipelines register as first-class workloads (family ``pipe``) with
golden outputs per invocation, so ``repro dse --workloads pipe:*``,
``repro pipeline``, the evaluation server and ``repro workloads list``
all resolve them through the one registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.dse.workload import PipelinePair
from repro.experiments.scale import Scale
from repro.fse.images import make_image
from repro.kir import F64, I32, U32, Module, compile_module
from repro.workloads.imaging_ref import GAUSS_W, MASK32
from repro.workloads.registry import WorkloadSpec, ensure_builtin, register

#: immutable frame: tuple of pixel-row tuples (hashable -> cacheable)
Image = tuple[tuple[int, ...], ...]

#: acceptance threshold of the ``threshold`` stage (u8 intensity)
THRESHOLD = 96

#: a frame passes iff at least 1/PASS_DEN of its pixels clear THRESHOLD
PASS_DEN = 8

#: source index and right-shift of the synthetic detector background
BACKGROUND_INDEX = 19
BACKGROUND_SHIFT = 3


def frame_image(base: int, size: int, shift: int = 0) -> Image:
    """A deterministic frame: ``make_image(base)`` dimmed by ``>> shift``."""
    return tuple(tuple(v >> shift for v in row)
                 for row in make_image(base, size))


def background_image(size: int) -> Image:
    """The dim fixed-pattern background the ``bgsub`` stage removes."""
    return frame_image(BACKGROUND_INDEX, size, BACKGROUND_SHIFT)


def _flat(image: Image) -> bytes:
    return bytes(v for row in image for v in row)


def _digest(values) -> int:
    h = 0
    for v in values:
        h = (h * 31 + v) & MASK32
    return h


def _console(h: int) -> str:
    return f"{h}\n"


# -- stage kernels (kir builders + host references) ---------------------------
#
# Every stage mirrors a registry imaging kernel but takes an explicit
# input frame: the builder embeds the frame as a global, the host
# reference computes the same output image and digest operation for
# operation (same visit order, same double-precision accumulation, same
# truncations), so both ABI builds print the reference digest
# bit-for-bit and the next stage's input is known host-side without
# simulating anything.

@dataclass(frozen=True)
class StageResult:
    """Host-side outcome of one stage on one frame."""

    console: str          #: expected console output (the golden)
    out: Image | None     #: output frame (None: terminal stage)
    passed: bool          #: False stops the chain after this stage


def _stage_module(stage: str, image: Image, size: int) -> Module:
    m = Module(f"pipe_{stage}_{size}_{_digest(_flat(image)):08x}")
    m.global_bytes("img", _flat(image), align=4)
    return m


def _digest_u8(f, h, buf, count: int) -> None:
    with f.for_range("di", 0, count) as di:
        f.assign(h, h * 31 + f.load_u8(buf + di))


def _finish(f, h) -> None:
    f.sys_write_u32(h)
    f.ret(0)


def _build_bgsub(image: Image, size: int) -> Module:
    m = _stage_module("bgsub", image, size)
    m.global_bytes("bg", _flat(background_image(size)), align=4)
    img, bg = m.addr_of("img"), m.addr_of("bg")
    m.global_zeros("out", size * size, align=4)
    out = m.addr_of("out")
    f = m.function("main", ret=I32)
    with f.for_range("i", 0, size * size) as i:
        d = f.local(I32, "d", init=f.load_u8(img + i) - f.load_u8(bg + i))
        with f.if_(d < 0):
            f.assign(d, 0)
        f.store8(out + i, d)
    h = f.local(U32, "h", init=0)
    _digest_u8(f, h, out, size * size)
    _finish(f, h)
    return m


def _ref_bgsub(image: Image, size: int) -> StageResult:
    bg = background_image(size)
    out = tuple(tuple(max(p - q, 0) for p, q in zip(r1, r2))
                for r1, r2 in zip(image, bg))
    return StageResult(_console(_digest(_flat(out))), out, True)


def _build_threshold(image: Image, size: int) -> Module:
    m = _stage_module("threshold", image, size)
    img = m.addr_of("img")
    m.global_zeros("out", size * size, align=4)
    out = m.addr_of("out")
    f = m.function("main", ret=I32)
    npass = f.local(I32, "npass", init=0)
    with f.for_range("i", 0, size * size) as i:
        v = f.local(I32, "v", init=f.load_u8(img + i))
        with f.if_(v >= THRESHOLD) as c:
            f.store8(out + i, v)
            f.assign(npass, npass + 1)
        with c.else_():
            f.store8(out + i, 0)
    h = f.local(U32, "h", init=0)
    _digest_u8(f, h, out, size * size)
    f.assign(h, h * 31 + npass)
    accept = f.local(I32, "accept", init=0)
    with f.if_(npass * PASS_DEN >= size * size):
        f.assign(accept, 1)
    f.assign(h, h * 31 + accept)
    _finish(f, h)
    return m


def _ref_threshold(image: Image, size: int) -> StageResult:
    out = tuple(tuple(v if v >= THRESHOLD else 0 for v in row)
                for row in image)
    npass = sum(1 for row in image for v in row if v >= THRESHOLD)
    passed = npass * PASS_DEN >= size * size
    h = _digest(_flat(out))
    h = (h * 31 + npass) & MASK32
    h = (h * 31 + (1 if passed else 0)) & MASK32
    return StageResult(_console(h), out, passed)


def _build_gauss5x5(image: Image, size: int) -> Module:
    m = _stage_module("gauss5x5", image, size)
    img = m.addr_of("img")
    m.global_f64s("w5", list(GAUSS_W))
    w5 = m.addr_of("w5")
    m.global_zeros("tmp", size * size * 8, align=8)
    tmp = m.addr_of("tmp")
    m.global_zeros("out", size * size, align=4)
    out = m.addr_of("out")
    f = m.function("main", ret=I32)
    acc = f.local(F64, "acc")
    with f.for_range("y", 0, size) as y:
        with f.for_range("x", 0, size) as x:
            f.assign(acc, f.f64const(0.0))
            with f.for_range("k", 0, 5) as k:
                xi = f.local(I32, "xi", init=x + k - 2)
                with f.if_(xi < 0):
                    f.assign(xi, 0)
                with f.if_(xi > size - 1):
                    f.assign(xi, size - 1)
                f.assign(acc, acc + f.loadf(w5 + (k << 3))
                         * f.itod(f.load_u8(img + y * size + xi)))
            f.storef(tmp + ((y * size + x) << 3), acc)
    with f.for_range("vy", 0, size) as vy:
        with f.for_range("vx", 0, size) as vx:
            f.assign(acc, f.f64const(0.0))
            with f.for_range("vk", 0, 5) as vk:
                yi = f.local(I32, "yi", init=vy + vk - 2)
                with f.if_(yi < 0):
                    f.assign(yi, 0)
                with f.if_(yi > size - 1):
                    f.assign(yi, size - 1)
                f.assign(acc, acc + f.loadf(w5 + (vk << 3))
                         * f.loadf(tmp + ((yi * size + vx) << 3)))
            f.store8(out + vy * size + vx, f.dtoi(acc + f.f64const(0.5)))
    h = f.local(U32, "h", init=0)
    _digest_u8(f, h, out, size * size)
    _finish(f, h)
    return m


def _ref_gauss5x5(image: Image, size: int) -> StageResult:
    tmp = [[0.0] * size for _ in range(size)]
    for y in range(size):
        for x in range(size):
            acc = 0.0
            for k in range(5):
                xi = min(max(x + k - 2, 0), size - 1)
                acc = acc + GAUSS_W[k] * float(image[y][xi])
            tmp[y][x] = acc
    out = []
    for y in range(size):
        row = []
        for x in range(size):
            acc = 0.0
            for k in range(5):
                yi = min(max(y + k - 2, 0), size - 1)
                acc = acc + GAUSS_W[k] * tmp[yi][x]
            row.append(int(acc + 0.5))
        out.append(tuple(row))
    out = tuple(out)
    return StageResult(_console(_digest(_flat(out))), out, True)


def _build_sobel3x3(image: Image, size: int) -> Module:
    m = _stage_module("sobel3x3", image, size)
    img = m.addr_of("img")
    m.global_zeros("out", size * size, align=4)
    out = m.addr_of("out")
    f = m.function("main", ret=I32)
    mag = f.local(I32, "mag")
    with f.for_range("y", 1, size - 1) as y:
        with f.for_range("x", 1, size - 1) as x:
            off = f.local(I32, "off", init=y * size + x)
            nw = f.local(I32, "nw", init=f.load_u8(img + off - size - 1))
            no = f.local(I32, "no", init=f.load_u8(img + off - size))
            ne = f.local(I32, "ne", init=f.load_u8(img + off - size + 1))
            we = f.local(I32, "we", init=f.load_u8(img + off - 1))
            ea = f.local(I32, "ea", init=f.load_u8(img + off + 1))
            sw = f.local(I32, "sw", init=f.load_u8(img + off + size - 1))
            so = f.local(I32, "so", init=f.load_u8(img + off + size))
            se = f.local(I32, "se", init=f.load_u8(img + off + size + 1))
            gx = f.local(I32, "gx", init=ne + 2 * ea + se - nw - 2 * we - sw)
            gy = f.local(I32, "gy", init=sw + 2 * so + se - nw - 2 * no - ne)
            f.assign(mag, f.dtoi(f.fsqrt(f.itod(gx * gx + gy * gy))
                                 + f.f64const(0.5)))
            with f.if_(mag > 255):
                f.assign(mag, 255)
            f.store8(out + off, mag)
    h = f.local(U32, "h", init=0)
    _digest_u8(f, h, out, size * size)
    _finish(f, h)
    return m


def _ref_sobel3x3(image: Image, size: int) -> StageResult:
    import math
    out = [[0] * size for _ in range(size)]
    p = image
    for y in range(1, size - 1):
        for x in range(1, size - 1):
            gx = (p[y - 1][x + 1] + 2 * p[y][x + 1] + p[y + 1][x + 1]
                  - p[y - 1][x - 1] - 2 * p[y][x - 1] - p[y + 1][x - 1])
            gy = (p[y + 1][x - 1] + 2 * p[y + 1][x] + p[y + 1][x + 1]
                  - p[y - 1][x - 1] - 2 * p[y - 1][x] - p[y - 1][x + 1])
            mag = int(math.sqrt(float(gx * gx + gy * gy)) + 0.5)
            out[y][x] = min(mag, 255)
    frozen = tuple(tuple(row) for row in out)
    return StageResult(_console(_digest(_flat(frozen))), frozen, True)


def _build_histstats(image: Image, size: int) -> Module:
    m = _stage_module("histstats", image, size)
    img = m.addr_of("img")
    m.global_zeros("hist", 256 * 4, align=4)
    hist = m.addr_of("hist")
    f = m.function("main", ret=I32)
    mn = f.local(I32, "mn", init=255)
    mx = f.local(I32, "mx", init=0)
    fsum = f.local(F64, "fsum", init=f.f64const(0.0))
    fsq = f.local(F64, "fsq", init=f.f64const(0.0))
    fv = f.local(F64, "fv")
    with f.for_range("i", 0, size * size) as i:
        pv = f.local(I32, "pv", init=f.load_u8(img + i))
        slot = f.local(U32, "slot", init=hist + (pv << 2))
        f.store(slot, f.load(slot) + 1)
        with f.if_(pv < mn):
            f.assign(mn, pv)
        with f.if_(pv > mx):
            f.assign(mx, pv)
        f.assign(fv, f.itod(pv))
        f.assign(fsum, fsum + fv)
        f.assign(fsq, fsq + fv * fv)
    n = f.local(F64, "n", init=f.f64const(float(size * size)))
    mean = f.local(F64, "mean", init=fsum / n)
    var = f.local(F64, "var", init=fsq / n - mean * mean)
    with f.if_(var < f.f64const(0.0)):
        f.assign(var, f.f64const(0.0))
    sd = f.local(F64, "sd", init=f.fsqrt(var))
    h = f.local(U32, "h", init=0)
    with f.for_range("b", 0, 256) as b:
        f.assign(h, h * 31 + f.load(hist + (b << 2)))
    f.assign(h, h * 31 + mn)
    f.assign(h, h * 31 + mx)
    f.assign(h, h * 31 + f.dtoi(mean * f.f64const(1000.0)))
    f.assign(h, h * 31 + f.dtoi(sd * f.f64const(1000.0)))
    _finish(f, h)
    return m


def _ref_histstats(image: Image, size: int) -> StageResult:
    import math
    hist = [0] * 256
    mn, mx = 255, 0
    fsum = 0.0
    fsq = 0.0
    for row in image:
        for v in row:
            hist[v] += 1
            if v < mn:
                mn = v
            if v > mx:
                mx = v
            fv = float(v)
            fsum = fsum + fv
            fsq = fsq + fv * fv
    n = float(size * size)
    mean = fsum / n
    var = fsq / n - mean * mean
    if var < 0.0:
        var = 0.0
    sd = math.sqrt(var)
    h = _digest(hist)
    for v in (mn, mx, int(mean * 1000.0), int(sd * 1000.0)):
        h = (h * 31 + v) & MASK32
    return StageResult(_console(h), None, True)


@dataclass(frozen=True)
class StageKernel:
    """One pipeline stage kernel: builder + mirrored host reference."""

    name: str
    build: Callable[[Image, int], Module]
    ref: Callable[[Image, int], StageResult]
    tags: tuple[str, ...] = ()


STAGES: dict[str, StageKernel] = {s.name: s for s in (
    StageKernel("bgsub", _build_bgsub, _ref_bgsub, ("integer",)),
    StageKernel("threshold", _build_threshold, _ref_threshold,
                ("integer", "early-exit")),
    StageKernel("gauss5x5", _build_gauss5x5, _ref_gauss5x5, ("float",)),
    StageKernel("sobel3x3", _build_sobel3x3, _ref_sobel3x3, ("float",)),
    StageKernel("histstats", _build_histstats, _ref_histstats,
                ("float", "terminal")),
)}


# -- pipeline specs -----------------------------------------------------------

@dataclass(frozen=True)
class FrameClass:
    """One content class of the frame stream.

    Frames of a class are identical (same deterministic source image),
    so they take identical paths through every stage -- the property
    that lets one representative invocation price ``count`` frames.
    """

    name: str
    base: int         #: ``make_image`` source index
    count: int        #: frames of this class in the priced stream
    shift: int = 0    #: right-shift dimming (dark / rejected classes)

    def image(self, size: int) -> Image:
        return frame_image(self.base, size, self.shift)


@dataclass(frozen=True)
class PipelineSpec:
    """A declarative stage chain over a classed frame stream."""

    name: str
    stages: tuple[str, ...]
    classes: tuple[FrameClass, ...]

    def __post_init__(self) -> None:
        for stage in self.stages:
            if stage not in STAGES:
                raise ValueError(
                    f"pipeline {self.name!r} uses unknown stage "
                    f"{stage!r}; known: {sorted(STAGES)}")
        if not self.stages or not self.classes:
            raise ValueError(
                f"pipeline {self.name!r} needs stages and frame classes")

    @property
    def frames(self) -> int:
        """Total frames in the priced stream."""
        return sum(c.count for c in self.classes)

    def chain(self) -> str:
        """The stage chain as rendered by ``repro workloads list``."""
        return " -> ".join(self.stages)


def pipeline_variant(spec: PipelineSpec, *,
                     drop: Sequence[str] = (),
                     repeats: Mapping[str, int] | None = None
                     ) -> PipelineSpec:
    """A structural variant: stages toggled off and/or repeated.

    The structural sweep axes of ``repro pipeline sweep``: ``drop``
    removes stages from the chain, ``repeats`` applies a stage ``n``
    times back to back (each repeat consumes its predecessor's output).
    The variant is a full :class:`PipelineSpec` -- chains, goldens and
    invocations are recomputed host-side -- named after its deltas, so
    variants ride through a sweep as distinct workloads.
    """
    repeats = dict(repeats or {})
    for stage in list(drop) + list(repeats):
        if stage not in spec.stages:
            raise ValueError(
                f"pipeline {spec.name!r} has no stage {stage!r} "
                f"(chain: {spec.chain()})")
    stages: list[str] = []
    suffix: list[str] = []
    for stage in spec.stages:
        if stage in drop:
            continue
        n = repeats.get(stage, 1)
        if n < 1:
            raise ValueError(f"stage {stage!r} repeat count {n} must "
                             f"be >= 1")
        stages.extend([stage] * n)
    for stage in spec.stages:
        if stage in drop:
            suffix.append(f"no-{stage}")
        elif repeats.get(stage, 1) != 1:
            suffix.append(f"{stage}x{repeats[stage]}")
    if not stages:
        raise ValueError(f"variant of {spec.name!r} drops every stage")
    name = spec.name + "".join(f"~{part}" for part in suffix)
    return replace(spec, name=name, stages=tuple(stages))


# -- chain evaluation + invocation enumeration --------------------------------

@dataclass(frozen=True)
class Invocation:
    """One (stage, frame class) unit of work: program input + oracle."""

    stage: str
    frame_class: str
    frames: int       #: stream frames that execute this invocation
    image: Image      #: the stage's input frame for this class
    golden: str       #: expected console output (host reference)


_CHAIN_CACHE: dict[tuple, tuple] = {}


def _class_chain(spec: PipelineSpec, cls: FrameClass,
                 size: int) -> tuple[tuple[str, Image, StageResult], ...]:
    """The per-class executed prefix: (stage, input, result) per stage.

    Evaluated entirely host-side from the mirrored references; the
    chain stops *after* a stage that rejects the frame (its cost still
    counts -- the hardware ran it to find out).
    """
    key = (spec.name, spec.stages, cls, size)
    chain = _CHAIN_CACHE.get(key)
    if chain is not None:
        return chain
    runs = []
    image = cls.image(size)
    for pos, stage_name in enumerate(spec.stages):
        stage = STAGES[stage_name]
        result = stage.ref(image, size)
        runs.append((stage_name, image, result))
        if not result.passed:
            break
        if pos + 1 < len(spec.stages):
            if result.out is None:
                raise ValueError(
                    f"pipeline {spec.name!r}: terminal stage "
                    f"{stage_name!r} cannot feed {spec.stages[pos + 1]!r}")
            image = result.out
    chain = tuple(runs)
    _CHAIN_CACHE[key] = chain
    return chain


def pipeline_invocations(spec: PipelineSpec,
                         size: int) -> tuple[Invocation, ...]:
    """Every (stage, class) invocation of the priced stream, in order."""
    out = []
    for cls in spec.classes:
        for stage_name, image, result in _class_chain(spec, cls, size):
            out.append(Invocation(
                stage=stage_name, frame_class=cls.name, frames=cls.count,
                image=image, golden=result.console))
    return tuple(out)


_PROGRAM_CACHE: dict[tuple, object] = {}


def _invocation_program(stage: str, image: Image, size: int, abi: str):
    """Compile one stage invocation (memoised; variants share entries)."""
    key = (stage, size, image, abi)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = compile_module(STAGES[stage].build(image, size),
                                 float_abi=abi)
        _PROGRAM_CACHE[key] = program
    return program


def pipeline_pair(spec: PipelineSpec, scale: Scale) -> PipelinePair:
    """Both builds of every invocation, as the DSE engine consumes them."""
    size = scale.image_size
    invocations = pipeline_invocations(spec, size)
    return PipelinePair(
        name=spec.name,
        float_invocations=tuple(
            (_invocation_program(inv.stage, inv.image, size, "hard"),
             inv.frames) for inv in invocations),
        fixed_invocations=tuple(
            (_invocation_program(inv.stage, inv.image, size, "soft"),
             inv.frames) for inv in invocations),
    )


def clear_program_cache() -> None:
    """Drop memoised invocation builds (test isolation hook)."""
    _PROGRAM_CACHE.clear()
    _CHAIN_CACHE.clear()


# -- registry integration -----------------------------------------------------

@dataclass(frozen=True)
class PipelineWorkloadSpec(WorkloadSpec):
    """A pipeline as a first-class registry workload.

    ``pair`` returns a :class:`~repro.dse.workload.PipelinePair`
    (weighted invocation programs per build) instead of one program;
    ``golden`` is the concatenation of the per-invocation goldens in
    chain order.  There is no single ``program``: callers that need to
    execute something use the pair's invocations.
    """

    pipeline: PipelineSpec = field(default=None)  # type: ignore[assignment]

    def program(self, abi: str, scale: Scale):
        raise ValueError(
            f"pipeline workload {self.name!r} has no single program; "
            f"use pair(scale).{ 'float' if abi == 'hard' else 'fixed'}"
            f"_invocations")

    def pair(self, scale: Scale) -> PipelinePair:
        return pipeline_pair(self.pipeline, scale)

    def chain(self) -> str:
        return self.pipeline.chain()


def _pipeline_golden(spec: PipelineSpec, scale: Scale) -> str:
    return "".join(inv.golden
                   for inv in pipeline_invocations(spec, scale.image_size))


def register_pipeline(spec: PipelineSpec,
                      tags: Sequence[str] = ()) -> PipelineWorkloadSpec:
    """Register ``spec`` as a workload (family ``pipe``)."""
    wspec = PipelineWorkloadSpec(
        name=spec.name,
        family="pipe",
        build_module=None,  # type: ignore[arg-type]  # no single program
        scale_key=lambda scale: (scale.image_size,),
        golden=lambda scale, spec=spec: _pipeline_golden(spec, scale),
        tags=frozenset(("pipeline", *tags)),
        pipeline=spec,
    )
    register(wspec)
    return wspec


#: the XFEL-style detector pipeline: subtract the fixed-pattern
#: background, accept frames with enough bright pixels (the
#: data-dependent early exit: dark frames stop here), then denoise,
#: extract edges and reduce to feature statistics.  The stream prices
#: 1000 frames from three content classes.
XFEL = PipelineSpec(
    name="pipe:xfel",
    stages=("bgsub", "threshold", "gauss5x5", "sobel3x3", "histstats"),
    classes=(
        FrameClass("signal", base=2, count=650),
        FrameClass("burst", base=6, count=100),
        FrameClass("dark", base=8, count=250, shift=2),
    ),
)

#: a thresholdless edge-statistics pipeline: every frame runs the full
#: chain (no early exit), two content classes.
EDGES = PipelineSpec(
    name="pipe:edges",
    stages=("gauss5x5", "sobel3x3", "histstats"),
    classes=(
        FrameClass("calm", base=4, count=600),
        FrameClass("busy", base=13, count=400),
    ),
)

PIPELINES: tuple[PipelineSpec, ...] = (XFEL, EDGES)

# registration order defines suite order: when this module is imported
# directly (rather than through the registry), pull in the earlier
# builtin families first so ``pipe`` still registers last.  The nested
# ensure_builtin skips this (partially-initialized) module through its
# sys.modules check, so there is no import cycle.
ensure_builtin()
for _spec in PIPELINES:
    register_pipeline(_spec, tags=("stream",))
