"""Procedural test images and loss masks (the Kodak-set surrogate).

The paper evaluates FSE on 24 pictures from the Kodak database, each with
its own loss mask.  The photographs themselves are not redistributable and
are irrelevant to the estimation experiment -- what matters is 24 distinct
FP-heavy kernels operating on diverse content.  This module generates
deterministic images mixing gradients, sinusoidal textures and structural
edges, plus four families of loss masks (isolated pixels, lost blocks,
stripe bursts, and mixed).
"""

from __future__ import annotations

import math

NUM_TEST_IMAGES = 24


def _lcg(seed: int):
    state = (seed * 2654435761 + 12345) & 0xFFFFFFFF

    def rand() -> int:
        nonlocal state
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        return state >> 16

    return rand


def make_image(index: int, size: int) -> list[list[int]]:
    """Deterministic 8-bit test image ``index`` (0..23) of ``size**2``."""
    if not 0 <= index < NUM_TEST_IMAGES:
        raise ValueError(f"image index out of range: {index}")
    fx = 0.5 + (index % 5) * 0.45
    fy = 0.3 + (index % 7) * 0.35
    phase = index * 0.7
    tilt_x = (index % 3) - 1
    tilt_y = ((index // 3) % 3) - 1
    rand = _lcg(index + 1)
    img: list[list[int]] = []
    for y in range(size):
        row: list[int] = []
        for x in range(size):
            value = 128.0
            value += 40.0 * math.sin(fx * x + phase) * math.cos(fy * y - phase)
            value += 6.0 * tilt_x * (x - size / 2) + 6.0 * tilt_y * (y - size / 2)
            if (x + 2 * y + index) % 11 < 3:
                value += 25.0  # diagonal structural stripes
            value += (rand() % 9) - 4  # mild sensor noise
            row.append(max(0, min(255, int(round(value)))))
        img.append(row)
    return img


def make_mask(index: int, size: int) -> list[list[int]]:
    """Loss mask for image ``index``: 1 = known sample, 0 = lost."""
    if not 0 <= index < NUM_TEST_IMAGES:
        raise ValueError(f"mask index out of range: {index}")
    rand = _lcg(1000 + index * 7)
    mask = [[1] * size for _ in range(size)]
    family = index % 4
    if family == 0:  # isolated pixel losses (~20 %)
        for y in range(size):
            for x in range(size):
                if rand() % 5 == 0:
                    mask[y][x] = 0
    elif family == 1:  # one lost block per 8x8 tile quadrant
        bs = max(2, size // 4)
        x0 = rand() % (size - bs)
        y0 = rand() % (size - bs)
        for y in range(y0, y0 + bs):
            for x in range(x0, x0 + bs):
                mask[y][x] = 0
    elif family == 2:  # horizontal stripe bursts (packet loss)
        for y in range(size):
            if (y + index) % 5 == 0:
                start = rand() % max(1, size // 2)
                for x in range(start, min(size, start + size // 2)):
                    mask[y][x] = 0
    else:  # mixed: pixels + a small block
        for y in range(size):
            for x in range(size):
                if rand() % 8 == 0:
                    mask[y][x] = 0
        bs = max(2, size // 6)
        x0, y0 = size // 3, size // 2
        for y in range(y0, min(size, y0 + bs)):
            for x in range(x0, min(size, x0 + bs)):
                mask[y][x] = 0
    # FSE needs at least one known sample per block; guarantee the corners
    mask[0][0] = 1
    mask[size - 1][size - 1] = 1
    return mask


def test_case(index: int, size: int = 8) -> tuple[list[list[int]], list[list[int]]]:
    """The (image, mask) pair for FSE kernel ``index``."""
    return make_image(index, size), make_mask(index, size)
