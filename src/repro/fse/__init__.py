"""FSE image inpainting: the paper's second image-processing workload.

Frequency-selective extrapolation reconstructs masked image blocks from
their surroundings; the kernel exists in hard-float and soft-float
builds, making it the other half of the FPU design question (Table IV).
"""

from repro.fse.images import test_case
from repro.fse.kernel import build_fse_kernel, build_fse_module
from repro.fse.params import FseParams

__all__ = [
    "FseParams",
    "build_fse_kernel",
    "build_fse_module",
    "test_case",
]
