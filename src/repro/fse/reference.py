"""Pure-Python reference implementation of Frequency Selective Extrapolation.

Implements the fast frequency-domain FSE of Seiler & Kaup: the weighted
residual is held in the DFT domain; each iteration greedily selects the
basis function with the largest projection, updates its expansion
coefficient (with orthogonality-deficiency compensation ``gamma``) and
subtracts the *shifted weight spectrum* from the residual -- no per-
iteration FFT is needed.

Every floating-point operation here has a 1:1 counterpart in the kernel-IR
implementation (:mod:`repro.fse.kernel`), including the hand-rolled
radix-2 FFT with identical twiddle tables and butterfly order, so the
reconstructed images agree bit-for-bit with the simulated kernels.  A
numpy-based sanity check lives in the test-suite, not here.
"""

from __future__ import annotations

from repro.fse.params import FseParams


def fft_inplace(re: list[float], im: list[float], params: FseParams,
                inverse: bool) -> None:
    """In-place radix-2 DIT FFT over ``block`` points (unscaled)."""
    n = params.block
    rev = params.bit_reversal()
    for i, j in enumerate(rev):
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
    tw_re, tw_im = params.twiddles()
    length = 2
    while length <= n:
        half = length // 2
        base = half - 1
        for start in range(0, n, length):
            for j in range(half):
                wr = tw_re[base + j]
                wi = tw_im[base + j]
                if inverse:
                    wi = -wi
                k = start + j
                m = k + half
                tr = wr * re[m] - wi * im[m]
                ti = wr * im[m] + wi * re[m]
                re[m] = re[k] - tr
                im[m] = im[k] - ti
                re[k] = re[k] + tr
                im[k] = im[k] + ti
        length *= 2
    # unscaled in both directions; callers fold 1/N**2 into coefficients


def fft2(re: list[float], im: list[float], params: FseParams,
         inverse: bool) -> None:
    """In-place 2-D FFT over a ``block x block`` row-major array."""
    n = params.block
    for y in range(n):
        row_re = re[y * n:(y + 1) * n]
        row_im = im[y * n:(y + 1) * n]
        fft_inplace(row_re, row_im, params, inverse)
        re[y * n:(y + 1) * n] = row_re
        im[y * n:(y + 1) * n] = row_im
    for x in range(n):
        col_re = [re[y * n + x] for y in range(n)]
        col_im = [im[y * n + x] for y in range(n)]
        fft_inplace(col_re, col_im, params, inverse)
        for y in range(n):
            re[y * n + x] = col_re[y]
            im[y * n + x] = col_im[y]


def extrapolate_block(pixels: list[float], known: list[int],
                      params: FseParams) -> list[float]:
    """FSE model for one block; returns the model g at every position.

    ``pixels`` are the block samples (only positions with ``known[i] == 1``
    are used); the returned model is defined everywhere.
    """
    n = params.block
    n2 = n * n
    table = params.weight_table()

    w = [0.0] * n2
    for y in range(n):
        for x in range(n):
            if known[y * n + x]:
                # integer squared distance from the (fractional) centre:
                # ((2x - n + 1)^2 + (2y - n + 1)^2) / 4, rounded half-up --
                # computed identically (in integers) by the kernel
                dx2 = 2 * x - n + 1
                dy2 = 2 * y - n + 1
                sq = (dx2 * dx2 + dy2 * dy2 + 2) // 4
                w[y * n + x] = table[sq]

    w_re = list(w)
    w_im = [0.0] * n2
    fft2(w_re, w_im, params, inverse=False)
    w0 = w_re[0]  # sum of all weights (real, positive)

    r_re = [w[i] * pixels[i] if known[i] else 0.0 for i in range(n2)]
    r_im = [0.0] * n2
    fft2(r_re, r_im, params, inverse=False)

    cs_re = [0.0] * n2
    cs_im = [0.0] * n2
    inv_w0 = params.gamma / w0
    for _ in range(params.iterations):
        best = 0
        best_mag = r_re[0] * r_re[0] + r_im[0] * r_im[0]
        for k in range(1, n2):
            mag = r_re[k] * r_re[k] + r_im[k] * r_im[k]
            if mag > best_mag:
                best_mag = mag
                best = k
        s_re = r_re[best] * inv_w0
        s_im = r_im[best] * inv_w0
        cs_re[best] = cs_re[best] + s_re
        cs_im[best] = cs_im[best] + s_im
        bu = best % n
        bv = best // n
        for v in range(n):
            src_v = ((v - bv) % n) * n
            dst_v = v * n
            for u in range(n):
                widx = src_v + ((u - bu) % n)
                wr = w_re[widx]
                wi = w_im[widx]
                k = dst_v + u
                r_re[k] = r_re[k] - (s_re * wr - s_im * wi)
                r_im[k] = r_im[k] - (s_re * wi + s_im * wr)

    # model g = unscaled inverse FFT of cs (the 1/N^2 is folded into cs)
    fft2(cs_re, cs_im, params, inverse=True)
    return cs_re


def reconstruct(image: list[list[int]], mask: list[list[int]],
                params: FseParams) -> list[list[int]]:
    """Reconstruct all lost samples of ``image`` block by block."""
    size = len(image)
    n = params.block
    if size % n:
        raise ValueError(f"image size {size} is not a multiple of block {n}")
    out = [row[:] for row in image]
    for by in range(0, size, n):
        for bx in range(0, size, n):
            known = []
            pixels = []
            any_lost = False
            for y in range(n):
                for x in range(n):
                    k = mask[by + y][bx + x]
                    known.append(k)
                    pixels.append(float(image[by + y][bx + x]))
                    if not k:
                        any_lost = True
            if not any_lost:
                continue
            model = extrapolate_block(pixels, known, params)
            for y in range(n):
                for x in range(n):
                    if not known[y * n + x]:
                        out[by + y][bx + x] = _clip_pixel(model[y * n + x])
    return out


def _clip_pixel(value: float) -> int:
    """Round-half-up with clipping, mirroring the kernel's dtoi sequence."""
    if value < 0.0:
        return 0
    if value > 255.0:
        return 255
    return int(value + 0.5)  # truncation after +0.5, like the kernel


def checksum(image: list[list[int]]) -> int:
    """Rolling checksum over pixels (same polynomial as the kernel)."""
    h = 0
    for row in image:
        for pix in row:
            h = (h * 31 + pix) & 0xFFFFFFFF
    return h
