"""FSE algorithm parameters (shared by reference and kernel builds)."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class FseParams:
    """Frequency Selective Extrapolation configuration.

    Attributes
    ----------
    block:
        FFT block size (power of two).  Each block is extrapolated
        independently; known samples in the block form the support area.
    iterations:
        Number of greedy basis-selection iterations per block.
    rho:
        Isotropic weighting decay: a known sample at Euclidean distance
        ``d`` from the block centre has weight ``rho ** d``.
    gamma:
        Orthogonality-deficiency compensation factor applied to each
        expansion coefficient update (Seiler & Kaup use 0.5).
    """

    block: int = 8
    iterations: int = 10
    rho: float = 0.82
    gamma: float = 0.5

    def __post_init__(self) -> None:
        if self.block < 4 or self.block & (self.block - 1):
            raise ValueError("block must be a power of two >= 4")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if not 0.0 < self.rho < 1.0:
            raise ValueError("rho must be in (0, 1)")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")

    def weight_table(self) -> list[float]:
        """``rho ** sqrt(k)`` for every possible squared distance ``k``.

        The kernel indexes this table with the integer squared distance
        ``dx*dx + dy*dy`` to obtain the exact isotropic weight without
        computing ``pow`` at runtime.
        """
        max_sq = 2 * (self.block - 1) ** 2
        return [self.rho ** math.sqrt(k) for k in range(max_sq + 1)]

    def twiddles(self) -> tuple[list[float], list[float]]:
        """Concatenated per-stage twiddle factors for the radix-2 FFT.

        Stage ``s`` (sub-FFT length ``2**s``) occupies ``2**(s-1)``
        consecutive entries starting at offset ``2**(s-1) - 1``; entry
        ``j`` is ``exp(-2j*pi*j / 2**s)``.  Both the pure-Python reference
        and the kernel use these exact float values, which is what makes
        the two implementations bit-identical.
        """
        re: list[float] = []
        im: list[float] = []
        length = 2
        while length <= self.block:
            half = length // 2
            for j in range(half):
                angle = -2.0 * math.pi * j / length
                re.append(math.cos(angle))
                im.append(math.sin(angle))
            length *= 2
        return re, im

    def bit_reversal(self) -> list[int]:
        """Bit-reversal permutation for the in-place FFT."""
        n = self.block
        bits = n.bit_length() - 1
        return [int(format(i, f"0{bits}b")[::-1], 2) for i in range(n)]
