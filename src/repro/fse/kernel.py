"""Frequency Selective Extrapolation as a kernel-IR program.

Builds a bare-metal kernel that reconstructs one test image on the
simulated LEON3: double-precision complex arithmetic, hand-rolled radix-2
FFTs, greedy frequency-domain basis selection -- the paper's second
showcase workload.  Compiled hard-float it exercises the FPU heavily;
compiled soft-float it becomes the ``-msoft-float`` fixed-point variant
with bit-identical output (the kernel prints a reconstruction checksum,
which tests compare against :mod:`repro.fse.reference`).
"""

from __future__ import annotations

import struct

from repro.fse.images import test_case
from repro.fse.params import FseParams
from repro.kir import F64, I32, U32, Module


def build_fse_module(image: list[list[int]], mask: list[list[int]],
                     params: FseParams | None = None,
                     name: str = "fse") -> Module:
    """Build the FSE kernel module for one (image, mask) pair."""
    params = params or FseParams()
    n = params.block
    n2 = n * n
    size = len(image)
    if size % n:
        raise ValueError(f"image size {size} not a multiple of block {n}")

    m = Module(name)
    flat_img = bytes(p for row in image for p in row)
    flat_msk = bytes(k for row in mask for k in row)
    m.global_bytes("img", flat_img, align=4)
    m.global_bytes("msk", flat_msk, align=4)
    m.global_bytes("outbuf", flat_img, align=4)  # starts as the input

    tw_re, tw_im = params.twiddles()
    m.global_f64s("twre", tw_re)
    m.global_f64s("twim", tw_im)
    m.global_f64s("wtab", params.weight_table())
    m.global_words("brev", params.bit_reversal())

    for buf in ("w_sp", "w_re", "w_im", "r_re", "r_im", "c_re", "c_im"):
        m.global_zeros(buf, n2 * 8, align=8)

    _build_fft(m, params)
    _build_fft2(m, params)
    _build_block(m, params, size)
    _build_main(m, params, size)
    return m


def _build_fft(m: Module, params: FseParams) -> None:
    """``fse_fft(re_base, im_base, stride_bytes, inverse)``: in-place FFT."""
    n = params.block
    fn = m.function("fse_fft", [("reb", U32), ("imb", U32),
                                ("stride", I32), ("inverse", I32)], ret=None)
    reb, imb, stride, inverse = fn.params
    f = fn

    # bit-reversal permutation
    brev = m.addr_of("brev")
    ta = f.local(F64, "ta")
    tb = f.local(F64, "tb")
    with f.for_range("i", 0, n) as i:
        j = f.local(I32, "j", init=f.load(brev + (i << 2)))
        with f.if_(i < j):
            ai = f.local(U32, "ai", init=reb + i * stride)
            aj = f.local(U32, "aj", init=reb + j * stride)
            f.assign(ta, f.loadf(ai))
            f.assign(tb, f.loadf(aj))
            f.storef(ai, tb)
            f.storef(aj, ta)
            f.assign(ai, imb + i * stride)
            f.assign(aj, imb + j * stride)
            f.assign(ta, f.loadf(ai))
            f.assign(tb, f.loadf(aj))
            f.storef(ai, tb)
            f.storef(aj, ta)

    wr = f.local(F64, "wr")
    wi = f.local(F64, "wi")
    tr = f.local(F64, "tr")
    ti = f.local(F64, "ti")
    akr = f.local(F64, "akr")
    aki = f.local(F64, "aki")
    twre = m.addr_of("twre")
    twim = m.addr_of("twim")
    length = f.local(I32, "length", init=2)
    half = f.local(I32, "half")
    with f.while_(length <= n):
        f.assign(half, length >> 1)
        base = f.local(I32, "base", init=(half - 1) << 3)
        start = f.local(I32, "start", init=0)
        with f.while_(start < n):
            with f.for_range("jj", 0, half) as jj:
                toff = f.local(I32, "toff", init=base + (jj << 3))
                f.assign(wr, f.loadf(twre + toff))
                f.assign(wi, f.loadf(twim + toff))
                with f.if_(inverse != 0):
                    f.assign(wi, -wi)
                k = f.local(I32, "k", init=start + jj)
                mm = f.local(I32, "mm", init=k + half)
                kr = f.local(U32, "kr", init=reb + k * stride)
                ki = f.local(U32, "ki", init=imb + k * stride)
                mr = f.local(U32, "mr", init=reb + mm * stride)
                mi = f.local(U32, "mi", init=imb + mm * stride)
                bm_re = f.local(F64, "bm_re", init=f.loadf(mr))
                bm_im = f.local(F64, "bm_im", init=f.loadf(mi))
                f.assign(tr, wr * bm_re - wi * bm_im)
                f.assign(ti, wr * bm_im + wi * bm_re)
                f.assign(akr, f.loadf(kr))
                f.assign(aki, f.loadf(ki))
                f.storef(mr, akr - tr)
                f.storef(mi, aki - ti)
                f.storef(kr, akr + tr)
                f.storef(ki, aki + ti)
            f.assign(start, start + length)
        f.assign(length, length << 1)
    f.ret()


def _build_fft2(m: Module, params: FseParams) -> None:
    """``fse_fft2(re_base, im_base, inverse)``: 2-D FFT over the block."""
    n = params.block
    fn = m.function("fse_fft2", [("reb", U32), ("imb", U32),
                                 ("inverse", I32)], ret=None)
    reb, imb, inverse = fn.params
    f = fn
    row_bytes = n * 8
    with f.for_range("y", 0, n) as y:
        off = f.local(I32, "off", init=y * row_bytes)
        f.call_stat("fse_fft", reb + off, imb + off, 8, inverse)
    with f.for_range("x", 0, n) as x:
        off2 = f.local(I32, "off2", init=x << 3)
        f.call_stat("fse_fft", reb + off2, imb + off2, row_bytes, inverse)
    f.ret()


def _build_block(m: Module, params: FseParams, size: int) -> None:
    """``fse_block(bx, by)``: extrapolate one block in place."""
    n = params.block
    n2 = n * n
    fn = m.function("fse_block", [("bx", I32), ("by", I32)], ret=None)
    bx, by = fn.params
    f = fn

    w_sp = m.addr_of("w_sp")
    w_re = m.addr_of("w_re")
    w_im = m.addr_of("w_im")
    r_re = m.addr_of("r_re")
    r_im = m.addr_of("r_im")
    c_re = m.addr_of("c_re")
    c_im = m.addr_of("c_im")
    img = m.addr_of("img")
    msk = m.addr_of("msk")
    wtab = m.addr_of("wtab")

    zero = f.local(F64, "zero", init=f.f64const(0.0))
    wv = f.local(F64, "wv")
    px = f.local(F64, "px")
    idx = f.local(I32, "idx")
    poff = f.local(I32, "poff")

    # build the spatial weight window and the weighted signal
    with f.for_range("y", 0, n) as y:
        with f.for_range("x", 0, n) as x:
            f.assign(idx, (y * n + x) << 3)
            f.assign(poff, (by + y) * size + bx + x)
            known = f.local(I32, "known", init=f.load_u8(msk + poff))
            with f.if_(known != 0) as ck:
                dx2 = f.local(I32, "dx2", init=(x << 1) - (n - 1))
                dy2 = f.local(I32, "dy2", init=(y << 1) - (n - 1))
                sq = f.local(I32, "sq",
                             init=(dx2 * dx2 + dy2 * dy2 + 2) >> 2)
                f.assign(wv, f.loadf(wtab + (sq << 3)))
                f.assign(px, f.itod(f.load_u8(img + poff)))
                f.storef(w_sp + idx, wv)
                f.storef(r_re + idx, wv * px)
            with ck.else_():
                f.storef(w_sp + idx, zero)
                f.storef(r_re + idx, zero)
            f.storef(w_im + idx, zero)
            f.storef(r_im + idx, zero)
            f.storef(c_re + idx, zero)
            f.storef(c_im + idx, zero)
    # copy the spatial window into its FFT working buffer
    with f.for_range("i", 0, n2) as i:
        f.assign(idx, i << 3)
        f.storef(w_re + idx, f.loadf(w_sp + idx))

    f.call_stat("fse_fft2", w_re, w_im, 0)
    f.call_stat("fse_fft2", r_re, r_im, 0)

    w0 = f.local(F64, "w0", init=f.loadf(w_re))
    inv_w0 = f.local(F64, "inv_w0", init=f.f64const(params.gamma) / w0)

    best = f.local(I32, "best")
    best_mag = f.local(F64, "best_mag")
    mag = f.local(F64, "mag")
    rr = f.local(F64, "rr")
    ri = f.local(F64, "ri")
    s_re = f.local(F64, "s_re")
    s_im = f.local(F64, "s_im")
    wr = f.local(F64, "wr")
    wi = f.local(F64, "wi")
    with f.for_range("it", 0, params.iterations):
        # argmax |R|^2
        f.assign(best, 0)
        f.assign(rr, f.loadf(r_re))
        f.assign(ri, f.loadf(r_im))
        f.assign(best_mag, rr * rr + ri * ri)
        with f.for_range("k", 1, n2) as k:
            f.assign(idx, k << 3)
            f.assign(rr, f.loadf(r_re + idx))
            f.assign(ri, f.loadf(r_im + idx))
            f.assign(mag, rr * rr + ri * ri)
            with f.if_(mag > best_mag):
                f.assign(best_mag, mag)
                f.assign(best, k)
        f.assign(idx, best << 3)
        f.assign(s_re, f.loadf(r_re + idx) * inv_w0)
        f.assign(s_im, f.loadf(r_im + idx) * inv_w0)
        f.storef(c_re + idx, f.loadf(c_re + idx) + s_re)
        f.storef(c_im + idx, f.loadf(c_im + idx) + s_im)
        bu = f.local(I32, "bu", init=best & (n - 1))
        bv = f.local(I32, "bv", init=best >> _log2(n))
        # R[k] -= s * W[k - best]  (spectrum of the shifted window)
        with f.for_range("v", 0, n) as v:
            srow = f.local(I32, "srow", init=((v - bv) & (n - 1)) * n)
            drow = f.local(I32, "drow", init=v * n)
            with f.for_range("u", 0, n) as u:
                widx = f.local(I32, "widx",
                               init=(srow + ((u - bu) & (n - 1))) << 3)
                f.assign(wr, f.loadf(w_re + widx))
                f.assign(wi, f.loadf(w_im + widx))
                f.assign(idx, (drow + u) << 3)
                f.storef(r_re + idx,
                         f.loadf(r_re + idx) - (s_re * wr - s_im * wi))
                f.storef(r_im + idx,
                         f.loadf(r_im + idx) - (s_re * wi + s_im * wr))

    # model = unscaled inverse FFT of the (1/N^2-folded) coefficients
    f.call_stat("fse_fft2", c_re, c_im, 1)

    outbuf = m.addr_of("outbuf")
    g = f.local(F64, "g")
    pix = f.local(I32, "pix")
    with f.for_range("wy", 0, n) as wy:
        with f.for_range("wx", 0, n) as wx:
            f.assign(poff, (by + wy) * size + bx + wx)
            with f.if_(f.load_u8(msk + poff) == 0):
                f.assign(g, f.loadf(c_re + ((wy * n + wx) << 3)))
                with f.if_(g < f.f64const(0.0)) as cneg:
                    f.assign(pix, 0)
                with cneg.else_():
                    with f.if_(g > f.f64const(255.0)) as cbig:
                        f.assign(pix, 255)
                    with cbig.else_():
                        f.assign(pix, f.dtoi(g + f.f64const(0.5)))
                f.store8(outbuf + poff, pix)
    f.ret()


def _build_main(m: Module, params: FseParams, size: int) -> None:
    n = params.block
    fn = m.function("main", ret=I32)
    f = fn
    msk = m.addr_of("msk")
    outbuf = m.addr_of("outbuf")

    with f.for_range("by", 0, size // n) as by:
        with f.for_range("bx", 0, size // n) as bx:
            lost = f.local(I32, "lost", init=0)
            with f.for_range("y", 0, n) as y:
                off = f.local(I32, "off",
                              init=(by * n + y) * size + bx * n)
                with f.for_range("x", 0, n) as x:
                    with f.if_(f.load_u8(msk + off + x) == 0):
                        f.assign(lost, 1)
            with f.if_(lost != 0):
                f.call_stat("fse_block", bx * n, by * n)

    h = f.local(U32, "h", init=0)
    with f.for_range("i", 0, size * size) as i:
        f.assign(h, h * 31 + f.load_u8(outbuf + i))
    f.sys_write_u32(h)
    f.ret(0)


def _log2(n: int) -> int:
    return n.bit_length() - 1


def build_fse_kernel(index: int, params: FseParams | None = None,
                     size: int = 8) -> Module:
    """Kernel module for FSE test case ``index`` (paper: 24 Kodak kernels)."""
    image, mask = test_case(index, size)
    return build_fse_module(image, mask, params,
                            name=f"fse_{index:02d}_{size}")
