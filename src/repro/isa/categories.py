"""The nine instruction categories of the mechanistic NFP model (Table I).

The paper divides all retired instructions into nine categories, each with a
specific time ``t_c`` and specific energy ``e_c``:

====================  ==========================================
category              members
====================  ==========================================
Integer Arithmetic    ALU ops, shifts, ``sethi``, integer mul/div
Jump                  conditional branches, ``call``, ``jmpl``
Memory Load           all loads (integer and FP)
Memory Store          all stores (integer and FP)
NOP                   the canonical ``nop`` (``sethi 0, %g0``)
Other                 ``save``/``restore``, state-register access, traps
FPU Arithmetic        FP add/sub/mul (paper), plus FP moves,
                      conversions and compares (our closest mapping
                      for FPU ops the paper does not enumerate)
FPU Divide            ``fdivs``/``fdivd``
FPU Square root       ``fsqrts``/``fsqrtd``
====================  ==========================================

Categories live at ISA level (not in :mod:`repro.nfp`) because the paper's
processor model increments the per-category counters *inside the morph
functions* (Section III) -- the simulator needs the mapping without
depending on the estimation layer.
"""

from __future__ import annotations

CAT_INT_ARITH = 0
CAT_JUMP = 1
CAT_MEM_LOAD = 2
CAT_MEM_STORE = 3
CAT_NOP = 4
CAT_OTHER = 5
CAT_FPU_ARITH = 6
CAT_FPU_DIV = 7
CAT_FPU_SQRT = 8

NUM_CATEGORIES = 9

#: Human-readable names in Table-I order.
CATEGORY_NAMES: tuple[str, ...] = (
    "Integer Arithmetic",
    "Jump",
    "Memory Load",
    "Memory Store",
    "NOP",
    "Other",
    "FPU Arithmetic",
    "FPU Divide",
    "FPU Square root",
)

#: Short machine-friendly identifiers, same order.
CATEGORY_IDS: tuple[str, ...] = (
    "int_arith",
    "jump",
    "mem_load",
    "mem_store",
    "nop",
    "other",
    "fpu_arith",
    "fpu_div",
    "fpu_sqrt",
)

_ID_TO_INDEX = {cid: i for i, cid in enumerate(CATEGORY_IDS)}


def category_index(category_id: str) -> int:
    """Map a short category identifier (e.g. ``"mem_load"``) to its index."""
    try:
        return _ID_TO_INDEX[category_id]
    except KeyError:
        raise ValueError(f"unknown category id: {category_id!r}") from None


def category_name(index: int) -> str:
    """Human-readable Table-I name for category ``index``."""
    return CATEGORY_NAMES[index]
