"""SPARC V8 register-file naming and parsing.

The integer register file visible to one window is 32 registers:

====== ======== ==========================================
index  name     role (SPARC ABI)
====== ======== ==========================================
0-7    %g0-%g7  globals (%g0 reads as zero, writes ignored)
8-15   %o0-%o7  outs   (%o6 = %sp stack pointer, %o7 = call return address)
16-23  %l0-%l7  locals
24-31  %i0-%i7  ins    (%i6 = %fp frame pointer, %i7 = caller's %o7)
====== ======== ==========================================

``save``/``restore`` rotate the register window: the caller's *outs* become
the callee's *ins* while locals are private per window.  The floating-point
register file is 32 single-precision registers ``%f0``-``%f31``; an
even/odd pair ``%f2n/%f2n+1`` holds one double-precision value.
"""

from __future__ import annotations

NUM_IREGS = 32
NUM_FREGS = 32

_GROUPS = ("g", "o", "l", "i")

#: Canonical names indexed by register number, e.g. ``REG_NAMES[14] == "%o6"``.
REG_NAMES: tuple[str, ...] = tuple(
    f"%{_GROUPS[idx // 8]}{idx % 8}" for idx in range(NUM_IREGS)
)

#: ABI aliases accepted by the assembler.
REG_ALIASES: dict[str, int] = {
    "%sp": 14,  # %o6
    "%fp": 30,  # %i6
}

FREG_NAMES: tuple[str, ...] = tuple(f"%f{i}" for i in range(NUM_FREGS))

_NAME_TO_NUM: dict[str, int] = {name: i for i, name in enumerate(REG_NAMES)}
_NAME_TO_NUM.update(REG_ALIASES)

_FNAME_TO_NUM: dict[str, int] = {name: i for i, name in enumerate(FREG_NAMES)}


def reg_name(num: int) -> str:
    """Return the canonical name of integer register ``num`` (0-31)."""
    if not 0 <= num < NUM_IREGS:
        raise ValueError(f"integer register number out of range: {num}")
    return REG_NAMES[num]


def freg_name(num: int) -> str:
    """Return the name of floating-point register ``num`` (0-31)."""
    if not 0 <= num < NUM_FREGS:
        raise ValueError(f"FP register number out of range: {num}")
    return FREG_NAMES[num]


def parse_reg(text: str) -> int:
    """Parse an integer register name (``%g0``..``%i7``, ``%sp``, ``%fp``).

    Raises :class:`ValueError` for anything else, including FP registers.
    """
    num = _NAME_TO_NUM.get(text.strip().lower())
    if num is None:
        raise ValueError(f"not an integer register: {text!r}")
    return num


def parse_freg(text: str) -> int:
    """Parse a floating-point register name ``%f0``..``%f31``."""
    num = _FNAME_TO_NUM.get(text.strip().lower())
    if num is None:
        raise ValueError(f"not an FP register: {text!r}")
    return num


def is_reg(text: str) -> bool:
    """True if ``text`` names an integer register (including aliases)."""
    return text.strip().lower() in _NAME_TO_NUM


def is_freg(text: str) -> bool:
    """True if ``text`` names a floating-point register."""
    return text.strip().lower() in _FNAME_TO_NUM
