"""32-bit machine word -> :class:`DecodedInstr` (the paper's Fig. 2 decoder).

The decoder analyses the instruction word for patterns and decides what
kind of instruction it is; the result carries an internal tag (``mnemonic``
plus ``kind``) which the disassembler renders as text and the morpher turns
into *native code* (a Python closure) for the simulator.
"""

from __future__ import annotations

from functools import lru_cache

from repro.isa.errors import DecodeError
from repro.isa.fields import bits, sign_extend
from repro.isa.opcodes import (
    ARITH_OP3,
    FCC_COND_NAMES,
    FPOP1_OPF,
    FPOP2_OPF,
    ICC_COND_NAMES,
    MEM_OP3,
    OP3_FPOP1,
    OP3_FPOP2,
    OP3_JMPL,
    OP3_RDY,
    OP3_RESTORE,
    OP3_SAVE,
    OP3_TICC,
    OP3_WRY,
    TRAP_COND_NAMES,
)


class DecodedInstr:
    """One decoded SPARC V8 instruction.

    Attributes
    ----------
    word:
        The raw 32-bit encoding.
    mnemonic:
        Canonical lowercase mnemonic (``"add"``, ``"bne"``, ``"faddd"`` ...).
    kind:
        Coarse execution kind used by the morpher dispatch:
        ``arith``, ``sethi``, ``nop``, ``branch``, ``fbranch``, ``call``,
        ``jmpl``, ``save``, ``restore``, ``rdy``, ``wry``, ``trap``,
        ``load``, ``store``, ``fpop``, ``fcmp``.
    rd, rs1, rs2:
        Register fields (FP register numbers for FP operations).
    i:
        Immediate flag; if True ``imm`` replaces ``rs2``.
    imm:
        Sign-extended ``simm13`` for format-3, byte displacement for
        branches/call, raw 22-bit value for ``sethi``.
    annul:
        Annul bit for branches.
    cond:
        Condition field for branches and traps.
    opf:
        FP-operate sub-opcode for FP operations.
    """

    __slots__ = ("word", "mnemonic", "kind", "rd", "rs1", "rs2", "i", "imm",
                 "annul", "cond", "opf")

    def __init__(self, word: int, mnemonic: str, kind: str, rd: int = 0,
                 rs1: int = 0, rs2: int = 0, i: bool = False, imm: int = 0,
                 annul: bool = False, cond: int = 0, opf: int = 0):
        self.word = word
        self.mnemonic = mnemonic
        self.kind = kind
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.i = i
        self.imm = imm
        self.annul = annul
        self.cond = cond
        self.opf = opf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DecodedInstr(0x{self.word:08x}, {self.mnemonic!r}, "
                f"kind={self.kind!r}, rd={self.rd}, rs1={self.rs1}, "
                f"rs2={self.rs2}, i={self.i}, imm={self.imm})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecodedInstr):
            return NotImplemented
        return self.word == other.word

    def __hash__(self) -> int:
        return hash(self.word)


@lru_cache(maxsize=65536)
def decode(word: int) -> DecodedInstr:
    """Decode one 32-bit instruction word (memoized by word).

    Most programs hold the same few thousand distinct words at many PCs,
    so decode results are shared through an LRU cache.  The returned
    :class:`DecodedInstr` is therefore shared between call sites and must
    be treated as immutable.  Words that fail to decode are *not* cached;
    ``decode.cache_clear()`` resets the cache.

    Raises
    ------
    DecodeError
        If the word does not match any implemented instruction pattern.
    """
    word &= 0xFFFFFFFF
    op = word >> 30

    if op == 1:  # CALL: 30-bit word displacement
        disp = sign_extend(word & 0x3FFFFFFF, 30) << 2
        return DecodedInstr(word, "call", "call", imm=disp)

    if op == 0:  # SETHI / branches
        op2 = bits(word, 24, 22)
        if op2 == 0b100:
            rd = bits(word, 29, 25)
            imm22 = word & 0x3FFFFF
            if rd == 0 and imm22 == 0:
                return DecodedInstr(word, "nop", "nop")
            return DecodedInstr(word, "sethi", "sethi", rd=rd, imm=imm22)
        if op2 in (0b010, 0b110):
            annul = bool(bits(word, 29, 29))
            cond = bits(word, 28, 25)
            disp = sign_extend(word & 0x3FFFFF, 22) << 2
            if op2 == 0b010:
                return DecodedInstr(word, ICC_COND_NAMES[cond], "branch",
                                    imm=disp, annul=annul, cond=cond)
            return DecodedInstr(word, FCC_COND_NAMES[cond], "fbranch",
                                imm=disp, annul=annul, cond=cond)
        raise DecodeError(word, f"unsupported format-2 op2={op2:#o}")

    rd = bits(word, 29, 25)
    op3 = bits(word, 24, 19)
    rs1 = bits(word, 18, 14)
    i_flag = bool(bits(word, 13, 13))
    rs2 = bits(word, 4, 0)
    simm13 = sign_extend(word & 0x1FFF, 13)

    if op == 3:  # memory
        mnemonic = MEM_OP3.get(op3)
        if mnemonic is None:
            raise DecodeError(word, f"unsupported memory op3=0x{op3:02x}")
        kind = "load" if mnemonic in (
            "ld", "ldub", "lduh", "ldd", "ldsb", "ldsh", "ldf", "lddf"
        ) else "store"
        return DecodedInstr(word, mnemonic, kind, rd=rd, rs1=rs1, rs2=rs2,
                            i=i_flag, imm=simm13)

    # op == 2: arithmetic / control
    mnemonic = ARITH_OP3.get(op3)
    if mnemonic is not None:
        return DecodedInstr(word, mnemonic, "arith", rd=rd, rs1=rs1, rs2=rs2,
                            i=i_flag, imm=simm13)
    if op3 == OP3_SAVE:
        return DecodedInstr(word, "save", "save", rd=rd, rs1=rs1, rs2=rs2,
                            i=i_flag, imm=simm13)
    if op3 == OP3_RESTORE:
        return DecodedInstr(word, "restore", "restore", rd=rd, rs1=rs1,
                            rs2=rs2, i=i_flag, imm=simm13)
    if op3 == OP3_JMPL:
        return DecodedInstr(word, "jmpl", "jmpl", rd=rd, rs1=rs1, rs2=rs2,
                            i=i_flag, imm=simm13)
    if op3 == OP3_RDY:
        if rs1 != 0:
            raise DecodeError(word, "RDASR other than %y is not implemented")
        return DecodedInstr(word, "rdy", "rdy", rd=rd)
    if op3 == OP3_WRY:
        if rd != 0:
            raise DecodeError(word, "WRASR other than %y is not implemented")
        return DecodedInstr(word, "wry", "wry", rs1=rs1, rs2=rs2, i=i_flag,
                            imm=simm13)
    if op3 == OP3_TICC:
        cond = bits(word, 28, 25)
        mnemonic = TRAP_COND_NAMES[cond]
        return DecodedInstr(word, mnemonic, "trap", rs1=rs1, rs2=rs2,
                            i=i_flag, imm=simm13 & 0x7F, cond=cond)
    if op3 == OP3_FPOP1:
        opf = bits(word, 13, 5)
        mnemonic = FPOP1_OPF.get(opf)
        if mnemonic is None:
            raise DecodeError(word, f"unsupported FPop1 opf=0x{opf:03x}")
        return DecodedInstr(word, mnemonic, "fpop", rd=rd, rs1=rs1, rs2=rs2,
                            opf=opf)
    if op3 == OP3_FPOP2:
        opf = bits(word, 13, 5)
        mnemonic = FPOP2_OPF.get(opf)
        if mnemonic is None:
            raise DecodeError(word, f"unsupported FPop2 opf=0x{opf:03x}")
        return DecodedInstr(word, mnemonic, "fcmp", rd=rd, rs1=rs1, rs2=rs2,
                            opf=opf)
    raise DecodeError(word, f"unsupported arithmetic op3=0x{op3:02x}")
