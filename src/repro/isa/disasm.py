"""Textual disassembly of decoded instructions (Fig. 2's *disassembler*).

Produces conventional SPARC assembly such as ``add %g2, %g4, %g1`` or
``ld [%o0 + 4], %o1``.  When a program counter is supplied, branch and call
targets are rendered as absolute addresses; otherwise as ``. +/- offset``.
"""

from __future__ import annotations

from repro.isa.decoder import DecodedInstr, decode
from repro.isa.registers import freg_name, reg_name


def _addr_operand(instr: DecodedInstr) -> str:
    base = reg_name(instr.rs1)
    if instr.i:
        if instr.imm == 0:
            return f"[{base}]"
        sign = "+" if instr.imm >= 0 else "-"
        return f"[{base} {sign} {abs(instr.imm)}]"
    if instr.rs2 == 0:
        return f"[{base}]"
    return f"[{base} + {reg_name(instr.rs2)}]"


def _operand2(instr: DecodedInstr) -> str:
    return str(instr.imm) if instr.i else reg_name(instr.rs2)


def _target(instr: DecodedInstr, pc: int | None) -> str:
    if pc is not None:
        return f"0x{(pc + instr.imm) & 0xFFFFFFFF:08x}"
    if instr.imm >= 0:
        return f". + {instr.imm}"
    return f". - {abs(instr.imm)}"


def disassemble(instr: DecodedInstr | int, pc: int | None = None) -> str:
    """Render ``instr`` (a :class:`DecodedInstr` or raw word) as text."""
    if isinstance(instr, int):
        instr = decode(instr)
    kind = instr.kind
    m = instr.mnemonic

    if kind == "nop":
        return "nop"
    if kind == "sethi":
        return f"sethi %hi(0x{instr.imm << 10:x}), {reg_name(instr.rd)}"
    if kind == "arith" or kind in ("save", "restore"):
        return (f"{m} {reg_name(instr.rs1)}, {_operand2(instr)}, "
                f"{reg_name(instr.rd)}")
    if kind in ("branch", "fbranch"):
        suffix = ",a" if instr.annul else ""
        return f"{m}{suffix} {_target(instr, pc)}"
    if kind == "call":
        return f"call {_target(instr, pc)}"
    if kind == "jmpl":
        dest = reg_name(instr.rd)
        if instr.i:
            if instr.rs1 == 31 and instr.imm == 8 and instr.rd == 0:
                return "ret"
            if instr.rs1 == 15 and instr.imm == 8 and instr.rd == 0:
                return "retl"
            sign = "+" if instr.imm >= 0 else "-"
            return f"jmpl {reg_name(instr.rs1)} {sign} {abs(instr.imm)}, {dest}"
        return f"jmpl {reg_name(instr.rs1)} + {reg_name(instr.rs2)}, {dest}"
    if kind == "load":
        dreg = freg_name(instr.rd) if m in ("ldf", "lddf") else reg_name(instr.rd)
        return f"{m} {_addr_operand(instr)}, {dreg}"
    if kind == "store":
        dreg = freg_name(instr.rd) if m in ("stf", "stdf") else reg_name(instr.rd)
        return f"{m} {dreg}, {_addr_operand(instr)}"
    if kind == "rdy":
        return f"rd %y, {reg_name(instr.rd)}"
    if kind == "wry":
        return f"wr {reg_name(instr.rs1)}, {_operand2(instr)}, %y"
    if kind == "trap":
        return f"{m} {instr.imm}" if instr.i else (
            f"{m} {reg_name(instr.rs1)} + {reg_name(instr.rs2)}")
    if kind == "fpop":
        one_source = m in ("fmovs", "fnegs", "fabss", "fsqrts", "fsqrtd",
                           "fitos", "fitod", "fstoi", "fdtoi", "fstod",
                           "fdtos")
        if one_source:
            return f"{m} {freg_name(instr.rs2)}, {freg_name(instr.rd)}"
        return (f"{m} {freg_name(instr.rs1)}, {freg_name(instr.rs2)}, "
                f"{freg_name(instr.rd)}")
    if kind == "fcmp":
        return f"{m} {freg_name(instr.rs1)}, {freg_name(instr.rs2)}"
    raise AssertionError(f"unhandled kind {kind!r}")  # pragma: no cover
