"""SPARC V8 decode tables: the simulator's *decode entries*.

The tables in this module are the single source of truth for which
instructions exist, how they are encoded, which *morph function group*
executes them in the simulator (the grouping the paper shows in Fig. 3,
e.g. ``doArithmeticRegister`` handles ``SPARC_ADD_REGISTER`` and
``SPARC_SUB_REGISTER``) and which non-functional-property *category*
(Table I) they are counted under.

Only the subset needed by the LEON3-class bare-metal kernels is present;
decoding anything outside these tables raises
:class:`repro.isa.errors.DecodeError`, which the simulator converts into an
illegal-instruction trap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.categories import (
    CAT_FPU_ARITH,
    CAT_FPU_DIV,
    CAT_FPU_SQRT,
    CAT_INT_ARITH,
    CAT_JUMP,
    CAT_MEM_LOAD,
    CAT_MEM_STORE,
    CAT_NOP,
    CAT_OTHER,
)

# ---------------------------------------------------------------------------
# Format-3 arithmetic / control op3 codes (op field == 2)
# ---------------------------------------------------------------------------

#: op3 -> mnemonic for the integer ALU group.
ARITH_OP3: dict[int, str] = {
    0x00: "add",
    0x01: "and",
    0x02: "or",
    0x03: "xor",
    0x04: "sub",
    0x05: "andn",
    0x06: "orn",
    0x07: "xnor",
    0x08: "addx",
    0x0A: "umul",
    0x0B: "smul",
    0x0C: "subx",
    0x0E: "udiv",
    0x0F: "sdiv",
    0x10: "addcc",
    0x11: "andcc",
    0x12: "orcc",
    0x13: "xorcc",
    0x14: "subcc",
    0x15: "andncc",
    0x16: "orncc",
    0x17: "xnorcc",
    0x18: "addxcc",
    0x1A: "umulcc",
    0x1B: "smulcc",
    0x1C: "subxcc",
    0x1E: "udivcc",
    0x1F: "sdivcc",
    0x25: "sll",
    0x26: "srl",
    0x27: "sra",
}

OP3_SAVE = 0x3C
OP3_RESTORE = 0x3D
OP3_JMPL = 0x38
OP3_RDY = 0x28
OP3_WRY = 0x30
OP3_TICC = 0x3A
OP3_FPOP1 = 0x34
OP3_FPOP2 = 0x35

ARITH_MNEMONIC_TO_OP3: dict[str, int] = {v: k for k, v in ARITH_OP3.items()}
ARITH_MNEMONIC_TO_OP3["save"] = OP3_SAVE
ARITH_MNEMONIC_TO_OP3["restore"] = OP3_RESTORE

# ---------------------------------------------------------------------------
# Memory op3 codes (op field == 3)
# ---------------------------------------------------------------------------

#: op3 -> mnemonic for loads and stores (integer and FP).
MEM_OP3: dict[int, str] = {
    0x00: "ld",
    0x01: "ldub",
    0x02: "lduh",
    0x03: "ldd",
    0x04: "st",
    0x05: "stb",
    0x06: "sth",
    0x07: "std",
    0x09: "ldsb",
    0x0A: "ldsh",
    0x20: "ldf",
    0x23: "lddf",
    0x24: "stf",
    0x27: "stdf",
}

MEM_MNEMONIC_TO_OP3: dict[str, int] = {v: k for k, v in MEM_OP3.items()}

LOAD_MNEMONICS = frozenset(
    {"ld", "ldub", "lduh", "ldd", "ldsb", "ldsh", "ldf", "lddf"}
)
STORE_MNEMONICS = frozenset({"st", "stb", "sth", "std", "stf", "stdf"})
FP_MEM_MNEMONICS = frozenset({"ldf", "lddf", "stf", "stdf"})

# ---------------------------------------------------------------------------
# Branch condition codes
# ---------------------------------------------------------------------------

#: Bicc ``cond`` field -> mnemonic.
ICC_COND_NAMES: dict[int, str] = {
    0x8: "ba",
    0x0: "bn",
    0x9: "bne",
    0x1: "be",
    0xA: "bg",
    0x2: "ble",
    0xB: "bge",
    0x3: "bl",
    0xC: "bgu",
    0x4: "bleu",
    0xD: "bcc",
    0x5: "bcs",
    0xE: "bpos",
    0x6: "bneg",
    0xF: "bvc",
    0x7: "bvs",
}

#: FBfcc ``cond`` field -> mnemonic.
FCC_COND_NAMES: dict[int, str] = {
    0x8: "fba",
    0x0: "fbn",
    0x7: "fbu",
    0x6: "fbg",
    0x5: "fbug",
    0x4: "fbl",
    0x3: "fbul",
    0x2: "fblg",
    0x1: "fbne",
    0x9: "fbe",
    0xA: "fbue",
    0xB: "fbge",
    0xC: "fbuge",
    0xD: "fble",
    0xE: "fbule",
    0xF: "fbo",
}

#: Ticc ``cond`` field -> mnemonic (same condition encoding as Bicc).
TRAP_COND_NAMES: dict[int, str] = {
    0x8: "ta",
    0x0: "tn",
    0x9: "tne",
    0x1: "te",
    0xA: "tg",
    0x2: "tle",
    0xB: "tge",
    0x3: "tl",
    0xC: "tgu",
    0x4: "tleu",
    0xD: "tcc",
    0x5: "tcs",
    0xE: "tpos",
    0x6: "tneg",
    0xF: "tvc",
    0x7: "tvs",
}

ICC_NAME_TO_COND: dict[str, int] = {v: k for k, v in ICC_COND_NAMES.items()}
FCC_NAME_TO_COND: dict[str, int] = {v: k for k, v in FCC_COND_NAMES.items()}
TRAP_NAME_TO_COND: dict[str, int] = {v: k for k, v in TRAP_COND_NAMES.items()}

# Widely used aliases accepted by the assembler.
ICC_NAME_TO_COND["b"] = ICC_NAME_TO_COND["ba"]
ICC_NAME_TO_COND["bz"] = ICC_NAME_TO_COND["be"]
ICC_NAME_TO_COND["bnz"] = ICC_NAME_TO_COND["bne"]
ICC_NAME_TO_COND["bgeu"] = ICC_NAME_TO_COND["bcc"]
ICC_NAME_TO_COND["blu"] = ICC_NAME_TO_COND["bcs"]

# ---------------------------------------------------------------------------
# Floating-point operate opcodes
# ---------------------------------------------------------------------------

#: FPop1 ``opf`` field -> mnemonic (op3 == 0x34).
FPOP1_OPF: dict[int, str] = {
    0x01: "fmovs",
    0x05: "fnegs",
    0x09: "fabss",
    0x29: "fsqrts",
    0x2A: "fsqrtd",
    0x41: "fadds",
    0x42: "faddd",
    0x45: "fsubs",
    0x46: "fsubd",
    0x49: "fmuls",
    0x4A: "fmuld",
    0x4D: "fdivs",
    0x4E: "fdivd",
    0xC4: "fitos",
    0xC6: "fdtos",
    0xC8: "fitod",
    0xC9: "fstod",
    0xD1: "fstoi",
    0xD2: "fdtoi",
}

#: FPop2 ``opf`` field -> mnemonic (op3 == 0x35, compares).
FPOP2_OPF: dict[int, str] = {
    0x51: "fcmps",
    0x52: "fcmpd",
}

FPOP_MNEMONIC_TO_OPF: dict[str, int] = {v: k for k, v in FPOP1_OPF.items()}
FPOP_MNEMONIC_TO_OPF.update({v: k for k, v in FPOP2_OPF.items()})

#: FP-operate mnemonics whose source/destination are double (even) registers.
FP_DOUBLE_ARGS: dict[str, tuple[bool, bool]] = {
    # mnemonic -> (source is double, destination is double)
    "faddd": (True, True),
    "fsubd": (True, True),
    "fmuld": (True, True),
    "fdivd": (True, True),
    "fsqrtd": (True, True),
    "fcmpd": (True, False),
    "fitod": (False, True),
    "fstod": (False, True),
    "fdtos": (True, False),
    "fdtoi": (True, False),
    "fadds": (False, False),
    "fsubs": (False, False),
    "fmuls": (False, False),
    "fdivs": (False, False),
    "fsqrts": (False, False),
    "fcmps": (False, False),
    "fmovs": (False, False),
    "fnegs": (False, False),
    "fabss": (False, False),
    "fitos": (False, False),
    "fstoi": (False, False),
    "fstod": (False, True),
    "fdtoi": (True, False),
}

#: FP-operate mnemonics that use ``rs1`` (two-source operations).
FPOP_TWO_SOURCE = frozenset(
    {"fadds", "faddd", "fsubs", "fsubd", "fmuls", "fmuld", "fdivs", "fdivd",
     "fcmps", "fcmpd"}
)

# ---------------------------------------------------------------------------
# Morph-function grouping (Fig. 3) and NFP categories (Table I)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InstrSpec:
    """Static properties of one mnemonic.

    ``morph_group`` names the simulator function that generates *native code*
    for the instruction (Fig. 3); ``category`` is the Table-I accounting
    bucket incremented when the instruction retires.
    """

    mnemonic: str
    morph_group: str
    category: int


def _specs() -> dict[str, InstrSpec]:
    table: dict[str, InstrSpec] = {}

    def put(mnemonics: tuple[str, ...] | frozenset[str], group: str, cat: int) -> None:
        for m in sorted(mnemonics):
            table[m] = InstrSpec(m, group, cat)

    alu = tuple(m for m in ARITH_OP3.values() if m not in ("sll", "srl", "sra"))
    muldiv = ("umul", "umulcc", "smul", "smulcc", "udiv", "udivcc", "sdiv", "sdivcc")
    alu = tuple(m for m in alu if m not in muldiv)
    put(alu, "doArithmetic", CAT_INT_ARITH)
    put(("sll", "srl", "sra"), "doShift", CAT_INT_ARITH)
    put(muldiv, "doMulDiv", CAT_INT_ARITH)
    put(("sethi",), "doSethi", CAT_INT_ARITH)
    put(("nop",), "doNop", CAT_NOP)

    put(tuple(ICC_COND_NAMES.values()), "doBranch", CAT_JUMP)
    put(tuple(FCC_COND_NAMES.values()), "doFBranch", CAT_JUMP)
    put(("call", "jmpl"), "doCallJmpl", CAT_JUMP)

    put(LOAD_MNEMONICS, "doLoad", CAT_MEM_LOAD)
    put(STORE_MNEMONICS, "doStore", CAT_MEM_STORE)

    put(("save", "restore"), "doSaveRestore", CAT_OTHER)
    put(("rdy", "wry"), "doStateRegister", CAT_OTHER)
    put(tuple(TRAP_COND_NAMES.values()), "doTrap", CAT_OTHER)

    put(("fadds", "faddd", "fsubs", "fsubd", "fmuls", "fmuld"),
        "doFPArith", CAT_FPU_ARITH)
    put(("fmovs", "fnegs", "fabss"), "doFPMove", CAT_FPU_ARITH)
    put(("fitos", "fitod", "fstoi", "fdtoi", "fstod", "fdtos"),
        "doFPConvert", CAT_FPU_ARITH)
    put(("fcmps", "fcmpd"), "doFPCompare", CAT_FPU_ARITH)
    put(("fdivs", "fdivd"), "doFPDiv", CAT_FPU_DIV)
    put(("fsqrts", "fsqrtd"), "doFPSqrt", CAT_FPU_SQRT)
    return table


#: mnemonic -> :class:`InstrSpec` for every implemented instruction.
INSTR_SPECS: dict[str, InstrSpec] = _specs()

#: morph group -> sorted tuple of member mnemonics (Fig. 3 rendering).
MORPH_GROUPS: dict[str, tuple[str, ...]] = {}
for _spec in INSTR_SPECS.values():
    MORPH_GROUPS.setdefault(_spec.morph_group, ())
MORPH_GROUPS.update(
    {
        group: tuple(sorted(m for m, s in INSTR_SPECS.items() if s.morph_group == group))
        for group in MORPH_GROUPS
    }
)


def mnemonic_exists(mnemonic: str) -> bool:
    """True if ``mnemonic`` is an implemented (decodable) instruction."""
    return mnemonic in INSTR_SPECS


def spec_for(mnemonic: str) -> InstrSpec:
    """Look up the :class:`InstrSpec` for ``mnemonic`` (KeyError if unknown)."""
    return INSTR_SPECS[mnemonic]
