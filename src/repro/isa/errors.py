"""Exception hierarchy for the ISA layer."""


class IsaError(Exception):
    """Base class for ISA-level errors."""


class DecodeError(IsaError):
    """A 32-bit word does not decode to a known SPARC V8 instruction."""

    def __init__(self, word: int, reason: str = "unknown instruction pattern"):
        self.word = word & 0xFFFFFFFF
        self.reason = reason
        super().__init__(f"cannot decode 0x{self.word:08x}: {reason}")


class EncodeError(IsaError):
    """Operands cannot be encoded into the requested instruction format."""
