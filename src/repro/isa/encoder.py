"""Operands -> 32-bit SPARC V8 machine words (inverse of the decoder).

Used by the assembler back-end.  Every function validates field ranges and
raises :class:`repro.isa.errors.EncodeError` on overflow so that assembly
errors surface with source positions instead of corrupt binaries.
"""

from __future__ import annotations

from repro.isa.errors import EncodeError
from repro.isa.fields import fits_signed
from repro.isa.opcodes import (
    ARITH_MNEMONIC_TO_OP3,
    FCC_NAME_TO_COND,
    FPOP2_OPF,
    FPOP_MNEMONIC_TO_OPF,
    ICC_NAME_TO_COND,
    MEM_MNEMONIC_TO_OP3,
    OP3_FPOP1,
    OP3_FPOP2,
    OP3_JMPL,
    OP3_RDY,
    OP3_TICC,
    OP3_WRY,
    TRAP_NAME_TO_COND,
)


def _check_reg(value: int, what: str) -> int:
    if not 0 <= value < 32:
        raise EncodeError(f"{what} register out of range: {value}")
    return value


def _format3(op: int, rd: int, op3: int, rs1: int, rs2: int | None,
             imm: int | None) -> int:
    word = (op << 30) | (_check_reg(rd, "rd") << 25) | (op3 << 19)
    word |= _check_reg(rs1, "rs1") << 14
    if imm is not None:
        if rs2 is not None:
            raise EncodeError("cannot encode both rs2 and an immediate")
        if not fits_signed(imm, 13):
            raise EncodeError(f"immediate does not fit simm13: {imm}")
        word |= (1 << 13) | (imm & 0x1FFF)
    else:
        word |= _check_reg(rs2 if rs2 is not None else 0, "rs2")
    return word


def encode_arith(mnemonic: str, rd: int, rs1: int, rs2: int | None = None,
                 imm: int | None = None) -> int:
    """Encode an integer ALU / shift / mul / div / save / restore instruction."""
    op3 = ARITH_MNEMONIC_TO_OP3.get(mnemonic)
    if op3 is None:
        raise EncodeError(f"not an arithmetic mnemonic: {mnemonic!r}")
    if mnemonic in ("sll", "srl", "sra") and imm is not None:
        if not 0 <= imm < 32:
            raise EncodeError(f"shift count out of range: {imm}")
    return _format3(2, rd, op3, rs1, rs2, imm)


def encode_sethi(rd: int, imm22: int) -> int:
    """Encode ``sethi imm22, rd`` (also the canonical ``nop`` for rd=0)."""
    if not 0 <= imm22 < (1 << 22):
        raise EncodeError(f"sethi immediate out of range: {imm22}")
    return (_check_reg(rd, "rd") << 25) | (0b100 << 22) | imm22


def encode_nop() -> int:
    """Encode the canonical ``nop`` (``sethi 0, %g0``)."""
    return encode_sethi(0, 0)


def _encode_bicc(op2: int, cond: int, disp_bytes: int, annul: bool) -> int:
    if disp_bytes % 4:
        raise EncodeError(f"branch displacement not word aligned: {disp_bytes}")
    disp = disp_bytes >> 2
    if not fits_signed(disp, 22):
        raise EncodeError(f"branch displacement out of range: {disp_bytes}")
    word = (int(annul) << 29) | (cond << 25) | (op2 << 22) | (disp & 0x3FFFFF)
    return word


def encode_branch(mnemonic: str, disp_bytes: int, annul: bool = False) -> int:
    """Encode an integer condition-code branch (``ba``, ``bne``, ...)."""
    cond = ICC_NAME_TO_COND.get(mnemonic)
    if cond is None:
        raise EncodeError(f"not an integer branch mnemonic: {mnemonic!r}")
    return _encode_bicc(0b010, cond, disp_bytes, annul)


def encode_fbranch(mnemonic: str, disp_bytes: int, annul: bool = False) -> int:
    """Encode a floating-point condition-code branch (``fbe``, ``fbl``, ...)."""
    cond = FCC_NAME_TO_COND.get(mnemonic)
    if cond is None:
        raise EncodeError(f"not an FP branch mnemonic: {mnemonic!r}")
    return _encode_bicc(0b110, cond, disp_bytes, annul)


def encode_call(disp_bytes: int) -> int:
    """Encode ``call`` with a byte displacement relative to the call PC."""
    if disp_bytes % 4:
        raise EncodeError(f"call displacement not word aligned: {disp_bytes}")
    disp = disp_bytes >> 2
    if not fits_signed(disp, 30):
        raise EncodeError(f"call displacement out of range: {disp_bytes}")
    return (1 << 30) | (disp & 0x3FFFFFFF)


def encode_jmpl(rd: int, rs1: int, rs2: int | None = None,
                imm: int | None = None) -> int:
    """Encode ``jmpl address, rd`` (covers ``ret``/``retl``/``jmp``)."""
    return _format3(2, rd, OP3_JMPL, rs1, rs2, imm)


def encode_mem(mnemonic: str, rd: int, rs1: int, rs2: int | None = None,
               imm: int | None = None) -> int:
    """Encode a load or store; ``rd`` is the data register (int or FP)."""
    op3 = MEM_MNEMONIC_TO_OP3.get(mnemonic)
    if op3 is None:
        raise EncodeError(f"not a memory mnemonic: {mnemonic!r}")
    return _format3(3, rd, op3, rs1, rs2, imm)


def encode_fpop(mnemonic: str, rd: int, rs2: int, rs1: int = 0) -> int:
    """Encode an FP-operate instruction (``faddd``, ``fsqrtd``, ``fcmpd`` ...)."""
    opf = FPOP_MNEMONIC_TO_OPF.get(mnemonic)
    if opf is None:
        raise EncodeError(f"not an FP-operate mnemonic: {mnemonic!r}")
    op3 = OP3_FPOP2 if opf in FPOP2_OPF else OP3_FPOP1
    word = (2 << 30) | (_check_reg(rd, "rd") << 25) | (op3 << 19)
    word |= _check_reg(rs1, "rs1") << 14
    word |= opf << 5
    word |= _check_reg(rs2, "rs2")
    return word


def encode_rdy(rd: int) -> int:
    """Encode ``rd %y, rd``."""
    return (2 << 30) | (_check_reg(rd, "rd") << 25) | (OP3_RDY << 19)


def encode_wry(rs1: int, rs2: int | None = None, imm: int | None = None) -> int:
    """Encode ``wr rs1, operand, %y`` (Y := rs1 XOR operand)."""
    return _format3(2, 0, OP3_WRY, rs1, rs2, imm)


def encode_trap(mnemonic: str, rs1: int = 0, rs2: int | None = None,
                imm: int | None = None) -> int:
    """Encode a Ticc trap instruction, e.g. ``ta 0x80 + n``."""
    cond = TRAP_NAME_TO_COND.get(mnemonic)
    if cond is None:
        raise EncodeError(f"not a trap mnemonic: {mnemonic!r}")
    if imm is not None and not 0 <= imm < 128:
        raise EncodeError(f"software trap number out of range: {imm}")
    word = _format3(2, 0, OP3_TICC, rs1, rs2, imm)
    return word | (cond << 25)
