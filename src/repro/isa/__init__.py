"""SPARC V8 instruction-set architecture definitions.

This package defines the subset of the SPARC V8 ISA implemented by the
LEON3-class processor model used throughout :mod:`repro`:

* :mod:`repro.isa.registers` -- integer/FP register files, names, aliases;
* :mod:`repro.isa.fields` -- bit-field extraction/insertion helpers;
* :mod:`repro.isa.opcodes` -- decode tables (the paper's *decode entries*);
* :mod:`repro.isa.decoder` -- 32-bit word -> :class:`DecodedInstr`;
* :mod:`repro.isa.encoder` -- :class:`DecodedInstr`/operands -> 32-bit word;
* :mod:`repro.isa.disasm` -- textual disassembly (Fig. 2's *disassembler*).

The decode tables mirror the grouping shown in Fig. 3 of the paper:
every mnemonic carries the name of the *morph function group* that executes
it in the simulator as well as the instruction *category* used by the
mechanistic non-functional-property model (Table I).
"""

from repro.isa.decoder import DecodedInstr, decode
from repro.isa.disasm import disassemble
from repro.isa.encoder import (
    encode_arith,
    encode_branch,
    encode_call,
    encode_fbranch,
    encode_fpop,
    encode_jmpl,
    encode_mem,
    encode_sethi,
    encode_trap,
)
from repro.isa.errors import DecodeError, EncodeError, IsaError
from repro.isa.opcodes import (
    ARITH_OP3,
    FCC_COND_NAMES,
    FPOP1_OPF,
    FPOP2_OPF,
    ICC_COND_NAMES,
    MEM_OP3,
    MORPH_GROUPS,
    mnemonic_exists,
)
from repro.isa.registers import (
    FREG_NAMES,
    NUM_FREGS,
    NUM_IREGS,
    REG_ALIASES,
    REG_NAMES,
    freg_name,
    parse_freg,
    parse_reg,
    reg_name,
)

__all__ = [
    "ARITH_OP3",
    "DecodeError",
    "DecodedInstr",
    "EncodeError",
    "FCC_COND_NAMES",
    "FPOP1_OPF",
    "FPOP2_OPF",
    "FREG_NAMES",
    "ICC_COND_NAMES",
    "IsaError",
    "MEM_OP3",
    "MORPH_GROUPS",
    "NUM_FREGS",
    "NUM_IREGS",
    "REG_ALIASES",
    "REG_NAMES",
    "decode",
    "disassemble",
    "encode_arith",
    "encode_branch",
    "encode_call",
    "encode_fbranch",
    "encode_fpop",
    "encode_jmpl",
    "encode_mem",
    "encode_sethi",
    "encode_trap",
    "freg_name",
    "mnemonic_exists",
    "parse_freg",
    "parse_reg",
    "reg_name",
]
