"""Bit-field helpers shared by the encoder and decoder.

All SPARC V8 instructions are exactly 32 bits.  These helpers keep the
two-complement/sign-extension bookkeeping in one audited place.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF


def u32(value: int) -> int:
    """Wrap ``value`` to an unsigned 32-bit integer."""
    return value & MASK32


def s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def bits(word: int, hi: int, lo: int) -> int:
    """Extract bits ``hi..lo`` (inclusive, ``hi >= lo``) of ``word``."""
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def sign_extend(value: int, width: int) -> int:
    """Sign-extend a ``width``-bit field to a Python int."""
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def fits_simm13(value: int) -> bool:
    """True if ``value`` fits the signed 13-bit immediate field."""
    return -4096 <= value <= 4095


def fits_signed(value: int, width: int) -> bool:
    """True if ``value`` fits a signed ``width``-bit field."""
    bound = 1 << (width - 1)
    return -bound <= value < bound
