"""Instruction-set simulator (the OVP analogue).

The functional simulation environment of the paper: instruction-accurate,
not cycle-accurate; the user can inspect registers and memory at any point
but there is no pipeline state.  Per-category instruction counters are
maintained by the morphed code (Section III of the paper), making the
extended ISS barely slower than the purely functional one.  The fast loop
additionally translates straight-line runs into *superblocks*
(:mod:`repro.vm.blocks`) with batched counter updates -- toggled by
``CoreConfig.blocks_enabled`` and bit-identical to per-instruction
dispatch.
"""

from repro.vm.blocks import Block, compile_block
from repro.vm.config import DEFAULT_BLOCK_SIZE, CoreConfig
from repro.vm.cpu import DEFAULT_BUDGET, Cpu, RetireObserver
from repro.vm.errors import (
    DivisionByZero,
    FpuDisabled,
    IllegalInstruction,
    MemoryFault,
    SimError,
    UnhandledTrap,
    WatchdogTimeout,
    WindowUnderflow,
)
from repro.vm.memory import Memory
from repro.vm.morpher import Morpher
from repro.vm.profiler import ProfileMeter
from repro.vm.simulator import SimulationResult, Simulator, simulate
from repro.vm.state import CpuState
from repro.vm.syscalls import (
    SYS_CLOCK,
    SYS_EXIT,
    SYS_PUTC,
    SYS_WRITE_BUF,
    SYS_WRITE_U32,
    semihost_dispatch,
)

__all__ = [
    "Block",
    "Cpu",
    "CoreConfig",
    "CpuState",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_BUDGET",
    "compile_block",
    "DivisionByZero",
    "FpuDisabled",
    "IllegalInstruction",
    "Memory",
    "MemoryFault",
    "Morpher",
    "ProfileMeter",
    "RetireObserver",
    "SYS_CLOCK",
    "SYS_EXIT",
    "SYS_PUTC",
    "SYS_WRITE_BUF",
    "SYS_WRITE_U32",
    "SimError",
    "SimulationResult",
    "Simulator",
    "UnhandledTrap",
    "WatchdogTimeout",
    "WindowUnderflow",
    "semihost_dispatch",
    "simulate",
]
