"""Instruction-set simulator (the OVP analogue).

The functional simulation environment of the paper: instruction-accurate,
not cycle-accurate; the user can inspect registers and memory at any point
but there is no pipeline state.  Per-category instruction counters are
maintained inline by the morphed code (Section III of the paper), making
the extended ISS barely slower than the purely functional one.
"""

from repro.vm.config import CoreConfig
from repro.vm.cpu import DEFAULT_BUDGET, Cpu, RetireObserver
from repro.vm.errors import (
    DivisionByZero,
    FpuDisabled,
    IllegalInstruction,
    MemoryFault,
    SimError,
    UnhandledTrap,
    WatchdogTimeout,
    WindowUnderflow,
)
from repro.vm.memory import Memory
from repro.vm.morpher import Morpher
from repro.vm.simulator import SimulationResult, Simulator, simulate
from repro.vm.state import CpuState
from repro.vm.syscalls import (
    SYS_CLOCK,
    SYS_EXIT,
    SYS_PUTC,
    SYS_WRITE_BUF,
    SYS_WRITE_U32,
    semihost_dispatch,
)

__all__ = [
    "Cpu",
    "CoreConfig",
    "CpuState",
    "DEFAULT_BUDGET",
    "DivisionByZero",
    "FpuDisabled",
    "IllegalInstruction",
    "Memory",
    "MemoryFault",
    "Morpher",
    "RetireObserver",
    "SYS_CLOCK",
    "SYS_EXIT",
    "SYS_PUTC",
    "SYS_WRITE_BUF",
    "SYS_WRITE_U32",
    "SimError",
    "SimulationResult",
    "Simulator",
    "UnhandledTrap",
    "WatchdogTimeout",
    "WindowUnderflow",
    "semihost_dispatch",
    "simulate",
]
